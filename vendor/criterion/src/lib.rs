//! Offline stand-in for the `criterion` crate.
//!
//! The build environment for this workspace has no access to crates.io,
//! so the benchmark harness API that `crates/bench` uses is provided
//! here: [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`criterion_group!`], [`criterion_main!`].
//!
//! Measurement is deliberately simple — median of `sample_size`
//! wall-clock samples after a short warm-up, printed one line per
//! benchmark — with none of the real crate's statistics, plotting, or
//! baseline management.

use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost (accepted for API
/// compatibility; the stub re-runs setup every iteration regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Per-benchmark measurement driver handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    samples: usize,
    /// Median measured time of the routine, filled in by `iter*`.
    measured: Option<Duration>,
}

impl Bencher {
    /// Measures `routine` directly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        std::hint::black_box(routine());
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            times.push(t0.elapsed());
        }
        times.sort();
        self.measured = Some(times[times.len() / 2]);
    }

    /// Measures `routine` on fresh input from `setup`, excluding the
    /// setup time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            times.push(t0.elapsed());
        }
        times.sort();
        self.measured = Some(times[times.len() / 2]);
    }
}

/// Benchmark registry/configuration entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be non-zero");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark and prints its median time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            measured: None,
        };
        f(&mut b);
        match b.measured {
            Some(t) => println!("bench {id:<40} median {t:>12.3?} ({} samples)", self.sample_size),
            None => println!("bench {id:<40} (no measurement taken)"),
        }
        self
    }
}

/// Declares a benchmark group function, mirroring both forms of the real
/// macro (`name`/`config`/`targets`, or positional).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut runs = 0usize;
        Criterion::default()
            .sample_size(3)
            .bench_function("stub_smoke", |b| b.iter(|| runs += 1));
        // Warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn iter_batched_uses_fresh_input() {
        let mut next = 0u32;
        Criterion::default().sample_size(2).bench_function("batched", |b| {
            b.iter_batched(
                || {
                    next += 1;
                    next
                },
                |v| v * 2,
                BatchSize::SmallInput,
            )
        });
        assert_eq!(next, 3);
    }
}
