//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io,
//! so the small `rand` API surface the workspace actually uses is
//! reimplemented here and wired in through a path dependency. The
//! generator is SplitMix64 — statistically solid for Monte-Carlo device
//! mismatch sampling and fully deterministic for a given seed, which is
//! all the workspace requires (it never needs cryptographic strength).
//!
//! Covered API: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`RngCore`], and [`Rng::gen`] for the primitive types used in the
//! workspace (`f64`, `f32`, `u32`, `u64`, `bool`). One workspace
//! extension beyond the real crate's API: deterministic child-stream
//! derivation via [`rngs::SplitMix64::derive_stream`], the seeding
//! primitive of the `ulp-exec` parallel ensemble engine.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let x: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! ```

/// Low-level generator interface: a source of raw 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Generators that can be constructed from a small integer seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed. Equal seeds give equal
    /// output streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable from the "standard" distribution of the real `rand`
/// crate: uniform `[0, 1)` for floats, uniform over all values for
/// integers, fair coin for `bool`.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 significant bits → uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    ///
    /// Not the same output stream as the real `rand::rngs::StdRng`
    /// (which is ChaCha-based) — workspace code only relies on
    /// *reproducibility*, never on the specific stream.
    #[derive(Debug, Clone)]
    pub struct SplitMix64 {
        state: u64,
    }

    /// The name workspace code imports for `rand`-API compatibility.
    pub type StdRng = SplitMix64;

    /// MurmurHash3's 64-bit finalizer — a strong bijective mixer whose
    /// constants are deliberately distinct from the SplitMix64 output
    /// finalizer in [`RngCore::next_u64`], so derived child states are
    /// decorrelated from the parent's own output stream.
    fn fmix64(mut z: u64) -> u64 {
        z ^= z >> 33;
        z = z.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        z ^= z >> 33;
        z = z.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        z ^= z >> 33;
        z
    }

    impl SplitMix64 {
        /// Derives the independent child stream for `index` without
        /// advancing `self`. Equal `(parent state, index)` pairs give
        /// equal children; adjacent indices give decorrelated streams.
        ///
        /// This is the workspace's deterministic per-trial seeding
        /// primitive: a Monte-Carlo campaign derives one child per trial
        /// index from a root generator, so trial randomness never
        /// depends on which worker thread runs the trial or in what
        /// order.
        pub fn derive_stream(&self, index: u64) -> SplitMix64 {
            let salted = index.wrapping_add(0x9E37_79B9_7F4A_7C15);
            SplitMix64 {
                state: fmix64(self.state ^ fmix64(salted)),
            }
        }
    }

    impl SeedableRng for SplitMix64 {
        fn seed_from_u64(seed: u64) -> Self {
            SplitMix64 { state: seed }
        }
    }

    impl RngCore for SplitMix64 {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval_and_well_spread() {
        let mut rng = StdRng::seed_from_u64(123);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(5);
        let heads = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn derive_stream_is_deterministic_and_leaves_parent_untouched() {
        let root = StdRng::seed_from_u64(42);
        let a: Vec<u64> = {
            let mut c = root.derive_stream(7);
            (0..8).map(|_| c.gen::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut c = root.derive_stream(7);
            (0..8).map(|_| c.gen::<u64>()).collect()
        };
        assert_eq!(a, b, "same (parent, index) must give the same stream");
        // Deriving never advanced the parent: its own stream is intact.
        let mut parent = root.clone();
        let mut fresh = StdRng::seed_from_u64(42);
        for _ in 0..8 {
            assert_eq!(parent.gen::<u64>(), fresh.gen::<u64>());
        }
    }

    #[test]
    fn adjacent_streams_do_not_collide() {
        // The sibling-stream guarantee the ensemble engine relies on:
        // children of adjacent trial indices start from distinct states
        // and stay distinct over a prefix, and none collides with the
        // parent's own output stream.
        let root = StdRng::seed_from_u64(2026);
        let mut firsts = std::collections::HashSet::new();
        let mut parent = root.clone();
        let parent_prefix: Vec<u64> = (0..4).map(|_| parent.gen::<u64>()).collect();
        for index in 0..256u64 {
            let mut child = root.derive_stream(index);
            let prefix: Vec<u64> = (0..4).map(|_| child.gen::<u64>()).collect();
            assert!(firsts.insert(prefix[0]), "first output collision at {index}");
            assert_ne!(prefix, parent_prefix, "child {index} aliases the parent");
        }
    }

    #[test]
    fn adjacent_streams_are_bitwise_decorrelated() {
        // Counter-like inputs are the adversarial case for a weak
        // mixer: the XOR of adjacent children's first outputs must look
        // like ~32 random flipped bits, not a low-weight difference.
        let root = StdRng::seed_from_u64(7);
        let mut total_distance = 0u32;
        let n = 512u64;
        for index in 0..n {
            let x = root.derive_stream(index).gen::<u64>();
            let y = root.derive_stream(index + 1).gen::<u64>();
            let d = (x ^ y).count_ones();
            total_distance += d;
            assert!((8..=56).contains(&d), "hamming distance {d} at {index}");
        }
        let mean = f64::from(total_distance) / n as f64;
        assert!((mean - 32.0).abs() < 2.0, "mean hamming distance {mean}");
    }

    #[test]
    fn derived_floats_are_uniform() {
        // A derived stream must be as usable for Monte-Carlo draws as a
        // directly seeded one.
        let root = StdRng::seed_from_u64(99);
        let mut rng = root.derive_stream(3);
        let n = 10_000;
        let mean = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }
}
