//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io,
//! so the small `rand` API surface the workspace actually uses is
//! reimplemented here and wired in through a path dependency. The
//! generator is SplitMix64 — statistically solid for Monte-Carlo device
//! mismatch sampling and fully deterministic for a given seed, which is
//! all the workspace requires (it never needs cryptographic strength).
//!
//! Covered API: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`RngCore`], and [`Rng::gen`] for the primitive types used in the
//! workspace (`f64`, `f32`, `u32`, `u64`, `bool`).
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let x: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! ```

/// Low-level generator interface: a source of raw 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Generators that can be constructed from a small integer seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed. Equal seeds give equal
    /// output streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable from the "standard" distribution of the real `rand`
/// crate: uniform `[0, 1)` for floats, uniform over all values for
/// integers, fair coin for `bool`.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 significant bits → uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    ///
    /// Not the same output stream as the real `rand::rngs::StdRng`
    /// (which is ChaCha-based) — workspace code only relies on
    /// *reproducibility*, never on the specific stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval_and_well_spread() {
        let mut rng = StdRng::seed_from_u64(123);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(5);
        let heads = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&heads), "heads = {heads}");
    }
}
