//! Offline stand-in for the `proptest` crate.
//!
//! The build environment for this workspace has no access to crates.io,
//! so the subset of `proptest` the workspace's property tests use is
//! reimplemented here and wired in through a path dependency:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header);
//! * range strategies (`-1.0f64..1.0`, `0usize..14`, …);
//! * [`prelude::any`] for primitives, [`strategy::Just`], tuples;
//! * `prop::collection::vec` with fixed or ranged length;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`].
//!
//! Differences from the real crate, deliberately accepted: sampling is
//! *deterministic* (seeded from the test's module path and name, so
//! failures reproduce exactly on every run), and there is **no
//! shrinking** — a failing case panics with the sampled inputs visible
//! in the assertion message rather than a minimised counterexample.

/// Per-test configuration.
pub mod test_runner {
    /// Mirror of `proptest::test_runner::Config` for the options the
    /// workspace sets.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of sampled cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` sampled cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic SplitMix64 generator used to sample strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary label (FNV-1a hash), so
        /// each property test gets its own reproducible stream.
        pub fn deterministic(label: &str) -> Self {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` on `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer on `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for producing values of [`Strategy::Value`].
    ///
    /// Unlike the real crate there is no value tree: `sample` draws one
    /// concrete value directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy always yielding a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty f32 strategy range");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A0) (A0, A1) (A0, A1, A2) (A0, A1, A2, A3) (A0, A1, A2, A3, A4)
    }

    // Strategies are samplable through references, so `&strat` works
    // where an owned strategy is expected.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy over the full value space of `A`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<A> {
        _marker: std::marker::PhantomData<A>,
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn sample(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The strategy producing any value of `A` (uniform for the
    /// primitive types implemented here).
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, spanning several decades — a
            // pragmatic stand-in for proptest's any::<f64>().
            let mag = 10f64.powf(rng.unit_f64() * 12.0 - 6.0);
            if rng.next_u64() & 1 == 1 {
                mag
            } else {
                -mag
            }
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed `usize` or a `Range`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `vec(element, len)` — `len` may be a fixed `usize` or a
    /// `Range<usize>`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a property test needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property, reporting the sampled case on
/// failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current sampled case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// item becomes a `#[test]` running `body` over sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                let ($($arg,)*) =
                    ($($crate::strategy::Strategy::sample(&($strat), &mut __rng),)*);
                // The body runs in a `Result`-returning closure so tests
                // can `return Ok(())` to skip a case, as with the real
                // crate.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| {
                        $body
                        Ok(())
                    })();
                if let Err(__msg) = __outcome {
                    panic!("property {} failed: {__msg}", stringify!($name));
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges stay inside their bounds.
        #[test]
        fn f64_range_in_bounds(x in -2.5f64..7.0) {
            prop_assert!((-2.5..7.0).contains(&x));
        }

        #[test]
        fn int_range_in_bounds(n in 3usize..9) {
            prop_assert!((3..9).contains(&n));
        }

        #[test]
        fn vec_lengths_respected(
            xs in prop::collection::vec(0.0f64..1.0, 2..6),
            ys in prop::collection::vec(any::<bool>(), 4)
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert_eq!(ys.len(), 4);
        }

        #[test]
        fn assume_skips_cases(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn just_and_map_compose(k in Just(21usize).prop_map(|v| v * 2)) {
            prop_assert_eq!(k, 42);
            prop_assert_ne!(k, 41);
        }

        #[test]
        fn tuples_sample_componentwise(pair in (0.0f64..1.0, 5u8..7)) {
            prop_assert!(pair.0 < 1.0);
            prop_assert!(pair.1 == 5 || pair.1 == 6);
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
