//! Workspace integration-test host crate; see `tests/` directory.
