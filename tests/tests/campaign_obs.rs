//! Campaign observability contract, end-to-end: the per-trial cost
//! ledger, the span profiler's Chrome trace export, and the metrics
//! registry's Prometheus exposition — all produced by real solver
//! campaigns through the public `ulp-exec` / `ulp_spice::telemetry`
//! API.
//!
//! The load-bearing assertion is the determinism split: the
//! counter-only ledger subset ([`CampaignReport::counters_json`]) must
//! be **byte-identical** at any worker count, while wall-clock and
//! worker-identity fields are observability-only and excluded from the
//! comparison. All tests in this binary share one process-global
//! collector installed at `Spans`; every structural assertion below is
//! made on campaign-local reports (built from worker-local collectors),
//! so concurrently running tests cannot interfere with them.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;
use ulp_device::Technology;
use ulp_exec::{Ensemble, TrialCtx, TrialOutcome};
use ulp_spice::dcop::DcOperatingPoint;
use ulp_spice::telemetry::{self, TraceMode};
use ulp_spice::{registry, Waveform};
use ulp_stscl::vtc::SclBufferCircuit;
use ulp_stscl::SclParams;

/// Installs the span profiler process-wide (first-wins; every test in
/// this binary asks for the same mode).
fn spans_on() {
    telemetry::install_global(TraceMode::Spans);
}

/// A solver-backed campaign: per-trial STSCL-buffer DC operating
/// points across the paper's bias range. Returns the campaign report.
fn dcop_campaign(label: &str, trials: usize, jobs: usize) -> ulp_exec::CampaignReport {
    let tech = Technology::default();
    let params = SclParams::default();
    let (results, report) = Ensemble::new(trials)
        .label(label)
        .jobs(jobs)
        .run_with_report(|ctx: &mut TrialCtx| {
            let iss = 100e-12 * 10f64.powf(ctx.index() as f64 / trials as f64);
            let c = SclBufferCircuit::build(&tech, &params, iss, 0.6, Waveform::Dc(0.05));
            DcOperatingPoint::solve(&c.netlist, &tech)
                .expect("dcop solves")
                .solution()
                .iter()
                .map(|v| v.abs())
                .sum::<f64>()
        });
    for r in results {
        r.expect("trial ok");
    }
    report
}

#[test]
fn counter_ledger_is_byte_identical_across_worker_counts() {
    spans_on();
    let serial = dcop_campaign("obs-test::serial", 8, 1);
    let pooled = dcop_campaign("obs-test::pooled", 8, 4);
    // Same work, different schedule: the deterministic subset must not
    // see the schedule. Labels differ by construction, so compare the
    // ledgers with the label line normalized away.
    let strip = |s: String| {
        s.lines()
            .map(|l| l.replace("obs-test::serial", "L").replace("obs-test::pooled", "L"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip(serial.counters_json()),
        strip(pooled.counters_json()),
        "counter-only ledger must be byte-identical at any ULP_JOBS"
    );
    // The ledger is complete, trial-index ordered, and records real
    // solver work for every trial.
    assert_eq!(serial.costs.len(), 8);
    for (k, cost) in serial.costs.iter().enumerate() {
        assert_eq!(cost.trial, k);
        assert_eq!(cost.outcome, TrialOutcome::Ok);
        assert!(cost.counters.newton_iterations > 0, "trial {k} solved nothing");
    }
    assert!(serial.counters_recorded);
    assert_eq!(serial.ok_trials(), 8);
    // Wall-clock fields are best-effort but must be sane.
    assert!(serial.wall_seconds >= 0.0);
    assert!(serial.percentile_seconds(95.0) >= serial.percentile_seconds(50.0));
    assert!(serial.max_seconds() >= serial.percentile_seconds(95.0));
    // Worker utilization covers exactly the configured pool, busy or
    // idle, and trial counts add up.
    let util = pooled.worker_utilization();
    assert_eq!(util.len(), 4);
    assert_eq!(util.iter().map(|w| w.trials).sum::<usize>(), 8);
    for w in &util {
        assert!((0.0..=1.0).contains(&w.utilization));
    }
}

#[test]
fn span_profile_exports_valid_chrome_trace() {
    spans_on();
    dcop_campaign("obs-test::trace", 4, 2);
    // The global span buffer now holds this campaign's spans (plus any
    // from concurrently running tests — validation is closed under
    // more spans). Campaign, trial and newton/phase levels must all be
    // present.
    let spans = telemetry::spans_snapshot();
    let trace = telemetry::render_chrome_trace(&spans);
    let n = telemetry::validate_chrome_trace(&trace).expect("valid Chrome trace JSON");
    assert_eq!(n, spans.len());
    assert!(spans.iter().any(|s| s.cat == "campaign"), "campaign span missing");
    assert!(spans.iter().any(|s| s.cat == "trial"), "trial spans missing");
    assert!(spans.iter().any(|s| s.cat == "newton"), "newton spans missing");
    // Trial spans carry their trial index for the Perfetto args pane.
    assert!(spans
        .iter()
        .filter(|s| s.cat == "trial")
        .all(|s| s.trial.is_some()));
}

#[test]
fn registry_metrics_export_valid_prometheus_exposition() {
    spans_on();
    dcop_campaign("obs-test::prom", 4, 1);
    let reg = telemetry::registry_snapshot().expect("tracing is on");
    assert!(!reg.is_empty());
    let text = reg.render_prometheus();
    let samples = registry::validate_prometheus(&text).expect("valid exposition");
    assert!(samples > 0);
    // The campaign instruments the standard trial metrics.
    assert!(text.contains("ulp_trials_total"));
    assert!(text.contains("ulp_trial_seconds_bucket"));
    // JSONL export renders one object per metric.
    assert_eq!(reg.render_jsonl().lines().count(), reg.len());
}

#[test]
fn telemetry_events_are_tagged_with_campaign_and_trial() {
    spans_on();
    dcop_campaign("obs-test::tags", 3, 1);
    // Worker-local events have been folded into the global collector in
    // worker order; this campaign's events must carry its label and a
    // valid trial index.
    let events = telemetry::take_events();
    let mine: Vec<_> = events
        .iter()
        .filter(|e| e.campaign.as_deref() == Some("obs-test::tags"))
        .collect();
    assert!(!mine.is_empty(), "campaign events must be tagged");
    for e in &mine {
        assert!(e.trial.is_some_and(|t| t < 3), "trial tag out of range");
        let json = e.to_json();
        assert!(json.contains("\"campaign\":\"obs-test::tags\""), "{json}");
        assert!(json.starts_with("{\"event\":\"") && json.ends_with('}'), "{json}");
    }
}

#[test]
fn progress_rate_limit_caps_callbacks_but_always_fires_the_final_report() {
    spans_on();
    let fired = std::sync::Arc::new(AtomicUsize::new(0));
    let finals = std::sync::Arc::new(AtomicUsize::new(0));
    let (f, n) = (fired.clone(), finals.clone());
    let results = Ensemble::new(100)
        .jobs(2)
        .label("obs-test::pace")
        .progress_interval(Duration::from_secs(3600))
        .on_progress(move |p| {
            f.fetch_add(1, Ordering::Relaxed);
            if p.completed == p.total {
                n.fetch_add(1, Ordering::Relaxed);
                assert!(p.rate_per_sec > 0.0);
                assert_eq!(p.eta_seconds, 0.0);
            }
        })
        .run(|ctx: &mut TrialCtx| ctx.index());
    assert_eq!(results.len(), 100);
    assert!(
        fired.load(Ordering::Relaxed) < 100,
        "hour-long interval must suppress most per-trial callbacks"
    );
    assert_eq!(finals.load(Ordering::Relaxed), 1, "final report must fire exactly once");
}
