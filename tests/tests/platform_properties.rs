//! Property-based integration tests: the platform's invariants must
//! hold for *arbitrary* operating points, mismatch seeds and inputs,
//! not just the calibrated examples.

use proptest::prelude::*;
use ulp_adc::fine::decode_wheel;
use ulp_adc::{AdcConfig, FaiAdc};
use ulp_device::Technology;
use ulp_pmu::fll::FrequencyLockedLoop;
use ulp_stscl::SclParams;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Eq. 1 consistency: for any bias and depth, sizing a gate for the
    /// frequency it reaches at that bias returns the same bias.
    #[test]
    fn eq1_roundtrip(iss_exp in -12.0f64..-6.0, nl in 1usize..20) {
        let iss = 10f64.powf(iss_exp);
        let p = SclParams::default();
        let f = p.fmax(iss, nl);
        let back = p.iss_for_frequency(f, nl);
        prop_assert!((back / iss - 1.0).abs() < 1e-9);
    }

    /// Conversion is monotone for any mismatch seed: a die may be
    /// nonlinear, but the folding architecture with LSB-class offsets
    /// must never run backwards by more than one code.
    #[test]
    fn conversion_near_monotone_for_any_die(seed in 0u64..200) {
        let tech = Technology::default();
        let adc = FaiAdc::with_mismatch(&tech, &AdcConfig::default(), seed);
        let cfg = adc.config();
        let lsb = cfg.lsb();
        let mut last = 0i64;
        for n in 0..256usize {
            let code = adc.convert(cfg.v_low + (n as f64 + 0.5) * lsb) as i64;
            prop_assert!(code >= last - 1, "seed {seed}: code {code} after {last} at bucket {n}");
            last = last.max(code);
        }
    }

    /// Bias scaling never changes any code, for any die and any input.
    #[test]
    fn codes_bias_independent(seed in 0u64..50, vin_frac in 0.02f64..0.98, ic_exp in -11.0f64..-8.0) {
        let tech = Technology::default();
        let cfg = AdcConfig::default();
        let mut adc = FaiAdc::with_mismatch(&tech, &cfg, seed);
        let vin = cfg.v_low + vin_frac * (cfg.v_high - cfg.v_low);
        let before = adc.convert(vin);
        adc.set_control_current(10f64.powf(ic_exp));
        prop_assert_eq!(adc.convert(vin), before);
    }

    /// The wheel decode inverts the wheel encode for every position.
    #[test]
    fn wheel_roundtrip(q in 0usize..64) {
        let signs: Vec<bool> = (0..32)
            .map(|i| {
                let rel = (q as f64 + 0.5 - i as f64).rem_euclid(64.0);
                rel > 0.0 && rel < 32.0
            })
            .collect();
        prop_assert_eq!(decode_wheel(&signs), q);
    }

    /// The FLL locks from any starting bias within four decades.
    #[test]
    fn fll_locks_from_anywhere(iss0_exp in -13.0f64..-7.0, f_exp in 2.0f64..5.5) {
        let mut fll = FrequencyLockedLoop::new(SclParams::default(), 5, 10f64.powf(iss0_exp), 0.5);
        let f_ref = 10f64.powf(f_exp);
        let locked = fll.acquire(f_ref, 1e-3, 400);
        prop_assert!(locked.is_some(), "no lock from {iss0_exp} to {f_exp}");
        prop_assert!((fll.ring_frequency() / f_ref - 1.0).abs() < 1e-2);
    }

    /// Minimum supply is monotone in bias and always above the
    /// structural floor, for any swing/load design point.
    #[test]
    fn min_vdd_monotone(vsw in 0.1f64..0.4, iss_exp in -12.0f64..-6.0) {
        let tech = Technology::default();
        let p = SclParams::new(vsw, 10e-15, 1.0);
        let iss = 10f64.powf(iss_exp);
        let floor = vsw + 4.0 * tech.thermal_voltage();
        prop_assert!(p.min_vdd(&tech, iss) >= floor - 1e-12);
        prop_assert!(p.min_vdd(&tech, iss * 2.0) >= p.min_vdd(&tech, iss));
    }
}

#[test]
fn gate_and_behavioural_paths_agree_across_dies() {
    // Heavier than a proptest case: full equivalence on a grid for a
    // handful of dies.
    let tech = Technology::default();
    let cfg = AdcConfig::default();
    for seed in [0u64, 1, 2] {
        let adc = FaiAdc::with_mismatch(&tech, &cfg, seed);
        for k in 0..128 {
            let vin = cfg.v_low + (cfg.v_high - cfg.v_low) * (k as f64 + 0.37) / 128.0;
            assert_eq!(
                adc.convert(vin),
                adc.convert_behavioural(vin),
                "divergence at seed {seed}, vin {vin}"
            );
        }
    }
}
