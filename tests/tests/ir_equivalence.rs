//! Builder↔IR equivalence: the STSCL buffer built imperatively by
//! `ulp_stscl::vtc::SclBufferCircuit` must survive a full trip through
//! the text dialect — import to a [`ulp_ir::Design`], serialize,
//! re-parse, flatten — and land on a netlist that agrees with the
//! builder's to ≤ 1e-12 at the DC operating point and along a control
//! sweep, under both linear-algebra backends.

use ulp_device::Technology;
use ulp_ir::{design_from_netlist, flatten, parse};
use ulp_spice::dcop::{DcOperatingPoint, NewtonOptions};
use ulp_spice::mna::SolverKind;
use ulp_spice::{sweep, Netlist, Waveform};
use ulp_stscl::gate::SclParams;
use ulp_stscl::vtc::SclBufferCircuit;

const TOL: f64 = 1e-12;

fn builder_netlist() -> Netlist {
    let tech = Technology::nominal();
    SclBufferCircuit::build(
        &tech,
        &SclParams::default(),
        1e-9,
        0.6,
        Waveform::Dc(0.05),
    )
    .netlist
}

fn ir_netlist(builder: &Netlist) -> Netlist {
    let design = design_from_netlist(builder).expect("builder netlist lifts into the IR");
    let text = design.to_text();
    let reparsed = parse(&text).unwrap_or_else(|e| panic!("serialized design re-parses: {e}"));
    assert_eq!(design, reparsed, "text round-trip must be lossless");
    flatten(&reparsed).expect("flat design flattens")
}

fn opts_for(solver: SolverKind) -> NewtonOptions {
    NewtonOptions {
        max_iter: 800,
        max_step: 0.05,
        solver,
        ..NewtonOptions::default()
    }
}

/// The probe nodes equivalence is asserted on, present in both
/// netlists under the same names (flat design — no hierarchy prefix).
const PROBES: [&str; 6] = ["inp", "inn", "outp", "outn", "cs", "vdd"];

#[test]
fn dcop_agrees_under_both_backends() {
    let builder = builder_netlist();
    let ir = ir_netlist(&builder);
    let tech = Technology::nominal();
    for solver in [SolverKind::Dense, SolverKind::Sparse] {
        let opts = opts_for(solver);
        let op_b = DcOperatingPoint::solve_with(&builder, &tech, &opts).unwrap();
        let op_i = DcOperatingPoint::solve_with(&ir, &tech, &opts).unwrap();
        for probe in PROBES {
            let vb = op_b.voltage(builder.find_node(probe).expect(probe));
            let vi = op_i.voltage(ir.find_node(probe).expect(probe));
            assert!(
                (vb - vi).abs() <= TOL,
                "{solver:?}: {probe}: builder {vb} vs IR {vi}"
            );
        }
    }
}

#[test]
fn control_sweep_agrees_under_both_backends() {
    let builder = builder_netlist();
    let ir = ir_netlist(&builder);
    let tech = Technology::nominal();
    let ctl: Vec<f64> = (-10..=10).map(|i| 0.01 * i as f64).collect();
    for solver in [SolverKind::Dense, SolverKind::Sparse] {
        let opts = opts_for(solver);
        let sw_b = sweep::dc_sweep_with(&builder, &tech, "VCTL", &ctl, &opts).unwrap();
        let sw_i = sweep::dc_sweep_with(&ir, &tech, "VCTL", &ctl, &opts).unwrap();
        for probe in ["outp", "outn"] {
            let tb = sw_b.voltage_trace(builder.find_node(probe).unwrap());
            let ti = sw_i.voltage_trace(ir.find_node(probe).unwrap());
            for (k, (vb, vi)) in tb.iter().zip(&ti).enumerate() {
                assert!(
                    (vb - vi).abs() <= TOL,
                    "{solver:?}: {probe}[{k}] (ctl={}): builder {vb} vs IR {vi}",
                    ctl[k]
                );
            }
        }
    }
}

#[test]
fn element_lists_match_exactly_after_the_round_trip() {
    let builder = builder_netlist();
    let ir = ir_netlist(&builder);
    assert_eq!(builder.node_count(), ir.node_count());
    assert_eq!(builder.elements().len(), ir.elements().len());
    // Same devices in the same order with identical values; only names
    // may differ (card-letter normalization, e.g. RLP -> L_RLP).
    for (b, i) in builder.elements().iter().zip(ir.elements()) {
        let (bn, inm) = (b.name(), i.name());
        assert!(
            inm == bn || inm.ends_with(&format!("_{bn}")),
            "name drift: {bn} vs {inm}"
        );
    }
}
