//! Determinism contract of the `ulp-exec` engine, checked end-to-end
//! through the workloads that ride on it.
//!
//! The engine promises that worker count changes wall-clock time only.
//! These tests pin that promise two ways:
//!
//! * **in-process**: explicit `.jobs(1)` vs `.jobs(4)` campaigns must
//!   agree bit-for-bit;
//! * **via the environment**: the ported entry points
//!   (`parametric_yield`, `mismatch_linearity_ensemble`,
//!   `PlatformController::sweep`) read `ULP_JOBS`, and every assertion
//!   here compares them against a hand-rolled serial reference loop —
//!   so `ci.sh` running this suite under both `ULP_JOBS=1` and
//!   `ULP_JOBS=4` proves both scheduling paths reproduce the same
//!   bytes.
//!
//! Floating-point equality below is deliberate and exact (`to_bits`
//! where it matters): "close" would hide scheduling leaks.

use rand::Rng;
use ulp_adc::metrics::{mismatch_linearity_ensemble, ramp_linearity};
use ulp_adc::yield_analysis::{parametric_yield, LinearitySpec};
use ulp_adc::{AdcConfig, FaiAdc};
use ulp_device::Technology;
use ulp_exec::{Ensemble, TrialCtx, TrialError};
use ulp_pmu::PlatformController;

const DIES: usize = 6;
const RAMP_STEPS: usize = 256 * 32;

/// The pre-engine serial loop, kept verbatim as the reference.
fn serial_reference(tech: &Technology, cfg: &AdcConfig) -> Vec<ulp_adc::metrics::Linearity> {
    (0..DIES as u64)
        .map(|seed| {
            let adc = FaiAdc::with_mismatch(tech, cfg, seed);
            ramp_linearity(&adc, RAMP_STEPS).expect("dense ramp")
        })
        .collect()
}

#[test]
fn mismatch_ensemble_matches_serial_reference_exactly() {
    let tech = Technology::default();
    let cfg = AdcConfig::default();
    let reference = serial_reference(&tech, &cfg);
    let engine = mismatch_linearity_ensemble(&tech, &cfg, DIES, RAMP_STEPS).expect("dense ramp");
    assert_eq!(engine.len(), reference.len());
    for (die, (got, want)) in engine.iter().zip(&reference).enumerate() {
        // Whole per-code INL/DNL vectors, not just the peaks: any
        // scheduling-dependent float would show up here first.
        assert_eq!(got.dnl, want.dnl, "die {die} DNL vector");
        assert_eq!(got.inl, want.inl, "die {die} INL vector");
        assert_eq!(got.inl_max.to_bits(), want.inl_max.to_bits(), "die {die} INL peak");
        assert_eq!(got.dnl_max.to_bits(), want.dnl_max.to_bits(), "die {die} DNL peak");
    }
}

#[test]
fn yield_report_matches_serial_reference_exactly() {
    let tech = Technology::default();
    let cfg = AdcConfig::default();
    let spec = LinearitySpec::medium_accuracy();
    let report = parametric_yield(&tech, &cfg, spec, DIES, RAMP_STEPS).expect("dense ramp");

    let reference = serial_reference(&tech, &cfg);
    let expected: Vec<(f64, f64)> = reference.iter().map(|l| (l.inl_max, l.dnl_max)).collect();
    let expected_passing = reference
        .iter()
        .filter(|l| l.inl_max <= spec.inl_max && l.dnl_max <= spec.dnl_max)
        .count();

    assert_eq!(report.dies, DIES);
    assert_eq!(report.passing, expected_passing);
    assert_eq!(report.linearities, expected, "per-die (INL, DNL) pairs, seed order");
}

#[test]
fn pmu_sweep_matches_serial_reference_exactly() {
    let pmu = PlatformController::paper_prototype();
    let swept = pmu.sweep(3);
    let reference: Vec<_> = ulp_num::interp::decade_sweep(pmu.fs_min, pmu.fs_max, 3)
        .into_iter()
        .map(|fs| pmu.operating_point(fs))
        .collect();
    assert_eq!(swept, reference);
}

#[test]
fn explicit_worker_counts_agree_bit_for_bit() {
    // A trial that actually consumes its derived RNG stream, so worker
    // attribution errors cannot cancel out.
    let job = |ctx: &mut TrialCtx| {
        let mut acc = 0.0f64;
        for _ in 0..=(ctx.index() % 7) {
            let x: f64 = ctx.rng().gen();
            acc += x * (ctx.index() as f64 + 1.0);
        }
        acc
    };
    let serial = Ensemble::new(97).seed(0xDA7E).jobs(1).run(job);
    let parallel = Ensemble::new(97).seed(0xDA7E).jobs(4).run(job);
    assert_eq!(serial.len(), parallel.len());
    for (trial, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        let (s, p) = (s.as_ref().expect("serial trial"), p.as_ref().expect("parallel trial"));
        assert_eq!(s.to_bits(), p.to_bits(), "trial {trial}");
    }
}

#[test]
fn panicking_trial_does_not_poison_siblings() {
    for jobs in [1, 4] {
        let results = Ensemble::new(8).jobs(jobs).run(|ctx: &mut TrialCtx| {
            if ctx.index() == 3 {
                panic!("die 3 is broken");
            }
            ctx.index() * 10
        });
        assert_eq!(results.len(), 8);
        for (trial, r) in results.iter().enumerate() {
            if trial == 3 {
                match r {
                    Err(TrialError::Panicked { trial: t, message }) => {
                        assert_eq!(*t, 3);
                        assert!(message.contains("die 3 is broken"), "payload: {message}");
                    }
                    other => panic!("jobs={jobs}: expected Panicked, got {other:?}"),
                }
            } else {
                assert_eq!(
                    *r.as_ref().unwrap_or_else(|e| panic!("jobs={jobs} trial {trial}: {e}")),
                    trial * 10
                );
            }
        }
    }
}
