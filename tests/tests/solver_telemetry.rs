//! Cross-crate telemetry integration: the traced analysis entry points
//! of `ulp-spice` feeding one `MetricsCollector` across a realistic
//! mixed workload, and the failure path carrying diagnosable context.
//!
//! These tests use caller-supplied tracers (not the `ULP_TRACE` global,
//! whose install is process-wide and once-only) so they stay
//! independent of test ordering and of the environment.

use ulp_device::Technology;
use ulp_spice::ac::AcResult;
use ulp_spice::dcop::{DcOperatingPoint, NewtonOptions};
use ulp_spice::sweep::dc_sweep_traced;
use ulp_spice::telemetry::{Event, MetricsCollector, TraceMode};
use ulp_spice::tran::{Transient, TranOptions};
use ulp_spice::{Netlist, SimError};

fn tech() -> Technology {
    Technology::default()
}

/// A diode-loaded current branch: nonlinear enough that Newton takes
/// several iterations, well-posed enough that it never needs the ladder.
fn diode_netlist() -> (Netlist, ulp_spice::Node) {
    let mut nl = Netlist::new();
    let a = nl.node("a");
    nl.isource("I1", Netlist::GROUND, a, 1e-6);
    nl.diode("D1", a, Netlist::GROUND, 1e-15, 1.0);
    (nl, a)
}

#[test]
fn one_collector_aggregates_across_analyses() {
    let t = tech();
    let mut mc = MetricsCollector::new(TraceMode::Events);
    let opts = NewtonOptions::default();

    // DC operating point.
    let (nl, a) = diode_netlist();
    let op = DcOperatingPoint::solve_traced(&nl, &t, &opts, &mut mc).unwrap();

    // AC about it.
    let mut ac_nl = Netlist::new();
    let inp = ac_nl.node("in");
    let out = ac_nl.node("out");
    ac_nl.vsource_ac("V1", inp, Netlist::GROUND, 0.0, 1.0);
    ac_nl.resistor("R1", inp, out, 1e3);
    ac_nl.capacitor("C1", out, Netlist::GROUND, 1e-9);
    let ac_op = DcOperatingPoint::solve_traced(&ac_nl, &t, &opts, &mut mc).unwrap();
    AcResult::run_traced(&ac_nl, &t, &ac_op, &[1e2, 1e3], &mut mc).unwrap();

    // A short transient on the same RC.
    Transient::run_traced(&ac_nl, &t, &TranOptions::new(1e-5, 1e-6), &mut mc).unwrap();

    // A sweep on the diode branch.
    dc_sweep_traced(&nl, &t, "I1", &[1e-7, 1e-6, 1e-5], &opts, &mut mc).unwrap();

    let m = mc.metrics();
    assert!(op.voltage(a) > 0.4);
    assert_eq!(m.ac_points, 2);
    assert_eq!(m.tran_steps, 10);
    assert_eq!(m.sweep_points, 3);
    // OP + AC-OP + 10 tran steps + tran initial OP + 3 sweep points, one
    // converged attempt each (none of these circuits needs the ladder).
    assert_eq!(m.attempts, 16);
    assert_eq!(m.solves, 16);
    assert_eq!(m.failures, 0);
    assert_eq!(m.gmin_fallbacks, 0);
    assert!(m.newton_iterations >= m.attempts);
    assert_eq!(m.lu_factorisations, m.newton_iterations);
    assert!(m.p95_iterations() >= m.p50_iterations());
    assert!(m.max_iterations() >= m.p95_iterations());
    assert!(m.solve_seconds > 0.0);

    // The event log is consistent with the aggregates and renders as
    // one well-formed JSON object per line.
    let newton_events = mc
        .events()
        .iter()
        .filter(|e| matches!(e.event, Event::NewtonAttempt { .. }))
        .count();
    assert_eq!(newton_events, m.attempts);
    let jsonl = mc.render_jsonl();
    assert_eq!(jsonl.lines().count(), mc.events().len());
    for line in jsonl.lines() {
        assert!(line.starts_with("{\"event\":\"") && line.ends_with('}'), "{line}");
    }

    // The summary footer renders every headline number.
    let s = m.summary();
    assert!(s.contains("total solves      : 16"));
    assert!(s.contains("analysis points   : tran 10, ac 2, sweep 3, noise 0"));
}

#[test]
fn no_convergence_error_is_diagnosable() {
    // Current forced into a node whose only outlet is a reverse-biased
    // diode: unsolvable at any realistic gmin under damping, so the
    // ladder engages and the final error must say where it died.
    let t = tech();
    let mut nl = Netlist::new();
    let a = nl.node("a");
    nl.isource("I1", Netlist::GROUND, a, 1e-6);
    nl.diode("D1", Netlist::GROUND, a, 1e-15, 1.0);
    let opts = NewtonOptions::default();
    let mut mc = MetricsCollector::new(TraceMode::Summary);
    let err = DcOperatingPoint::solve_traced_unchecked(&nl, &t, &opts, &mut mc).unwrap_err();
    match &err {
        SimError::NoConvergence {
            iterations,
            residual,
            max_delta,
            gmin,
        } => {
            assert_eq!(*iterations, opts.max_iter);
            assert!(residual.is_finite() && *residual > 0.0);
            assert!(max_delta.is_finite() && *max_delta > 0.0);
            assert!(*gmin > 0.0);
        }
        other => panic!("expected NoConvergence, got {other:?}"),
    }
    // Rendered message carries the full trace context and a hint.
    let msg = err.to_string();
    assert!(msg.contains("A"), "{msg}");
    assert!(msg.contains("gmin"), "{msg}");
    assert!(msg.contains("hint:"), "{msg}");
    // The collector saw the ladder engage before the failure.
    assert_eq!(mc.metrics().gmin_fallbacks, 1);
    assert!(mc.metrics().failures >= 1);
}
