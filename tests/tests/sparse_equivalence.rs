//! Sparse-vs-dense solver equivalence on the shipped builder netlists.
//!
//! The sparse MNA path (pattern reuse + numeric refactorization) must
//! agree with the legacy dense path to 1e-12 in the ∞-norm on every
//! analysis, and the dense path itself must stay bitwise deterministic —
//! it is the oracle the sparse solver is judged against.

use ulp_bench::netlists::builder_netlists;
use ulp_device::Technology;
use ulp_spice::dcop::{DcOperatingPoint, NewtonOptions};
use ulp_spice::mna::SolverKind;
use ulp_spice::netlist::Element;
use ulp_spice::sweep::dc_sweep_with;
use ulp_spice::tran::{suggest_dt, TranOptions, Transient};

const TOL: f64 = 1e-12;

fn newton(solver: SolverKind) -> NewtonOptions {
    // Matches the lint runner: the replica netlists mirror nA-class
    // currents through long-channel devices and need gentle damping.
    NewtonOptions {
        max_iter: 800,
        max_step: 0.05,
        solver,
        ..NewtonOptions::default()
    }
}

fn inf_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "solution dimensions differ");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[test]
fn dcop_sparse_matches_dense_on_all_builder_netlists() {
    let tech = Technology::default();
    for (name, nl) in builder_netlists(&tech) {
        let dense = DcOperatingPoint::solve_with(&nl, &tech, &newton(SolverKind::Dense))
            .unwrap_or_else(|e| panic!("{name} dense dcop: {e:?}"));
        let sparse = DcOperatingPoint::solve_with(&nl, &tech, &newton(SolverKind::Sparse))
            .unwrap_or_else(|e| panic!("{name} sparse dcop: {e:?}"));
        let d = inf_diff(dense.solution(), sparse.solution());
        assert!(d <= TOL, "{name}: dcop sparse deviates by {d:e}");
    }
}

#[test]
fn dcop_dense_is_bitwise_deterministic() {
    let tech = Technology::default();
    for (name, nl) in builder_netlists(&tech) {
        let a = DcOperatingPoint::solve_with(&nl, &tech, &newton(SolverKind::Dense)).unwrap();
        let b = DcOperatingPoint::solve_with(&nl, &tech, &newton(SolverKind::Dense)).unwrap();
        for (i, (x, y)) in a.solution().iter().zip(b.solution()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{name}: dense unknown {i} not reproducible"
            );
        }
    }
}

#[test]
fn auto_resolves_to_sparse_bitwise_on_builder_netlists() {
    // Every builder netlist is above the auto threshold, so the default
    // solver must give bit-for-bit what an explicit sparse request gives
    // — pinning the resolver itself.
    let tech = Technology::default();
    for (name, nl) in builder_netlists(&tech) {
        let auto = DcOperatingPoint::solve_with(&nl, &tech, &newton(SolverKind::Auto)).unwrap();
        let sparse = DcOperatingPoint::solve_with(&nl, &tech, &newton(SolverKind::Sparse)).unwrap();
        for (i, (x, y)) in auto.solution().iter().zip(sparse.solution()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{name}: auto/sparse unknown {i} differs"
            );
        }
    }
}

#[test]
fn sweep_sparse_matches_dense_at_every_point() {
    let tech = Technology::default();
    for (name, nl) in builder_netlists(&tech) {
        let Some(src) = nl.elements().iter().find_map(|e| match e {
            Element::Vsource { name, .. } => Some(name.clone()),
            _ => None,
        }) else {
            continue;
        };
        let values: Vec<f64> = (0..11).map(|i| 0.05 + 0.01 * i as f64).collect();
        let dense = dc_sweep_with(&nl, &tech, &src, &values, &newton(SolverKind::Dense))
            .unwrap_or_else(|e| panic!("{name} dense sweep: {e:?}"));
        let sparse = dc_sweep_with(&nl, &tech, &src, &values, &newton(SolverKind::Sparse))
            .unwrap_or_else(|e| panic!("{name} sparse sweep: {e:?}"));
        for i in 0..values.len() {
            let d = inf_diff(dense.solution(i), sparse.solution(i));
            assert!(d <= TOL, "{name}: sweep point {i} deviates by {d:e}");
        }
    }
}

#[test]
fn transient_sparse_matches_dense_at_every_step() {
    let tech = Technology::default();
    for (name, nl) in builder_netlists(&tech) {
        let dt = suggest_dt(&nl, 1.0, 10);
        let run = |solver| {
            let opts = TranOptions {
                newton: newton(solver),
                ..TranOptions::new(50.0 * dt, dt)
            };
            Transient::run(&nl, &tech, &opts)
        };
        let dense = run(SolverKind::Dense).unwrap_or_else(|e| panic!("{name} dense tran: {e:?}"));
        let sparse = run(SolverKind::Sparse).unwrap_or_else(|e| panic!("{name} sparse tran: {e:?}"));
        assert_eq!(dense.len(), sparse.len(), "{name}: step counts differ");
        for i in 0..dense.len() {
            let d = inf_diff(dense.solution(i), sparse.solution(i));
            assert!(d <= TOL, "{name}: tran step {i} deviates by {d:e}");
        }
    }
}
