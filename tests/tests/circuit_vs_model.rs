//! Cross-verification: the analytic gate/block models against the
//! transistor-level `ulp-spice` simulator — the integration analogue of
//! experiment E10.

use ulp_analog::preamp::PreampDesign;
use ulp_device::Technology;
use ulp_num::interp::decade_sweep;
use ulp_spice::ac::AcResult;
use ulp_spice::dcop::DcOperatingPoint;
use ulp_spice::Waveform;
use ulp_stscl::vtc::SclBufferCircuit;
use ulp_stscl::SclParams;

fn tech() -> Technology {
    Technology::default()
}

#[test]
fn stscl_delay_law_holds_over_two_decades_in_spice() {
    let params = SclParams::default();
    for iss in [0.3e-9, 3e-9, 30e-9] {
        let circuit = SclBufferCircuit::build(&tech(), &params, iss, 0.6, Waveform::Dc(0.0));
        let spice = circuit.spice_delay(&tech()).expect("transient solves");
        let model = params.delay(iss);
        assert!(
            (spice / model - 1.0).abs() < 0.5,
            "iss {iss:e}: spice {spice:e} vs model {model:e}"
        );
    }
}

#[test]
fn stscl_power_is_exactly_the_programmed_current() {
    // The paper's predictability claim: the cell's entire supply current
    // is the tail current — no hidden leakage paths.
    let params = SclParams::default();
    for iss in [100e-12, 1e-9, 10e-9] {
        let circuit = SclBufferCircuit::build(&tech(), &params, iss, 0.6, Waveform::Dc(0.0));
        let idd = circuit.supply_current(&tech()).expect("dcop solves");
        assert!(
            (idd / iss - 1.0).abs() < 0.05,
            "iss {iss:e}: supply draws {idd:e}"
        );
    }
}

#[test]
fn stscl_swing_tracks_replica_over_three_decades() {
    let params = SclParams::default();
    for iss in [100e-12, 1e-9, 10e-9, 100e-9] {
        let circuit = SclBufferCircuit::build(&tech(), &params, iss, 0.6, Waveform::Dc(0.0));
        let swing = circuit.measured_swing(&tech()).expect("sweep solves");
        assert!(
            (swing - params.vsw).abs() < 0.2 * params.vsw,
            "iss {iss:e}: swing {swing}"
        );
    }
}

#[test]
fn preamp_spice_confirms_analytic_pole_zero_model() {
    let t = tech();
    let freqs = decade_sweep(1.0, 1e8, 10);
    for ic in [1e-9, 10e-9] {
        let mut bws = Vec::new();
        for decoupled in [false, true] {
            let d = PreampDesign::new(ic, decoupled);
            let (nl, out) = d.to_spice(&t, 1.0);
            let op = DcOperatingPoint::solve(&nl, &t).expect("biases");
            let ac = AcResult::run(&nl, &t, &op, &freqs).expect("AC solves");
            let bw_spice = ac.bandwidth_3db(out).expect("rolls off");
            let bw_model = d.bandwidth();
            assert!(
                bw_spice / bw_model > 0.3 && bw_spice / bw_model < 3.0,
                "ic {ic:e} dec {decoupled}: spice {bw_spice:e} vs model {bw_model:e}"
            );
            bws.push(bw_spice);
        }
        assert!(bws[1] > 2.0 * bws[0], "decoupling gain at {ic:e}");
    }
}

#[test]
fn spice_dc_gain_of_preamp_is_bias_independent() {
    // gm·RL constancy at transistor level: the gain of the spice preamp
    // half-circuit varies < 20 % over two decades of bias.
    let t = tech();
    let mut gains = Vec::new();
    for ic in [1e-9, 10e-9, 100e-9] {
        let d = PreampDesign::new(ic, true);
        let (nl, out) = d.to_spice(&t, 1.0);
        let op = DcOperatingPoint::solve(&nl, &t).expect("biases");
        let ac = AcResult::run(&nl, &t, &op, &[1.0]).expect("AC solves");
        gains.push(ac.phasor(out, 0).abs());
    }
    let max = gains.iter().cloned().fold(f64::MIN, f64::max);
    let min = gains.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max / min < 1.3, "gain spread {}x over two decades", max / min);
}
