//! Soundness of the interval circuit certifier, checked against the
//! concrete solvers it makes claims about:
//!
//! * the certified solution box must contain the concrete DC solution
//!   (dense *and* sparse path) for every builder netlist and for
//!   arbitrary random resistor ladders;
//! * `proved-nonsingular` must mean what it says: no die drawn from
//!   the certified PVT/mismatch box may ever produce
//!   [`SimError::Singular`], and every such die's solution must land
//!   inside the box;
//! * seeded-infeasible designs must be caught, feasible ones must not;
//! * the interval box variants of the electrical lints may only ever
//!   be *more* conservative than their point counterparts.

use proptest::prelude::*;
use rand::rngs::SplitMix64;
use ulp_device::load::PmosLoad;
use ulp_device::mismatch::MismatchRng;
use ulp_device::pvt::Corner;
use ulp_device::{Mosfet, Polarity, Technology};
use ulp_exec::Ensemble;
use ulp_spice::absint::{certify, Certified, CertifyOptions};
use ulp_spice::dcop::{DcOperatingPoint, NewtonOptions};
use ulp_spice::lint::{self, rule, LintConfig, LintContext};
use ulp_spice::mna::SolverKind;

use ulp_spice::{Netlist, SimError};

/// The damped Newton settings the lint driver uses for nA-class
/// replica loops — slow but robust, which is what a soundness sweep
/// wants.
fn damped(solver: SolverKind) -> NewtonOptions {
    NewtonOptions {
        max_iter: 800,
        max_step: 0.05,
        solver,
        ..NewtonOptions::default()
    }
}

fn assert_contained(name: &str, cert: &Certified, x: &[f64]) {
    let sol = cert.solution_box();
    assert_eq!(sol.len(), x.len(), "{name}: dimension mismatch");
    for (i, (&v, iv)) in x.iter().zip(sol).enumerate() {
        assert!(
            iv.contains(v),
            "{name}: unknown {i}: concrete {v} outside certified [{}, {}]",
            iv.lo(),
            iv.hi()
        );
    }
}

/// The STSCL buffer at the paper's design point (same fixture as the
/// crate-internal certifier tests).
fn stscl_cell(iss: f64, vsw: f64, vdd: f64) -> Netlist {
    let mut nl = Netlist::new();
    let vddn = nl.node("vdd");
    let inp = nl.node("inp");
    let inn = nl.node("inn");
    let outp = nl.node("outp");
    let outn = nl.node("outn");
    let cs = nl.node("cs");
    nl.vsource("VDD", vddn, Netlist::GROUND, vdd);
    nl.vsource("VINP", inp, Netlist::GROUND, 0.6);
    nl.vsource("VINN", inn, Netlist::GROUND, 0.6);
    let pair = Mosfet::new(Polarity::Nmos, 1e-6, 0.5e-6);
    nl.mosfet("M1", outn, inp, cs, Netlist::GROUND, pair);
    nl.mosfet("M2", outp, inn, cs, Netlist::GROUND, pair);
    nl.scl_load("RLP", vddn, outp, PmosLoad::new(vsw), iss);
    nl.scl_load("RLN", vddn, outn, PmosLoad::new(vsw), iss);
    nl.isource("ITAIL", cs, Netlist::GROUND, iss);
    nl
}

/// One die drawn from inside the certifier's qualification box: every
/// MOS gets Pelgrom-σ threshold/β shifts clamped to ±`k_sigma`σ, so
/// the drawn device provably lies inside the mismatch envelope the
/// certificate covers.
fn die_from_box(nl: &Netlist, tech: &Technology, k_sigma: f64, rng: &mut SplitMix64) -> Netlist {
    let mut out = nl.clone();
    let mut draws = MismatchRng::seed_from(rand::RngCore::next_u64(rng));
    out.map_mosfets(|dev| {
        let model = match dev.polarity {
            Polarity::Nmos => &tech.nmos,
            Polarity::Pmos => &tech.pmos,
        };
        let s_vt = MismatchRng::sigma_delta_vt(model, dev.w, dev.l);
        let s_beta = MismatchRng::sigma_delta_beta(model, dev.w, dev.l);
        let dvt = draws.standard_normal().clamp(-k_sigma, k_sigma) * s_vt;
        let dbeta = draws.standard_normal().clamp(-k_sigma, k_sigma) * s_beta;
        Mosfet {
            delta_vt: dev.delta_vt + dvt,
            delta_beta: dev.delta_beta + dbeta,
            ..*dev
        }
    });
    out
}

#[test]
fn builder_netlists_box_contains_dense_and_sparse_solutions() {
    let tech = Technology::default();
    for (name, nl) in ulp_bench::netlists::builder_netlists(&tech) {
        let cert = certify(&nl, &tech, &CertifyOptions::default()).unwrap();
        assert!(
            cert.proved_nonsingular(),
            "{name}: expected a proof, got {:?}",
            cert.verdict()
        );
        let dense = DcOperatingPoint::solve_with(&nl, &tech, &damped(SolverKind::Dense)).unwrap();
        assert_contained(&name, &cert, dense.solution());
        let sparse = DcOperatingPoint::solve_with(&nl, &tech, &damped(SolverKind::Sparse)).unwrap();
        assert_contained(&name, &cert, sparse.solution());
    }
}

#[test]
fn proved_nonsingular_means_no_die_is_singular() {
    // Randomized PVT/mismatch sweep on the exec engine: each trial
    // draws a corner, a junction temperature and a full set of
    // clamped mismatch shifts from inside the certified box, then
    // runs the concrete Newton/LU path. `proved-nonsingular` promises
    // that path never reports a singular matrix — and the certified
    // solution box must contain whatever solution it finds.
    let tech = Technology::default();
    let opts = CertifyOptions::default();
    for (name, nl) in ulp_bench::netlists::builder_netlists(&tech) {
        let cert = certify(&nl, &tech, &opts).unwrap();
        assert!(cert.proved_nonsingular(), "{name}: {:?}", cert.verdict());
        let results = Ensemble::new(48).seed(0x5EED).run(|ctx: &mut ulp_exec::TrialCtx| {
            let rng = ctx.rng();
            let corner = Corner::all()[(rand::RngCore::next_u64(rng) % 5) as usize];
            let span = opts.pvt.t_hi - opts.pvt.t_lo;
            let t = opts.pvt.t_lo + rand::Rng::gen::<f64>(rng) * span;
            let die_tech = tech.at_corner(corner).at_temperature(t);
            let die = die_from_box(&nl, &die_tech, opts.pvt.k_sigma, rng);
            match DcOperatingPoint::solve_with(&die, &die_tech, &damped(SolverKind::Dense)) {
                Ok(op) => Some(op.solution().to_vec()),
                Err(SimError::Singular { step, unknown, .. }) => {
                    panic!("certified netlist went singular at step {step} ({unknown})")
                }
                // Convergence is not part of the nonsingularity claim.
                Err(_) => None,
            }
        });
        for sol in results.into_iter().filter_map(|r| r.unwrap()) {
            assert_contained(&name, &cert, &sol);
        }
    }
}

#[test]
fn seeded_infeasible_designs_are_caught() {
    let tech = Technology::default();
    // Supply far below the proven minimum over the whole box.
    let starved = stscl_cell(1e-9, 0.2, 0.25);
    let cert = certify(&starved, &tech, &CertifyOptions::default()).unwrap();
    assert!(cert.proved_infeasible(), "starved supply must be caught");

    // 50 mV of swing into a next-stage gate: below the steering
    // requirement at every temperature in the box.
    let mut cascade = stscl_cell(1e-9, 0.05, 1.0);
    let outp = cascade.node("outp");
    let out2 = cascade.node("out2");
    let cs2 = cascade.node("cs2");
    let vddn = cascade.node("vdd");
    let pair = Mosfet::new(Polarity::Nmos, 1e-6, 0.5e-6);
    cascade.mosfet("M3", out2, outp, cs2, Netlist::GROUND, pair);
    cascade.scl_load("RL2", vddn, out2, PmosLoad::new(0.05), 1e-9);
    cascade.isource("ITAIL2", cs2, Netlist::GROUND, 1e-9);
    let cert = certify(&cascade, &tech, &CertifyOptions::default()).unwrap();
    assert!(cert.proved_infeasible(), "starved swing must be caught");

    // The paper's design point is feasible and must never be flagged.
    let good = stscl_cell(1e-9, 0.2, 1.0);
    let cert = certify(&good, &tech, &CertifyOptions::default()).unwrap();
    assert!(!cert.proved_infeasible(), "feasible design falsely flagged");
}

#[test]
fn box_lints_never_less_conservative_than_point_lints() {
    // The five (point rule → box rule) pairs: whenever the point lint
    // fires on the nominal die, the interval variant must fire too —
    // the point always lies inside the box.
    const PAIRS: [(&str, &str); 5] = [
        (rule::WEAK_INVERSION, rule::WEAK_INVERSION_BOX),
        (rule::SWING_COMPATIBILITY, rule::SWING_COMPATIBILITY_BOX),
        (rule::VDD_HEADROOM, rule::VDD_HEADROOM_BOX),
        (rule::MISMATCH_BUDGET, rule::MISMATCH_BUDGET_BOX),
        (rule::RC_TIME_STEP, rule::RC_TIME_STEP_BOX),
    ];
    let tech = Technology::default();
    let config = LintConfig::default();
    // Stressed variants of the buffer, each tripping different rules:
    // strong inversion (huge ISS), starved headroom, incompatible
    // swing, and a transient step far above the fastest RC.
    let mut cells = vec![
        ("strong", stscl_cell(1e-4, 0.2, 1.0)),
        ("starved", stscl_cell(1e-9, 0.2, 0.4)),
        ("narrow-swing", stscl_cell(1e-9, 0.02, 1.0)),
        ("nominal", stscl_cell(1e-9, 0.2, 1.0)),
    ];
    for (_, nl) in cells.iter_mut() {
        let outp = nl.node("outp");
        nl.capacitor("CL", outp, Netlist::GROUND, 1e-12);
    }
    let dt = 1e-3;
    for (label, nl) in &cells {
        let cx = LintContext::with_tech(nl, &tech).with_dt(dt);
        let point = lint::run_ctx(&cx, &config);
        let opts = CertifyOptions {
            dt: Some(dt),
            ..CertifyOptions::default()
        };
        let cert = certify(nl, &tech, &opts).unwrap();
        for (point_rule, box_rule) in PAIRS {
            let point_fired = point.diagnostics().iter().any(|d| d.rule == point_rule);
            let box_fired = cert.diagnostics().iter().any(|d| d.rule == box_rule);
            assert!(
                !point_fired || box_fired,
                "{label}: point rule `{point_rule}` fired but box rule \
                 `{box_rule}` did not — box variant less conservative"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole soundness property on arbitrary linear circuits:
    /// for any random resistor ladder (random stage count, random
    /// values, random extra shunts), the certified box contains the
    /// concrete solution from both linear-algebra paths.
    #[test]
    fn certified_box_contains_concrete_solution(
        seed in 0u64..5_000,
        stages in 2usize..12,
        vdd_mv in 100u32..1_800,
    ) {
        let tech = Technology::default();
        let mut rng = <SplitMix64 as rand::SeedableRng>::seed_from_u64(seed);
        fn draw(rng: &mut SplitMix64, lo: f64, hi: f64) -> f64 {
            lo + rand::Rng::gen::<f64>(rng) * (hi - lo)
        }
        let mut nl = Netlist::new();
        let top = nl.node("top");
        nl.vsource("V1", top, Netlist::GROUND, f64::from(vdd_mv) * 1e-3);
        let mut prev = top;
        for i in 0..stages {
            let n = nl.node(&format!("n{i}"));
            let r = draw(&mut rng, 10.0, 1e6);
            nl.resistor(&format!("R{i}"), prev, n, r);
            // Random shunts keep the topology from being a pure chain.
            if rand::Rng::gen::<bool>(&mut rng) {
                let rs = draw(&mut rng, 10.0, 1e6);
                nl.resistor(&format!("RS{i}"), n, Netlist::GROUND, rs);
            }
            prev = n;
        }
        let rt = draw(&mut rng, 10.0, 1e6);
        nl.resistor("RT", prev, Netlist::GROUND, rt);
        let cert = certify(&nl, &tech, &CertifyOptions::default()).unwrap();
        prop_assert!(cert.proved_nonsingular(), "{:?}", cert.verdict());
        for solver in [SolverKind::Dense, SolverKind::Sparse] {
            let op = DcOperatingPoint::solve_with(&nl, &tech, &damped(solver)).unwrap();
            let sol = cert.solution_box();
            prop_assert_eq!(sol.len(), op.solution().len());
            for (i, (&v, iv)) in op.solution().iter().zip(sol).enumerate() {
                prop_assert!(
                    iv.contains(v),
                    "seed {}: unknown {}: {} outside [{}, {}]",
                    seed, i, v, iv.lo(), iv.hi()
                );
            }
        }
    }
}
