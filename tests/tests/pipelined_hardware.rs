//! Cycle-accurate checks of the *latched* (pipelined) hardware: the
//! combinational views used by the fast paths must agree with what the
//! real Fig.-8 pipeline computes once its latency has elapsed.

use ulp_adc::encoder::Encoder;
use ulp_adc::AdcConfig;
use ulp_stscl::adder::PipelinedAdder;
use ulp_stscl::sim::ClockedSim;

/// Ideal encoder stimulus for code `n`.
fn stimulus(n: usize) -> (Vec<bool>, Vec<bool>) {
    let q = (n as f64 + 0.5) % 64.0;
    let signs: Vec<bool> = (0..32)
        .map(|i| {
            let rel = (q - i as f64).rem_euclid(64.0);
            rel > 0.0 && rel < 32.0
        })
        .collect();
    let fold = n / 32;
    let therm: Vec<bool> = (0..7).map(|k| fold > k).collect();
    (signs, therm)
}

#[test]
fn pipelined_encoder_settles_to_the_combinational_answer() {
    let e = Encoder::build(&AdcConfig::default());
    let latency = e.pipeline_latency();
    for n in [0usize, 31, 32, 63, 64, 127, 128, 200, 255] {
        let (s, t) = stimulus(n);
        let expected = e.encode(&s, &t);
        // Drive the latched netlist with the constant stimulus for the
        // structural latency; the outputs must then hold the same code
        // forever.
        let mut pi = Vec::with_capacity(39);
        pi.extend_from_slice(&s);
        pi.extend_from_slice(&t);
        let mut sim = ClockedSim::new(e.netlist());
        let mut settled_code = None;
        for cycle in 0..latency + 4 {
            let values = sim.step(&pi).expect("acyclic netlist");
            if cycle >= latency {
                let mut code = 0u16;
                for out in e.netlist().outputs() {
                    code = (code << 1) | values.get(*out) as u16;
                }
                match settled_code {
                    None => settled_code = Some(code),
                    Some(c) => assert_eq!(c, code, "output must hold steady after latency"),
                }
            }
        }
        assert_eq!(
            settled_code.expect("ran past latency"),
            expected,
            "pipeline vs combinational at code {n}"
        );
    }
}

#[test]
fn pipelined_encoder_throughput_one_sample_per_cycle() {
    // Stream a staircase of codes through the pipeline: after the fill,
    // a new valid code must emerge every cycle, each equal to the
    // combinational answer for the input presented `latency` cycles
    // earlier.
    let e = Encoder::build(&AdcConfig::default());
    let latency = e.pipeline_latency();
    let inputs: Vec<usize> = (0..40).map(|k| (k * 13 + 5) % 256).collect();
    let expected: Vec<u16> = inputs
        .iter()
        .map(|&n| {
            let (s, t) = stimulus(n);
            e.encode(&s, &t)
        })
        .collect();
    let mut sim = ClockedSim::new(e.netlist());
    let mut got = Vec::new();
    for cycle in 0..inputs.len() + latency {
        let n = inputs[cycle.min(inputs.len() - 1)];
        let (s, t) = stimulus(n);
        let mut pi = Vec::with_capacity(39);
        pi.extend_from_slice(&s);
        pi.extend_from_slice(&t);
        let values = sim.step(&pi).expect("acyclic netlist");
        if cycle >= latency {
            let mut code = 0u16;
            for out in e.netlist().outputs() {
                code = (code << 1) | values.get(*out) as u16;
            }
            got.push(code);
        }
    }
    // Per-sample streaming correctness needs *skew-balanced* pipelines;
    // our encoder's paths have unequal stage counts, so only inputs held
    // for ≥ latency cycles are guaranteed. Verify the steady-state tail
    // (the last input was held long enough).
    assert_eq!(
        *got.last().expect("streamed something"),
        *expected.last().expect("non-empty"),
        "steady-state tail must match"
    );
}

#[test]
fn pipelined_adder_streams_at_full_rate() {
    // The adder *is* skew-balanced (the wave-pipeline interface does the
    // balancing), so true one-word-per-cycle throughput holds.
    let adder = PipelinedAdder::build(24);
    let pairs: Vec<(u64, u64)> = (0..100u64)
        .map(|k| ((k * 7919) % (1 << 24), (k * 104729) % (1 << 24)))
        .collect();
    let sums = adder.stream(&pairs);
    assert_eq!(sums.len(), pairs.len());
    for ((a, b), s) in pairs.iter().zip(&sums) {
        assert_eq!(*s, (a + b) & 0xFF_FFFF);
    }
}
