//! Proves the sparse solver's steady-state loop is allocation-free.
//!
//! A counting global allocator wraps the system allocator; everything
//! runs in one `#[test]` so no concurrent test pollutes the counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use ulp_bench::netlists::builder_netlists;
use ulp_device::Technology;
use ulp_spice::dcop::{DcOperatingPoint, NewtonOptions};
use ulp_spice::mna::{AssembleMode, MnaWorkspace, SolverKind};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> usize {
    ALLOCS.load(Ordering::Relaxed)
}

/// Allocation count of `f`, minimised over a few repetitions: harness
/// threads (output capture, slow-test timers) allocate sporadically, and
/// any such interleaving only ever inflates a sample.
fn alloc_count(mut f: impl FnMut()) -> usize {
    (0..5)
        .map(|_| {
            let before = allocs();
            f();
            allocs() - before
        })
        .min()
        .expect("non-empty sample set")
}

#[test]
fn warm_sparse_workspace_loop_does_not_allocate() {
    let tech = Technology::default();
    let netlists = builder_netlists(&tech);
    let (_, nl) = netlists
        .iter()
        .find(|(n, _)| n == "scl-buffer-1n")
        .expect("builder netlist set changed");

    // Part 1: the restamp → refactor → solve cycle on a warm workspace
    // performs zero heap allocations.
    let mut ws = MnaWorkspace::new(nl, SolverKind::Sparse);
    assert!(ws.is_sparse(), "scl buffer should resolve sparse");
    let x = vec![0.2; nl.unknown_count()];
    let mut out = Vec::with_capacity(nl.unknown_count());
    for _ in 0..3 {
        ws.assemble(nl, &tech, &x, AssembleMode::Dc, 1e-12);
        std::hint::black_box(ws.residual_inf(&x));
        ws.factor().expect("factor");
        ws.solve_into(&mut out).expect("solve");
    }
    let grew = alloc_count(|| {
        for _ in 0..256 {
            ws.assemble(nl, &tech, &x, AssembleMode::Dc, 1e-12);
            std::hint::black_box(ws.residual_inf(&x));
            ws.factor().expect("factor");
            ws.solve_into(&mut out).expect("solve");
        }
    });
    assert_eq!(grew, 0, "warm sparse loop allocated {grew} times");

    // Part 2: a full operating-point solve allocates a fixed amount of
    // setup regardless of how many Newton iterations it runs — i.e. the
    // iteration loop itself is allocation-free. A loose tolerance stops
    // in a handful of iterations; a tight one runs substantially more.
    let solve = |vtol: f64| {
        let opts = NewtonOptions {
            max_iter: 800,
            max_step: 0.05,
            vtol,
            solver: SolverKind::Sparse,
            ..NewtonOptions::default()
        };
        alloc_count(|| {
            let op = DcOperatingPoint::solve_with(nl, &tech, &opts).expect("dcop");
            std::hint::black_box(op);
        })
    };
    // Warm shared caches (ERC memoisation) outside the measurement.
    solve(1e-6);
    let loose = solve(1e-3);
    let tight = solve(1e-11);
    assert_eq!(
        loose, tight,
        "allocation count depends on iteration count (loose {loose}, tight {tight})"
    );
}
