//! Model-checking the `ulp-exec` scheduling core end-to-end: the
//! bounded schedule explorer drives the shipped `pool::deal` /
//! `pool::worker_loop` / `WorkDeque` / `CancelToken` code through the
//! `Virtual` sync provider, asserting the determinism contract on every
//! schedule — and asserting that deliberately re-broken variants are
//! caught and rendered into SARIF.

use ulp_check::{explore, Config, Fault, PoolModel};
use ulp_spice::lint::rule;
use ulp_spice::sarif;

/// The headline guarantee: every schedule of a 2-worker/4-trial
/// campaign with at most 2 preemptions gathers results bit-identical to
/// the serial reference.
#[test]
fn healthy_pool_is_clean_on_every_bound2_schedule() {
    let model = PoolModel::healthy(2, 4, 0xD15EA5E);
    let report = explore(&Config::exhaustive(2), &model);
    assert!(
        report.is_clean(),
        "determinism contract violated:\n{}",
        report.to_erc().render()
    );
    assert!(!report.truncated, "bound-2 frontier must be exhaustible");
    // The frontier is real: hundreds of distinct interleavings, not a
    // handful of near-identical replays.
    assert!(report.schedules > 100, "only {} schedules", report.schedules);
}

/// A lopsided deal (everything in one deque) forces stealing on every
/// schedule; stealing must not break the contract either.
#[test]
fn three_workers_with_forced_stealing_stay_clean() {
    let model = PoolModel::healthy(3, 5, 42);
    let report = explore(&Config::exhaustive(1), &model);
    assert!(report.is_clean(), "{}", report.to_erc().render());
}

/// Acceptance: the vector-clock auditor detects the seeded race in the
/// deliberately-broken (lockless-deque) pool variant, and the SARIF
/// rendering carries the `race` rule for `results/lint/`.
#[test]
fn racy_deque_variant_is_flagged_with_sarif_race_diagnostic() {
    let model = PoolModel::healthy(2, 4, 7).with_fault(Fault::RacyDeque);
    let report = explore(&Config::exhaustive(2), &model);
    assert!(report.has_rule(rule::RACE), "{report:?}");
    let sarif_log = report.to_sarif("exec/pool-model");
    assert!(
        sarif_log.contains("\"ruleId\": \"race\""),
        "SARIF must carry the race diagnostic"
    );
    // The log is machine-valid for the downstream lint pipeline.
    let parsed = sarif::parse_json(&sarif_log).expect("valid SARIF JSON");
    assert_eq!(
        parsed
            .get("runs")
            .and_then(|r| r.idx(0))
            .and_then(|r| r.get("tool"))
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("name"))
            .and_then(|n| n.as_str()),
        Some(sarif::TOOL_NAME)
    );
}

/// A fold that consumes completion order instead of index order leaks
/// the schedule into an output and is flagged.
#[test]
fn completion_order_fold_is_flagged() {
    let model = PoolModel::healthy(2, 4, 3).with_fault(Fault::CompletionOrderFold);
    let report = explore(&Config::exhaustive(1), &model);
    assert!(report.has_rule(rule::NON_DETERMINISTIC_FOLD), "{report:?}");
}

/// Cancellation contract under the explorer: wherever the schedule
/// places the cancel — mid-steal, mid-trial, before anything —
/// every slot holds either the bit-identical value or a clean Cancelled
/// marker. Never a hole, never a partial merge.
#[test]
fn cancellation_is_clean_at_every_explored_point() {
    let model = PoolModel::cancelling(2, 4, 0xFACE);
    let report = explore(&Config::exhaustive(1), &model);
    assert!(report.is_clean(), "{}", report.to_erc().render());
    assert!(report.schedules > 50, "cancel placement barely explored");
}

/// The dropped-record regression (check cancellation after computing,
/// drop the result) leaves holes in the gather on some schedule and is
/// flagged as lost-cancel.
#[test]
fn dropped_cancel_result_is_flagged_as_lost_cancel() {
    let model = PoolModel::healthy(2, 4, 0xFACE).with_fault(Fault::DroppedCancelResult);
    let report = explore(&Config::exhaustive(1), &model);
    assert!(report.has_rule(rule::LOST_CANCEL), "{report:?}");
}

/// The explorer itself is deterministic: identical config, identical
/// report — schedule counts, findings, hit counts, byte-identical
/// SARIF.
#[test]
fn reports_are_reproducible() {
    let model = PoolModel::healthy(2, 4, 11).with_fault(Fault::RacyDeque);
    let a = explore(&Config::exhaustive(1), &model);
    let b = explore(&Config::exhaustive(1), &model);
    assert_eq!(a, b);
    assert_eq!(a.to_sarif("exec/pool-model"), b.to_sarif("exec/pool-model"));
}

/// Random-walk mode (CI smoke at higher bounds) is seeded and
/// reproducible, and stays clean on the healthy pool.
#[test]
fn random_walk_mode_is_seeded_and_clean() {
    let model = PoolModel::healthy(3, 6, 2026);
    let cfg = Config::walk(3, 0xC0FFEE, 32);
    let a = explore(&cfg, &model);
    assert!(a.is_clean(), "{}", a.to_erc().render());
    assert_eq!(a.schedules, 32);
    assert_eq!(a, explore(&cfg, &model));
}

/// The concurrency rules are registered in the shared lint catalogue,
/// so SARIF readers see them in the tool's rule list too.
#[test]
fn concurrency_rules_live_in_the_lint_registry() {
    use ulp_spice::lint::{LintGroup, REGISTRY};
    for code in [
        rule::RACE,
        rule::NON_DETERMINISTIC_FOLD,
        rule::LOST_CANCEL,
        rule::SCHEDULE_DEADLOCK,
    ] {
        let entry = REGISTRY
            .iter()
            .find(|l| l.code == code)
            .unwrap_or_else(|| panic!("{code} missing from lint REGISTRY"));
        assert_eq!(entry.group, LintGroup::Concurrency);
    }
}
