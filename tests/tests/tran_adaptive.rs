//! Adaptive-vs-reference transient equivalence, PR 5 style: the
//! fixed-step path is the accuracy oracle, and the LTE-controlled
//! adaptive engine must reproduce it within an explicit error bound on
//! every shipped workload — the six builder netlists under the
//! multi-scale pulse stimulus the solver benchmark times, plus both
//! `examples/*.ulp` designs driven by their own `.tran` cards.
//!
//! Also pinned here: byte-identical adaptive results at 1 and 4
//! workers on the `ulp-exec` engine, rejection-path coverage through a
//! step-discontinuity stimulus, and a property test that tightening
//! tolerances never loses accuracy.

use proptest::prelude::*;
use std::path::PathBuf;
use ulp_bench::netlists::{builder_netlists, pulsed_tran_netlist};
use ulp_device::Technology;
use ulp_exec::Ensemble;
use ulp_ir::{flatten, parse};
use ulp_spice::dcop::NewtonOptions;
use ulp_spice::mna::SolverKind;
use ulp_spice::netlist::Waveform;
use ulp_spice::telemetry::{MetricsCollector, TraceMode};
use ulp_spice::tran::{suggest_dt, AdaptiveOptions, TranOptions, Transient};
use ulp_spice::Netlist;

/// Every adaptive run must land within this distance of the tight
/// fixed-step reference, on every unknown at every reference time.
const BOUND: f64 = 2e-3;

fn newton(solver: SolverKind) -> NewtonOptions {
    // Matches the lint runner: the replica netlists mirror nA-class
    // currents through long-channel devices and need gentle damping.
    NewtonOptions {
        max_iter: 800,
        max_step: 0.05,
        solver,
        ..NewtonOptions::default()
    }
}

/// Linear interpolation of unknown `j` of a transient at time `t`.
fn sample(tr: &Transient, j: usize, t: f64) -> f64 {
    let times = tr.time();
    let k = times.partition_point(|&ti| ti < t);
    if k == 0 {
        return tr.solution(0)[j];
    }
    if k >= times.len() {
        return tr.solution(times.len() - 1)[j];
    }
    let (t0, t1) = (times[k - 1], times[k]);
    let (a, b) = (tr.solution(k - 1)[j], tr.solution(k)[j]);
    if t1 > t0 {
        a + (b - a) * (t - t0) / (t1 - t0)
    } else {
        b
    }
}

/// Worst absolute deviation of `run` from `reference` over every
/// reference time point and every unknown.
fn max_dev(run: &Transient, reference: &Transient) -> f64 {
    let dim = reference.solution(0).len();
    let mut worst = 0.0f64;
    for (i, &ti) in reference.time().iter().enumerate() {
        let want = reference.solution(i);
        for (j, &w) in want.iter().enumerate().take(dim) {
            let d = (sample(run, j, ti) - w).abs();
            if d > worst {
                worst = d;
            }
        }
    }
    worst
}

#[test]
fn adaptive_meets_the_bound_on_all_builder_netlists() {
    let tech = Technology::default();
    for (name, nl) in builder_netlists(&tech) {
        let tau = suggest_dt(&nl, 1.0, 0);
        let t_stop = 50.0 * tau;
        let driven = pulsed_tran_netlist(&nl, tau);

        let reference_opts = TranOptions {
            newton: newton(SolverKind::Sparse),
            ..TranOptions::new(t_stop, tau / 50.0).trapezoidal()
        };
        let reference =
            Transient::run(&driven, &tech, &reference_opts).unwrap_or_else(|e| panic!("{name}: reference tran: {e:?}"));

        let mut opts = AdaptiveOptions::new(t_stop, tau);
        opts.newton = newton(SolverKind::Sparse);
        let adaptive = Transient::run_adaptive(&driven, &tech, &opts)
            .unwrap_or_else(|e| panic!("{name}: adaptive tran: {e:?}"));

        let dev = max_dev(&adaptive, &reference);
        assert!(dev < BOUND, "{name}: adaptive deviates {dev:e} from the oracle");
        assert!(
            adaptive.len() * 3 < reference.len(),
            "{name}: adaptive took {} points, expected far fewer than the {}-point reference",
            adaptive.len(),
            reference.len()
        );
    }
}

fn examples_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../examples")
}

#[test]
fn adaptive_meets_the_bound_on_both_ulp_examples() {
    let tech = Technology::default();
    let mut checked = 0;
    for name in ["scl_buffer", "comp_doubletail"] {
        let text = std::fs::read_to_string(examples_dir().join(format!("{name}.ulp")))
            .expect("read example");
        let design = parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let card = design
            .tran
            .as_ref()
            .unwrap_or_else(|| panic!("{name}: example must carry a .tran card"));
        let nl = flatten(&design).unwrap_or_else(|e| panic!("{name}: {e}"));

        let dt_max = card.t_stop / 10.0;
        let dt_max = card.dt_max.unwrap_or(dt_max);
        let reference_opts = TranOptions {
            newton: newton(SolverKind::Sparse),
            ..TranOptions::new(card.t_stop, card.t_stop / 2000.0).trapezoidal()
        };
        let reference = Transient::run(&nl, &tech, &reference_opts)
            .unwrap_or_else(|e| panic!("{name}: reference tran: {e:?}"));

        let mut opts = AdaptiveOptions::new(card.t_stop, dt_max);
        opts.newton = newton(SolverKind::Sparse);
        let adaptive = Transient::run_adaptive(&nl, &tech, &opts)
            .unwrap_or_else(|e| panic!("{name}: adaptive tran: {e:?}"));

        let dev = max_dev(&adaptive, &reference);
        assert!(dev < BOUND, "{name}: adaptive deviates {dev:e} from the oracle");
        checked += 1;
    }
    assert_eq!(checked, 2);
}

#[test]
fn adaptive_is_byte_identical_across_worker_counts() {
    // Each trial runs the full adaptive engine on one builder netlist;
    // the result bits must not depend on the worker count.
    let run_campaign = |jobs: usize| -> Vec<Vec<u64>> {
        let tech = Technology::default();
        let netlists = builder_netlists(&tech);
        let n = netlists.len();
        Ensemble::new(n)
            .jobs(jobs)
            .run(move |ctx: &mut ulp_exec::TrialCtx| {
                let (_, nl) = &netlists[ctx.index()];
                let tau = suggest_dt(nl, 1.0, 0);
                let driven = pulsed_tran_netlist(nl, tau);
                let mut opts = AdaptiveOptions::new(50.0 * tau, tau);
                opts.newton = newton(SolverKind::Sparse);
                let tr = Transient::run_adaptive(&driven, &tech, &opts).expect("adaptive tran");
                let mut bits: Vec<u64> = tr.time().iter().map(|t| t.to_bits()).collect();
                for i in 0..tr.len() {
                    bits.extend(tr.solution(i).iter().map(|v| v.to_bits()));
                }
                bits
            })
            .into_iter()
            .map(|r| r.expect("trial"))
            .collect()
    };
    let serial = run_campaign(1);
    let parallel = run_campaign(4);
    assert_eq!(serial, parallel, "adaptive results depend on ULP_JOBS");
}

#[test]
fn step_discontinuity_exercises_the_rejection_path() {
    // An RC node driven by an incommensurate sine after a hard step:
    // the controller must overshoot and reject at least once, and the
    // result must still meet the bound.
    let tech = Technology::default();
    let mut nl = Netlist::new();
    let inp = nl.node("in");
    let out = nl.node("out");
    nl.vsource_wave(
        "V1",
        inp,
        Netlist::GROUND,
        Waveform::Sine {
            offset: 0.5,
            amp: 0.4,
            freq: 2.3e3,
            delay: 0.0,
        },
    );
    nl.resistor("R1", inp, out, 1e3);
    nl.capacitor("C1", out, Netlist::GROUND, 1e-6);
    nl.isource_wave(
        "IST",
        Netlist::GROUND,
        out,
        Waveform::Pulse {
            v0: 0.0,
            v1: 2e-4,
            delay: 2e-3,
            rise: 1e-9,
            fall: 1e-9,
            width: 1.0,
            period: 0.0,
        },
    );
    let t_stop = 5e-3;
    let mut opts = AdaptiveOptions::new(t_stop, 1e-3);
    // Open at the cap so the controller has to discover the sine's
    // curvature (and the post-step restart) by rejecting.
    opts.dt_init = opts.dt_max;
    let mut mc = MetricsCollector::new(TraceMode::Summary);
    let adaptive = Transient::run_adaptive_traced(&nl, &tech, &opts, &mut mc).unwrap();
    assert!(
        mc.metrics().tran_rejected > 0,
        "no rejected steps on the discontinuous stimulus"
    );

    let reference_opts = TranOptions::new(t_stop, t_stop / 5000.0).trapezoidal();
    let reference = Transient::run(&nl, &tech, &reference_opts).unwrap();
    let dev = max_dev(&adaptive, &reference);
    assert!(dev < BOUND, "adaptive deviates {dev:e} after rejections");
}

/// Shared RC fixture for the tolerance-monotonicity property.
fn rc_fixture() -> (Netlist, f64) {
    let mut nl = Netlist::new();
    let inp = nl.node("in");
    let out = nl.node("out");
    nl.vsource_wave(
        "V1",
        inp,
        Netlist::GROUND,
        Waveform::Sine {
            offset: 0.5,
            amp: 0.4,
            freq: 1.7e3,
            delay: 0.0,
        },
    );
    nl.resistor("R1", inp, out, 1e3);
    nl.capacitor("C1", out, Netlist::GROUND, 1e-6);
    (nl, 3e-3)
}

fn adaptive_error(nl: &Netlist, t_stop: f64, reltol: f64, abstol: f64, reference: &Transient) -> f64 {
    let tech = Technology::default();
    let opts = AdaptiveOptions::new(t_stop, 2e-4).tolerances(reltol, abstol);
    let tr = Transient::run_adaptive(nl, &tech, &opts).expect("adaptive tran");
    max_dev(&tr, reference)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Halving both tolerances never increases the worst deviation
    /// from the tight fixed-step oracle (1.05x slack for the floor
    /// where both runs bottom out on interpolation error).
    #[test]
    fn halving_tolerances_never_increases_error(exp in 0u32..6, frac in 1.0f64..2.0) {
        let (nl, t_stop) = rc_fixture();
        let tech = Technology::default();
        let reference_opts = TranOptions::new(t_stop, t_stop / 5000.0).trapezoidal();
        let reference = Transient::run(&nl, &tech, &reference_opts).expect("reference tran");

        let reltol = frac * 1e-2 / f64::powi(2.0, exp as i32);
        let abstol = reltol * 1e-3;
        let coarse = adaptive_error(&nl, t_stop, reltol, abstol, &reference);
        let fine = adaptive_error(&nl, t_stop, reltol / 2.0, abstol / 2.0, &reference);
        prop_assert!(
            fine <= coarse * 1.05 + 1e-9,
            "tightening tolerances from {reltol:e} increased error: {coarse:e} -> {fine:e}"
        );
    }
}
