//! End-to-end integration: the whole platform driven the way a user
//! would drive it — PMU resolves an operating point, the converter is
//! retuned, data is captured and measured — spanning every crate in the
//! workspace.

use ulp_adc::metrics::{ramp_linearity, sine_test};
use ulp_adc::{AdcConfig, FaiAdc};
use ulp_device::Technology;
use ulp_pmu::fll::FrequencyLockedLoop;
use ulp_pmu::PlatformController;
use ulp_stscl::SclParams;

#[test]
fn full_platform_at_both_rate_endpoints() {
    let tech = Technology::default();
    let pmu = PlatformController::paper_prototype();
    let mut adc = FaiAdc::with_mismatch(&tech, &AdcConfig::default(), 404);

    for fs in [800.0, 80e3] {
        let op = pmu.apply(&mut adc, fs);
        // The converter must actually be fast enough at the resolved
        // bias.
        assert!(
            adc.max_sampling_rate(&tech) >= fs,
            "front end too slow at {fs} S/s"
        );
        // Conversion quality holds at both endpoints.
        let lin = ramp_linearity(&adc, 256 * 32).expect("dense ramp");
        assert!(lin.inl_max < 3.0, "INL at {fs}: {}", lin.inl_max);
        assert!(lin.dnl_max < 1.5, "DNL at {fs}: {}", lin.dnl_max);
        // Power split sanity: digital is the small partner (measured
        // chip: ~5 %).
        let frac = op.power.digital / op.power.total;
        assert!(frac < 0.2, "digital fraction at {fs}: {frac}");
    }
}

#[test]
fn paper_headline_numbers_reproduced() {
    let pmu = PlatformController::paper_prototype();
    let hi = pmu.operating_point(80e3);
    let lo = pmu.operating_point(800.0);
    // §III-C: 4 µW and 44 nW class, 100× apart, digital 2 nW → 200 nW.
    assert!(hi.power.total > 1e-6 && hi.power.total < 16e-6);
    assert!(lo.power.total > 10e-9 && lo.power.total < 176e-9);
    assert!((hi.power.total / lo.power.total - 100.0).abs() < 10.0);
    assert!(hi.power.digital > 50e-9 && hi.power.digital < 800e-9);
    assert!(lo.power.digital > 0.5e-9 && lo.power.digital < 8e-9);
}

#[test]
fn enob_in_paper_class_with_mismatch_and_noise() {
    let tech = Technology::default();
    let adc = FaiAdc::with_mismatch(&tech, &AdcConfig::default(), 31);
    let d = sine_test(&adc, 4096, 67, 80e3).expect("coherent capture");
    // Paper: ENOB 6.5. Our model (no clock jitter / dynamic distortion)
    // sits slightly above; anything in 5.5–8 is the right class.
    assert!(d.enob > 5.5 && d.enob < 8.0, "ENOB = {}", d.enob);
    assert!(d.sndr_db > 35.0);
}

#[test]
fn fll_bias_actually_drives_the_encoder_fast_enough() {
    // Close the loop end-to-end: lock the FLL to the sample clock, feed
    // the acquired bias to the encoder netlist, check timing.
    let params = SclParams::default();
    let encoder = ulp_adc::encoder::Encoder::build(&AdcConfig::default());
    let f_clk = 80e3;
    let mut fll = FrequencyLockedLoop::new(params, 5, 1e-12, 0.5);
    fll.acquire(f_clk * 4.5, 1e-4, 500).expect("loop locks");
    let fmax = ulp_stscl::sim::max_frequency(encoder.netlist(), &params, fll.bias())
        .expect("acyclic netlist");
    assert!(
        fmax >= f_clk,
        "FLL-acquired bias must close encoder timing: fmax {fmax} < {f_clk}"
    );
}

#[test]
fn mismatch_instances_are_reproducible_and_distinct() {
    let tech = Technology::default();
    let cfg = AdcConfig::default();
    let a1 = FaiAdc::with_mismatch(&tech, &cfg, 9);
    let a2 = FaiAdc::with_mismatch(&tech, &cfg, 9);
    let b = FaiAdc::with_mismatch(&tech, &cfg, 10);
    let probe: Vec<f64> = (0..64).map(|k| 0.21 + k as f64 * 0.012).collect();
    let codes1: Vec<u16> = probe.iter().map(|&v| a1.convert(v)).collect();
    let codes2: Vec<u16> = probe.iter().map(|&v| a2.convert(v)).collect();
    let codes3: Vec<u16> = probe.iter().map(|&v| b.convert(v)).collect();
    assert_eq!(codes1, codes2, "same seed, same die");
    assert_ne!(codes1, codes3, "different seed, different die");
}

#[test]
fn six_bit_variant_works_end_to_end() {
    // The paper targets "6 to 8 bit" converters; check the other end of
    // the geometry envelope.
    let cfg = AdcConfig {
        resolution: 6,
        coarse_bits: 2,
        folders: 4,
        interpolation: 4,
        ..AdcConfig::default()
    };
    let adc = FaiAdc::ideal(&cfg);
    let lsb = cfg.lsb();
    for n in 0..64usize {
        let vin = cfg.v_low + (n as f64 + 0.5) * lsb;
        let code = adc.convert(vin);
        assert!(
            (code as i64 - n as i64).abs() <= 1,
            "6-bit: code {code} for bucket {n}"
        );
    }
}
