//! End-to-end pipeline tests over the shipped `examples/*.ulp`
//! designs: parse → serialize round-trip → flatten → ERC → certify →
//! DC solve, plus deterministic sweep expansion on the `ulp-exec`
//! engine with byte-identical ledgers at 1 and 4 workers.

use std::path::PathBuf;
use ulp_device::Technology;
use ulp_exec::Ensemble;
use ulp_ir::{flatten, parse, SweepPlan};
use ulp_spice::absint::{self, CertifyOptions};
use ulp_spice::dcop::{DcOperatingPoint, NewtonOptions};

fn examples_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../examples")
}

fn example_sources() -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = std::fs::read_dir(examples_dir())
        .expect("examples dir")
        .filter_map(|e| {
            let path = e.expect("dir entry").path();
            (path.extension().is_some_and(|x| x == "ulp")).then(|| {
                let name = path.file_stem().unwrap().to_string_lossy().into_owned();
                let text = std::fs::read_to_string(&path).expect("read example");
                (name, text)
            })
        })
        .collect();
    out.sort();
    assert!(
        out.iter().any(|(n, _)| n == "scl_buffer"),
        "examples/scl_buffer.ulp must ship"
    );
    assert!(
        out.iter().any(|(n, _)| n == "comp_doubletail"),
        "examples/comp_doubletail.ulp must ship"
    );
    out
}

/// The conservative damping the replica-class drivers use for nA-level
/// subthreshold bias points.
fn damped() -> NewtonOptions {
    NewtonOptions {
        max_iter: 800,
        max_step: 0.05,
        ..NewtonOptions::default()
    }
}

#[test]
fn every_example_round_trips_through_the_serializer() {
    for (name, text) in example_sources() {
        let design = parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let canon = design.to_text();
        let reparsed = parse(&canon).unwrap_or_else(|e| panic!("{name} (canonical): {e}"));
        assert_eq!(design, reparsed, "{name}: round-trip mismatch");
        // The canonical form is a fixed point: serializing again is
        // byte-identical.
        assert_eq!(canon, reparsed.to_text(), "{name}: serializer not stable");
    }
}

#[test]
fn every_example_flattens_ercs_certifies_and_solves() {
    let tech = Technology::nominal();
    for (name, text) in example_sources() {
        let design = parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let nl = flatten(&design).unwrap_or_else(|e| panic!("{name}: {e}"));
        ulp_spice::erc::gate(&nl).unwrap_or_else(|e| panic!("{name}: ERC: {e}"));
        let cert = absint::certify(&nl, &tech, &CertifyOptions::default())
            .unwrap_or_else(|e| panic!("{name}: certify: {e}"));
        // The buffer is a pure source-coupled stage and must admit the
        // structural proof. The comparator's cross-coupled latch breaks
        // the Z-pattern every proof method needs, so its honest verdict
        // is Unproven — which the certifier itself documents as "not a
        // defect". Pin both so a regression in either direction trips.
        if name == "comp_doubletail" {
            assert!(
                !cert.proved_nonsingular(),
                "{name}: cross-coupled latch unexpectedly proved — update this gate"
            );
        } else {
            assert!(
                cert.proved_nonsingular(),
                "{name}: certifier could not prove nonsingularity"
            );
        }
        assert!(!cert.proved_infeasible(), "{name}: proved infeasible");
        let op = DcOperatingPoint::solve_with(&nl, &tech, &damped())
            .unwrap_or_else(|e| panic!("{name}: dcop: {e}"));
        // Every unknown (node voltage and branch current) must be finite.
        for (i, v) in op.solution().iter().enumerate() {
            assert!(v.is_finite(), "{name}: unknown {i} is non-finite");
        }
    }
}

#[test]
fn comparator_reset_phase_pins_the_expected_levels() {
    let tech = Technology::nominal();
    let text = std::fs::read_to_string(examples_dir().join("comp_doubletail.ulp")).unwrap();
    let nl = flatten(&parse(&text).unwrap()).unwrap();
    let op = DcOperatingPoint::solve_with(&nl, &tech, &damped()).unwrap();
    let v = |name: &str| op.voltage(nl.find_node(name).expect(name));
    let vdd = v("vdd");
    // Reset phase: precharge PMOS on, so the stage-1 mids sit near VDD;
    // the coupling NMOS are then on, holding both outputs near ground.
    assert!(v("X1.midp") > 0.8 * vdd, "midp = {}", v("X1.midp"));
    assert!(v("X1.midn") > 0.8 * vdd, "midn = {}", v("X1.midn"));
    assert!(v("outp") < 0.2 * vdd, "outp = {}", v("outp"));
    assert!(v("outn") < 0.2 * vdd, "outn = {}", v("outn"));
}

#[test]
fn sweeps_run_identically_at_one_and_four_workers() {
    for (name, text) in example_sources() {
        let design = parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let plan = SweepPlan::build(&design).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(plan.len() > 1, "{name}: sweep should expand to a grid");

        let run = |jobs: usize| {
            let plan = plan.clone();
            let (results, report) = Ensemble::new(plan.len())
                .seed(20260808)
                .jobs(jobs)
                .label(&format!("ir-sweep-{name}"))
                .run_with_report(move |ctx: &mut ulp_exec::TrialCtx| {
                    let point = plan.point(ctx.index());
                    let tech = point.tech.technology();
                    let op = DcOperatingPoint::solve_with(&point.netlist, &tech, &damped())
                        .expect("sweep point must solve");
                    // A deterministic per-point fingerprint: the label
                    // plus every unknown's bit pattern.
                    let mut fp = point.label();
                    for v in op.solution() {
                        fp.push_str(&format!(",{:016x}", v.to_bits()));
                    }
                    fp
                });
            let values: Vec<String> = results.into_iter().map(|r| r.unwrap()).collect();
            (values, report.counters_json())
        };

        let (serial, ledger1) = run(1);
        let (parallel, ledger4) = run(4);
        assert_eq!(serial, parallel, "{name}: sweep results depend on jobs");
        assert_eq!(ledger1, ledger4, "{name}: ledger bytes depend on jobs");
    }
}
