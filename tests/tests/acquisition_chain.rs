//! Full acquisition chain: track-and-hold → converter, both biased by
//! the shared PMU — the complete signal path a deployed system uses.

use ulp_adc::metrics::dynamics_from_codes;
use ulp_adc::{AdcConfig, FaiAdc};
use ulp_analog::sample_hold::SampleHold;
use ulp_device::Technology;
use ulp_pmu::PlatformController;

/// Samples a sine through the T/H then converts, cycle-accurately.
fn acquire(
    tech: &Technology,
    adc: &FaiAdc,
    th: &SampleHold,
    fs: f64,
    f_in: f64,
    n: usize,
) -> Vec<u16> {
    let cfg = adc.config();
    let amp = 0.49 * (cfg.v_high - cfg.v_low);
    let t_track = 0.5 / fs;
    let mut held = cfg.mid_scale();
    (0..n)
        .map(|k| {
            let t = k as f64 / fs;
            let vin = cfg.mid_scale() + amp * (2.0 * std::f64::consts::PI * f_in * t).sin();
            held = th.sample(tech, held, vin, t_track);
            adc.convert_behavioural(held - th.droop(0.5 / fs))
        })
        .collect()
}

#[test]
fn properly_biased_th_preserves_enob() {
    let tech = Technology::default();
    let pmu = PlatformController::paper_prototype();
    let mut adc = FaiAdc::ideal(&AdcConfig::default());
    let fs = 80e3;
    pmu.apply(&mut adc, fs);
    let cfg = *adc.config();
    // Size the T/H bias for half-LSB settling at this rate.
    let lsb = cfg.lsb();
    let bias = SampleHold::bias_for_error(&tech, 1e-12, fs, cfg.v_high - cfg.v_low, 0.5 * lsb)
        .expect("target reachable");
    let th = SampleHold::new(1e-12, bias);
    let n = 4096;
    let cycles = 67;
    let f_in = cycles as f64 * fs / n as f64;
    let codes = acquire(&tech, &adc, &th, fs, f_in, n);
    let d = dynamics_from_codes(&codes, cycles).expect("coherent record");
    assert!(d.enob > 7.0, "T/H must not cost resolution: ENOB {}", d.enob);
}

#[test]
fn starved_th_destroys_resolution() {
    // The negative control: a T/H biased 100× too lean cannot settle
    // within the track phase and the chain's ENOB collapses — this is
    // exactly why the T/H must join the PMU's scaling.
    let tech = Technology::default();
    let adc = FaiAdc::ideal(&AdcConfig::default());
    let fs = 80e3;
    let cfg = *adc.config();
    let lsb = cfg.lsb();
    let good_bias =
        SampleHold::bias_for_error(&tech, 1e-12, fs, cfg.v_high - cfg.v_low, 0.5 * lsb)
            .expect("target reachable");
    let th = SampleHold::new(1e-12, good_bias / 100.0);
    let n = 4096;
    let cycles = 67;
    let f_in = cycles as f64 * fs / n as f64;
    let codes = acquire(&tech, &adc, &th, fs, f_in, n);
    let d = dynamics_from_codes(&codes, cycles).expect("coherent record");
    assert!(
        d.enob < 5.0,
        "a starved T/H must visibly hurt: ENOB {}",
        d.enob
    );
}

#[test]
fn th_bias_scales_with_rate_like_everything_else() {
    // At 800 S/s the same half-LSB target needs ~100× less T/H current —
    // the whole chain scales coherently under the one knob.
    let tech = Technology::default();
    let cfg = AdcConfig::default();
    let lsb = cfg.lsb();
    let span = cfg.v_high - cfg.v_low;
    let b_slow = SampleHold::bias_for_error(&tech, 1e-12, 800.0, span, 0.5 * lsb).unwrap();
    let b_fast = SampleHold::bias_for_error(&tech, 1e-12, 80e3, span, 0.5 * lsb).unwrap();
    let ratio = b_fast / b_slow;
    assert!((ratio - 100.0).abs() < 25.0, "T/H bias ratio {ratio}");
}
