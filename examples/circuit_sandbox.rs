//! Circuit sandbox: using `ulp-spice` as a standalone analog
//! playground.
//!
//! Builds the paper's Fig. 2 STSCL buffer at transistor level, prints
//! the netlist listing and the tabulated operating point, sweeps the
//! VTC, measures the propagation delay in transient analysis, and runs
//! a noise analysis — the full analog tool flow, no converter involved.
//!
//! Run with: `cargo run --example circuit_sandbox`

use ulp_device::Technology;
use ulp_num::interp::{decade_sweep, linspace};
use ulp_spice::dcop::DcOperatingPoint;
use ulp_spice::noise::noise_analysis;
use ulp_spice::report::{netlist_to_string, OpReport};
use ulp_spice::Waveform;
use ulp_stscl::vtc::SclBufferCircuit;
use ulp_stscl::SclParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::default();
    let params = SclParams::default();
    let iss = 1e-9;
    let circuit = SclBufferCircuit::build(&tech, &params, iss, 0.6, Waveform::Dc(0.0));

    println!("--- netlist ---");
    print!("{}", netlist_to_string(&circuit.netlist));

    println!("\n--- DC operating point ---");
    let op = DcOperatingPoint::solve(&circuit.netlist, &tech)?;
    let report = OpReport::new(&circuit.netlist, &tech, &op);
    print!("{}", report.to_table());
    println!(
        "source power: {:.3e} W (= ISS × VDD = {:.3e} W: no hidden leakage)",
        report.total_source_power(),
        iss * params.vdd
    );

    println!("\n--- VTC (differential) ---");
    let curve = circuit.dc_transfer(&tech, &linspace(-0.3, 0.3, 13))?;
    for (vin, vout) in &curve {
        let bar = ((vout + 0.2) / 0.4 * 40.0) as usize;
        println!("{vin:>7.3} V | {:>7.1} mV |{}*", vout * 1e3, " ".repeat(bar.min(40)));
    }

    println!("\n--- transient propagation delay ---");
    let td = circuit.spice_delay(&tech)?;
    println!(
        "measured {td:.3e} s vs ln2·VSW·CL/ISS = {:.3e} s",
        params.delay(iss)
    );

    println!("\n--- output noise ---");
    let bw = 1.0 / (2.0 * std::f64::consts::PI * (params.vsw / iss) * params.cl);
    let freqs = decade_sweep(bw * 1e-3, bw * 1e2, 15);
    let noise = noise_analysis(&circuit.netlist, &tech, &op, circuit.outp, &freqs)?;
    println!(
        "integrated output noise: {:.3e} V rms over {:.0}-{:.0} Hz",
        noise.output_rms,
        freqs[0],
        freqs[freqs.len() - 1]
    );
    if let Some(worst) = noise.worst_offender() {
        println!("dominant contributor: {}", worst.name);
    }
    Ok(())
}
