//! Energy-harvesting operation: a supply rail that wanders while the
//! system runs.
//!
//! The paper singles out energy harvesting as the killer application of
//! supply insensitivity: "supply voltage can vary considerably during
//! the operation". This example runs the converter while the rail
//! sweeps 1.0 → 1.25 → 1.0 V, showing that codes, speed and noise
//! margins never move — only the power draw tracks VDD — and contrasts
//! the CMOS baseline, whose timing collapses without re-regulation.
//!
//! Run with: `cargo run --example energy_harvesting`

use ulp_adc::{AdcConfig, FaiAdc};
use ulp_cmos::block::CmosBlock;
use ulp_cmos::dvfs::min_vdd_for_frequency;
use ulp_cmos::gate::CmosGate;
use ulp_device::Technology;
use ulp_stscl::SclParams;

fn main() {
    let tech = Technology::default();
    let adc = FaiAdc::ideal(&AdcConfig::default());
    let iss = 1e-9;
    let vin = 0.685;

    println!("harvested rail sweeping 1.00 -> 1.25 -> 1.00 V while converting {vin} V:");
    println!(
        "{:>8} {:>8} {:>14} {:>14} {:>12}",
        "VDD_V", "code", "fmax_Hz", "margin_mV", "P_gate_W"
    );
    let profile = [1.00, 1.08, 1.17, 1.25, 1.17, 1.08, 1.00];
    let mut codes = Vec::new();
    for &vdd in &profile {
        let cell = SclParams::new(0.2, 10e-15, vdd);
        let code = adc.convert(vin);
        codes.push(code);
        println!(
            "{:>8.2} {:>8} {:>14.4e} {:>14.1} {:>12.3e}",
            vdd,
            code,
            cell.fmax(iss, 1),
            cell.noise_margin(&tech) * 1e3,
            cell.gate_power(iss)
        );
    }
    assert!(codes.iter().all(|&c| c == codes[0]));
    println!("=> identical codes, identical speed, margins untouched; only P = ISS x VDD moved.");

    println!("\nthe CMOS baseline on the same wandering rail (196 gates, DVFS-tuned at 1.00x):");
    let block = CmosBlock::new(CmosGate::default(), 196, 4, 0.2);
    // DVFS picks the minimum supply for a 2 MHz clock at nominal…
    let f_clk = 2e6;
    let tuned = min_vdd_for_frequency(&block, &tech, f_clk, 0.2, 1.0).expect("reachable clock");
    println!(
        "  DVFS operating point: VDD = {:.3} V for {:.0} kHz ({:.1} nW)",
        tuned.vdd,
        f_clk / 1e3,
        tuned.power.total * 1e9
    );
    // …then the rail sags 10 %.
    let sagged = tuned.vdd * 0.9;
    let fmax_sagged = block.fmax(&tech, sagged);
    println!(
        "  rail sags 10% -> fmax collapses to {:.3e} Hz ({}): timing {}",
        fmax_sagged,
        if fmax_sagged < f_clk { "below the clock" } else { "still ok" },
        if block.meets_timing(&tech, sagged, f_clk) {
            "met"
        } else {
            "VIOLATED — needs a regulation loop"
        }
    );
    // …or swells 10 %: quadratic dynamic-power penalty.
    let swelled = tuned.vdd * 1.1;
    let p_swell = block.power(&tech, swelled, f_clk);
    println!(
        "  rail swells 10% -> power {:.1} nW ({:.2}x the tuned point)",
        p_swell.total * 1e9,
        p_swell.total / tuned.power.total
    );
}
