//! Quickstart: the STSCL platform in five minutes.
//!
//! Builds an STSCL gate, shows the delay/power/bias relationships of
//! paper Eq. (1), then converts a few samples through the full
//! folding-and-interpolating ADC.
//!
//! Run with: `cargo run --example quickstart`

use ulp_adc::{AdcConfig, FaiAdc};
use ulp_device::Technology;
use ulp_stscl::SclParams;

fn main() {
    // --- 1. One STSCL cell -------------------------------------------------
    let tech = Technology::default();
    let cell = SclParams::default(); // 200 mV swing, 10 fF, 1 V
    println!("STSCL cell (VSW = {} V, CL = {:.0e} F):", cell.vsw, cell.cl);
    for iss in [10e-12, 1e-9, 100e-9] {
        println!(
            "  ISS = {iss:>8.1e} A  ->  delay {:>10.3e} s,  power {:>10.3e} W,  fmax {:>10.3e} Hz",
            cell.delay(iss),
            cell.gate_power(iss),
            cell.fmax(iss, 1)
        );
    }
    println!(
        "  gain = {:.1} (no VDD anywhere), noise margin = {:.0} mV, PDP = {:.2e} J",
        cell.gain(&tech),
        cell.noise_margin(&tech) * 1e3,
        cell.pdp()
    );
    println!(
        "  minimum supply at 1 nA: {:.2} V (paper Fig. 9b: 0.35 V)",
        cell.min_vdd(&tech, 1e-9)
    );

    // --- 2. The full converter ---------------------------------------------
    let config = AdcConfig::default();
    println!("\nfolding-and-interpolating ADC: {config}");
    let adc = FaiAdc::ideal(&config);
    println!(
        "  encoder: {} STSCL gates, pipeline depth {}",
        adc.encoder().gate_count(),
        adc.encoder()
            .netlist()
            .logic_depth()
            .expect("acyclic netlist"),
    );
    for vin in [0.25, 0.45, 0.60, 0.85, 0.99] {
        println!("  convert({vin:.2} V) = code {}", adc.convert(vin));
    }

    // --- 3. One knob scales everything -------------------------------------
    let mut scaled = adc.clone();
    scaled.set_control_current(10e-12); // power down 100×
    println!(
        "\nafter scaling the master bias 100x down: convert(0.60 V) = {}",
        scaled.convert(0.60)
    );
    println!("(same code — decisions are bias-independent; only speed and power moved)");
}
