//! An anti-aliasing filter that tracks the sampling rate.
//!
//! A fixed anti-alias filter breaks the scalable converter: sized for
//! 80 kS/s it passes aliases at 800 S/s; sized for 800 S/s it destroys
//! the signal at 80 kS/s. Because the gm-C filter's cutoff is ∝ bias
//! (paper §II-B), hanging it off the same PMU branch keeps the cutoff
//! at fs/4 automatically at every operating point.
//!
//! Run with: `cargo run --example adaptive_antialias`

use ulp_analog::filter::GmCBiquad;
use ulp_analog::scale;
use ulp_device::Technology;
use ulp_pmu::PlatformController;

fn main() {
    let tech = Technology::default();
    let pmu = PlatformController::paper_prototype();
    // Design once at the top rate: Butterworth biquad, cutoff = fs/4.
    let c = 10e-12;
    let fs_design = 80e3;
    let bias_design = scale::bias_for_bandwidth(&tech, fs_design / 4.0, c)
        // bias_for_bandwidth sizes a differential pair; the filter's gm
        // is single-ended here — factor folded into the design constant.
        / 2.0;
    let mut filter = GmCBiquad::new(c, bias_design, std::f64::consts::FRAC_1_SQRT_2);
    // Calibrate the ratio bias→cutoff once (process-independent).
    let k = filter.pole_frequency(&tech) / filter.bias;

    println!("anti-alias biquad slaved to the PMU (cutoff target: fs/4)\n");
    println!(
        "{:>10} {:>12} {:>12} {:>14} {:>14} {:>10}",
        "fs_S/s", "IC_A", "f_c_Hz", "|H(fs/8)|_dB", "|H(fs/2)|_dB", "P_filter_W"
    );
    for fs in [800.0, 4e3, 20e3, 80e3] {
        let op = pmu.operating_point(fs);
        // The filter branch mirrors the master with the fixed ratio that
        // puts the cutoff at fs/4.
        let bias = (fs / 4.0) / k;
        filter.set_bias(bias);
        let tf = filter.transfer_function(&tech);
        println!(
            "{:>10} {:>12.3e} {:>12.1} {:>14.2} {:>14.2} {:>10.2e}",
            fs,
            op.ic,
            filter.pole_frequency(&tech),
            tf.at_freq(fs / 8.0).abs_db(),
            tf.at_freq(fs / 2.0).abs_db(),
            filter.power(1.0)
        );
        // The invariants that make this work:
        assert!((filter.pole_frequency(&tech) / (fs / 4.0) - 1.0).abs() < 1e-9);
        assert!(tf.at_freq(fs / 8.0).abs_db() > -1.0, "passband intact");
        assert!(tf.at_freq(fs / 2.0).abs_db() < -11.0, "Nyquist attenuated");
    }
    println!("\nsame normalised response at every rate — the filter joined the");
    println!("platform's single-knob scaling instead of being redesigned per mode.");
}
