//! Biomedical acquisition: an ECG-class front end at 800 S/s.
//!
//! The paper motivates the platform with biomedical implants: tiny
//! signal bandwidths, brutal power budgets. This example acquires a
//! synthetic ECG at the converter's lowest rate, reports the measured
//! waveform statistics and the nanowatt power budget the shared PMU
//! resolves.
//!
//! Run with: `cargo run --example biomedical_acquisition`

use ulp_adc::{AdcConfig, FaiAdc};
use ulp_device::Technology;
use ulp_pmu::PlatformController;

/// A crude synthetic ECG: 1.2 Hz rhythm of sharp QRS spikes over a
/// baseline wander, mapped into the converter's input range.
fn ecg(t: f64) -> f64 {
    let beat = t * 1.2;
    let phase = beat - beat.floor();
    let qrs = if (0.48..0.52).contains(&phase) {
        // R spike
        1.0 - ((phase - 0.5) / 0.008).powi(2)
    } else {
        0.0
    };
    let p_wave = 0.12 * (2.0 * std::f64::consts::PI * (phase - 0.30) / 0.18).cos().max(0.0)
        * f64::from((0.21..0.39).contains(&phase));
    let baseline = 0.04 * (2.0 * std::f64::consts::PI * 0.23 * t).sin();
    0.45 + 0.25 * qrs.max(0.0) + p_wave + baseline
}

fn main() {
    let fs = 800.0; // the paper's lowest sampling rate
    let pmu = PlatformController::paper_prototype();
    let tech = Technology::default();
    let mut adc = FaiAdc::with_mismatch(&tech, &AdcConfig::default(), 7);
    let op = pmu.apply(&mut adc, fs);

    println!("acquiring synthetic ECG at {fs} S/s");
    println!(
        "  PMU resolved: IC = {:.2e} A, analog {:.1} nW + digital {:.2} nW = {:.1} nW total",
        op.ic,
        op.power.analog * 1e9,
        op.power.digital * 1e9,
        op.power.total * 1e9
    );
    println!(
        "  (paper chip at 800 S/s: 44 nW total, 2 nW digital)"
    );

    let seconds = 4.0;
    let n = (seconds * fs) as usize;
    let codes = adc.sample_waveform(ecg, fs, n);

    // Detect R peaks in the code stream: local maxima above the 90th
    // percentile.
    let mut sorted: Vec<u16> = codes.clone();
    sorted.sort_unstable();
    let p90 = sorted[(0.9 * (n as f64)) as usize];
    let mut peaks = Vec::new();
    for k in 1..n - 1 {
        if codes[k] > p90 && codes[k] >= codes[k - 1] && codes[k] >= codes[k + 1]
            && peaks.last().is_none_or(|&last: &usize| k - last > 200) {
                peaks.push(k);
            }
    }
    println!("  captured {n} samples over {seconds} s");
    println!(
        "  code range {}..{}, R-peaks detected at samples {:?}",
        sorted[0],
        sorted[n - 1],
        peaks
    );
    let bpm = if peaks.len() >= 2 {
        60.0 * fs * (peaks.len() - 1) as f64 / (peaks[peaks.len() - 1] - peaks[0]) as f64
    } else {
        0.0
    };
    println!("  estimated heart rate: {bpm:.0} bpm (synthetic rhythm: 72 bpm)");
    println!(
        "  energy for the whole recording: {:.1} nJ",
        op.power.total * seconds * 1e9
    );
}
