//! A power-scalable sensor node: workload-tracking with the shared PMU
//! and the frequency-locked bias loop.
//!
//! A sensor-network node (the paper's other motivating application)
//! alternates between a low-rate ambient-monitoring mode and burst
//! captures. One control current retunes the *entire* mixed-signal
//! system per mode; the FLL shows how the bias is acquired
//! closed-loop from a reference clock.
//!
//! Run with: `cargo run --example scalable_sensor_node`

use ulp_adc::metrics::sine_test;
use ulp_adc::{AdcConfig, FaiAdc};
use ulp_device::Technology;
use ulp_pmu::fll::FrequencyLockedLoop;
use ulp_pmu::PlatformController;
use ulp_stscl::SclParams;

fn main() {
    let tech = Technology::default();
    let pmu = PlatformController::paper_prototype();
    let mut adc = FaiAdc::with_mismatch(&tech, &AdcConfig::default(), 3);

    println!("duty-cycled sensor node: ambient mode vs burst mode\n");
    let mut total_energy = 0.0;
    for (mode, fs, duration) in [
        ("ambient ", 800.0, 58.0),
        ("burst   ", 80e3, 2.0),
        ("ambient ", 800.0, 60.0),
    ] {
        let op = pmu.apply(&mut adc, fs);
        let energy = op.power.total * duration;
        total_energy += energy;
        println!(
            "{mode} {:>7.0} S/s for {:>4.0} s: IC = {:.2e} A, P = {:>8.1} nW, E = {:>7.2} uJ... {}",
            fs,
            duration,
            op.ic,
            op.power.total * 1e9,
            energy * 1e6,
            if fs > 1e4 { "capture!" } else { "listening" }
        );
    }
    println!("minute of operation: {:.2} uJ total\n", total_energy * 1e6);

    // Quality check in burst mode: the converter still delivers its
    // effective resolution at the top rate.
    pmu.apply(&mut adc, 80e3);
    let dynamics = sine_test(&adc, 2048, 33, 80e3).expect("coherent capture");
    println!(
        "burst-mode quality: SNDR {:.1} dB -> ENOB {:.2} bits (paper: 6.5)",
        dynamics.sndr_db, dynamics.enob
    );

    // Closed-loop bias acquisition: the replica-ring FLL finds the tail
    // current for a requested clock without knowing the process.
    println!("\nfrequency-locked bias acquisition (5-stage replica ring):");
    let mut fll = FrequencyLockedLoop::new(SclParams::default(), 5, 1e-12, 0.5);
    for f_ref in [800.0, 80e3] {
        let steps = fll.acquire(f_ref, 1e-4, 500).expect("loop locks");
        println!(
            "  lock to {f_ref:>7.0} Hz in {steps:>3} updates -> ISS = {:.3e} A (ring at {:.1} Hz)",
            fll.bias(),
            fll.ring_frequency()
        );
    }
    println!("(one loop, any clock in the envelope — no supply regulation involved)");
}
