#!/usr/bin/env bash
# Repository CI gate: build, test, lint. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings

# Telemetry path: one bench binary under ULP_TRACE=summary must render
# the solver-metrics footer, and ULP_TRACE=events must produce valid
# (non-empty, one-object-per-line) JSONL — so the tracing layer can
# never silently rot.
footer=$(ULP_TRACE=summary cargo run --release -q -p ulp-bench --bin fig9a_fmax_vs_iss)
echo "$footer" | grep -q -- "-- solver metrics --"
echo "$footer" | grep -q "total solves"
ULP_TRACE=events cargo run --release -q -p ulp-bench --bin circuit_verification > /dev/null
test -s results/telemetry/circuit_verification.jsonl
head -1 results/telemetry/circuit_verification.jsonl | grep -q '^{"event":".*}$'
echo "telemetry footer + JSONL OK"

# Design lints: every shipped builder netlist must lint clean with
# warnings denied, and every SARIF export must parse (the binary's
# --check re-reads each file with the crate's own JSON reader).
cargo run --release -q -p ulp-bench --bin ulp_lint -- --deny-warnings --check
for f in results/lint/scl-buffer-100p.sarif results/lint/scl-buffer-1n.sarif \
         results/lint/scl-buffer-10n.sarif results/lint/replica-buffer-1n.sarif \
         results/lint/preamp-coupled-1n.sarif results/lint/preamp-decoupled-1n.sarif; do
    test -s "$f"
    grep -q '"version": "2.1.0"' "$f"
done
echo "design lints + SARIF exports OK"
