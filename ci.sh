#!/usr/bin/env bash
# Repository CI gate: build, test, lint. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
