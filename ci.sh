#!/usr/bin/env bash
# Repository CI gate: build, test, lint. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")"

# --workspace covers every crate including ulp-exec; keep the engine in
# the -D warnings set explicitly so a membership change can't drop it.
cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
cargo clippy -p ulp-exec --all-targets -- -D warnings
cargo clippy -p ulp-ir --all-targets -- -D warnings

# Telemetry path: one bench binary under ULP_TRACE=summary must render
# the solver-metrics footer, and ULP_TRACE=events must produce valid
# (non-empty, one-object-per-line) JSONL — so the tracing layer can
# never silently rot.
footer=$(ULP_TRACE=summary cargo run --release -q -p ulp-bench --bin fig9a_fmax_vs_iss)
echo "$footer" | grep -q -- "-- solver metrics --"
echo "$footer" | grep -q "total solves"
ULP_TRACE=events cargo run --release -q -p ulp-bench --bin circuit_verification > /dev/null
test -s results/telemetry/circuit_verification.jsonl
head -1 results/telemetry/circuit_verification.jsonl | grep -q '^{"event":".*}$'
echo "telemetry footer + JSONL OK"

# Design lints: every shipped builder netlist must lint clean with
# warnings denied, and every SARIF export must parse (the binary's
# --check re-reads each file with the crate's own JSON reader).
cargo run --release -q -p ulp-bench --bin ulp_lint -- --deny-warnings --check
for f in results/lint/scl-buffer-100p.sarif results/lint/scl-buffer-1n.sarif \
         results/lint/scl-buffer-10n.sarif results/lint/replica-buffer-1n.sarif \
         results/lint/preamp-coupled-1n.sarif results/lint/preamp-decoupled-1n.sarif; do
    test -s "$f"
    grep -q '"version": "2.1.0"' "$f"
done
echo "design lints + SARIF exports OK"

# Sound certification: every builder netlist must certify
# proved-nonsingular with unproven denied, the merged SARIF must parse
# (--check) and carry the right version, the Prometheus counters must
# validate, and the whole export must be byte-deterministic: two runs,
# identical files.
cargo run --release -q -p ulp-bench --bin ulp_certify -- --deny-unproven --check
test -s results/lint/certify.sarif
grep -q '"version": "2.1.0"' results/lint/certify.sarif
test -s results/lint/certify.prom
grep -q '^ulp_certified_total ' results/lint/certify.prom
grep -q '^ulp_certify_unproven_total 0$' results/lint/certify.prom
cp results/lint/certify.sarif results/lint/certify.sarif.run1
cp results/lint/certify.prom results/lint/certify.prom.run1
cargo run --release -q -p ulp-bench --bin ulp_certify -- --deny-unproven --check > /dev/null
cmp results/lint/certify.sarif results/lint/certify.sarif.run1
cmp results/lint/certify.prom results/lint/certify.prom.run1
rm -f results/lint/certify.sarif.run1 results/lint/certify.prom.run1
echo "sound certification (proofs + SARIF/Prometheus byte stability) OK"

# Netlist IR: the declarative pipeline (parse → round-trip → flatten →
# lint → certify → solve → sweep) over every shipped .ulp example. No
# --deny-warnings here: the double-tail comparator's clocked switches
# honestly warn strong-inversion in the reset phase, and its
# cross-coupled latch is honestly unproven (info) — errors still fail.
# Both exports must be byte-deterministic: the SARIF across two runs,
# and the sweep cost ledgers across ULP_JOBS=1 vs 4.
ULP_JOBS=1 cargo run --release -q -p ulp-bench --bin ulp_ir -- \
    --check --ledger-out results/ir/ledger_j1.txt
for f in results/ir/scl_buffer.sarif results/ir/comp_doubletail.sarif; do
    test -s "$f"
    grep -q '"version": "2.1.0"' "$f"
done
cp results/ir/scl_buffer.sarif results/ir/scl_buffer.sarif.run1
cp results/ir/comp_doubletail.sarif results/ir/comp_doubletail.sarif.run1
ULP_JOBS=4 cargo run --release -q -p ulp-bench --bin ulp_ir -- \
    --check --ledger-out results/ir/ledger_j4.txt > /dev/null
cmp results/ir/scl_buffer.sarif results/ir/scl_buffer.sarif.run1
cmp results/ir/comp_doubletail.sarif results/ir/comp_doubletail.sarif.run1
cmp results/ir/ledger_j1.txt results/ir/ledger_j4.txt
rm -f results/ir/scl_buffer.sarif.run1 results/ir/comp_doubletail.sarif.run1
echo "netlist IR (pipeline + SARIF byte stability + ledger determinism ULP_JOBS=1 vs 4) OK"

# Campaign observability: the obs harness runs a 64-die yield campaign
# and a solver-backed dcop sweep under the span profiler, validates the
# Chrome trace JSON and the Prometheus exposition with the crate's own
# readers (--check), and exports the counter-only cost ledger. The
# ledger excludes worker identity and wall time by construction, so the
# serial and 4-worker runs must produce byte-identical files.
ULP_JOBS=1 cargo run --release -q -p ulp-bench --bin ulp_obs -- \
    --dies 64 --ledger-out results/obs/ledger_j1.json --check > /dev/null
ULP_JOBS=4 cargo run --release -q -p ulp-bench --bin ulp_obs -- \
    --dies 64 --ledger-out results/obs/ledger_j4.json --check > /dev/null
cmp results/obs/ledger_j1.json results/obs/ledger_j4.json
test -s results/obs/ulp_obs.trace.json
test -s results/obs/ulp_obs.prom
echo "campaign observability (trace + ledger determinism ULP_JOBS=1 vs 4) OK"

# Execution engine: the determinism suite must pass on both the strictly
# serial path and a 4-worker pool — same bytes, different schedule.
ULP_JOBS=1 cargo test -q -p integration --test exec_determinism
ULP_JOBS=4 cargo test -q -p integration --test exec_determinism
echo "exec determinism (ULP_JOBS=1 and 4) OK"

# Sparse solver bench: times dcop/sweep/transient on every builder
# netlist under both linear-algebra backends plus the adaptive-vs-fixed
# transient comparison, writes BENCH_solver.json and
# BENCH_tran_adaptive.json, and with --assert fails if the sparse path
# ever loses to the dense path on the pre-amplifier transient workload
# or the adaptive engine delivers less than 2x over the fixed march at
# equal accuracy there.
cargo run --release -q -p ulp-bench --bin solver_bench -- --assert
test -s BENCH_solver.json
grep -q '"preamp_tran_speedup"' BENCH_solver.json
grep -q '"preamp_adaptive_speedup"' BENCH_solver.json
# The adaptive artifact holds only deterministic fields (point counts,
# step/bypass counters, deviations — no wall clock), so a second,
# timing-free run must reproduce it byte for byte.
cargo run --release -q -p ulp-bench --bin solver_bench -- \
    --stability results/tran_adaptive.stability.json
cmp BENCH_tran_adaptive.json results/tran_adaptive.stability.json
rm -f results/tran_adaptive.stability.json
echo "solver bench (sparse vs dense + adaptive byte stability) OK"

# Scaling bench: always run it (it asserts serial == parallel results);
# only hold it to the >=2x speedup bar when the host actually has the
# cores to show one.
bench_out=$(cargo bench -q -p ulp-bench --bench exec_scaling)
echo "$bench_out"
cores=$(nproc 2>/dev/null || echo 1)
if [ "$cores" -ge 4 ]; then
    echo "$bench_out" | awk '
        # Convert a Duration debug string ("56.272ms", "1.2s", "890.1µs")
        # to seconds.
        function secs(d) {
            mult = 1
            if (d ~ /ns$/)           { mult = 1e-9 }
            else if (d ~ /µs$/ || d ~ /us$/) { mult = 1e-6 }
            else if (d ~ /ms$/)      { mult = 1e-3 }
            gsub(/[^0-9.]/, "", d)
            return d * mult
        }
        /exec_scaling_serial_64_dies/    { serial = secs($4) }
        /exec_scaling_parallel4_64_dies/ { parallel = secs($4) }
        END {
            if (parallel == 0 || serial / parallel < 2.0) {
                printf "FAIL: parallel speedup %.2fx < 2x on a %d-core host\n", serial / parallel, '"$cores"'
                exit 1
            }
            printf "exec scaling OK: %.2fx speedup at 4 workers\n", serial / parallel
        }'
else
    # Too few cores for a wall-clock speedup bar — but a 1-core box can
    # still *prove* schedule-independence: drive the pool through the
    # ulp-check explorer, which interleaves virtual workers regardless
    # of physical parallelism.
    echo "exec scaling: $cores core(s) — speedup bar replaced by explorer determinism check"
    cargo run --release -q -p ulp-check --bin ulp_check -- \
        --workers 3 --trials 8 --bound 3 --walk 128 --seed 20260808
fi

# Concurrency model check: the bounded schedule explorer drives the
# shipped pool/deque/cancel code through every bound-2 schedule of a
# 2-worker/4-trial campaign (exhaustive), plus a deterministic
# 64-schedule random walk at bound 3, writing SARIF next to the design
# lints. The --fault runs assert the toolkit still *detects* seeded
# defects (racy deque, completion-order fold, dropped cancel record).
cargo run --release -q -p ulp-check --bin ulp_check -- \
    --workers 2 --trials 4 --bound 2 --sarif results/lint/concurrency.sarif
test -s results/lint/concurrency.sarif
grep -q '"version": "2.1.0"' results/lint/concurrency.sarif
cargo run --release -q -p ulp-check --bin ulp_check -- \
    --workers 3 --trials 6 --bound 3 --walk 64 --seed 20260808
cargo run --release -q -p ulp-check --bin ulp_check -- \
    --fault race --expect-findings > /dev/null
cargo run --release -q -p ulp-check --bin ulp_check -- \
    --fault fold --expect-findings > /dev/null
cargo run --release -q -p ulp-check --bin ulp_check -- \
    --fault cancel --bound 1 --expect-findings > /dev/null
echo "model check (exhaustive bound 2 + walk 64 @ bound 3 + fault detection) OK"

# Opt-in deep checks: Miri (interpreter-level UB detection) and
# ThreadSanitizer need toolchain components this container may not
# ship; run them when available, say so when not.
if command -v rustup >/dev/null 2>&1 && rustup component list --installed 2>/dev/null | grep -q '^miri'; then
    cargo miri test -p ulp-exec -q
    echo "miri (ulp-exec) OK"
else
    echo "miri: toolchain component unavailable — skipped"
fi
if command -v rustup >/dev/null 2>&1 && rustup toolchain list 2>/dev/null | grep -q '^nightly'; then
    RUSTFLAGS="-Zsanitizer=thread" cargo +nightly test -p ulp-exec -q 2>/dev/null \
        && echo "tsan (ulp-exec) OK" \
        || echo "tsan: nightly present but sanitizer build failed — skipped (non-fatal)"
else
    echo "tsan: nightly toolchain unavailable — skipped"
fi
