#!/usr/bin/env bash
# Repository CI gate: build, test, lint. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings

# Telemetry path: one bench binary under ULP_TRACE=summary must render
# the solver-metrics footer, and ULP_TRACE=events must produce valid
# (non-empty, one-object-per-line) JSONL — so the tracing layer can
# never silently rot.
footer=$(ULP_TRACE=summary cargo run --release -q -p ulp-bench --bin fig9a_fmax_vs_iss)
echo "$footer" | grep -q -- "-- solver metrics --"
echo "$footer" | grep -q "total solves"
ULP_TRACE=events cargo run --release -q -p ulp-bench --bin circuit_verification > /dev/null
test -s results/telemetry/circuit_verification.jsonl
head -1 results/telemetry/circuit_verification.jsonl | grep -q '^{"event":".*}$'
echo "telemetry footer + JSONL OK"
