//! The work-stealing scheduling core.
//!
//! A campaign's trial indices are dealt round-robin across one
//! [`WorkDeque`] per worker up front; each worker drains its own deque
//! bottom-first and, when empty, sweeps the other deques (starting from
//! its right-hand neighbour, so thieves spread out) stealing from the
//! top. No work is ever added after the deal, so "every deque observed
//! empty once" is a sound termination condition — no condition
//! variables, no spinning.
//!
//! Both functions are generic over a [`SyncProvider`] and `pub`: this
//! module *is* the code the `ulp-check` model checker drives through a
//! virtual scheduler, so the schedule explorer exercises the shipped
//! deal/steal/drain logic, not a re-implementation. Production callers
//! ([`crate::Ensemble`]) instantiate it with [`StdSync`](crate::sync::StdSync),
//! which monomorphizes back to the plain `std::sync` code.

use crate::deque::WorkDeque;
use crate::sync::SyncProvider;

/// Deals trials `0..total` round-robin across `jobs` deques.
pub fn deal<P: SyncProvider>(total: usize, jobs: usize) -> Vec<WorkDeque<usize, P>> {
    let deques: Vec<WorkDeque<usize, P>> = (0..jobs).map(|_| WorkDeque::new()).collect();
    for trial in 0..total {
        deques[trial % jobs].push(trial);
    }
    deques
}

/// One worker's drain loop: runs `run_one(trial, worker)` for every
/// trial it pops or steals, collecting `(trial, result)` pairs in
/// completion order. The caller reassembles results by trial index, so
/// the order here carries no meaning.
pub fn worker_loop<T, P: SyncProvider>(
    worker: usize,
    deques: &[WorkDeque<usize, P>],
    run_one: &(impl Fn(usize, usize) -> T + Sync),
) -> Vec<(usize, T)> {
    let mut out = Vec::new();
    loop {
        let next = deques[worker].pop().or_else(|| {
            (1..deques.len()).find_map(|k| deques[(worker + k) % deques.len()].steal())
        });
        match next {
            Some(trial) => out.push((trial, run_one(trial, worker))),
            None => return out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::StdSync;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn deal_partitions_every_trial_exactly_once() {
        let deques = deal::<StdSync>(10, 3);
        assert_eq!(deques.len(), 3);
        assert_eq!(
            deques.iter().map(WorkDeque::len).collect::<Vec<_>>(),
            vec![4, 3, 3]
        );
        let mut seen: Vec<usize> = deques.iter().flat_map(|d| {
            let mut v = Vec::new();
            while let Some(t) = d.pop() {
                v.push(t);
            }
            v
        }).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn lone_worker_drains_everything() {
        let deques = deal::<StdSync>(7, 1);
        let out = worker_loop(0, &deques, &|t, w| {
            assert_eq!(w, 0);
            t * t
        });
        assert_eq!(out.len(), 7);
        for (t, v) in out {
            assert_eq!(v, t * t);
        }
    }

    #[test]
    fn thieves_finish_a_lopsided_deal() {
        // All work dealt to worker 0's deque; three thieves must still
        // drain it to completion with nothing run twice.
        let deques: Vec<WorkDeque<usize>> = (0..4).map(|_| WorkDeque::new()).collect();
        for t in 0..100 {
            deques[0].push(t);
        }
        let runs = AtomicUsize::new(0);
        let run_one = |t: usize, _w: usize| {
            runs.fetch_add(1, Ordering::Relaxed);
            t
        };
        let mut all: Vec<(usize, usize)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|w| {
                    let deques = &deques;
                    let run_one = &run_one;
                    s.spawn(move || worker_loop(w, deques, run_one))
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker must not panic"))
                .collect()
        });
        assert_eq!(runs.load(Ordering::Relaxed), 100);
        all.sort_unstable();
        assert_eq!(all.iter().map(|&(t, _)| t).collect::<Vec<_>>(), (0..100).collect::<Vec<_>>());
    }
}
