//! Cooperative campaign cancellation.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag.
///
/// Cancellation is *cooperative*: trials already running see it through
/// [`crate::TrialCtx::is_cancelled`] and may finish or bail early as
/// they choose; trials not yet started when the flag is raised are
/// skipped by the engine and reported as
/// [`crate::TrialError::Cancelled`]. Cancelling never tears down a
/// thread, so no trial is ever left half-observed.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a token in the not-cancelled state.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Raises the flag. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the flag has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
        a.cancel(); // idempotent
        assert!(a.is_cancelled());
    }

    #[test]
    fn fresh_tokens_are_independent() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }
}
