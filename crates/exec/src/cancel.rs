//! Cooperative campaign cancellation.

use crate::sync::{StdSync, SyncFlag, SyncProvider};
use std::fmt;
use std::sync::Arc;

/// A shared cancellation flag.
///
/// Cancellation is *cooperative*: trials already running see it through
/// [`crate::TrialCtx::is_cancelled`] and may finish or bail early as
/// they choose; trials not yet started when the flag is raised are
/// skipped by the engine and reported as
/// [`crate::TrialError::Cancelled`]. Cancelling never tears down a
/// thread, so no trial is ever left half-observed.
///
/// The flag's `Release` store / `Acquire` load pairing is part of the
/// engine's happens-before contract (DESIGN.md "Concurrency model"):
/// everything the cancelling thread did before [`CancelToken::cancel`]
/// is visible to any trial that observes the flag raised. The token is
/// generic over a [`SyncProvider`] so the `ulp-check` model checker can
/// fire cancellations at every explored preemption point; production
/// code uses the [`StdSync`] default and pays nothing.
pub struct CancelToken<P: SyncProvider = StdSync> {
    flag: Arc<P::AtomicBool>,
}

impl<P: SyncProvider> Clone for CancelToken<P> {
    fn clone(&self) -> Self {
        CancelToken {
            flag: Arc::clone(&self.flag),
        }
    }
}

impl<P: SyncProvider> Default for CancelToken<P> {
    fn default() -> Self {
        CancelToken {
            flag: Arc::new(P::AtomicBool::new(false)),
        }
    }
}

impl<P: SyncProvider> fmt::Debug for CancelToken<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

impl<P: SyncProvider> CancelToken<P> {
    /// Creates a token in the not-cancelled state.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Raises the flag. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store_release(true);
    }

    /// Whether the flag has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load_acquire()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a: CancelToken = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
        a.cancel(); // idempotent
        assert!(a.is_cancelled());
    }

    #[test]
    fn fresh_tokens_are_independent() {
        let a: CancelToken = CancelToken::new();
        let b: CancelToken = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }

    #[test]
    fn debug_shows_state() {
        let t: CancelToken = CancelToken::new();
        assert!(format!("{t:?}").contains("cancelled: false"));
        t.cancel();
        assert!(format!("{t:?}").contains("cancelled: true"));
    }
}
