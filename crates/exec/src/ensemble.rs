//! The `Job`/`Ensemble` campaign API.

use crate::cancel::CancelToken;
use crate::error::{panic_message, JobsError, TrialError};
use crate::obs::{CampaignReport, TrialCost, TrialOutcome};
use crate::pool;
use crate::sync::{StdSync, SyncCounter, SyncProvider};
use rand::rngs::SplitMix64;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ulp_spice::telemetry;

/// Resolves the worker count from the `ULP_JOBS` environment variable:
/// a positive integer is taken literally (`1` selects the strictly
/// serial in-thread path); unset or empty falls back to the machine's
/// available parallelism.
///
/// # Panics
///
/// On a set-but-invalid `ULP_JOBS` (`0`, a negative count, garbage) —
/// with the [`JobsError`] message naming the variable. A broken
/// environment is an operator error; silently running on a default
/// worker count would hide it. Use [`jobs_from_env`] for the
/// non-panicking, typed-error form.
pub fn default_jobs() -> usize {
    match jobs_from_env() {
        Ok(jobs) => jobs,
        Err(e) => panic!("{e}"),
    }
}

/// Resolves the worker count from `ULP_JOBS` with a typed error.
///
/// Unset or empty resolves to the machine's available parallelism;
/// a set value must be a positive integer.
///
/// # Errors
///
/// [`JobsError`] describing why the set value was rejected (zero,
/// negative, or not a number), naming `ULP_JOBS` in its rendering.
pub fn jobs_from_env() -> Result<usize, JobsError> {
    resolve_jobs(std::env::var("ULP_JOBS").ok().as_deref())
}

/// The pure resolution rule behind [`jobs_from_env`], testable without
/// touching the process environment: `None`/blank falls back to
/// available parallelism, anything else must parse via
/// [`jobs_from_str`].
fn resolve_jobs(var: Option<&str>) -> Result<usize, JobsError> {
    match var {
        None => Ok(available_parallelism()),
        Some(s) if s.trim().is_empty() => Ok(available_parallelism()),
        Some(s) => jobs_from_str(s),
    }
}

/// Parses one `ULP_JOBS` value.
///
/// # Errors
///
/// [`JobsError::Zero`] for `0`, [`JobsError::Negative`] for a
/// negative integer, [`JobsError::NotANumber`] for everything else
/// that is not a positive integer.
pub fn jobs_from_str(s: &str) -> Result<usize, JobsError> {
    let trimmed = s.trim();
    match trimmed.parse::<usize>() {
        Ok(0) => Err(JobsError::Zero),
        Ok(n) => Ok(n),
        Err(_) => {
            if trimmed.strip_prefix('-').is_some_and(|rest| {
                !rest.is_empty() && rest.chars().all(|c| c.is_ascii_digit())
            }) {
                Err(JobsError::Negative {
                    value: trimmed.to_string(),
                })
            } else {
                Err(JobsError::NotANumber {
                    value: trimmed.to_string(),
                })
            }
        }
    }
}

fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Per-trial context handed to the [`Job`] closure.
///
/// The RNG is derived from the campaign's root seed and the *trial
/// index* alone (`SplitMix64::derive_stream`), never from worker
/// identity or scheduling order — the keystone of the engine's
/// "parallel output is byte-identical to serial output" contract.
#[derive(Debug)]
pub struct TrialCtx {
    index: usize,
    total: usize,
    rng: SplitMix64,
    cancel: CancelToken,
}

impl TrialCtx {
    /// This trial's index, `0..total`.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Number of trials in the campaign.
    pub fn total(&self) -> usize {
        self.total
    }

    /// The trial's private deterministic random stream.
    pub fn rng(&mut self) -> &mut SplitMix64 {
        &mut self.rng
    }

    /// Whether the campaign has been cancelled (long trials may poll
    /// this and return early).
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }
}

/// A unit of campaign work: anything runnable once per trial.
///
/// Blanket-implemented for `Fn(&mut TrialCtx) -> T + Sync` closures, so
/// `ensemble.run(|ctx| ...)` just works; implement it by hand only for
/// jobs carrying non-closure state.
pub trait Job: Sync {
    /// The per-trial result type.
    type Output: Send;

    /// Runs one trial.
    fn run(&self, ctx: &mut TrialCtx) -> Self::Output;
}

impl<T: Send, F: Fn(&mut TrialCtx) -> T + Sync> Job for F {
    type Output = T;

    fn run(&self, ctx: &mut TrialCtx) -> T {
        self(ctx)
    }
}

/// A progress report, delivered to the campaign's callback after a
/// trial finishes (including trials that panicked or were skipped as
/// cancelled). With a rate limit installed
/// ([`Ensemble::progress_interval`]) intermediate reports may be
/// suppressed, but the final (`completed == total`) report always
/// fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Progress {
    /// Trials finished so far (monotone across callbacks).
    pub completed: usize,
    /// Total trials in the campaign.
    pub total: usize,
    /// Index of the trial that just finished.
    pub trial: usize,
    /// Worker that ran it (0 on the serial path).
    pub worker: usize,
    /// Estimated throughput, trials per second, over a sliding window
    /// of recent completions (0 until the clock has advanced).
    pub rate_per_sec: f64,
    /// Estimated seconds until the campaign completes at the current
    /// rate (0 when done, `f64::INFINITY` while the rate is unknown).
    pub eta_seconds: f64,
}

type ProgressFn = dyn Fn(&Progress) + Send + Sync;

/// How many recent completions the throughput estimator remembers.
const RATE_WINDOW: usize = 32;

/// The progress pacer: a sliding-window trials/sec estimator plus the
/// optional callback rate limiter, shared by all workers under one
/// `Mutex` (taken only when a progress callback is installed).
struct Pacer {
    started: Instant,
    /// `(when, completed)` samples, oldest first, at most
    /// [`RATE_WINDOW`] long.
    window: VecDeque<(Instant, usize)>,
    last_emit: Option<Instant>,
    min_interval: Option<Duration>,
}

impl Pacer {
    fn new(min_interval: Option<Duration>) -> Self {
        Pacer {
            started: Instant::now(),
            window: VecDeque::with_capacity(RATE_WINDOW),
            last_emit: None,
            min_interval,
        }
    }

    /// Records one completion; returns `Some((rate, eta))` when the
    /// callback should fire for it.
    fn note(&mut self, completed: usize, total: usize) -> Option<(f64, f64)> {
        let now = Instant::now();
        if self.window.len() == RATE_WINDOW {
            self.window.pop_front();
        }
        let rate = match self.window.front() {
            Some(&(t0, c0)) if completed > c0 && now > t0 => {
                (completed - c0) as f64 / now.duration_since(t0).as_secs_f64()
            }
            _ => {
                let dt = now.duration_since(self.started).as_secs_f64();
                if dt > 0.0 {
                    completed as f64 / dt
                } else {
                    0.0
                }
            }
        };
        self.window.push_back((now, completed));
        let remaining = total.saturating_sub(completed);
        let eta = if remaining == 0 {
            0.0
        } else if rate > 0.0 {
            remaining as f64 / rate
        } else {
            f64::INFINITY
        };
        let fire = completed >= total
            || match (self.min_interval, self.last_emit) {
                (None, _) | (Some(_), None) => true,
                (Some(iv), Some(last)) => now.duration_since(last) >= iv,
            };
        if fire {
            self.last_emit = Some(now);
            Some((rate, eta))
        } else {
            None
        }
    }
}

/// A campaign of `N` indexed trials: the engine's entry point.
///
/// `run` executes the [`Job`] once per trial on a work-stealing pool of
/// `jobs` workers (default: `ULP_JOBS`, else available parallelism) and
/// gathers results **by trial index**, so reductions downstream see
/// index order no matter which worker finished first. With `jobs = 1`
/// everything runs in the calling thread — no threads are spawned at
/// all — and the engine's contract is that both paths produce
/// byte-identical results.
pub struct Ensemble {
    trials: usize,
    root_seed: u64,
    jobs: Option<usize>,
    label: String,
    cancel: CancelToken,
    progress: Option<Box<ProgressFn>>,
    progress_every: Option<Duration>,
}

impl fmt::Debug for Ensemble {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ensemble")
            .field("trials", &self.trials)
            .field("root_seed", &self.root_seed)
            .field("jobs", &self.jobs)
            .field("label", &self.label)
            .field("cancelled", &self.cancel.is_cancelled())
            .field("progress", &self.progress.as_ref().map(|_| "<callback>"))
            .finish()
    }
}

impl Ensemble {
    /// A campaign of `trials` trials with root seed 0, default worker
    /// count, and no progress callback.
    pub fn new(trials: usize) -> Self {
        Ensemble {
            trials,
            root_seed: 0,
            jobs: None,
            label: "campaign".to_string(),
            cancel: CancelToken::new(),
            progress: None,
            progress_every: None,
        }
    }

    /// Sets the root seed all per-trial streams derive from.
    pub fn seed(mut self, root_seed: u64) -> Self {
        self.root_seed = root_seed;
        self
    }

    /// Overrides the worker count (clamped to ≥ 1); without this the
    /// engine consults [`default_jobs`] at run time.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs.max(1));
        self
    }

    /// Names the campaign; the name tags the `exec::<label>` phase
    /// event recorded on the solver-telemetry collector.
    pub fn label(mut self, label: &str) -> Self {
        self.label = label.to_string();
        self
    }

    /// Installs a progress callback, invoked after every finished trial
    /// (possibly concurrently from several workers).
    pub fn on_progress(mut self, f: impl Fn(&Progress) + Send + Sync + 'static) -> Self {
        self.progress = Some(Box::new(f));
        self
    }

    /// Rate-limits the progress callback: intermediate reports fire at
    /// most once per `interval` (high-trial-count campaigns otherwise
    /// pay a callback per trial). The first report and the final
    /// (`completed == total`) report always fire. Without this, every
    /// trial reports — the default, which cancellation-from-callback
    /// tests and fine-grained consumers rely on.
    pub fn progress_interval(mut self, interval: Duration) -> Self {
        self.progress_every = Some(interval);
        self
    }

    /// A handle for cancelling the campaign from outside (or from a
    /// progress callback).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Runs the job over every trial; element `i` of the returned vec
    /// is trial `i`'s outcome. A panicking trial yields
    /// [`TrialError::Panicked`] in its own slot and nothing else.
    pub fn run<J: Job>(&self, job: J) -> Vec<Result<J::Output, TrialError>> {
        self.run_with_report(job).0
    }

    /// [`Ensemble::run`], additionally returning the campaign's
    /// [`CampaignReport`] — the per-trial cost ledger in trial-index
    /// order with summary statistics. The report's counter fields are
    /// populated only when telemetry is active (a worker collector
    /// records the solver's work); its wall-clock fields are
    /// best-effort observability data and never influence results.
    ///
    /// When telemetry is active the report is also published to the
    /// process-wide log ([`crate::obs::take_reports`]) for footer
    /// rendering.
    pub fn run_with_report<J: Job>(
        &self,
        job: J,
    ) -> (Vec<Result<J::Output, TrialError>>, CampaignReport) {
        let jobs = self
            .jobs
            .unwrap_or_else(default_jobs)
            .clamp(1, self.trials.max(1));
        let name = format!("exec::{}", self.label);
        let (results, report) = telemetry::span("campaign", &name, None, || {
            telemetry::phase(&name, || self.run_on(jobs, &job))
        });
        if telemetry::global_enabled() {
            crate::obs::publish(report.clone());
        }
        (results, report)
    }

    /// Runs the job and folds the per-trial outputs **in trial-index
    /// order** with `fold`, short-circuiting on the first failed trial.
    ///
    /// # Errors
    ///
    /// The first (lowest-index) [`TrialError`] of the campaign.
    pub fn run_reduce<J: Job, A>(
        &self,
        job: J,
        init: A,
        mut fold: impl FnMut(A, J::Output) -> A,
    ) -> Result<A, TrialError> {
        let mut acc = init;
        for r in self.run(job) {
            acc = fold(acc, r?);
        }
        Ok(acc)
    }

    fn run_on<J: Job>(
        &self,
        jobs: usize,
        job: &J,
    ) -> (Vec<Result<J::Output, TrialError>>, CampaignReport) {
        let total = self.trials;
        let campaign_start = Instant::now();
        let counters_recorded = telemetry::global_enabled();
        // Routed through the sync shim so the model checker sees the
        // same counter discipline production uses.
        let completed = <StdSync as SyncProvider>::AtomicUsize::new(0);
        let pacer = Mutex::new(Pacer::new(self.progress_every));
        let root = SplitMix64::seed_from_u64(self.root_seed);
        let label: Arc<str> = Arc::from(self.label.as_str());
        let run_one = |trial: usize, worker: usize| -> (Result<J::Output, TrialError>, TrialCost) {
            let trial_start = Instant::now();
            let counters_before = telemetry::local_counters();
            let result = if self.cancel.is_cancelled() {
                Err(TrialError::Cancelled { trial })
            } else {
                let mut ctx = TrialCtx {
                    index: trial,
                    total,
                    rng: root.derive_stream(trial as u64),
                    cancel: self.cancel.clone(),
                };
                // Trial context tags this trial's telemetry events; the
                // span puts the trial on its worker's trace timeline.
                telemetry::with_trial_context(label.clone(), trial, || {
                    telemetry::span("trial", &label, Some(trial), || {
                        catch_unwind(AssertUnwindSafe(|| job.run(&mut ctx))).map_err(|payload| {
                            TrialError::Panicked {
                                trial,
                                message: panic_message(payload.as_ref()),
                            }
                        })
                    })
                })
            };
            let seconds = trial_start.elapsed().as_secs_f64();
            let counters = match (counters_before, telemetry::local_counters()) {
                (Some(before), Some(after)) => after.delta_since(before),
                _ => Default::default(),
            };
            let outcome = match &result {
                Ok(_) => TrialOutcome::Ok,
                Err(TrialError::Panicked { .. }) => TrialOutcome::Panicked,
                Err(TrialError::Cancelled { .. }) => TrialOutcome::Cancelled,
            };
            // Registry shards (no-ops when tracing is off): counters are
            // deterministic totals, the histogram is observability-only.
            telemetry::counter_add("ulp_trials_total", 1);
            if outcome == TrialOutcome::Panicked {
                telemetry::counter_add("ulp_trial_panics_total", 1);
            }
            if counters.newton_iterations > 0 {
                telemetry::counter_add(
                    "ulp_newton_iterations_total",
                    counters.newton_iterations as u64,
                );
            }
            telemetry::observe_seconds("ulp_trial_seconds", seconds);
            if let Some(cb) = &self.progress {
                let done = completed.fetch_add_acq_rel(1) + 1;
                let update = pacer
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .note(done, total);
                if let Some((rate_per_sec, eta_seconds)) = update {
                    cb(&Progress {
                        completed: done,
                        total,
                        trial,
                        worker,
                        rate_per_sec,
                        eta_seconds,
                    });
                }
            }
            let cost = TrialCost {
                trial,
                worker,
                seconds,
                outcome,
                counters,
            };
            (result, cost)
        };

        // Per-worker (batch, collector) pairs, in worker-index order.
        type WorkerBatch<T> = (
            Vec<(usize, (Result<T, TrialError>, TrialCost))>,
            Option<telemetry::MetricsCollector>,
        );
        let worker_batches: Vec<WorkerBatch<J::Output>> = if jobs == 1 {
            // Strictly serial fallback: the calling thread, no pool.
            vec![telemetry::worker_capture_on(0, || {
                (0..total).map(|t| (t, run_one(t, 0))).collect()
            })]
        } else {
            let deques = pool::deal::<StdSync>(total, jobs);
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..jobs)
                    .map(|w| {
                        let (deques, run_one) = (&deques, &run_one);
                        s.spawn(move || {
                            telemetry::worker_capture_on(w, || {
                                pool::worker_loop(w, deques, run_one)
                            })
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker thread machinery must not panic"))
                    .collect()
            })
        };

        // Deterministic gather: results and ledger entries land in
        // their trial slot, and worker telemetry folds into the global
        // collector in worker-index order — never completion order.
        let mut slots: Vec<Option<Result<J::Output, TrialError>>> =
            (0..total).map(|_| None).collect();
        let mut costs: Vec<Option<TrialCost>> = (0..total).map(|_| None).collect();
        for (batch, collector) in worker_batches {
            for (trial, (result, cost)) in batch {
                debug_assert!(slots[trial].is_none(), "trial scheduled twice");
                slots[trial] = Some(result);
                costs[trial] = Some(cost);
            }
            if let Some(mc) = collector {
                telemetry::fold_worker(&mc);
            }
        }
        let report = CampaignReport {
            label: self.label.clone(),
            trials: total,
            jobs,
            root_seed: self.root_seed,
            wall_seconds: campaign_start.elapsed().as_secs_f64(),
            counters_recorded,
            costs: costs
                .into_iter()
                .map(|c| c.expect("every trial costed exactly once"))
                .collect(),
        };
        let results = slots
            .into_iter()
            .map(|s| s.expect("every trial scheduled exactly once"))
            .collect();
        (results, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// A stochastic trial: its output depends only on (root seed,
    /// index) if the seed-derivation contract holds.
    fn noisy_trial(ctx: &mut TrialCtx) -> (usize, u64, f64) {
        let first: u64 = ctx.rng().gen();
        let mean = (0..100).map(|_| ctx.rng().gen::<f64>()).sum::<f64>() / 100.0;
        (ctx.index(), first, mean)
    }

    #[test]
    fn parallel_equals_serial_exactly() {
        let serial = Ensemble::new(17).seed(42).jobs(1).run(noisy_trial);
        let parallel = Ensemble::new(17).seed(42).jobs(4).run(noisy_trial);
        let s: Vec<_> = serial.into_iter().map(Result::unwrap).collect();
        let p: Vec<_> = parallel.into_iter().map(Result::unwrap).collect();
        assert_eq!(s, p, "trial outputs must not depend on scheduling");
        for (i, (idx, _, _)) in s.iter().enumerate() {
            assert_eq!(*idx, i, "gather must be in trial-index order");
        }
    }

    #[test]
    fn different_root_seeds_give_different_trials() {
        let a = Ensemble::new(4).seed(1).jobs(1).run(noisy_trial);
        let b = Ensemble::new(4).seed(2).jobs(1).run(noisy_trial);
        assert_ne!(a[0].as_ref().unwrap(), b[0].as_ref().unwrap());
    }

    #[test]
    fn panicking_trial_is_isolated() {
        for jobs in [1, 4] {
            let results = Ensemble::new(8).jobs(jobs).run(|ctx: &mut TrialCtx| {
                assert!(ctx.index() != 3, "die 3 is cursed");
                ctx.index() * 10
            });
            assert_eq!(results.len(), 8);
            for (i, r) in results.iter().enumerate() {
                if i == 3 {
                    let err = r.as_ref().unwrap_err();
                    assert_eq!(err.trial(), 3);
                    assert!(
                        err.to_string().contains("cursed"),
                        "payload must surface: {err}"
                    );
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i * 10, "siblings unpoisoned");
                }
            }
        }
    }

    #[test]
    fn cancel_before_run_skips_every_trial() {
        let ensemble = Ensemble::new(5).jobs(2);
        ensemble.cancel_token().cancel();
        let ran = AtomicBool::new(false);
        let results = ensemble.run(|_ctx: &mut TrialCtx| {
            ran.store(true, Ordering::Relaxed);
        });
        assert!(!ran.load(Ordering::Relaxed), "no trial body may run");
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap_err(), TrialError::Cancelled { trial: i });
        }
    }

    #[test]
    fn cancel_from_progress_callback_stops_the_serial_tail() {
        let ensemble = Ensemble::new(6).jobs(1);
        let token = ensemble.cancel_token();
        let ensemble = ensemble.on_progress(move |p| {
            if p.completed == 2 {
                token.cancel();
            }
        });
        let results = ensemble.run(|ctx: &mut TrialCtx| ctx.index());
        // Serial order: trials 0 and 1 ran, the rest were skipped.
        assert!(results[0].is_ok() && results[1].is_ok());
        for r in &results[2..] {
            assert!(matches!(r, Err(TrialError::Cancelled { .. })));
        }
    }

    #[test]
    fn progress_reports_every_trial_once() {
        let seen = std::sync::Arc::new(Mutex::new(Vec::new()));
        let completed_max = std::sync::Arc::new(AtomicUsize::new(0));
        // Progress callbacks fire concurrently; collect under a lock.
        let (seen_cb, max_cb) = (seen.clone(), completed_max.clone());
        let results = Ensemble::new(20)
            .jobs(4)
            .on_progress(move |p: &Progress| {
                assert_eq!(p.total, 20);
                assert!(p.worker < 4);
                max_cb.fetch_max(p.completed, Ordering::Relaxed);
                seen_cb.lock().unwrap().push(p.trial);
            })
            .run(|ctx: &mut TrialCtx| ctx.index());
        assert_eq!(results.len(), 20);
        let mut trials = seen.lock().unwrap().clone();
        trials.sort_unstable();
        assert_eq!(trials, (0..20).collect::<Vec<_>>());
        assert_eq!(completed_max.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn run_reduce_folds_in_index_order_and_short_circuits() {
        let concat = Ensemble::new(5)
            .jobs(3)
            .run_reduce(
                |ctx: &mut TrialCtx| ctx.index().to_string(),
                String::new(),
                |acc, s| acc + &s,
            )
            .unwrap();
        assert_eq!(concat, "01234");
        let err = Ensemble::new(5)
            .jobs(3)
            .run_reduce(
                |ctx: &mut TrialCtx| assert!(ctx.index() < 2),
                (),
                |(), ()| (),
            )
            .unwrap_err();
        assert_eq!(err.trial(), 2, "lowest failing index wins");
    }

    #[test]
    fn zero_trials_is_a_clean_no_op() {
        let results = Ensemble::new(0).jobs(4).run(|ctx: &mut TrialCtx| ctx.index());
        assert!(results.is_empty());
    }

    #[test]
    fn more_workers_than_trials_is_fine() {
        let results = Ensemble::new(2).jobs(64).run(|ctx: &mut TrialCtx| ctx.index());
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(Result::is_ok));
    }

    #[test]
    fn jobs_parsing_accepts_positive_integers() {
        assert_eq!(jobs_from_str("4"), Ok(4));
        assert_eq!(jobs_from_str(" 1 "), Ok(1));
        assert_eq!(jobs_from_str("64"), Ok(64));
    }

    #[test]
    fn jobs_parsing_rejects_zero_with_a_typed_error() {
        assert_eq!(jobs_from_str("0"), Err(JobsError::Zero));
        assert_eq!(jobs_from_str(" 0 "), Err(JobsError::Zero));
    }

    #[test]
    fn jobs_parsing_rejects_negatives_with_a_typed_error() {
        assert_eq!(
            jobs_from_str("-2"),
            Err(JobsError::Negative { value: "-2".into() })
        );
        assert_eq!(
            jobs_from_str("-999"),
            Err(JobsError::Negative {
                value: "-999".into()
            })
        );
    }

    #[test]
    fn jobs_parsing_rejects_garbage_with_a_typed_error() {
        for garbage in ["many", "4.5", "1e3", "four", "--3", "-", "0x10"] {
            assert_eq!(
                jobs_from_str(garbage),
                Err(JobsError::NotANumber {
                    value: garbage.into()
                }),
                "{garbage:?} must be rejected as not-a-number"
            );
        }
    }

    #[test]
    fn jobs_resolution_falls_back_only_when_unset_or_blank() {
        assert!(resolve_jobs(None).unwrap() >= 1, "unset: machine default");
        assert!(resolve_jobs(Some("")).unwrap() >= 1, "empty: machine default");
        assert!(resolve_jobs(Some("  ")).unwrap() >= 1, "blank: machine default");
        assert_eq!(resolve_jobs(Some("3")), Ok(3));
        assert_eq!(resolve_jobs(Some("0")), Err(JobsError::Zero));
        assert_eq!(
            resolve_jobs(Some("-1")),
            Err(JobsError::Negative { value: "-1".into() })
        );
        assert_eq!(
            resolve_jobs(Some("lots")),
            Err(JobsError::NotANumber {
                value: "lots".into()
            })
        );
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn debug_does_not_explode_on_callbacks() {
        let e = Ensemble::new(3).jobs(2).label("dbg").on_progress(|_| {});
        let s = format!("{e:?}");
        assert!(s.contains("dbg") && s.contains("<callback>"), "{s}");
    }

    #[test]
    fn run_with_report_ledger_is_index_ordered_and_complete() {
        for jobs in [1, 4] {
            let (results, report) = Ensemble::new(9)
                .seed(3)
                .jobs(jobs)
                .label("ledger")
                .run_with_report(noisy_trial);
            assert_eq!(results.len(), 9);
            assert_eq!(report.label, "ledger");
            assert_eq!((report.trials, report.jobs, report.root_seed), (9, jobs, 3));
            assert_eq!(report.costs.len(), 9);
            for (i, c) in report.costs.iter().enumerate() {
                assert_eq!(c.trial, i, "ledger must be in trial-index order");
                assert!(c.worker < jobs);
                assert!(c.seconds >= 0.0);
                assert_eq!(c.outcome, crate::obs::TrialOutcome::Ok);
            }
            assert!(report.wall_seconds >= 0.0);
        }
    }

    #[test]
    fn ledger_counter_subset_is_byte_identical_across_job_counts() {
        // noisy_trial never touches the solver, so the counters are all
        // zero — but the *rendering* (trial order, outcomes, structure)
        // must still match byte-for-byte between schedules.
        let (_, serial) = Ensemble::new(12).seed(5).jobs(1).run_with_report(noisy_trial);
        let (_, parallel) = Ensemble::new(12).seed(5).jobs(4).run_with_report(noisy_trial);
        assert_eq!(serial.counters_json(), parallel.counters_json());
    }

    #[test]
    fn ledger_records_panicked_and_cancelled_outcomes() {
        let (_, report) = Ensemble::new(6).jobs(1).run_with_report(|ctx: &mut TrialCtx| {
            assert!(ctx.index() != 2, "die 2 is cursed");
        });
        assert_eq!(report.costs[2].outcome, crate::obs::TrialOutcome::Panicked);
        assert_eq!(report.panicked_trials(), 1);
        assert_eq!(report.ok_trials(), 5);

        let ensemble = Ensemble::new(4).jobs(1);
        ensemble.cancel_token().cancel();
        let (_, report) = ensemble.run_with_report(|_ctx: &mut TrialCtx| ());
        assert_eq!(report.cancelled_trials(), 4);
        assert!(report
            .costs
            .iter()
            .all(|c| c.outcome == crate::obs::TrialOutcome::Cancelled));
    }

    #[test]
    fn progress_carries_rate_and_eta() {
        let final_report = std::sync::Arc::new(Mutex::new(None));
        let sink = final_report.clone();
        Ensemble::new(10)
            .jobs(2)
            .on_progress(move |p: &Progress| {
                assert!(p.rate_per_sec >= 0.0);
                assert!(p.eta_seconds >= 0.0);
                if p.completed == p.total {
                    *sink.lock().unwrap() = Some(*p);
                }
            })
            .run(|ctx: &mut TrialCtx| ctx.index());
        let last = final_report.lock().unwrap().expect("final report fires");
        assert_eq!(last.completed, 10);
        assert_eq!(last.eta_seconds, 0.0, "done means zero ETA");
    }

    #[test]
    fn progress_interval_rate_limits_but_always_fires_the_final_report() {
        let calls = std::sync::Arc::new(AtomicUsize::new(0));
        let saw_final = std::sync::Arc::new(AtomicBool::new(false));
        let (calls_cb, final_cb) = (calls.clone(), saw_final.clone());
        Ensemble::new(200)
            .jobs(1)
            .progress_interval(std::time::Duration::from_secs(3600))
            .on_progress(move |p: &Progress| {
                calls_cb.fetch_add(1, Ordering::Relaxed);
                if p.completed == p.total {
                    final_cb.store(true, Ordering::Relaxed);
                }
            })
            .run(|ctx: &mut TrialCtx| ctx.index());
        let n = calls.load(Ordering::Relaxed);
        assert!(n < 200, "an hour-long interval must suppress per-trial reports, got {n}");
        assert!(saw_final.load(Ordering::Relaxed), "final report always fires");
    }

    #[test]
    fn pacer_window_rate_and_eta_units() {
        let mut p = Pacer::new(None);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let (rate, eta) = p.note(1, 3).expect("unlimited pacer always fires");
        assert!(rate > 0.0, "clock advanced, rate known: {rate}");
        assert!(eta.is_finite() && eta > 0.0);
        let (_, eta) = p.note(3, 3).expect("final always fires");
        assert_eq!(eta, 0.0);
        // The window never outgrows its bound.
        for k in 0..100 {
            let _ = p.note(k, 1000);
        }
        assert!(p.window.len() <= RATE_WINDOW);
    }
}
