//! Campaign observability: the per-trial cost ledger and the
//! [`CampaignReport`] every [`crate::Ensemble`] run assembles.
//!
//! The ledger is the input the ROADMAP's cost-aware dealing needs: one
//! [`TrialCost`] per trial, in **trial-index order** regardless of
//! which worker ran it or when it finished. Each entry splits into
//!
//! * a **deterministic** part — the [`SolverCounters`] diffed around
//!   the trial on its worker's thread-local collector (Newton
//!   iterations, solves, gmin fallbacks, refactorizations) plus the
//!   trial index and outcome — byte-identical at any `ULP_JOBS`
//!   ([`CampaignReport::counters_json`] renders exactly this subset and
//!   is compared byte-for-byte in CI); and
//! * a **best-effort** part — wall-clock seconds and the worker index
//!   — which lives only in observability outputs
//!   ([`CampaignReport::to_json`], the footer table) and is allowed to
//!   differ run to run.
//!
//! Reports from traced campaigns are also published to a process-wide
//! log ([`reports_snapshot`]/[`take_reports`]) so a bench harness can
//! render campaign summary tables after the fact without threading the
//! report through every return type.

use std::fmt::Write as _;
use std::sync::Mutex;

use ulp_spice::telemetry::SolverCounters;

/// How a trial ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialOutcome {
    /// The job ran to completion.
    Ok,
    /// The job panicked (isolated to its slot).
    Panicked,
    /// The trial was skipped because the campaign was cancelled.
    Cancelled,
}

impl TrialOutcome {
    /// Stable machine-readable rendering.
    pub fn as_str(self) -> &'static str {
        match self {
            TrialOutcome::Ok => "ok",
            TrialOutcome::Panicked => "panicked",
            TrialOutcome::Cancelled => "cancelled",
        }
    }
}

/// One trial's ledger entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialCost {
    /// Trial index within the campaign.
    pub trial: usize,
    /// Worker that ran it (observability only).
    pub worker: usize,
    /// Wall-clock seconds the trial took (observability only).
    pub seconds: f64,
    /// How the trial ended.
    pub outcome: TrialOutcome,
    /// Deterministic solver-work counters accrued by the trial (all
    /// zero when telemetry is off or the job never touches the solver).
    pub counters: SolverCounters,
}

/// Per-worker share of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerUtilization {
    /// Worker index, `0..jobs`.
    pub worker: usize,
    /// Trials this worker ran.
    pub trials: usize,
    /// Wall-clock seconds spent inside trials.
    pub busy_seconds: f64,
    /// `busy_seconds` over the campaign's wall time (can slightly
    /// exceed 1 from clock granularity).
    pub utilization: f64,
}

/// The assembled cost ledger and summary statistics of one campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// The campaign's label (`Ensemble::label`).
    pub label: String,
    /// Trials in the campaign.
    pub trials: usize,
    /// Workers the campaign ran on.
    pub jobs: usize,
    /// Root seed the per-trial streams derived from.
    pub root_seed: u64,
    /// Campaign wall-clock time, s (observability only).
    pub wall_seconds: f64,
    /// Whether per-trial counters were recorded (telemetry active); all
    /// counter fields are zero when false.
    pub counters_recorded: bool,
    /// One entry per trial, **in trial-index order**.
    pub costs: Vec<TrialCost>,
}

/// Nearest-rank percentile of a sample set (`0.0` when empty).
fn percentile_f64(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable_by(f64::total_cmp);
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Nearest-rank percentile of an integer sample set (`0` when empty).
fn percentile_usize(samples: &[usize], q: f64) -> usize {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Formats an `f64` as a JSON number (`null` for non-finite values).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "null".to_string()
    }
}

impl CampaignReport {
    /// Trials that completed.
    pub fn ok_trials(&self) -> usize {
        self.outcome_count(TrialOutcome::Ok)
    }

    /// Trials that panicked.
    pub fn panicked_trials(&self) -> usize {
        self.outcome_count(TrialOutcome::Panicked)
    }

    /// Trials skipped as cancelled.
    pub fn cancelled_trials(&self) -> usize {
        self.outcome_count(TrialOutcome::Cancelled)
    }

    fn outcome_count(&self, outcome: TrialOutcome) -> usize {
        self.costs.iter().filter(|c| c.outcome == outcome).count()
    }

    /// Campaign throughput, trials per wall-clock second (0 for an
    /// instantaneous or empty campaign).
    pub fn throughput_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.trials as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Wall-clock seconds summed over trials (busy time across all
    /// workers).
    pub fn total_trial_seconds(&self) -> f64 {
        self.costs.iter().map(|c| c.seconds).sum()
    }

    /// Nearest-rank percentile of per-trial wall-clock cost, s.
    pub fn percentile_seconds(&self, q: f64) -> f64 {
        let samples: Vec<f64> = self.costs.iter().map(|c| c.seconds).collect();
        percentile_f64(&samples, q)
    }

    /// Worst per-trial wall-clock cost, s.
    pub fn max_seconds(&self) -> f64 {
        self.costs.iter().map(|c| c.seconds).fold(0.0, f64::max)
    }

    /// Nearest-rank percentile of per-trial Newton iterations.
    pub fn percentile_iterations(&self, q: f64) -> usize {
        let samples: Vec<usize> = self
            .costs
            .iter()
            .map(|c| c.counters.newton_iterations)
            .collect();
        percentile_usize(&samples, q)
    }

    /// The ETA model: predicted wall-clock seconds for `remaining`
    /// further trials at this campaign's observed throughput
    /// (`f64::INFINITY` when the throughput is unknown).
    pub fn eta_seconds(&self, remaining: usize) -> f64 {
        if remaining == 0 {
            return 0.0;
        }
        let rate = self.throughput_per_sec();
        if rate > 0.0 {
            remaining as f64 / rate
        } else {
            f64::INFINITY
        }
    }

    /// Per-worker trial counts, busy time, and utilization, for all
    /// workers `0..jobs` (idle workers report zeros).
    pub fn worker_utilization(&self) -> Vec<WorkerUtilization> {
        let mut out: Vec<WorkerUtilization> = (0..self.jobs)
            .map(|worker| WorkerUtilization {
                worker,
                trials: 0,
                busy_seconds: 0.0,
                utilization: 0.0,
            })
            .collect();
        for c in &self.costs {
            if let Some(w) = out.get_mut(c.worker) {
                w.trials += 1;
                w.busy_seconds += c.seconds;
            }
        }
        if self.wall_seconds > 0.0 {
            for w in &mut out {
                w.utilization = w.busy_seconds / self.wall_seconds;
            }
        }
        out
    }

    /// Sum of the deterministic counters over all trials.
    pub fn counters_total(&self) -> SolverCounters {
        let mut total = SolverCounters::default();
        for c in &self.costs {
            total.attempts += c.counters.attempts;
            total.solves += c.counters.solves;
            total.failures += c.counters.failures;
            total.newton_iterations += c.counters.newton_iterations;
            total.gmin_fallbacks += c.counters.gmin_fallbacks;
            total.symbolic_factorizations += c.counters.symbolic_factorizations;
            total.numeric_refactorizations += c.counters.numeric_refactorizations;
            total.tran_steps += c.counters.tran_steps;
            total.tran_rejected += c.counters.tran_rejected;
            total.lte_exceeded += c.counters.lte_exceeded;
            total.devices_bypassed += c.counters.devices_bypassed;
            total.ac_points += c.counters.ac_points;
            total.sweep_points += c.counters.sweep_points;
            total.noise_points += c.counters.noise_points;
        }
        total
    }

    /// Renders one ledger entry's deterministic fields (no worker, no
    /// seconds) as a JSON object.
    fn counters_entry_json(cost: &TrialCost) -> String {
        let k = &cost.counters;
        format!(
            "{{\"trial\":{},\"outcome\":\"{}\",\"attempts\":{},\"solves\":{},\"failures\":{},\"newton_iterations\":{},\"gmin_fallbacks\":{},\"symbolic_factorizations\":{},\"numeric_refactorizations\":{},\"tran_steps\":{},\"tran_rejected\":{},\"lte_exceeded\":{},\"devices_bypassed\":{},\"ac_points\":{},\"sweep_points\":{},\"noise_points\":{}}}",
            cost.trial,
            cost.outcome.as_str(),
            k.attempts,
            k.solves,
            k.failures,
            k.newton_iterations,
            k.gmin_fallbacks,
            k.symbolic_factorizations,
            k.numeric_refactorizations,
            k.tran_steps,
            k.tran_rejected,
            k.lte_exceeded,
            k.devices_bypassed,
            k.ac_points,
            k.sweep_points,
            k.noise_points
        )
    }

    /// The **deterministic subset** of the ledger as JSON: label,
    /// trials, seed, and per-trial counters in trial-index order — no
    /// wall-clock, no worker identity, no job count. This rendering is
    /// byte-identical at any `ULP_JOBS` (asserted in tests and CI).
    pub fn counters_json(&self) -> String {
        let mut s = String::with_capacity(64 + self.costs.len() * 160);
        let _ = write!(
            s,
            "{{\"label\":\"{}\",\"trials\":{},\"root_seed\":{},\"counters_recorded\":{},\"ledger\":[",
            self.label.replace('\\', "\\\\").replace('"', "\\\""),
            self.trials,
            self.root_seed,
            self.counters_recorded
        );
        for (k, cost) in self.costs.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            s.push('\n');
            s.push_str(&Self::counters_entry_json(cost));
        }
        s.push_str("\n]}\n");
        s
    }

    /// The full report (summary statistics, worker utilization, and the
    /// complete ledger including wall-clock fields) as JSON. Contains
    /// timings, so it is observability output — not byte-stable across
    /// runs.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512 + self.costs.len() * 200);
        let _ = write!(
            s,
            "{{\"label\":\"{}\",\"trials\":{},\"jobs\":{},\"root_seed\":{},\"wall_seconds\":{},\"ok\":{},\"panicked\":{},\"cancelled\":{},\"throughput_per_sec\":{},\"p50_seconds\":{},\"p95_seconds\":{},\"max_seconds\":{},\"p50_newton_iterations\":{},\"p95_newton_iterations\":{},\"counters_recorded\":{}",
            self.label.replace('\\', "\\\\").replace('"', "\\\""),
            self.trials,
            self.jobs,
            self.root_seed,
            json_num(self.wall_seconds),
            self.ok_trials(),
            self.panicked_trials(),
            self.cancelled_trials(),
            json_num(self.throughput_per_sec()),
            json_num(self.percentile_seconds(50.0)),
            json_num(self.percentile_seconds(95.0)),
            json_num(self.max_seconds()),
            self.percentile_iterations(50.0),
            self.percentile_iterations(95.0),
            self.counters_recorded
        );
        s.push_str(",\"workers\":[");
        for (k, w) in self.worker_utilization().iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"worker\":{},\"trials\":{},\"busy_seconds\":{},\"utilization\":{}}}",
                w.worker,
                w.trials,
                json_num(w.busy_seconds),
                json_num(w.utilization)
            );
        }
        s.push_str("],\"costs\":[");
        for (k, cost) in self.costs.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            s.push('\n');
            let mut entry = Self::counters_entry_json(cost);
            entry.pop(); // splice the observability fields before '}'
            let _ = write!(
                entry,
                ",\"worker\":{},\"seconds\":{}}}",
                cost.worker,
                json_num(cost.seconds)
            );
            s.push_str(&entry);
        }
        s.push_str("\n]}\n");
        s
    }

    /// The stable multi-line `-- campaign --` footer table: throughput,
    /// ETA model, p50/p95 trial cost, worker utilization.
    pub fn summary_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "-- campaign: {} --", self.label);
        let _ = writeln!(
            s,
            "trials            : {} total ({} ok, {} panicked, {} cancelled) on {} worker{}",
            self.trials,
            self.ok_trials(),
            self.panicked_trials(),
            self.cancelled_trials(),
            self.jobs,
            if self.jobs == 1 { "" } else { "s" }
        );
        let _ = writeln!(
            s,
            "throughput        : {:.3e} trials/s (wall {:.3e} s)",
            self.throughput_per_sec(),
            self.wall_seconds
        );
        let _ = writeln!(
            s,
            "trial cost        : p50 {:.3e} s, p95 {:.3e} s, max {:.3e} s",
            self.percentile_seconds(50.0),
            self.percentile_seconds(95.0),
            self.max_seconds()
        );
        let _ = writeln!(
            s,
            "newton per trial  : p50 {}, p95 {} (counters {})",
            self.percentile_iterations(50.0),
            self.percentile_iterations(95.0),
            if self.counters_recorded {
                "recorded"
            } else {
                "not recorded"
            }
        );
        let _ = writeln!(
            s,
            "eta model         : +{} trials \u{2248} {:.3e} s",
            self.trials,
            self.eta_seconds(self.trials)
        );
        let _ = write!(s, "worker utilization:");
        for w in self.worker_utilization() {
            let _ = write!(
                s,
                " w{} {:.0}% ({} trial{})",
                w.worker,
                100.0 * w.utilization,
                w.trials,
                if w.trials == 1 { "" } else { "s" }
            );
        }
        s
    }
}

/// The process-wide report log, fed by traced `Ensemble` runs.
static REPORTS: Mutex<Vec<CampaignReport>> = Mutex::new(Vec::new());

fn reports_lock() -> std::sync::MutexGuard<'static, Vec<CampaignReport>> {
    REPORTS.lock().unwrap_or_else(|e| e.into_inner())
}

/// Appends a report to the process-wide log (done by `Ensemble::run`
/// when telemetry is active).
pub(crate) fn publish(report: CampaignReport) {
    reports_lock().push(report);
}

/// A copy of the published reports, campaign-completion order.
pub fn reports_snapshot() -> Vec<CampaignReport> {
    reports_lock().clone()
}

/// Takes the published reports, leaving the log empty (what a bench
/// footer calls so campaigns are reported once).
pub fn take_reports() -> Vec<CampaignReport> {
    std::mem::take(&mut *reports_lock())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(trial: usize, worker: usize, seconds: f64, iters: usize) -> TrialCost {
        TrialCost {
            trial,
            worker,
            seconds,
            outcome: TrialOutcome::Ok,
            counters: SolverCounters {
                attempts: 1,
                solves: 1,
                newton_iterations: iters,
                ..SolverCounters::default()
            },
        }
    }

    fn report() -> CampaignReport {
        CampaignReport {
            label: "test::campaign".into(),
            trials: 4,
            jobs: 2,
            root_seed: 7,
            wall_seconds: 2.0,
            counters_recorded: true,
            costs: vec![
                cost(0, 0, 1.0, 5),
                cost(1, 1, 0.5, 10),
                cost(2, 0, 0.25, 10),
                cost(3, 1, 0.25, 20),
            ],
        }
    }

    #[test]
    fn summary_statistics_are_nearest_rank() {
        let r = report();
        assert_eq!(r.ok_trials(), 4);
        assert!((r.throughput_per_sec() - 2.0).abs() < 1e-12);
        assert!((r.total_trial_seconds() - 2.0).abs() < 1e-12);
        assert_eq!(r.percentile_seconds(50.0), 0.25);
        assert_eq!(r.percentile_seconds(95.0), 1.0);
        assert_eq!(r.max_seconds(), 1.0);
        assert_eq!(r.percentile_iterations(50.0), 10);
        assert_eq!(r.percentile_iterations(95.0), 20);
        assert!((r.eta_seconds(4) - 2.0).abs() < 1e-12);
        assert_eq!(r.eta_seconds(0), 0.0);
        assert_eq!(r.counters_total().newton_iterations, 45);
    }

    #[test]
    fn worker_utilization_covers_all_workers() {
        let r = report();
        let u = r.worker_utilization();
        assert_eq!(u.len(), 2);
        assert_eq!((u[0].trials, u[1].trials), (2, 2));
        assert!((u[0].busy_seconds - 1.25).abs() < 1e-12);
        assert!((u[0].utilization - 0.625).abs() < 1e-12);
        // An idle worker still appears, with zeros.
        let mut wide = report();
        wide.jobs = 4;
        let u = wide.worker_utilization();
        assert_eq!(u.len(), 4);
        assert_eq!((u[3].trials, u[3].busy_seconds), (0, 0.0));
    }

    #[test]
    fn counters_json_excludes_every_timing_field() {
        let json = report().counters_json();
        assert!(json.contains("\"label\":\"test::campaign\""));
        assert!(json.contains("\"trial\":0"));
        assert!(json.contains("\"newton_iterations\":5"));
        assert!(!json.contains("seconds"), "no wall-clock in the subset");
        assert!(!json.contains("worker"), "no worker identity either");
        assert!(!json.contains("\"jobs\""), "job count may differ across runs");
    }

    #[test]
    fn counters_json_is_identical_for_different_schedules() {
        // The same trials timed differently on different workers with a
        // different job count must render the same deterministic subset.
        let a = report();
        let mut b = report();
        b.jobs = 4;
        b.wall_seconds = 17.0;
        for (k, c) in b.costs.iter_mut().enumerate() {
            c.worker = 3 - k;
            c.seconds *= 10.0;
        }
        assert_eq!(a.counters_json(), b.counters_json());
        assert_ne!(a.to_json(), b.to_json(), "the full report does differ");
    }

    #[test]
    fn footer_table_has_the_advertised_rows() {
        let s = report().summary_table();
        for key in [
            "-- campaign: test::campaign --",
            "trials            :",
            "throughput        :",
            "trial cost        : p50",
            "newton per trial  : p50 10, p95 20 (counters recorded)",
            "eta model         :",
            "worker utilization: w0",
        ] {
            assert!(s.contains(key), "missing `{key}` in:\n{s}");
        }
    }

    #[test]
    fn report_log_snapshot_and_take() {
        // The log is process-global; keep this test self-contained by
        // draining first.
        let _ = take_reports();
        publish(report());
        publish(report());
        assert_eq!(reports_snapshot().len(), 2);
        assert_eq!(take_reports().len(), 2);
        assert!(reports_snapshot().is_empty());
    }

    #[test]
    fn percentiles_handle_empty_and_single() {
        assert_eq!(percentile_f64(&[], 50.0), 0.0);
        assert_eq!(percentile_f64(&[3.0], 95.0), 3.0);
        assert_eq!(percentile_usize(&[], 50.0), 0);
        assert_eq!(percentile_usize(&[9], 95.0), 9);
        let empty = CampaignReport {
            label: "empty".into(),
            trials: 0,
            jobs: 1,
            root_seed: 0,
            wall_seconds: 0.0,
            counters_recorded: false,
            costs: vec![],
        };
        assert_eq!(empty.throughput_per_sec(), 0.0);
        assert_eq!(empty.eta_seconds(5), f64::INFINITY);
        assert!(empty.counters_json().contains("\"ledger\":[\n]"));
    }
}
