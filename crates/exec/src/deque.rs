//! The per-worker work-stealing deque.
//!
//! Chase–Lev discipline over a mutex (this workspace is std-only, so no
//! lock-free atomics gymnastics): the owning worker pushes and pops at
//! the *bottom* (LIFO — freshly pushed work is cache-hot), thieves
//! steal from the *top* (FIFO — the oldest work, which for a
//! range-partitioned campaign is also the largest remaining contiguous
//! chunk's far end). The mutex critical sections are a handful of
//! pointer moves, so contention is negligible next to any trial that is
//! worth parallelising in the first place.
//!
//! The deque is generic over a [`SyncProvider`]: production code uses
//! the [`StdSync`] default (a plain `std::sync::Mutex`), while the
//! `ulp-check` model checker instantiates it with a virtual provider
//! whose lock operations are preemption points of a schedule explorer.

use crate::sync::{StdSync, SyncMutex, SyncProvider};
use std::collections::VecDeque;
use std::fmt;

/// A mutex-protected work-stealing deque.
pub struct WorkDeque<T: Send, P: SyncProvider = StdSync> {
    inner: P::Mutex<VecDeque<T>>,
}

impl<T: Send, P: SyncProvider> Default for WorkDeque<T, P> {
    fn default() -> Self {
        WorkDeque::new()
    }
}

impl<T: Send, P: SyncProvider> fmt::Debug for WorkDeque<T, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Deliberately opaque: formatting must not take the (possibly
        // virtual, schedule-instrumented) lock.
        f.debug_struct("WorkDeque").finish_non_exhaustive()
    }
}

impl<T: Send, P: SyncProvider> WorkDeque<T, P> {
    /// Creates an empty deque.
    pub fn new() -> Self {
        WorkDeque {
            inner: P::Mutex::new(VecDeque::new()),
        }
    }

    /// Pushes work at the bottom (owner side).
    pub fn push(&self, item: T) {
        self.inner.with(|q| q.push_back(item));
    }

    /// Pops from the bottom — the owner's LIFO fast path.
    pub fn pop(&self) -> Option<T> {
        self.inner.with(|q| q.pop_back())
    }

    /// Steals from the top — a thief's FIFO slow path.
    pub fn steal(&self) -> Option<T> {
        self.inner.with(|q| q.pop_front())
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        self.inner.with(|q| q.len())
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.inner.with(|q| q.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let d: WorkDeque<i32> = WorkDeque::new();
        for i in 0..4 {
            d.push(i);
        }
        assert_eq!(d.len(), 4);
        assert_eq!(d.pop(), Some(3), "owner takes the freshest item");
        assert_eq!(d.steal(), Some(0), "thief takes the oldest item");
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.steal(), Some(1));
        assert!(d.is_empty());
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), None);
    }

    #[test]
    fn concurrent_drain_loses_nothing() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let d: WorkDeque<u64> = WorkDeque::new();
        let n = 10_000u64;
        for i in 0..n {
            d.push(i);
        }
        let sum = AtomicU64::new(0);
        std::thread::scope(|s| {
            for worker in 0..4 {
                let (d, sum) = (&d, &sum);
                s.spawn(move || loop {
                    // Half the workers act as owners, half as thieves.
                    let item = if worker % 2 == 0 { d.pop() } else { d.steal() };
                    match item {
                        Some(v) => {
                            sum.fetch_add(v, Ordering::Relaxed);
                        }
                        None => break,
                    }
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
        assert!(d.is_empty());
    }

    #[test]
    fn debug_is_opaque_and_lock_free() {
        let d: WorkDeque<u8> = WorkDeque::new();
        assert!(format!("{d:?}").contains("WorkDeque"));
    }
}
