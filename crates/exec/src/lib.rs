//! `ulp-exec`: deterministic parallel execution for Monte-Carlo
//! ensembles and parameter sweeps.
//!
//! Every quantitative experiment in this workspace is an embarrassingly
//! parallel campaign — mismatch dies for the Fig. 11 INL/DNL ensemble
//! and parametric yield, PVT corner grids for the replica-bias check,
//! fs/VDD/ISS sweeps for the chip-summary table. This crate is the
//! scheduling substrate they all share: a std-only work-stealing thread
//! pool (per-worker [`deque::WorkDeque`]s, round-robin deal, neighbour
//! stealing) under a [`Job`]/[`Ensemble`] API that runs a closure over
//! `N` indexed trials and gathers the results by trial index.
//!
//! # The determinism contract
//!
//! Parallel output is **byte-identical** to serial output:
//!
//! * each trial's randomness is a [`rand::rngs::SplitMix64`] stream
//!   derived from `hash(root_seed, trial_index)`
//!   ([`SplitMix64::derive_stream`](rand::rngs::SplitMix64::derive_stream)) —
//!   never from worker identity or completion order;
//! * results are gathered **by trial index** and reduced in index
//!   order ([`Ensemble::run_reduce`]), so a reduction never observes
//!   scheduling;
//! * worker count changes wall-clock time only: `ULP_JOBS=1` (the
//!   strictly serial in-thread path) and `ULP_JOBS=64` produce the same
//!   bytes.
//!
//! # Failure and control
//!
//! A panicking trial is caught at the trial boundary and surfaces as
//! [`TrialError::Panicked`] in its own result slot — sibling trials are
//! unaffected and the campaign completes. Cancellation is cooperative
//! via [`CancelToken`]; a cancelled campaign reports unstarted trials
//! as [`TrialError::Cancelled`]. Progress callbacks fire after every
//! finished trial (rate-limitable via [`Ensemble::progress_interval`])
//! and carry a sliding-window throughput estimate and ETA. Solver
//! telemetry (`ulp_spice::telemetry`) is wired through: each worker
//! thread captures its events in a thread-local collector (no
//! global-lock contention mid-campaign) that folds into the
//! process-global collector at campaign end in worker-index order, and
//! the campaign itself records an `exec::<label>` phase event.
//!
//! # Campaign observability
//!
//! Every run also assembles a per-trial cost ledger
//! ([`obs::CampaignReport`], via [`Ensemble::run_with_report`]): wall
//! time, worker, outcome and — when telemetry is active — the
//! deterministic solver counters (Newton iterations, solves, gmin
//! fallbacks, refactorizations) each trial accrued, folded in
//! trial-index order with nearest-rank cost percentiles and per-worker
//! utilization. The counter-only subset
//! ([`obs::CampaignReport::counters_json`]) is byte-identical at any
//! `ULP_JOBS`; wall-clock fields are observability-only. Under
//! `ULP_TRACE=spans` each trial additionally records a span on its
//! worker's Chrome-trace timeline (see `ulp_spice::telemetry`).
//!
//! # Example
//!
//! ```
//! use rand::Rng;
//! use ulp_exec::{Ensemble, TrialCtx};
//!
//! // A 32-trial Monte-Carlo estimate of E[x²], x ~ U(0,1), reduced in
//! // trial-index order. The result is bit-identical for any worker
//! // count.
//! let campaign = |ctx: &mut TrialCtx| {
//!     let x: f64 = ctx.rng().gen();
//!     x * x
//! };
//! let serial = Ensemble::new(32).seed(7).jobs(1).run_reduce(campaign, 0.0, |a, x| a + x);
//! let parallel = Ensemble::new(32).seed(7).jobs(4).run_reduce(campaign, 0.0, |a, x| a + x);
//! let estimate = serial.unwrap() / 32.0;
//! assert_eq!(estimate.to_bits(), (parallel.unwrap() / 32.0).to_bits());
//! assert!((estimate - 1.0 / 3.0).abs() < 0.1);
//! ```

//! # Verifying the contract, not just observing it
//!
//! Every synchronization primitive the engine touches goes through the
//! [`sync::SyncProvider`] seam: [`sync::StdSync`] (the default) *is*
//! `std::sync` after monomorphization, while the `ulp-check` crate
//! substitutes a virtual provider whose every acquire/release/load/
//! store is a preemption point of a bounded schedule explorer with a
//! vector-clock race auditor. The scheduling core ([`pool`], [`deque`],
//! [`cancel`]) is therefore model-checked as shipped — see DESIGN.md
//! "Concurrency model" for the happens-before contract and how to run
//! the explorer locally.

#![forbid(unsafe_code)]

pub mod cancel;
pub mod deque;
pub mod ensemble;
pub mod error;
pub mod obs;
pub mod pool;
pub mod sync;

pub use cancel::CancelToken;
pub use ensemble::{default_jobs, jobs_from_env, jobs_from_str, Ensemble, Job, Progress, TrialCtx};
pub use error::{JobsError, TrialError};
pub use obs::{CampaignReport, TrialCost, TrialOutcome, WorkerUtilization};
