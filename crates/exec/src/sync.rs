//! The synchronization shim: every primitive the engine schedules
//! through, behind one swappable [`SyncProvider`].
//!
//! The scheduling core ([`crate::deque`], [`crate::cancel`],
//! [`crate::pool`], the progress counter in [`crate::ensemble`]) never
//! names `std::sync` types directly; it names the associated types of a
//! `SyncProvider`. Normal builds use [`StdSync`], whose associated
//! types *are* the `std::sync` primitives and whose trait methods are
//! single inlinable calls — the seam monomorphizes away to exactly the
//! code the engine had before it existed. The `ulp-check` crate
//! substitutes a `Virtual` provider that routes every acquire, release,
//! load, store, park and unpark through a deterministic model-checking
//! scheduler, so the same scheduling code that ships can be driven
//! through systematically permuted preemption schedules and audited for
//! happens-before violations.
//!
//! Memory-order discipline is part of the seam's contract, not a detail
//! of each call site: flag and word stores are `Release`, loads are
//! `Acquire`, counters RMW with `AcqRel` — the orderings the engine's
//! determinism proof (DESIGN.md "Concurrency model") assumes, and the
//! orderings the virtual provider's vector clocks model.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// A mutual-exclusion region: the closure runs with unique access.
///
/// Closure-shaped (rather than guard-shaped) locking keeps the trait
/// object-safe-free and lifetime-free, and gives a virtual provider a
/// single acquire point and a single release point to instrument.
pub trait SyncMutex<T>: Send + Sync {
    /// Wraps `value`.
    fn new(value: T) -> Self;

    /// Runs `f` with exclusive access to the protected value.
    fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R;
}

/// A shared boolean flag with release/acquire ordering
/// (`std::sync::atomic::AtomicBool` shaped).
pub trait SyncFlag: Send + Sync {
    /// Creates the flag.
    fn new(value: bool) -> Self;

    /// `Acquire` load.
    fn load_acquire(&self) -> bool;

    /// `Release` store.
    fn store_release(&self, value: bool);
}

/// A shared monotone counter (`AtomicUsize` shaped).
pub trait SyncCounter: Send + Sync {
    /// Creates the counter.
    fn new(value: usize) -> Self;

    /// `AcqRel` fetch-add, returning the previous value.
    fn fetch_add_acq_rel(&self, n: usize) -> usize;

    /// `Acquire` load.
    fn load_acquire(&self) -> usize;
}

/// A shared 64-bit word with release/acquire ordering (`AtomicU64`
/// shaped).
pub trait SyncWord: Send + Sync {
    /// Creates the word.
    fn new(value: u64) -> Self;

    /// `Acquire` load.
    fn load_acquire(&self) -> u64;

    /// `Release` store.
    fn store_release(&self, value: u64);

    /// `AcqRel` fetch-max, returning the previous value.
    fn fetch_max_acq_rel(&self, value: u64) -> u64;
}

/// A condvar-free park/unpark pair with `std::thread::park` token
/// semantics: one token, [`SyncParker::unpark`] before
/// [`SyncParker::park`] makes the park return immediately, and an
/// unpark happens-before the park it wakes.
pub trait SyncParker: Send + Sync {
    /// Creates a parker with no token.
    fn new() -> Self;

    /// Blocks the calling thread until the token is available, then
    /// consumes it.
    fn park(&self);

    /// Makes the token available, waking a parked thread if any.
    fn unpark(&self);
}

/// The family of synchronization primitives a build of the engine runs
/// on.
///
/// [`StdSync`] is the production provider; `ulp_check::Virtual` is the
/// model-checking one. Code generic over `P: SyncProvider` writes
/// `P::Mutex<T>`, `P::AtomicBool`, … and stays byte-for-byte identical
/// to direct `std::sync` use after monomorphization with `StdSync`.
pub trait SyncProvider: Sized + Send + Sync + 'static {
    /// The mutex family.
    type Mutex<T: Send>: SyncMutex<T>;
    /// The boolean flag.
    type AtomicBool: SyncFlag;
    /// The counter.
    type AtomicUsize: SyncCounter;
    /// The 64-bit word.
    type AtomicU64: SyncWord;
    /// The park/unpark pair.
    type Parker: SyncParker;
}

/// The production provider: plain `std::sync`, zero added cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StdSync;

impl SyncProvider for StdSync {
    type Mutex<T: Send> = Mutex<T>;
    type AtomicBool = AtomicBool;
    type AtomicUsize = AtomicUsize;
    type AtomicU64 = AtomicU64;
    type Parker = StdParker;
}

impl<T: Send> SyncMutex<T> for Mutex<T> {
    #[inline]
    fn new(value: T) -> Self {
        Mutex::new(value)
    }

    #[inline]
    fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        // A poisoned lock only means some other holder panicked while
        // inside; the protected value itself is still coherent for the
        // engine's uses (queues of indices, plain flags).
        let mut guard = self.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&mut guard)
    }
}

impl SyncFlag for AtomicBool {
    #[inline]
    fn new(value: bool) -> Self {
        AtomicBool::new(value)
    }

    #[inline]
    fn load_acquire(&self) -> bool {
        self.load(Ordering::Acquire)
    }

    #[inline]
    fn store_release(&self, value: bool) {
        self.store(value, Ordering::Release)
    }
}

impl SyncCounter for AtomicUsize {
    #[inline]
    fn new(value: usize) -> Self {
        AtomicUsize::new(value)
    }

    #[inline]
    fn fetch_add_acq_rel(&self, n: usize) -> usize {
        self.fetch_add(n, Ordering::AcqRel)
    }

    #[inline]
    fn load_acquire(&self) -> usize {
        self.load(Ordering::Acquire)
    }
}

impl SyncWord for AtomicU64 {
    #[inline]
    fn new(value: u64) -> Self {
        AtomicU64::new(value)
    }

    #[inline]
    fn load_acquire(&self) -> u64 {
        self.load(Ordering::Acquire)
    }

    #[inline]
    fn store_release(&self, value: u64) {
        self.store(value, Ordering::Release)
    }

    #[inline]
    fn fetch_max_acq_rel(&self, value: u64) -> u64 {
        self.fetch_max(value, Ordering::AcqRel)
    }
}

/// The std parker: a mutex-guarded token and a condvar (std keeps
/// `thread::park` tied to thread handles, which the seam cannot carry).
#[derive(Debug, Default)]
pub struct StdParker {
    token: Mutex<bool>,
    wake: Condvar,
}

impl SyncParker for StdParker {
    fn new() -> Self {
        StdParker::default()
    }

    fn park(&self) {
        let mut token = self
            .token
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while !*token {
            token = self
                .wake
                .wait(token)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        *token = false;
    }

    fn unpark(&self) {
        self.token
            .with(|t| *t = true);
        self.wake.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_mutex_with_gives_exclusive_access() {
        let m = <StdSync as SyncProvider>::Mutex::<Vec<u32>>::new(vec![1]);
        let popped = m.with(|v| {
            v.push(2);
            v.pop()
        });
        assert_eq!(popped, Some(2));
        assert_eq!(m.with(|v| v.clone()), vec![1]);
    }

    #[test]
    fn std_flag_round_trips() {
        let f = <StdSync as SyncProvider>::AtomicBool::new(false);
        assert!(!f.load_acquire());
        f.store_release(true);
        assert!(f.load_acquire());
    }

    #[test]
    fn std_counter_and_word() {
        let c = <StdSync as SyncProvider>::AtomicUsize::new(3);
        assert_eq!(c.fetch_add_acq_rel(2), 3);
        assert_eq!(c.load_acquire(), 5);
        let w = <StdSync as SyncProvider>::AtomicU64::new(7);
        assert_eq!(w.fetch_max_acq_rel(4), 7);
        w.store_release(11);
        assert_eq!(w.load_acquire(), 11);
    }

    #[test]
    fn std_parker_token_semantics() {
        let p = StdParker::new();
        // Unpark before park: the park consumes the token immediately.
        p.unpark();
        p.park();
        // Cross-thread wake.
        std::thread::scope(|s| {
            let parker = &p;
            let h = s.spawn(move || parker.park());
            p.unpark();
            h.join().expect("parked thread wakes");
        });
    }
}
