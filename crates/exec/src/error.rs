//! Structured per-trial failure reporting.

use std::error::Error;
use std::fmt;

/// Why one trial of a campaign produced no value.
///
/// A failed trial never aborts its campaign: a panic unwinding out of
/// the trial closure is caught at the trial boundary and surfaces here,
/// with every sibling trial's result intact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrialError {
    /// The trial closure panicked; `message` carries the panic payload
    /// when it was a string (the common `panic!`/`assert!` case).
    Panicked {
        /// Trial index within the campaign.
        trial: usize,
        /// Stringified panic payload.
        message: String,
    },
    /// The campaign was cancelled before this trial started.
    Cancelled {
        /// Trial index within the campaign.
        trial: usize,
    },
}

impl TrialError {
    /// The index of the trial that failed.
    pub fn trial(&self) -> usize {
        match self {
            TrialError::Panicked { trial, .. } | TrialError::Cancelled { trial } => *trial,
        }
    }
}

impl fmt::Display for TrialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrialError::Panicked { trial, message } => {
                write!(f, "trial {trial} panicked: {message}")
            }
            TrialError::Cancelled { trial } => {
                write!(f, "trial {trial} cancelled before it started")
            }
        }
    }
}

impl Error for TrialError {}

/// Why a `ULP_JOBS` value was rejected.
///
/// The engine refuses to guess: a set-but-broken `ULP_JOBS` is a
/// configuration bug the operator must see, not a silent fallback to
/// whatever parallelism the machine happens to have.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobsError {
    /// `ULP_JOBS=0`: a campaign cannot run on zero workers.
    Zero,
    /// A negative worker count.
    Negative {
        /// The rejected value, verbatim.
        value: String,
    },
    /// Anything that is not an integer at all.
    NotANumber {
        /// The rejected value, verbatim.
        value: String,
    },
}

impl fmt::Display for JobsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobsError::Zero => {
                write!(f, "ULP_JOBS=0 is invalid: a campaign needs at least one worker")
            }
            JobsError::Negative { value } => {
                write!(f, "ULP_JOBS={value} is invalid: worker count cannot be negative")
            }
            JobsError::NotANumber { value } => {
                write!(f, "ULP_JOBS={value} is invalid: expected a positive integer")
            }
        }
    }
}

impl Error for JobsError {}

/// Renders a caught panic payload for [`TrialError::Panicked`].
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_accessors() {
        let p = TrialError::Panicked {
            trial: 3,
            message: "boom".into(),
        };
        assert_eq!(p.trial(), 3);
        assert!(p.to_string().contains("trial 3 panicked: boom"));
        let c = TrialError::Cancelled { trial: 9 };
        assert_eq!(c.trial(), 9);
        assert!(c.to_string().contains("cancelled"));
    }

    #[test]
    fn jobs_error_names_the_env_var() {
        for (err, needle) in [
            (JobsError::Zero, "at least one worker"),
            (
                JobsError::Negative { value: "-2".into() },
                "cannot be negative",
            ),
            (
                JobsError::NotANumber { value: "many".into() },
                "positive integer",
            ),
        ] {
            let rendered = err.to_string();
            assert!(rendered.contains("ULP_JOBS"), "{rendered}");
            assert!(rendered.contains(needle), "{rendered}");
        }
    }

    #[test]
    fn panic_payload_rendering() {
        assert_eq!(panic_message(&"boom"), "boom");
        assert_eq!(panic_message(&"boom".to_string()), "boom");
        assert_eq!(panic_message(&42usize), "non-string panic payload");
    }
}
