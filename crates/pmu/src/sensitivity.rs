//! PVT and supply sensitivity analysis (experiments E1 and E7).
//!
//! Quantifies the paper's Fig. 3 claim: in the CMOS topology the
//! performance parameters are tightly coupled to process (`V_T`,
//! `µC_ox`), supply and temperature, while in STSCL the tail current is
//! the only knob and everything else decouples. The functions here
//! evaluate both topologies' speed and power across perturbations of
//! each parameter and report normalised sensitivities.

use ulp_cmos::gate::CmosGate;
use ulp_device::pvt::Corner;
use ulp_device::Technology;
use ulp_stscl::gate::SclParams;

/// Normalised sensitivity record: relative change of a metric per
/// relative change of a parameter (dimensionless, ~1 means proportional
/// coupling).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sensitivity {
    /// d(ln f_max)/d(ln parameter).
    pub speed: f64,
    /// d(ln P)/d(ln parameter).
    pub power: f64,
}

/// The parameters the Fig. 3 diagram couples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignParameter {
    /// Supply voltage.
    Vdd,
    /// Threshold voltage.
    Vt,
    /// Transconductance factor µ·Cox (process strength / tox).
    Kp,
    /// Junction temperature.
    Temperature,
}

impl DesignParameter {
    /// All four parameters, in Fig. 3 order.
    pub fn all() -> [DesignParameter; 4] {
        [
            DesignParameter::Vdd,
            DesignParameter::Vt,
            DesignParameter::Kp,
            DesignParameter::Temperature,
        ]
    }
}

fn perturbed(tech: &Technology, p: DesignParameter, rel: f64) -> (Technology, f64, f64) {
    // Returns (tech', vdd_factor, param_base) — vdd handled separately.
    let mut t = *tech;
    match p {
        DesignParameter::Vdd => (t, 1.0 + rel, 1.0),
        DesignParameter::Vt => {
            t.nmos.vt0 *= 1.0 + rel;
            t.pmos.vt0 *= 1.0 + rel;
            (t, 1.0, 1.0)
        }
        DesignParameter::Kp => {
            t.nmos.kp *= 1.0 + rel;
            t.pmos.kp *= 1.0 + rel;
            (t, 1.0, 1.0)
        }
        DesignParameter::Temperature => {
            let t2 = t.at_temperature(t.temperature * (1.0 + rel));
            (t2, 1.0, 1.0)
        }
    }
}

/// Sensitivity of a subthreshold CMOS gate at supply `vdd` and clock
/// `f` (activity 0.2) to parameter `p` (central difference at ±2 %).
pub fn cmos_sensitivity(
    tech: &Technology,
    gate: &CmosGate,
    vdd: f64,
    f: f64,
    p: DesignParameter,
) -> Sensitivity {
    let h = 0.02;
    let eval = |rel: f64| -> (f64, f64) {
        let (t, vf, _) = perturbed(tech, p, rel);
        let v = vdd * vf;
        let speed = gate.fmax(&t, v, 1);
        let power = 0.2 * gate.dynamic_energy(v) * f + gate.leakage_power(&t, v);
        (speed, power)
    };
    let (s_lo, p_lo) = eval(-h);
    let (s_hi, p_hi) = eval(h);
    Sensitivity {
        speed: (s_hi.ln() - s_lo.ln()) / (2.0 * h),
        power: (p_hi.ln() - p_lo.ln()) / (2.0 * h),
    }
}

/// Sensitivity of an STSCL gate at tail current `iss` to parameter `p`.
///
/// Speed is `f_max = ISS/(2·ln2·VSW·CL)` — the device parameters do not
/// appear, so only the (replica-stabilised) swing could couple; power is
/// `ISS·VDD`.
pub fn stscl_sensitivity(
    params: &SclParams,
    iss: f64,
    p: DesignParameter,
) -> Sensitivity {
    let h = 0.02;
    let eval = |rel: f64| -> (f64, f64) {
        let vdd = match p {
            DesignParameter::Vdd => params.vdd * (1.0 + rel),
            _ => params.vdd,
        };
        // The replica bias holds VSW and ISS against VT/KP/T changes —
        // that is its entire job — so speed is untouched by them.
        let speed = params.fmax(iss, 1);
        let power = iss * vdd;
        (speed, power)
    };
    let (s_lo, p_lo) = eval(-h);
    let (s_hi, p_hi) = eval(h);
    Sensitivity {
        speed: (s_hi.ln() - s_lo.ln()) / (2.0 * h),
        power: (p_hi.ln() - p_lo.ln()) / (2.0 * h),
    }
}

/// Worst-case spread of CMOS gate speed across the five process corners
/// at supply `vdd` (max/min f_max ratio).
pub fn cmos_corner_spread(tech: &Technology, gate: &CmosGate, vdd: f64) -> f64 {
    let speeds: Vec<f64> = Corner::all()
        .iter()
        .map(|&c| gate.fmax(&tech.at_corner(c), vdd, 1))
        .collect();
    let max = speeds.iter().cloned().fold(f64::MIN, f64::max);
    let min = speeds.iter().cloned().fold(f64::MAX, f64::min);
    max / min
}

/// STSCL corner spread: the replica bias regenerates `ISS` and `VSW`
/// at every corner, so the speed spread collapses to the mirror
/// mismatch residue (≈1). Returned as the ratio form for direct
/// comparison with [`cmos_corner_spread`].
pub fn stscl_corner_spread(params: &SclParams, iss: f64) -> f64 {
    // fmax does not read the corner, so evaluating it per corner (the
    // same way cmos_corner_spread does) yields identical speeds.
    let speeds: Vec<f64> = Corner::all().iter().map(|_| params.fmax(iss, 1)).collect();
    let max = speeds.iter().cloned().fold(f64::MIN, f64::max);
    let min = speeds.iter().cloned().fold(f64::MAX, f64::min);
    max / min
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmos_supply_sensitivity_is_enormous() {
        let t = Technology::default();
        let g = CmosGate::default();
        let s = cmos_sensitivity(&t, &g, 0.35, 1e4, DesignParameter::Vdd);
        // d(ln f)/d(ln VDD) = VDD/(n·UT) − 1 ≈ 9 at 0.35 V.
        assert!(s.speed > 5.0, "speed sensitivity = {}", s.speed);
    }

    #[test]
    fn cmos_vt_sensitivity_is_enormous() {
        let t = Technology::default();
        let g = CmosGate::default();
        let s = cmos_sensitivity(&t, &g, 0.35, 1e4, DesignParameter::Vt);
        // d(ln f)/d(ln VT) = −VT/(n·UT) ≈ −13.
        assert!(s.speed < -5.0, "vt sensitivity = {}", s.speed);
    }

    #[test]
    fn stscl_decoupled_from_everything_but_bias() {
        let p = SclParams::default();
        for param in DesignParameter::all() {
            let s = stscl_sensitivity(&p, 1e-9, param);
            assert!(
                s.speed.abs() < 1e-9,
                "STSCL speed must not couple to {param:?}"
            );
            match param {
                DesignParameter::Vdd => {
                    // Central log-difference of a linear function ≈ 1
                    // with an O(h²) bias.
                    assert!((s.power - 1.0).abs() < 1e-3, "P = ISS·VDD is linear in VDD")
                }
                _ => assert!(s.power.abs() < 1e-9),
            }
        }
    }

    #[test]
    fn corner_spread_contrast() {
        let t = Technology::default();
        let g = CmosGate::default();
        let cmos = cmos_corner_spread(&t, &g, 0.35);
        let scl = stscl_corner_spread(&SclParams::default(), 1e-9);
        assert!(cmos > 3.0, "CMOS corners spread {cmos}×");
        assert!((scl - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cmos_temperature_couples_speed() {
        let t = Technology::default();
        let g = CmosGate::default();
        let s = cmos_sensitivity(&t, &g, 0.35, 1e4, DesignParameter::Temperature);
        assert!(s.speed.abs() > 1.0, "temperature sensitivity = {}", s.speed);
    }
}
