//! The sampling-rate → bias-current controller.
//!
//! Implements the paper's single-knob scheme: the requested sampling
//! rate fixes the master analog control current (through the analog
//! settling requirement), and the digital tail-current reference is a
//! fixed fraction of it — "therefore, a separate controlling unit is
//! avoided" (§III-C).

use ulp_adc::power::{power_at_sampling_rate, AdcPowerReport, ANALOG_SETTLING_MARGIN, DIGITAL_TIMING_MARGIN};
use ulp_adc::{AdcConfig, FaiAdc};
use ulp_device::Technology;

/// One resolved platform operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Sampling rate, S/s.
    pub fs: f64,
    /// Master analog control current, A.
    pub ic: f64,
    /// Digital tail-current reference `I_C,DIG`, A.
    pub ic_dig: f64,
    /// Full power breakdown.
    pub power: AdcPowerReport,
}

/// The platform controller: converter template + margins + digital
/// fraction.
#[derive(Debug, Clone)]
pub struct PlatformController {
    adc: FaiAdc,
    tech: Technology,
    /// Analog settling margin (bandwidth over fs).
    pub settling_margin: f64,
    /// Digital timing slack factor.
    pub timing_margin: f64,
    /// ENOB used in the figure-of-merit report.
    pub enob_for_fom: f64,
    /// Minimum sampling rate the controller will accept, S/s.
    pub fs_min: f64,
    /// Maximum sampling rate, S/s.
    pub fs_max: f64,
}

impl PlatformController {
    /// The paper's prototype operating envelope: 800 S/s – 80 kS/s with
    /// the DESIGN.md calibration margins.
    pub fn paper_prototype() -> Self {
        let config = AdcConfig::default();
        PlatformController {
            adc: FaiAdc::ideal(&config),
            tech: Technology::default(),
            settling_margin: ANALOG_SETTLING_MARGIN,
            timing_margin: DIGITAL_TIMING_MARGIN,
            enob_for_fom: 6.5,
            fs_min: 800.0,
            fs_max: 80e3,
        }
    }

    /// Builds a controller around an explicit converter and technology.
    pub fn new(adc: FaiAdc, tech: Technology) -> Self {
        PlatformController {
            adc,
            tech,
            ..PlatformController::paper_prototype()
        }
    }

    /// The converter template.
    pub fn adc(&self) -> &FaiAdc {
        &self.adc
    }

    /// Resolves the operating point for sampling rate `fs` (clamped to
    /// the controller envelope).
    pub fn operating_point(&self, fs: f64) -> OperatingPoint {
        let fs = fs.clamp(self.fs_min, self.fs_max);
        let power = power_at_sampling_rate(
            &self.adc,
            &self.tech,
            fs,
            self.settling_margin,
            self.timing_margin,
            self.enob_for_fom,
        );
        OperatingPoint {
            fs,
            ic: power.ic,
            ic_dig: power.iss_per_gate,
            power,
        }
    }

    /// Sweeps the operating envelope at `points_per_decade` log-spaced
    /// rates.
    ///
    /// Points are resolved on the `ulp-exec` engine (one trial per
    /// rate) and gathered in sweep order, so the result is identical
    /// for any `ULP_JOBS` worker count.
    pub fn sweep(&self, points_per_decade: usize) -> Vec<OperatingPoint> {
        let rates = ulp_num::interp::decade_sweep(self.fs_min, self.fs_max, points_per_decade);
        ulp_exec::Ensemble::new(rates.len())
            .label("pmu::sweep")
            .run(|ctx: &mut ulp_exec::TrialCtx| self.operating_point(rates[ctx.index()]))
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| panic!("sweep point failed: {e}")))
            .collect()
    }

    /// Retunes a mutable converter instance to the resolved bias for
    /// `fs` — what the on-chip controller actually *does*.
    pub fn apply(&self, adc: &mut FaiAdc, fs: f64) -> OperatingPoint {
        let op = self.operating_point(fs);
        adc.set_control_current(op.ic);
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_scaling_matches_paper_shape() {
        let pmu = PlatformController::paper_prototype();
        let lo = pmu.operating_point(800.0);
        let hi = pmu.operating_point(80e3);
        // 100× rate → 100× power (the paper's linear scaling).
        let ratio = hi.power.total / lo.power.total;
        assert!((ratio - 100.0).abs() < 10.0, "ratio = {ratio}");
        // Absolute class: 4 µW-decade at the top, 44 nW-decade at the
        // bottom.
        assert!(hi.power.total > 1e-6 && hi.power.total < 16e-6);
        assert!(lo.power.total > 10e-9 && lo.power.total < 160e-9);
        // Digital split: a few percent, as measured.
        let frac = hi.power.digital / hi.power.total;
        assert!(frac > 0.01 && frac < 0.15, "digital fraction {frac}");
    }

    #[test]
    fn envelope_clamps() {
        let pmu = PlatformController::paper_prototype();
        assert_eq!(pmu.operating_point(1.0).fs, 800.0);
        assert_eq!(pmu.operating_point(1e9).fs, 80e3);
    }

    #[test]
    fn sweep_is_monotone_in_power() {
        let pmu = PlatformController::paper_prototype();
        let pts = pmu.sweep(5);
        assert!(pts.len() > 8);
        for w in pts.windows(2) {
            assert!(w[1].power.total > w[0].power.total);
            assert!(w[1].ic > w[0].ic);
        }
    }

    #[test]
    fn apply_retunes_converter() {
        let pmu = PlatformController::paper_prototype();
        let mut adc = pmu.adc().clone();
        let op = pmu.apply(&mut adc, 8e3);
        assert!((adc.control_current() - op.ic).abs() < 1e-18);
        // Conversion still works at the retuned bias.
        let code = adc.convert(0.6);
        assert!((code as i32 - 128).abs() <= 1);
    }

    #[test]
    fn digital_reference_tracks_master() {
        let pmu = PlatformController::paper_prototype();
        let a = pmu.operating_point(2e3);
        let b = pmu.operating_point(20e3);
        assert!((b.ic_dig / a.ic_dig - 10.0).abs() < 0.1);
        assert!((b.ic / a.ic - 10.0).abs() < 0.1);
    }
}
