//! Behavioural frequency-locked bias loop.
//!
//! The paper's Fig. 1 shows a PLL tuning the bias current so the system
//! clock tracks the workload. The essential mechanism is a replica
//! STSCL ring whose oscillation frequency `f_ring ∝ ISS` is compared
//! against a reference clock; the error steers the bias up or down.
//! This module implements that loop behaviourally — a first-order
//! integrating controller over the exact STSCL delay physics — so the
//! platform experiments can demonstrate closed-loop frequency
//! acquisition and its immunity to supply steps (contrast the
//! supply-regulation loops CMOS DVFS needs, refs \[7\]\[8\]).

use ulp_stscl::gate::SclParams;

/// A replica-ring frequency-locked loop.
#[derive(Debug, Clone)]
pub struct FrequencyLockedLoop {
    params: SclParams,
    /// Ring length (odd number of STSCL stages).
    stages: usize,
    /// Loop gain per update (fractional bias correction per unit
    /// relative frequency error).
    gain: f64,
    /// Current bias estimate, A.
    iss: f64,
}

impl FrequencyLockedLoop {
    /// Creates a loop around a ring of `stages` cells starting from
    /// bias `iss0`.
    ///
    /// # Panics
    ///
    /// Panics unless `stages` is odd and ≥ 3, `iss0 > 0` and
    /// `0 < gain <= 1`.
    pub fn new(params: SclParams, stages: usize, iss0: f64, gain: f64) -> Self {
        assert!(stages >= 3 && stages % 2 == 1, "ring needs an odd stage count ≥ 3");
        assert!(iss0 > 0.0, "initial bias must be positive");
        assert!(gain > 0.0 && gain <= 1.0, "gain must lie in (0, 1]");
        FrequencyLockedLoop {
            params,
            stages,
            gain,
            iss: iss0,
        }
    }

    /// Ring oscillation frequency at the current bias, Hz:
    /// `f = 1/(2·N·t_d)`.
    pub fn ring_frequency(&self) -> f64 {
        1.0 / (2.0 * self.stages as f64 * self.params.delay(self.iss))
    }

    /// Current bias estimate, A.
    pub fn bias(&self) -> f64 {
        self.iss
    }

    /// One control update toward reference frequency `f_ref`; returns
    /// the relative frequency error *before* the update.
    ///
    /// # Panics
    ///
    /// Panics unless `f_ref > 0`.
    pub fn update(&mut self, f_ref: f64) -> f64 {
        assert!(f_ref > 0.0, "reference frequency must be positive");
        let err = (f_ref - self.ring_frequency()) / f_ref;
        // Multiplicative correction, slew-limited to an octave per
        // update (as a charge-pump actuator would be) — this keeps the
        // bias positive even when the ring starts decades too fast.
        let factor = (1.0 + self.gain * err).clamp(0.5, 2.0);
        self.iss *= factor;
        err
    }

    /// Runs updates until the relative error falls below `tol` or
    /// `max_iter` is exhausted; returns the number of updates used, or
    /// `None` if it never settled.
    pub fn acquire(&mut self, f_ref: f64, tol: f64, max_iter: usize) -> Option<usize> {
        for k in 0..max_iter {
            let err = self.update(f_ref);
            if err.abs() < tol {
                return Some(k + 1);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loop_at(iss0: f64) -> FrequencyLockedLoop {
        FrequencyLockedLoop::new(SclParams::default(), 5, iss0, 0.5)
    }

    #[test]
    fn acquires_from_three_decades_away() {
        let mut fll = loop_at(1e-12);
        let f_ref = 50e3;
        let steps = fll.acquire(f_ref, 1e-4, 200).expect("loop must lock");
        assert!(steps < 100, "took {steps} updates");
        assert!((fll.ring_frequency() / f_ref - 1.0).abs() < 1e-3);
        // The acquired bias matches the analytic inverse of the delay
        // model.
        let expect = SclParams::default().iss_for_frequency(f_ref, 5);
        assert!((fll.bias() / expect - 1.0).abs() < 1e-3);
    }

    #[test]
    fn tracks_reference_changes() {
        let mut fll = loop_at(1e-9);
        fll.acquire(10e3, 1e-6, 500).unwrap();
        let i_10k = fll.bias();
        fll.acquire(20e3, 1e-6, 500).unwrap();
        assert!((fll.bias() / i_10k - 2.0).abs() < 1e-3);
    }

    #[test]
    fn lock_is_supply_independent() {
        // The STSCL ring frequency does not involve VDD, so the lock
        // point is identical at 1.0 V and 1.25 V — the paper's
        // energy-harvesting argument.
        let p10 = SclParams::new(0.2, 10e-15, 1.0);
        let p125 = SclParams::new(0.2, 10e-15, 1.25);
        let mut a = FrequencyLockedLoop::new(p10, 5, 1e-10, 0.5);
        let mut b = FrequencyLockedLoop::new(p125, 5, 1e-10, 0.5);
        a.acquire(5e3, 1e-6, 500).unwrap();
        b.acquire(5e3, 1e-6, 500).unwrap();
        assert!((a.bias() / b.bias() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn never_locking_reports_none() {
        let mut fll = FrequencyLockedLoop::new(SclParams::default(), 5, 1e-12, 0.01);
        assert!(fll.acquire(1e6, 1e-9, 3).is_none());
    }

    #[test]
    #[should_panic(expected = "odd stage count")]
    fn even_ring_rejected() {
        let _ = FrequencyLockedLoop::new(SclParams::default(), 4, 1e-9, 0.5);
    }
}
