//! The common power-management unit of the mixed-signal platform
//! (paper Fig. 1).
//!
//! Because every block — analog folders, interpolators, comparators,
//! reference ladder *and* the STSCL encoder — is biased from one master
//! control current, power management degenerates to a single mapping
//! `f_s → I_C` plus fixed mirror ratios. This crate owns that mapping
//! and the machinery around it:
//!
//! * [`controller`] — the sampling-rate→bias controller with the
//!   digital fraction `I_C,DIG = k·I_C`;
//! * [`fll`] — a behavioural frequency-locked loop standing in for the
//!   paper's PLL actuator (the loop that servos `I_C` until a replica
//!   gate's delay matches the reference clock);
//! * [`sensitivity`] — PVT and supply sensitivity analysis comparing the
//!   STSCL platform against the DVFS-regulated CMOS baseline
//!   (experiments E1 and E7).
//!
//! # Example
//!
//! ```
//! use ulp_pmu::controller::PlatformController;
//!
//! let pmu = PlatformController::paper_prototype();
//! let op = pmu.operating_point(80e3);
//! // One knob: analog and digital currents both scale 100× between the
//! // paper's sampling-rate endpoints.
//! let lo = pmu.operating_point(800.0);
//! assert!((op.ic / lo.ic - 100.0).abs() < 1e-6);
//! assert!((op.ic_dig / lo.ic_dig - 100.0).abs() < 1e-6);
//! ```

pub mod controller;
pub mod fll;
pub mod sensitivity;
pub mod workload;

pub use controller::{OperatingPoint, PlatformController};
