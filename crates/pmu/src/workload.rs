//! Workload-trace energy accounting: what the single-knob power
//! management actually buys.
//!
//! The paper's Fig. 1 system exists to track a varying workload. This
//! module integrates the platform's energy over a sampling-rate trace
//! under three policies and reports the savings:
//!
//! * **tracking** — the PMU retunes `I_C` to each segment's rate (the
//!   paper's scheme);
//! * **worst-case** — bias fixed for the trace's peak rate (what a
//!   non-scalable design must do);
//! * **duty-cycled** — worst-case bias, but hard power gating between
//!   bursts (the conventional alternative; modelled with a wake-up
//!   overhead per transition).

use crate::controller::PlatformController;

/// One segment of a workload trace. `fs = 0` marks an idle segment
/// (no conversions required).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Required sampling rate during the segment, S/s (0 = idle).
    pub fs: f64,
    /// Segment duration, s.
    pub duration: f64,
}

impl Segment {
    /// Creates an active segment.
    ///
    /// # Panics
    ///
    /// Panics unless both fields are positive.
    pub fn new(fs: f64, duration: f64) -> Self {
        assert!(fs > 0.0 && duration > 0.0, "segment fields must be positive");
        Segment { fs, duration }
    }

    /// Creates an idle segment (no required work).
    ///
    /// # Panics
    ///
    /// Panics unless `duration > 0`.
    pub fn idle(duration: f64) -> Self {
        assert!(duration > 0.0, "duration must be positive");
        Segment { fs: 0.0, duration }
    }

    /// True when no conversions are required.
    pub fn is_idle(self) -> bool {
        self.fs == 0.0
    }
}

/// Energy totals for the three policies over one trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyComparison {
    /// Energy with workload-tracking bias, J.
    pub tracking: f64,
    /// Energy with the bias pinned at the trace peak, J.
    pub worst_case: f64,
    /// Energy with peak bias + power gating (incl. wake-up overhead), J.
    pub duty_cycled: f64,
    /// `worst_case / tracking`.
    pub saving_vs_worst_case: f64,
    /// `duty_cycled / tracking`.
    pub saving_vs_duty_cycling: f64,
}

/// Integrates the three policies over `trace`.
///
/// `wakeup_energy` is charged once per gated→active transition in the
/// duty-cycled policy (bias settling, reference recharge — typically
/// µJ-class in real systems; the replica-biased platform needs none
/// because it never powers down, it *scales* down).
///
/// # Example
///
/// ```
/// use ulp_pmu::workload::{compare_policies, Segment};
/// use ulp_pmu::PlatformController;
///
/// let pmu = PlatformController::paper_prototype();
/// let trace = [Segment::new(800.0, 100.0), Segment::new(80e3, 1.0)];
/// let cmp = compare_policies(&pmu, &trace, 0.0);
/// // Pinning the bias at the burst rate wastes most of the energy.
/// assert!(cmp.saving_vs_worst_case > 10.0);
/// ```
///
/// # Panics
///
/// Panics if the trace is empty or contains no work.
pub fn compare_policies(
    pmu: &PlatformController,
    trace: &[Segment],
    wakeup_energy: f64,
) -> EnergyComparison {
    assert!(!trace.is_empty(), "trace must have at least one segment");
    let peak_fs = trace.iter().map(|s| s.fs).fold(0.0f64, f64::max);
    assert!(peak_fs > 0.0, "trace must contain some work");
    let p_peak = pmu.operating_point(peak_fs).power.total;
    // Tracking scales down but never gates off: during idle it parks at
    // the envelope floor. Duty cycling can gate fully off during idle —
    // but only then; any required rate forces peak bias + a wake-up.
    let p_floor = pmu.operating_point(pmu.fs_min).power.total;
    let mut tracking = 0.0;
    let mut worst_case = 0.0;
    let mut duty_cycled = 0.0;
    let mut was_sleeping = true;
    for seg in trace {
        worst_case += p_peak * seg.duration;
        if seg.is_idle() {
            tracking += p_floor * seg.duration;
            was_sleeping = true;
        } else {
            tracking += pmu.operating_point(seg.fs).power.total * seg.duration;
            if was_sleeping {
                duty_cycled += wakeup_energy;
            }
            duty_cycled += p_peak * seg.duration;
            was_sleeping = false;
        }
    }
    EnergyComparison {
        tracking,
        worst_case,
        duty_cycled,
        saving_vs_worst_case: worst_case / tracking,
        saving_vs_duty_cycling: duty_cycled / tracking,
    }
}

/// A representative sensor-node day: long low-rate monitoring with
/// sparse high-rate bursts (fractions of the controller envelope).
pub fn sensor_node_trace(pmu: &PlatformController) -> Vec<Segment> {
    let lo = pmu.fs_min;
    let hi = pmu.fs_max;
    vec![
        Segment::new(lo, 3600.0),
        Segment::new(hi, 5.0),
        Segment::new(lo, 7200.0),
        Segment::new(hi * 0.25, 30.0),
        Segment::new(lo, 3600.0),
        Segment::new(hi, 2.0),
        Segment::new(lo * 2.0, 1800.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pmu() -> PlatformController {
        PlatformController::paper_prototype()
    }

    #[test]
    fn tracking_beats_worst_case_by_rate_ratio_class() {
        let pmu = pmu();
        let trace = sensor_node_trace(&pmu);
        let cmp = compare_policies(&pmu, &trace, 0.0);
        // The trace is dominated by 800 S/s segments; pinning at
        // 80 kS/s wastes ~100×.
        assert!(
            cmp.saving_vs_worst_case > 30.0,
            "saving = {}",
            cmp.saving_vs_worst_case
        );
        assert!(cmp.tracking < cmp.worst_case);
    }

    #[test]
    fn duty_cycling_cannot_sleep_through_low_rate_work() {
        // The monitoring segments *require* 800 S/s — the gated design
        // must stay awake at peak bias for them, so tracking still wins
        // big.
        let pmu = pmu();
        let trace = sensor_node_trace(&pmu);
        let cmp = compare_policies(&pmu, &trace, 1e-6);
        assert!(
            cmp.saving_vs_duty_cycling > 30.0,
            "saving = {}",
            cmp.saving_vs_duty_cycling
        );
    }

    #[test]
    fn duty_cycling_competitive_on_idle_heavy_traces() {
        // When the workload is genuinely bursty with true idle gaps,
        // gating approaches (and with zero wake cost can beat) the
        // tracking floor — an honest limit of the scaling approach.
        let pmu = pmu();
        let trace = vec![
            Segment::idle(1000.0),
            Segment::new(80e3, 1.0),
            Segment::idle(1000.0),
        ];
        let cmp = compare_policies(&pmu, &trace, 0.0);
        assert!(
            cmp.saving_vs_duty_cycling < 1.0,
            "gating should win on pure-burst traces: {}",
            cmp.saving_vs_duty_cycling
        );
        // But with a realistic wake-up cost the gap narrows.
        let cmp_wake = compare_policies(&pmu, &trace, 50e-6);
        assert!(cmp_wake.duty_cycled > cmp.duty_cycled);
    }

    #[test]
    fn constant_trace_all_policies_equal() {
        let pmu = pmu();
        let trace = vec![Segment::new(80e3, 10.0)];
        let cmp = compare_policies(&pmu, &trace, 0.0);
        assert!((cmp.saving_vs_worst_case - 1.0).abs() < 1e-9);
        assert!((cmp.saving_vs_duty_cycling - 1.0).abs() < 1e-9);
    }

    #[test]
    fn wakeup_energy_charged_per_burst() {
        let pmu = pmu();
        // Idle (below threshold is impossible here since fs clamps to
        // fs_min > 1% of peak… construct with explicit sub-threshold
        // segments by using a tiny fs relative to a large peak).
        let trace = vec![
            Segment::new(80e3, 1.0),
            Segment::new(800.0, 1.0), // active (1% of peak = 800)… just at threshold
            Segment::new(80e3, 1.0),
        ];
        let no_wake = compare_policies(&pmu, &trace, 0.0);
        let with_wake = compare_policies(&pmu, &trace, 1e-3);
        assert!(with_wake.duty_cycled >= no_wake.duty_cycled);
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn empty_trace_rejected() {
        let _ = compare_policies(&pmu(), &[], 0.0);
    }
}
