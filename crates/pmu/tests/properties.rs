//! Property-based tests of the power-management layer.

use proptest::prelude::*;
use ulp_pmu::workload::{compare_policies, Segment};
use ulp_pmu::PlatformController;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Operating-point resolution is monotone: more rate never costs
    /// less power or less bias.
    #[test]
    fn operating_point_monotone(f1 in 800.0f64..80e3, f2 in 800.0f64..80e3) {
        let pmu = PlatformController::paper_prototype();
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        let a = pmu.operating_point(lo);
        let b = pmu.operating_point(hi);
        prop_assert!(b.power.total >= a.power.total - 1e-18);
        prop_assert!(b.ic >= a.ic - 1e-21);
        prop_assert!(b.ic_dig >= a.ic_dig - 1e-21);
    }

    /// Power is (near-exactly) linear in rate across the envelope.
    #[test]
    fn power_linear_in_rate(f in 1600.0f64..40e3, k in 1.5f64..2.0) {
        let pmu = PlatformController::paper_prototype();
        let a = pmu.operating_point(f);
        let b = pmu.operating_point(f * k);
        prop_assert!((b.power.total / a.power.total / k - 1.0).abs() < 0.02);
    }

    /// Tracking never loses to the fixed-peak policy, for any trace.
    #[test]
    fn tracking_never_worse_than_peak(
        rates in prop::collection::vec(800.0f64..80e3, 1..8),
        durations in prop::collection::vec(0.1f64..100.0, 8)
    ) {
        let pmu = PlatformController::paper_prototype();
        let trace: Vec<Segment> = rates
            .iter()
            .zip(&durations)
            .map(|(&f, &d)| Segment::new(f, d))
            .collect();
        let cmp = compare_policies(&pmu, &trace, 0.0);
        prop_assert!(cmp.tracking <= cmp.worst_case * (1.0 + 1e-9));
        // Duty cycling with zero wake cost can never beat worst-case on
        // an all-active trace either (it IS worst-case then).
        prop_assert!((cmp.duty_cycled - cmp.worst_case).abs() < 1e-9 * cmp.worst_case);
    }

    /// Wake-up energy only ever increases the duty-cycled total.
    #[test]
    fn wakeup_cost_monotone(w1 in 0.0f64..1e-3, w2 in 0.0f64..1e-3) {
        let pmu = PlatformController::paper_prototype();
        let trace = [
            Segment::idle(10.0),
            Segment::new(80e3, 1.0),
            Segment::idle(10.0),
            Segment::new(800.0, 5.0),
        ];
        let (lo, hi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
        let a = compare_policies(&pmu, &trace, lo);
        let b = compare_policies(&pmu, &trace, hi);
        prop_assert!(b.duty_cycled >= a.duty_cycled - 1e-18);
        // Tracking and worst-case don't involve wake-ups at all.
        prop_assert!((a.tracking - b.tracking).abs() < 1e-18);
        prop_assert!((a.worst_case - b.worst_case).abs() < 1e-18);
    }
}
