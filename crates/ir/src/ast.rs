//! The netlist intermediate representation: plain data with stable
//! ordering.
//!
//! A [`Design`] is a list of [`Subckt`] definitions plus a top-level
//! testbench (devices and [`Instance`] cards), global `.param`
//! constants, per-device-class geometry defaults and an optional
//! [`SweepSpec`]. Everything is ordinary owned data — `Vec`s preserve
//! declaration order, so serializing and re-parsing a design
//! reproduces it exactly (see [`crate::parse`] and [`Design::to_text`]).

use std::fmt;
use ulp_device::Polarity;

/// Direction role of a subcircuit port, in the frida `subcircuit()`
/// idiom (`I`/`O`/`B`). Roles are declarative metadata carried through
/// round-trips; the flattener treats all roles identically today.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PortRole {
    /// Signal input (`in`).
    In,
    /// Signal output (`out`).
    Out,
    /// Bidirectional / supply (`io`), the default when no role is
    /// written.
    #[default]
    Bidir,
}

impl PortRole {
    /// The dialect token for this role.
    pub fn token(self) -> &'static str {
        match self {
            PortRole::In => "in",
            PortRole::Out => "out",
            PortRole::Bidir => "io",
        }
    }
}

/// A named, role-tagged subcircuit port.
#[derive(Debug, Clone, PartialEq)]
pub struct Port {
    /// Net name inside the subcircuit.
    pub name: String,
    /// Direction role.
    pub role: PortRole,
}

/// A device parameter value: either a literal number or a reference to
/// a `.param` name resolved at flatten time (subcircuit defaults can be
/// overridden per instance).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Literal value (SI suffixes are resolved at parse time).
    Lit(f64),
    /// Named parameter, looked up in the instantiation environment.
    Ref(String),
}

impl Value {
    /// The literal value, if this is one.
    pub fn as_lit(&self) -> Option<f64> {
        match self {
            Value::Lit(v) => Some(*v),
            Value::Ref(_) => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Lit(v) => write!(f, "{}", fmt_f64(*v)),
            Value::Ref(name) => write!(f, "{name}"),
        }
    }
}

/// Stimulus specification for independent sources — the IR mirror of
/// [`ulp_spice::Waveform`], with every number a [`Value`].
#[derive(Debug, Clone, PartialEq)]
pub enum WaveSpec {
    /// Constant value (`dc <v>`).
    Dc(Value),
    /// Trapezoidal pulse train
    /// (`pulse <v0> <v1> <delay> <rise> <fall> <width> <period>`).
    Pulse {
        /// Initial value.
        v0: Value,
        /// Pulsed value.
        v1: Value,
        /// Delay before the first edge, s.
        delay: Value,
        /// Rise time, s.
        rise: Value,
        /// Fall time, s.
        fall: Value,
        /// Time at `v1`, s.
        width: Value,
        /// Repetition period, s (0 = single pulse).
        period: Value,
    },
    /// Sinusoid (`sine <offset> <amp> <freq> <delay>`).
    Sine {
        /// DC offset.
        offset: Value,
        /// Amplitude.
        amp: Value,
        /// Frequency, Hz.
        freq: Value,
        /// Start delay, s.
        delay: Value,
    },
    /// Piecewise-linear points (`pwl <t0> <v0> <t1> <v1> …`).
    Pwl(Vec<(Value, Value)>),
}

/// What a device card *is*, minus its name and nodes. Values may be
/// parameter references; geometry on MOS cards may be omitted and
/// filled from `.default` class defaults at flatten time.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceKind {
    /// Linear resistor (`R<name> a b <ohms>`).
    Resistor {
        /// Resistance, Ω.
        ohms: Value,
    },
    /// Linear capacitor (`C<name> a b <farads>`).
    Capacitor {
        /// Capacitance, F.
        farads: Value,
    },
    /// Independent voltage source
    /// (`V<name> p n dc <v> [ac <mag>]`, or `pulse`/`sine`/`pwl`).
    Vsource {
        /// Large-signal stimulus.
        wave: WaveSpec,
        /// AC magnitude for small-signal analysis.
        ac: Value,
    },
    /// Independent current source (same stimulus grammar as `V`).
    Isource {
        /// Large-signal stimulus.
        wave: WaveSpec,
        /// AC magnitude.
        ac: Value,
    },
    /// Voltage-controlled voltage source (`E<name> p n cp cn <gain>`).
    Vcvs {
        /// Voltage gain.
        gain: Value,
    },
    /// Voltage-controlled current source (`G<name> p n cp cn <gm>`).
    Vccs {
        /// Transconductance, S.
        gm: Value,
    },
    /// Junction diode (`D<name> p n is=<v> n=<v>`).
    Diode {
        /// Saturation current, A.
        is_sat: Value,
        /// Ideality factor.
        n_id: Value,
    },
    /// EKV MOS device (`M<name> d g s b nmos|pmos [w=<v>] [l=<v>]`).
    Mos {
        /// Channel polarity.
        polarity: Polarity,
        /// Drawn width, m (class default when omitted).
        w: Option<Value>,
        /// Drawn length, m (class default when omitted).
        l: Option<Value>,
    },
    /// Replica-calibrated STSCL load
    /// (`L<name> a b vsw=<v> iss=<v>`).
    SclLoad {
        /// Calibrated output swing, V.
        vsw: Value,
        /// Calibration tail current, A.
        iss: Value,
    },
}

impl DeviceKind {
    /// Terminal names in card argument order — the pin map of this
    /// device class.
    pub fn pins(&self) -> &'static [&'static str] {
        match self {
            DeviceKind::Resistor { .. }
            | DeviceKind::Capacitor { .. }
            | DeviceKind::SclLoad { .. } => &["a", "b"],
            DeviceKind::Vsource { .. } | DeviceKind::Isource { .. } | DeviceKind::Diode { .. } => {
                &["p", "n"]
            }
            DeviceKind::Vcvs { .. } | DeviceKind::Vccs { .. } => &["p", "n", "cp", "cn"],
            DeviceKind::Mos { .. } => &["d", "g", "s", "b"],
        }
    }

    /// The card letter this device class serializes under.
    pub fn card_letter(&self) -> char {
        match self {
            DeviceKind::Resistor { .. } => 'R',
            DeviceKind::Capacitor { .. } => 'C',
            DeviceKind::Vsource { .. } => 'V',
            DeviceKind::Isource { .. } => 'I',
            DeviceKind::Vcvs { .. } => 'E',
            DeviceKind::Vccs { .. } => 'G',
            DeviceKind::Diode { .. } => 'D',
            DeviceKind::Mos { .. } => 'M',
            DeviceKind::SclLoad { .. } => 'L',
        }
    }
}

/// One device card: a name (whose first letter must match the class
/// card letter), positional nodes, and the class payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    /// Instance name (e.g. `M1`, `RLOAD`).
    pub name: String,
    /// Connected net names, in [`DeviceKind::pins`] order.
    pub nodes: Vec<String>,
    /// Device class and parameters.
    pub kind: DeviceKind,
}

impl Device {
    /// `(pin, net)` pairs — the explicit pin map of this card.
    pub fn pin_map(&self) -> impl Iterator<Item = (&'static str, &str)> + '_ {
        self.kind
            .pins()
            .iter()
            .zip(&self.nodes)
            .map(|(&p, n)| (p, n.as_str()))
    }
}

/// A hierarchical subcircuit instantiation
/// (`X<name> conn… <subckt> [param=value …]`).
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Instance name (becomes the `name.` prefix of flattened nets).
    pub name: String,
    /// Parent nets bound to the subcircuit ports, positionally.
    pub conns: Vec<String>,
    /// Name of the instantiated subcircuit.
    pub subckt: String,
    /// Parameter overrides, evaluated in the *parent* scope.
    pub params: Vec<(String, Value)>,
}

/// One card in a subcircuit body or the top-level testbench, in
/// declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A primitive device.
    Device(Device),
    /// A subcircuit instantiation.
    Instance(Instance),
}

impl Item {
    /// The card's instance name.
    pub fn name(&self) -> &str {
        match self {
            Item::Device(d) => &d.name,
            Item::Instance(i) => &i.name,
        }
    }
}

/// A subcircuit definition: `.subckt name port[:role]… [param=default…]`
/// through `.ends`.
#[derive(Debug, Clone, PartialEq)]
pub struct Subckt {
    /// Definition name.
    pub name: String,
    /// Ports, in header order.
    pub ports: Vec<Port>,
    /// Parameter defaults (literal numbers), overridable per instance.
    pub params: Vec<(String, f64)>,
    /// Body cards, in declaration order.
    pub items: Vec<Item>,
}

impl Subckt {
    /// Position of the named port, if declared.
    pub fn port_index(&self, name: &str) -> Option<usize> {
        self.ports.iter().position(|p| p.name == name)
    }
}

/// Per-device-class geometry defaults
/// (`.default nmos|pmos [w=<num>] [l=<num>]`), applied to MOS cards
/// that omit `w`/`l`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDefault {
    /// Which device class the defaults apply to.
    pub polarity: Polarity,
    /// Default drawn width, m.
    pub w: Option<f64>,
    /// Default drawn length, m.
    pub l: Option<f64>,
}

/// One sweep axis (`.sweep dev… param=v1,v2,… …`): a set of flattened
/// device paths swept jointly over the cartesian product of the listed
/// parameter grids.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAxis {
    /// Flattened device paths (e.g. `x1.MNINP`) that move together.
    pub devices: Vec<String>,
    /// `(param, values)` grids, in declaration order; the first param
    /// varies slowest within the axis.
    pub grid: Vec<(String, Vec<f64>)>,
}

/// Corrector family requested by a `.tran` card's optional third field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranMethod {
    /// Backward Euler (`be`): L-stable, first order.
    Be,
    /// Trapezoidal (`trap`): A-stable, second order.
    Trap,
}

impl TranMethod {
    /// The keyword used in `.tran` cards.
    pub fn token(self) -> &'static str {
        match self {
            TranMethod::Be => "be",
            TranMethod::Trap => "trap",
        }
    }
}

/// Transient analysis card (`.tran t_stop [dt_max] [be|trap]`).
///
/// `t_stop` is the simulated interval; `dt_max` bounds the adaptive
/// engine's step size (engines pick their own default when omitted);
/// `method` pins the corrector family (adaptive TRAP↔BE selection when
/// omitted).
#[derive(Debug, Clone, PartialEq)]
pub struct TranSpec {
    /// Simulated stop time, s. Strictly positive.
    pub t_stop: f64,
    /// Optional upper bound on the time step, s.
    pub dt_max: Option<f64>,
    /// Optional corrector family override.
    pub method: Option<TranMethod>,
}

/// Declarative sweep specification: named technology targets times the
/// per-device geometry grids.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepSpec {
    /// Named tech targets (`.tech tt ss …`); empty means nominal only.
    pub techs: Vec<String>,
    /// Sweep axes, in declaration order; the first axis varies slowest
    /// after the tech dimension.
    pub axes: Vec<SweepAxis>,
}

/// A complete parsed design: subcircuit definitions plus the top-level
/// testbench.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Design {
    /// Global `.param` constants, visible in every scope.
    pub params: Vec<(String, f64)>,
    /// Per-class geometry defaults.
    pub defaults: Vec<ClassDefault>,
    /// Subcircuit definitions, in file order.
    pub subckts: Vec<Subckt>,
    /// Top-level testbench cards, in file order.
    pub top: Vec<Item>,
    /// Optional transient analysis card.
    pub tran: Option<TranSpec>,
    /// Optional sweep specification.
    pub sweep: Option<SweepSpec>,
}

impl Design {
    /// Finds a subcircuit definition by name.
    pub fn subckt(&self, name: &str) -> Option<&Subckt> {
        self.subckts.iter().find(|s| s.name == name)
    }

    /// Geometry default for a device class, if declared.
    pub fn class_default(&self, polarity: Polarity) -> Option<&ClassDefault> {
        self.defaults.iter().find(|d| d.polarity == polarity)
    }

    /// Serializes the design to the canonical text form.
    ///
    /// The output is byte-stable (same design, same bytes) and
    /// round-trips: `parse(&d.to_text()) == d` for any well-formed
    /// design. Canonical order is `.param`, `.default`, subcircuit
    /// definitions, testbench cards, `.tran`, `.tech`, `.sweep`,
    /// `.end`.
    ///
    /// # Panics
    ///
    /// Panics when a device name does not start with its class card
    /// letter or an instance name does not start with `X` — such a
    /// design could not be re-parsed (constructors in this crate never
    /// build one).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.params {
            out.push_str(&format!(".param {name}={}\n", fmt_f64(*v)));
        }
        for d in &self.defaults {
            out.push_str(&format!(".default {}", d.polarity));
            if let Some(w) = d.w {
                out.push_str(&format!(" w={}", fmt_f64(w)));
            }
            if let Some(l) = d.l {
                out.push_str(&format!(" l={}", fmt_f64(l)));
            }
            out.push('\n');
        }
        for s in &self.subckts {
            out.push_str(&format!(".subckt {}", s.name));
            for p in &s.ports {
                out.push_str(&format!(" {}:{}", p.name, p.role.token()));
            }
            for (name, v) in &s.params {
                out.push_str(&format!(" {name}={}", fmt_f64(*v)));
            }
            out.push('\n');
            for item in &s.items {
                write_item(&mut out, item);
            }
            out.push_str(".ends\n");
        }
        for item in &self.top {
            write_item(&mut out, item);
        }
        if let Some(tran) = &self.tran {
            out.push_str(&format!(".tran {}", fmt_f64(tran.t_stop)));
            if let Some(dt) = tran.dt_max {
                out.push_str(&format!(" {}", fmt_f64(dt)));
            }
            if let Some(m) = tran.method {
                out.push_str(&format!(" {}", m.token()));
            }
            out.push('\n');
        }
        if let Some(sweep) = &self.sweep {
            if !sweep.techs.is_empty() {
                out.push_str(".tech");
                for t in &sweep.techs {
                    out.push_str(&format!(" {t}"));
                }
                out.push('\n');
            }
            for axis in &sweep.axes {
                out.push_str(".sweep");
                for d in &axis.devices {
                    out.push_str(&format!(" {d}"));
                }
                for (param, values) in &axis.grid {
                    out.push_str(&format!(" {param}="));
                    for (i, v) in values.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&fmt_f64(*v));
                    }
                }
                out.push('\n');
            }
        }
        out.push_str(".end\n");
        out
    }
}

fn write_item(out: &mut String, item: &Item) {
    match item {
        Item::Device(d) => {
            let letter = d.kind.card_letter();
            assert!(
                d.name
                    .chars()
                    .next()
                    .is_some_and(|c| c.eq_ignore_ascii_case(&letter)),
                "device `{}` must be named with a leading `{letter}` to serialize",
                d.name
            );
            out.push_str(&d.name);
            for n in &d.nodes {
                out.push_str(&format!(" {n}"));
            }
            match &d.kind {
                DeviceKind::Resistor { ohms } => out.push_str(&format!(" {ohms}")),
                DeviceKind::Capacitor { farads } => out.push_str(&format!(" {farads}")),
                DeviceKind::Vsource { wave, ac } | DeviceKind::Isource { wave, ac } => {
                    write_wave(out, wave);
                    if *ac != Value::Lit(0.0) {
                        out.push_str(&format!(" ac {ac}"));
                    }
                }
                DeviceKind::Vcvs { gain } => out.push_str(&format!(" {gain}")),
                DeviceKind::Vccs { gm } => out.push_str(&format!(" {gm}")),
                DeviceKind::Diode { is_sat, n_id } => {
                    out.push_str(&format!(" is={is_sat} n={n_id}"));
                }
                DeviceKind::Mos { polarity, w, l } => {
                    out.push_str(&format!(" {polarity}"));
                    if let Some(w) = w {
                        out.push_str(&format!(" w={w}"));
                    }
                    if let Some(l) = l {
                        out.push_str(&format!(" l={l}"));
                    }
                }
                DeviceKind::SclLoad { vsw, iss } => {
                    out.push_str(&format!(" vsw={vsw} iss={iss}"));
                }
            }
            out.push('\n');
        }
        Item::Instance(inst) => {
            assert!(
                inst.name
                    .chars()
                    .next()
                    .is_some_and(|c| c.eq_ignore_ascii_case(&'X')),
                "instance `{}` must be named with a leading `X` to serialize",
                inst.name
            );
            out.push_str(&inst.name);
            for c in &inst.conns {
                out.push_str(&format!(" {c}"));
            }
            out.push_str(&format!(" {}", inst.subckt));
            for (name, v) in &inst.params {
                out.push_str(&format!(" {name}={v}"));
            }
            out.push('\n');
        }
    }
}

fn write_wave(out: &mut String, wave: &WaveSpec) {
    match wave {
        WaveSpec::Dc(v) => out.push_str(&format!(" dc {v}")),
        WaveSpec::Pulse {
            v0,
            v1,
            delay,
            rise,
            fall,
            width,
            period,
        } => out.push_str(&format!(
            " pulse {v0} {v1} {delay} {rise} {fall} {width} {period}"
        )),
        WaveSpec::Sine {
            offset,
            amp,
            freq,
            delay,
        } => out.push_str(&format!(" sine {offset} {amp} {freq} {delay}")),
        WaveSpec::Pwl(points) => {
            out.push_str(" pwl");
            for (t, v) in points {
                out.push_str(&format!(" {t} {v}"));
            }
        }
    }
}

/// Formats an `f64` in the shortest form that parses back to the exact
/// same value (Rust's `{:?}` float repr) — the contract behind the
/// byte-stable, lossless round-trip of [`Design::to_text`].
pub fn fmt_f64(v: f64) -> String {
    format!("{v:?}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_formatting_round_trips_exactly() {
        for v in [
            0.0,
            1.0,
            -1.0,
            1e-9,
            100e-12,
            0.15,
            600.0,
            std::f64::consts::PI,
            5e-324,
            f64::MAX,
            -2.5e-17,
        ] {
            let s = fmt_f64(v);
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {s} -> {back}");
        }
    }

    #[test]
    fn pin_maps_name_every_node() {
        let d = Device {
            name: "M1".into(),
            nodes: vec!["d".into(), "g".into(), "s".into(), "b".into()],
            kind: DeviceKind::Mos {
                polarity: Polarity::Nmos,
                w: None,
                l: None,
            },
        };
        let pins: Vec<_> = d.pin_map().collect();
        assert_eq!(pins, vec![("d", "d"), ("g", "g"), ("s", "s"), ("b", "b")]);
    }

    #[test]
    #[should_panic(expected = "must be named with a leading `R`")]
    fn serializer_rejects_mismatched_card_letter() {
        let d = Design {
            top: vec![Item::Device(Device {
                name: "Q1".into(),
                nodes: vec!["a".into(), "0".into()],
                kind: DeviceKind::Resistor {
                    ohms: Value::Lit(1.0),
                },
            })],
            ..Design::default()
        };
        let _ = d.to_text();
    }
}
