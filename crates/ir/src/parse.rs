//! Hand-rolled parser for the `.ulp` netlist dialect.
//!
//! The dialect is line-oriented: one card per line, `*`/`;` comment
//! lines, blank lines ignored. Every failure is a typed
//! [`ParseError`] carrying the 1-based line and column and the
//! offending token, so a service front-end can point at the exact
//! character a user got wrong.
//!
//! Grammar (see DESIGN.md "Netlist IR" for the full card reference):
//!
//! ```text
//! .param NAME=NUM …
//! .default nmos|pmos [w=NUM] [l=NUM]
//! .subckt NAME PORT[:in|out|io]… [NAME=NUM …]
//!   <device and X cards>
//! .ends
//! <top-level device and X cards>
//! .tran T_STOP [DT_MAX] [be|trap]
//! .tech NAME…
//! .sweep DEV… PARAM=NUM,NUM,… …
//! .end
//! ```
//!
//! Device cards dispatch on their first letter (case-insensitive):
//! `R C V I E G D M L`, instances on `X`. Numbers accept SPICE SI
//! suffixes (`f p n u m k meg g t`); any value position also accepts a
//! bare identifier naming a `.param`.

use crate::ast::*;
use std::fmt;
use ulp_device::Polarity;

/// Where in the input a [`ParseError`] points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the offending token.
    pub col: usize,
    /// The offending token (empty at end of line / end of input).
    pub token: String,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// The typed failure classes of the `.ulp` parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// A card position needed `what`, but `token` (or end of line) was
    /// found.
    Expected {
        /// Human description of the expected token class.
        what: &'static str,
    },
    /// A token in a value position is neither a number nor a parameter
    /// name.
    BadValue,
    /// A token in a numeric-literal position does not parse as a
    /// number (param defaults and sweep grids do not allow references).
    BadNumber,
    /// First letter of a card is not a known device class.
    UnknownCard,
    /// A `.directive` that is not part of the dialect.
    UnknownDirective,
    /// Unknown port role after `:` (expected `in`, `out` or `io`).
    BadRole,
    /// Unknown MOS polarity keyword (expected `nmos` or `pmos`).
    BadPolarity,
    /// Unknown stimulus keyword (expected `dc`, `pulse`, `sine` or
    /// `pwl`).
    BadWave,
    /// Unknown integration method on a `.tran` card (expected `be` or
    /// `trap`).
    BadMethod,
    /// A second `.tran` card.
    DuplicateTran,
    /// Duplicate device/instance name within one scope.
    DuplicateName,
    /// Duplicate `.subckt` definition name.
    DuplicateSubckt,
    /// Duplicate `.param` name within one scope.
    DuplicateParam,
    /// `.subckt` while a previous definition is still open.
    NestedSubckt,
    /// `.ends` with no open definition.
    StrayEnds,
    /// End of input with an unterminated `.subckt`.
    MissingEnds,
    /// A directive only valid at top level appeared inside a
    /// `.subckt`.
    NotInSubckt,
    /// A card after `.end`.
    AfterEnd,
    /// Leftover token after a complete card.
    Trailing,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, col {}: ", self.line, self.col)?;
        let tok = &self.token;
        match &self.kind {
            ParseErrorKind::Expected { what } => {
                if tok.is_empty() {
                    write!(f, "expected {what}, found end of line")
                } else {
                    write!(f, "expected {what}, found `{tok}`")
                }
            }
            ParseErrorKind::BadValue => {
                write!(f, "`{tok}` is neither a number nor a parameter name")
            }
            ParseErrorKind::BadNumber => write!(f, "`{tok}` is not a number"),
            ParseErrorKind::UnknownCard => write!(
                f,
                "unknown card `{tok}`: device cards start with R, C, V, I, E, G, D, M or L, instances with X"
            ),
            ParseErrorKind::UnknownDirective => write!(
                f,
                "unknown directive `{tok}`: expected .param, .default, .subckt, .ends, .tran, .tech, .sweep or .end"
            ),
            ParseErrorKind::BadRole => {
                write!(f, "unknown port role `{tok}`: expected in, out or io")
            }
            ParseErrorKind::BadPolarity => {
                write!(f, "unknown polarity `{tok}`: expected nmos or pmos")
            }
            ParseErrorKind::BadWave => {
                write!(f, "unknown stimulus `{tok}`: expected dc, pulse, sine or pwl")
            }
            ParseErrorKind::BadMethod => {
                write!(f, "unknown integration method `{tok}`: expected be or trap")
            }
            ParseErrorKind::DuplicateTran => write!(f, "duplicate .tran card"),
            ParseErrorKind::DuplicateName => {
                write!(f, "duplicate device or instance name `{tok}` in this scope")
            }
            ParseErrorKind::DuplicateSubckt => write!(f, "duplicate .subckt name `{tok}`"),
            ParseErrorKind::DuplicateParam => write!(f, "duplicate parameter `{tok}`"),
            ParseErrorKind::NestedSubckt => {
                write!(f, ".subckt definitions cannot nest (missing .ends above?)")
            }
            ParseErrorKind::StrayEnds => write!(f, ".ends without an open .subckt"),
            ParseErrorKind::MissingEnds => {
                write!(f, ".subckt `{tok}` is never closed by .ends")
            }
            ParseErrorKind::NotInSubckt => {
                write!(f, "`{tok}` is only valid at top level, not inside .subckt")
            }
            ParseErrorKind::AfterEnd => write!(f, "card after .end"),
            ParseErrorKind::Trailing => write!(f, "unexpected trailing token `{tok}`"),
        }
    }
}

impl std::error::Error for ParseError {}

/// One whitespace-delimited token with its 1-based starting column.
#[derive(Debug, Clone)]
struct Tok<'a> {
    text: &'a str,
    col: usize,
}

fn tokenize(line: &str) -> Vec<Tok<'_>> {
    let mut toks = Vec::new();
    let mut start: Option<usize> = None;
    for (i, c) in line.char_indices() {
        if c.is_whitespace() {
            if let Some(s) = start.take() {
                toks.push(Tok {
                    text: &line[s..i],
                    col: s + 1,
                });
            }
        } else if start.is_none() {
            start = Some(i);
        }
    }
    if let Some(s) = start {
        toks.push(Tok {
            text: &line[s..],
            col: s + 1,
        });
    }
    toks
}

/// Parses a number with an optional SPICE SI suffix
/// (`f p n u m k meg g t`, case-insensitive).
pub fn parse_number(tok: &str) -> Option<f64> {
    if let Ok(v) = tok.parse::<f64>() {
        return v.is_finite().then_some(v);
    }
    let lower = tok.to_ascii_lowercase();
    let (body, exp) = if let Some(b) = lower.strip_suffix("meg") {
        (b, 6i32)
    } else {
        let exp = match lower.as_bytes().last()? {
            b'f' => -15,
            b'p' => -12,
            b'n' => -9,
            b'u' => -6,
            b'm' => -3,
            b'k' => 3,
            b'g' => 9,
            b't' => 12,
            _ => return None,
        };
        (&lower[..lower.len() - 1], exp)
    };
    // Compose the suffix textually so `2.5u` parses bit-exact as
    // `2.5e-6` (a multiply can land one ulp off); fall back to
    // arithmetic for bodies that carry their own exponent (`2e3k`).
    let scaled = match format!("{body}e{exp}").parse::<f64>() {
        Ok(v) => v,
        Err(_) => body.parse::<f64>().ok()? * 10f64.powi(exp),
    };
    scaled.is_finite().then_some(scaled)
}

fn is_ident(tok: &str) -> bool {
    let mut chars = tok.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

/// A cursor over one line's tokens, shared by all card parsers.
struct Cursor<'a> {
    toks: Vec<Tok<'a>>,
    pos: usize,
    line: usize,
    len: usize,
}

impl<'a> Cursor<'a> {
    fn new(line_no: usize, line: &'a str) -> Self {
        let toks = tokenize(line);
        Cursor {
            toks,
            pos: 0,
            line: line_no,
            len: line.chars().count(),
        }
    }

    fn peek(&self) -> Option<&Tok<'a>> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok<'a>> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, kind: ParseErrorKind) -> ParseError {
        match self.peek() {
            Some(t) => ParseError {
                line: self.line,
                col: t.col,
                token: t.text.to_string(),
                kind,
            },
            None => ParseError {
                line: self.line,
                col: self.len + 1,
                token: String::new(),
                kind,
            },
        }
    }

    fn err_at(&self, tok: &Tok<'_>, kind: ParseErrorKind) -> ParseError {
        ParseError {
            line: self.line,
            col: tok.col,
            token: tok.text.to_string(),
            kind,
        }
    }

    fn expect(&mut self, what: &'static str) -> Result<Tok<'a>, ParseError> {
        match self.next() {
            Some(t) => Ok(t),
            None => Err(self.err_here(ParseErrorKind::Expected { what })),
        }
    }

    /// Node-name position: any token without `=` (which would indicate
    /// a key=value pair reaching a position expecting a node).
    fn expect_node(&mut self) -> Result<String, ParseError> {
        let t = self.expect("a node name")?;
        if t.text.contains('=') {
            return Err(self.err_at(&t, ParseErrorKind::Expected { what: "a node name" }));
        }
        Ok(t.text.to_string())
    }

    /// Value position: literal number (SI suffixes allowed) or a
    /// parameter reference.
    fn expect_value(&mut self) -> Result<Value, ParseError> {
        let t = self.expect("a number or parameter name")?;
        self.value_of(&t)
    }

    fn value_of(&self, t: &Tok<'_>) -> Result<Value, ParseError> {
        if let Some(v) = parse_number(t.text) {
            Ok(Value::Lit(v))
        } else if is_ident(t.text) {
            Ok(Value::Ref(t.text.to_string()))
        } else {
            Err(self.err_at(t, ParseErrorKind::BadValue))
        }
    }

    fn expect_done(&mut self) -> Result<(), ParseError> {
        if self.peek().is_some() {
            return Err(self.err_here(ParseErrorKind::Trailing));
        }
        Ok(())
    }
}

/// Splits `key=value`, or returns `None` for a bare token.
fn split_kv(text: &str) -> Option<(&str, &str)> {
    let (k, v) = text.split_once('=')?;
    Some((k, v))
}

/// Parses `.ulp` source text into a [`Design`].
///
/// # Errors
///
/// The first syntactic problem, as a typed [`ParseError`] with line,
/// column and the offending token.
pub fn parse(text: &str) -> Result<Design, ParseError> {
    let mut design = Design::default();
    let mut open: Option<Subckt> = None;
    let mut open_line = 0usize;
    let mut ended = false;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let trimmed = raw.trim_start();
        if trimmed.is_empty() || trimmed.starts_with('*') || trimmed.starts_with(';') {
            continue;
        }
        let mut cur = Cursor::new(line_no, raw);
        let head = cur.next().expect("non-blank line has a first token");
        if ended {
            return Err(cur.err_at(&head, ParseErrorKind::AfterEnd));
        }
        let head_lower = head.text.to_ascii_lowercase();
        match head_lower.as_str() {
            ".param" => parse_param(&mut cur, &head, &mut design, &mut open)?,
            ".default" => {
                if open.is_some() {
                    return Err(cur.err_at(&head, ParseErrorKind::NotInSubckt));
                }
                parse_default(&mut cur, &mut design)?;
            }
            ".subckt" => {
                if open.is_some() {
                    return Err(cur.err_at(&head, ParseErrorKind::NestedSubckt));
                }
                open = Some(parse_subckt_header(&mut cur, &design)?);
                open_line = line_no;
            }
            ".ends" => {
                let Some(done) = open.take() else {
                    return Err(cur.err_at(&head, ParseErrorKind::StrayEnds));
                };
                cur.expect_done()?;
                design.subckts.push(done);
            }
            ".tran" => {
                if open.is_some() {
                    return Err(cur.err_at(&head, ParseErrorKind::NotInSubckt));
                }
                if design.tran.is_some() {
                    return Err(cur.err_at(&head, ParseErrorKind::DuplicateTran));
                }
                design.tran = Some(parse_tran(&mut cur)?);
            }
            ".tech" => {
                if open.is_some() {
                    return Err(cur.err_at(&head, ParseErrorKind::NotInSubckt));
                }
                if cur.peek().is_none() {
                    return Err(cur.err_here(ParseErrorKind::Expected {
                        what: "a technology target name",
                    }));
                }
                let sweep = design.sweep.get_or_insert_with(SweepSpec::default);
                while let Some(t) = cur.next() {
                    sweep.techs.push(t.text.to_string());
                }
            }
            ".sweep" => {
                if open.is_some() {
                    return Err(cur.err_at(&head, ParseErrorKind::NotInSubckt));
                }
                let axis = parse_sweep_axis(&mut cur)?;
                design
                    .sweep
                    .get_or_insert_with(SweepSpec::default)
                    .axes
                    .push(axis);
            }
            ".end" => {
                cur.expect_done()?;
                ended = true;
            }
            _ if head_lower.starts_with('.') => {
                return Err(cur.err_at(&head, ParseErrorKind::UnknownDirective));
            }
            _ => {
                let item = parse_card(&mut cur, &head)?;
                let scope: &[Item] = match &open {
                    Some(s) => &s.items,
                    None => &design.top,
                };
                if scope.iter().any(|i| i.name() == item.name()) {
                    return Err(cur.err_at(&head, ParseErrorKind::DuplicateName));
                }
                match &mut open {
                    Some(s) => s.items.push(item),
                    None => design.top.push(item),
                }
            }
        }
    }
    if let Some(s) = open {
        return Err(ParseError {
            line: open_line,
            col: 1,
            token: s.name,
            kind: ParseErrorKind::MissingEnds,
        });
    }
    Ok(design)
}

fn parse_param(
    cur: &mut Cursor<'_>,
    head: &Tok<'_>,
    design: &mut Design,
    open: &mut Option<Subckt>,
) -> Result<(), ParseError> {
    if cur.peek().is_none() {
        return Err(cur.err_at(head, ParseErrorKind::Expected {
            what: "at least one name=number pair",
        }));
    }
    while let Some(t) = cur.next() {
        let Some((k, v)) = split_kv(t.text) else {
            return Err(cur.err_at(&t, ParseErrorKind::Expected { what: "name=number" }));
        };
        if !is_ident(k) {
            return Err(cur.err_at(&t, ParseErrorKind::Expected { what: "name=number" }));
        }
        let Some(num) = parse_number(v) else {
            return Err(cur.err_at(&t, ParseErrorKind::BadNumber));
        };
        let params = match open {
            Some(s) => &mut s.params,
            None => &mut design.params,
        };
        if params.iter().any(|(name, _)| name == k) {
            return Err(cur.err_at(&t, ParseErrorKind::DuplicateParam));
        }
        params.push((k.to_string(), num));
    }
    Ok(())
}

fn parse_tran(cur: &mut Cursor<'_>) -> Result<TranSpec, ParseError> {
    let t = cur.expect("a stop time")?;
    let Some(t_stop) = parse_number(t.text) else {
        return Err(cur.err_at(&t, ParseErrorKind::BadNumber));
    };
    if t_stop <= 0.0 {
        return Err(cur.err_at(
            &t,
            ParseErrorKind::Expected {
                what: "a positive stop time",
            },
        ));
    }
    let mut spec = TranSpec {
        t_stop,
        dt_max: None,
        method: None,
    };
    // Optional `dt_max`: a number in the second position. A keyword
    // here is the method instead (`.tran 1u trap` is legal).
    if let Some(t) = cur.peek() {
        if let Some(dt) = parse_number(t.text) {
            let t = t.clone();
            cur.next();
            if dt <= 0.0 {
                return Err(cur.err_at(
                    &t,
                    ParseErrorKind::Expected {
                        what: "a positive maximum step",
                    },
                ));
            }
            spec.dt_max = Some(dt);
        }
    }
    if let Some(t) = cur.next() {
        spec.method = Some(match t.text.to_ascii_lowercase().as_str() {
            "be" => TranMethod::Be,
            "trap" => TranMethod::Trap,
            _ => return Err(cur.err_at(&t, ParseErrorKind::BadMethod)),
        });
    }
    cur.expect_done()?;
    Ok(spec)
}

fn parse_default(cur: &mut Cursor<'_>, design: &mut Design) -> Result<(), ParseError> {
    let t = cur.expect("nmos or pmos")?;
    let polarity = match t.text.to_ascii_lowercase().as_str() {
        "nmos" => Polarity::Nmos,
        "pmos" => Polarity::Pmos,
        _ => return Err(cur.err_at(&t, ParseErrorKind::BadPolarity)),
    };
    if design.class_default(polarity).is_some() {
        return Err(cur.err_at(&t, ParseErrorKind::DuplicateParam));
    }
    let mut def = ClassDefault {
        polarity,
        w: None,
        l: None,
    };
    while let Some(t) = cur.next() {
        let Some((k, v)) = split_kv(t.text) else {
            return Err(cur.err_at(&t, ParseErrorKind::Expected { what: "w=… or l=…" }));
        };
        let Some(num) = parse_number(v) else {
            return Err(cur.err_at(&t, ParseErrorKind::BadNumber));
        };
        let slot = match k {
            "w" => &mut def.w,
            "l" => &mut def.l,
            _ => return Err(cur.err_at(&t, ParseErrorKind::Expected { what: "w=… or l=…" })),
        };
        if slot.is_some() {
            return Err(cur.err_at(&t, ParseErrorKind::DuplicateParam));
        }
        *slot = Some(num);
    }
    design.defaults.push(def);
    Ok(())
}

fn parse_subckt_header(cur: &mut Cursor<'_>, design: &Design) -> Result<Subckt, ParseError> {
    let name_tok = cur.expect("a subcircuit name")?;
    if !is_ident(name_tok.text) {
        return Err(cur.err_at(&name_tok, ParseErrorKind::Expected {
            what: "a subcircuit name",
        }));
    }
    if design.subckt(name_tok.text).is_some() {
        return Err(cur.err_at(&name_tok, ParseErrorKind::DuplicateSubckt));
    }
    let mut sub = Subckt {
        name: name_tok.text.to_string(),
        ports: Vec::new(),
        params: Vec::new(),
        items: Vec::new(),
    };
    while let Some(t) = cur.next() {
        if let Some((k, v)) = split_kv(t.text) {
            // Parameter default (literal number).
            let Some(num) = parse_number(v) else {
                return Err(cur.err_at(&t, ParseErrorKind::BadNumber));
            };
            if sub.params.iter().any(|(name, _)| name == k) {
                return Err(cur.err_at(&t, ParseErrorKind::DuplicateParam));
            }
            sub.params.push((k.to_string(), num));
        } else {
            // Port, optionally role-tagged.
            if !sub.params.is_empty() {
                return Err(cur.err_at(&t, ParseErrorKind::Expected {
                    what: "name=number (ports must precede parameter defaults)",
                }));
            }
            let (name, role) = match t.text.split_once(':') {
                Some((n, r)) => {
                    let role = match r {
                        "in" => PortRole::In,
                        "out" => PortRole::Out,
                        "io" => PortRole::Bidir,
                        _ => return Err(cur.err_at(&t, ParseErrorKind::BadRole)),
                    };
                    (n, role)
                }
                None => (t.text, PortRole::Bidir),
            };
            if sub.ports.iter().any(|p| p.name == name) {
                return Err(cur.err_at(&t, ParseErrorKind::DuplicateName));
            }
            sub.ports.push(Port {
                name: name.to_string(),
                role,
            });
        }
    }
    Ok(sub)
}

fn parse_sweep_axis(cur: &mut Cursor<'_>) -> Result<SweepAxis, ParseError> {
    let mut axis = SweepAxis {
        devices: Vec::new(),
        grid: Vec::new(),
    };
    while let Some(t) = cur.next() {
        if let Some((k, v)) = split_kv(t.text) {
            if axis.devices.is_empty() {
                return Err(cur.err_at(&t, ParseErrorKind::Expected {
                    what: "a device path before the first grid",
                }));
            }
            if axis.grid.iter().any(|(name, _)| name == k) {
                return Err(cur.err_at(&t, ParseErrorKind::DuplicateParam));
            }
            let mut values = Vec::new();
            for piece in v.split(',') {
                let Some(num) = parse_number(piece) else {
                    return Err(cur.err_at(&t, ParseErrorKind::BadNumber));
                };
                values.push(num);
            }
            axis.grid.push((k.to_string(), values));
        } else {
            if !axis.grid.is_empty() {
                return Err(cur.err_at(&t, ParseErrorKind::Expected {
                    what: "param=v1,v2,… (devices must precede grids)",
                }));
            }
            axis.devices.push(t.text.to_string());
        }
    }
    if axis.devices.is_empty() {
        return Err(cur.err_here(ParseErrorKind::Expected {
            what: "a device path",
        }));
    }
    if axis.grid.is_empty() {
        return Err(cur.err_here(ParseErrorKind::Expected {
            what: "param=v1,v2,…",
        }));
    }
    Ok(axis)
}

fn parse_card(cur: &mut Cursor<'_>, head: &Tok<'_>) -> Result<Item, ParseError> {
    let name = head.text.to_string();
    let letter = name
        .chars()
        .next()
        .expect("card token is non-empty")
        .to_ascii_uppercase();
    let item = match letter {
        'R' => {
            let (a, b) = (cur.expect_node()?, cur.expect_node()?);
            let ohms = cur.expect_value()?;
            Item::Device(Device {
                name,
                nodes: vec![a, b],
                kind: DeviceKind::Resistor { ohms },
            })
        }
        'C' => {
            let (a, b) = (cur.expect_node()?, cur.expect_node()?);
            let farads = cur.expect_value()?;
            Item::Device(Device {
                name,
                nodes: vec![a, b],
                kind: DeviceKind::Capacitor { farads },
            })
        }
        'V' | 'I' => {
            let (p, n) = (cur.expect_node()?, cur.expect_node()?);
            let (wave, ac) = parse_wave(cur)?;
            let kind = if letter == 'V' {
                DeviceKind::Vsource { wave, ac }
            } else {
                DeviceKind::Isource { wave, ac }
            };
            Item::Device(Device {
                name,
                nodes: vec![p, n],
                kind,
            })
        }
        'E' | 'G' => {
            let nodes = vec![
                cur.expect_node()?,
                cur.expect_node()?,
                cur.expect_node()?,
                cur.expect_node()?,
            ];
            let v = cur.expect_value()?;
            let kind = if letter == 'E' {
                DeviceKind::Vcvs { gain: v }
            } else {
                DeviceKind::Vccs { gm: v }
            };
            Item::Device(Device { name, nodes, kind })
        }
        'D' => {
            let (p, n) = (cur.expect_node()?, cur.expect_node()?);
            let mut is_sat = None;
            let mut n_id = None;
            parse_kv_values(cur, &mut [("is", &mut is_sat), ("n", &mut n_id)])?;
            let (Some(is_sat), Some(n_id)) = (is_sat, n_id) else {
                return Err(cur.err_here(ParseErrorKind::Expected {
                    what: "is=… and n=…",
                }));
            };
            Item::Device(Device {
                name,
                nodes: vec![p, n],
                kind: DeviceKind::Diode { is_sat, n_id },
            })
        }
        'M' => {
            let nodes = vec![
                cur.expect_node()?,
                cur.expect_node()?,
                cur.expect_node()?,
                cur.expect_node()?,
            ];
            let pol_tok = cur.expect("nmos or pmos")?;
            let polarity = match pol_tok.text.to_ascii_lowercase().as_str() {
                "nmos" => Polarity::Nmos,
                "pmos" => Polarity::Pmos,
                _ => return Err(cur.err_at(&pol_tok, ParseErrorKind::BadPolarity)),
            };
            let mut w = None;
            let mut l = None;
            parse_kv_values(cur, &mut [("w", &mut w), ("l", &mut l)])?;
            Item::Device(Device {
                name,
                nodes,
                kind: DeviceKind::Mos { polarity, w, l },
            })
        }
        'L' => {
            let (a, b) = (cur.expect_node()?, cur.expect_node()?);
            let mut vsw = None;
            let mut iss = None;
            parse_kv_values(cur, &mut [("vsw", &mut vsw), ("iss", &mut iss)])?;
            let (Some(vsw), Some(iss)) = (vsw, iss) else {
                return Err(cur.err_here(ParseErrorKind::Expected {
                    what: "vsw=… and iss=…",
                }));
            };
            Item::Device(Device {
                name,
                nodes: vec![a, b],
                kind: DeviceKind::SclLoad { vsw, iss },
            })
        }
        'X' => {
            // Bare tokens are connections; the last bare token is the
            // subcircuit name; key=value pairs are parameter overrides.
            let mut bare: Vec<Tok<'_>> = Vec::new();
            let mut params: Vec<(String, Value)> = Vec::new();
            while let Some(t) = cur.next() {
                if let Some((k, v)) = split_kv(t.text) {
                    if params.iter().any(|(name, _)| name == k) {
                        return Err(cur.err_at(&t, ParseErrorKind::DuplicateParam));
                    }
                    let vt = Tok { text: v, col: t.col };
                    params.push((k.to_string(), cur.value_of(&vt)?));
                } else {
                    if !params.is_empty() {
                        return Err(cur.err_at(&t, ParseErrorKind::Expected {
                            what: "name=value (connections must precede overrides)",
                        }));
                    }
                    bare.push(t);
                }
            }
            let Some(sub_tok) = bare.pop() else {
                return Err(cur.err_here(ParseErrorKind::Expected {
                    what: "a subcircuit name",
                }));
            };
            if !is_ident(sub_tok.text) {
                return Err(cur.err_at(&sub_tok, ParseErrorKind::Expected {
                    what: "a subcircuit name",
                }));
            }
            return Ok(Item::Instance(Instance {
                name,
                conns: bare.into_iter().map(|t| t.text.to_string()).collect(),
                subckt: sub_tok.text.to_string(),
                params,
            }));
        }
        _ => return Err(cur.err_at(head, ParseErrorKind::UnknownCard)),
    };
    cur.expect_done()?;
    Ok(item)
}

/// Parses a run of `key=value` pairs into the given slots; keys outside
/// the slot list and duplicate keys are errors.
fn parse_kv_values(
    cur: &mut Cursor<'_>,
    slots: &mut [(&str, &mut Option<Value>)],
) -> Result<(), ParseError> {
    while let Some(t) = cur.next() {
        let Some((k, v)) = split_kv(t.text) else {
            return Err(cur.err_at(&t, ParseErrorKind::Expected { what: "name=value" }));
        };
        let vt = Tok { text: v, col: t.col };
        let value = cur.value_of(&vt)?;
        let Some(slot) = slots.iter_mut().find(|(name, _)| *name == k) else {
            return Err(cur.err_at(&t, ParseErrorKind::Expected { what: "a known parameter" }));
        };
        if slot.1.is_some() {
            return Err(cur.err_at(&t, ParseErrorKind::DuplicateParam));
        }
        *slot.1 = Some(value);
    }
    Ok(())
}

fn parse_wave(cur: &mut Cursor<'_>) -> Result<(WaveSpec, Value), ParseError> {
    let kw = cur.expect("dc, pulse, sine or pwl")?;
    let wave = match kw.text.to_ascii_lowercase().as_str() {
        "dc" => WaveSpec::Dc(cur.expect_value()?),
        "pulse" => WaveSpec::Pulse {
            v0: cur.expect_value()?,
            v1: cur.expect_value()?,
            delay: cur.expect_value()?,
            rise: cur.expect_value()?,
            fall: cur.expect_value()?,
            width: cur.expect_value()?,
            period: cur.expect_value()?,
        },
        "sine" => WaveSpec::Sine {
            offset: cur.expect_value()?,
            amp: cur.expect_value()?,
            freq: cur.expect_value()?,
            delay: cur.expect_value()?,
        },
        "pwl" => {
            let mut points = Vec::new();
            while cur
                .peek()
                .is_some_and(|t| !t.text.eq_ignore_ascii_case("ac"))
            {
                let t = cur.expect_value()?;
                let v = cur.expect_value()?;
                points.push((t, v));
            }
            if points.is_empty() {
                return Err(cur.err_here(ParseErrorKind::Expected {
                    what: "at least one time/value pair",
                }));
            }
            WaveSpec::Pwl(points)
        }
        _ => return Err(cur.err_at(&kw, ParseErrorKind::BadWave)),
    };
    let ac = if let Some(t) = cur.peek() {
        if t.text.eq_ignore_ascii_case("ac") {
            cur.next();
            cur.expect_value()?
        } else {
            return Err(cur.err_here(ParseErrorKind::Trailing));
        }
    } else {
        Value::Lit(0.0)
    };
    cur.expect_done()?;
    Ok((wave, ac))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn err(text: &str) -> ParseError {
        parse(text).expect_err("expected a parse error")
    }

    #[test]
    fn si_suffixes() {
        assert_eq!(parse_number("1k"), Some(1e3));
        assert_eq!(parse_number("100p"), Some(100e-12));
        assert_eq!(parse_number("1meg"), Some(1e6));
        assert_eq!(parse_number("2.5u"), Some(2.5e-6));
        assert_eq!(parse_number("1e-9"), Some(1e-9));
        assert_eq!(parse_number("-3m"), Some(-3e-3));
        assert_eq!(parse_number("x1"), None);
        assert_eq!(parse_number("1q"), None);
        assert_eq!(parse_number("inf"), None);
        assert_eq!(parse_number("nan"), None);
    }

    #[test]
    fn minimal_divider_parses() {
        let d = parse("V1 a 0 dc 1.0\nR1 a b 1k\nR2 b 0 1k\n.end\n").unwrap();
        assert_eq!(d.top.len(), 3);
        assert_eq!(d.top[0].name(), "V1");
        match &d.top[1] {
            Item::Device(dev) => assert_eq!(dev.kind, DeviceKind::Resistor {
                ohms: Value::Lit(1e3)
            }),
            _ => panic!("expected a device"),
        }
    }

    #[test]
    fn subckt_ports_roles_and_defaults() {
        let d = parse(
            ".subckt buf a:in y:out vdd:io gnd iss=1n\nR1 a y 1k\n.ends\nX1 p q r 0 buf iss=2n\n",
        )
        .unwrap();
        let s = &d.subckts[0];
        assert_eq!(s.ports.len(), 4);
        assert_eq!(s.ports[0].role, PortRole::In);
        assert_eq!(s.ports[1].role, PortRole::Out);
        assert_eq!(s.ports[2].role, PortRole::Bidir);
        assert_eq!(s.ports[3].role, PortRole::Bidir); // untagged default
        assert_eq!(s.params, vec![("iss".to_string(), 1e-9)]);
        match &d.top[0] {
            Item::Instance(x) => {
                assert_eq!(x.conns, vec!["p", "q", "r", "0"]);
                assert_eq!(x.subckt, "buf");
                assert_eq!(x.params, vec![("iss".to_string(), Value::Lit(2e-9))]);
            }
            _ => panic!("expected an instance"),
        }
    }

    // -- golden error messages: these strings are the contract a
    // service front-end renders to users, pinned byte-for-byte. --

    #[test]
    fn golden_unknown_card() {
        let e = err("Q1 a b 1k\n");
        assert_eq!(e.line, 1);
        assert_eq!(e.col, 1);
        assert_eq!(e.token, "Q1");
        assert_eq!(
            e.to_string(),
            "line 1, col 1: unknown card `Q1`: device cards start with R, C, V, I, E, G, D, M or L, instances with X"
        );
    }

    #[test]
    fn golden_bad_value() {
        let e = err("V1 a 0 dc 1.0\nR1 a 0 1k!\n");
        assert_eq!((e.line, e.col), (2, 8));
        assert_eq!(
            e.to_string(),
            "line 2, col 8: `1k!` is neither a number nor a parameter name"
        );
    }

    #[test]
    fn golden_missing_node() {
        let e = err("R1 a\n");
        assert_eq!(
            e.to_string(),
            "line 1, col 5: expected a node name, found end of line"
        );
    }

    #[test]
    fn golden_bad_wave() {
        let e = err("V1 a 0 step 1.0\n");
        assert_eq!(
            e.to_string(),
            "line 1, col 8: unknown stimulus `step`: expected dc, pulse, sine or pwl"
        );
    }

    #[test]
    fn golden_missing_ends() {
        let e = err(".subckt buf a b\nR1 a b 1k\n");
        assert_eq!((e.line, e.col), (1, 1));
        assert_eq!(e.token, "buf");
        assert_eq!(
            e.to_string(),
            "line 1, col 1: .subckt `buf` is never closed by .ends"
        );
    }

    #[test]
    fn golden_stray_ends_and_after_end() {
        assert_eq!(
            err(".ends\n").to_string(),
            "line 1, col 1: .ends without an open .subckt"
        );
        assert_eq!(
            err(".end\nR1 a 0 1k\n").to_string(),
            "line 2, col 1: card after .end"
        );
    }

    #[test]
    fn golden_duplicate_name() {
        let e = err("R1 a 0 1k\nR1 b 0 2k\n");
        assert_eq!(
            e.to_string(),
            "line 2, col 1: duplicate device or instance name `R1` in this scope"
        );
    }

    #[test]
    fn golden_bad_polarity_and_role() {
        assert_eq!(
            err("M1 d g s b cmos w=1u l=1u\n").to_string(),
            "line 1, col 12: unknown polarity `cmos`: expected nmos or pmos"
        );
        assert_eq!(
            err(".subckt buf a:inout\n.ends\n").to_string(),
            "line 1, col 13: unknown port role `a:inout`: expected in, out or io"
        );
    }

    #[test]
    fn golden_trailing_token() {
        assert_eq!(
            err("R1 a 0 1k extra\n").to_string(),
            "line 1, col 11: unexpected trailing token `extra`"
        );
    }

    #[test]
    fn golden_unknown_directive() {
        assert_eq!(
            err(".model foo\n").to_string(),
            "line 1, col 1: unknown directive `.model`: expected .param, .default, .subckt, .ends, .tran, .tech, .sweep or .end"
        );
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let d = parse("* a comment\n\n; another\nR1 a 0 1k\n").unwrap();
        assert_eq!(d.top.len(), 1);
    }

    #[test]
    fn sweep_cards_parse() {
        let d = parse(
            "R1 a 0 1k\n.tech tt ss ff\n.default nmos w=1u l=0.5u\n.sweep M1 M2 w=1u,2u,4u\n.sweep MT w=2u,4u l=0.5u,1u\n.end\n",
        )
        .unwrap();
        let sweep = d.sweep.unwrap();
        assert_eq!(sweep.techs, vec!["tt", "ss", "ff"]);
        assert_eq!(sweep.axes.len(), 2);
        assert_eq!(sweep.axes[0].devices, vec!["M1", "M2"]);
        assert_eq!(sweep.axes[0].grid[0].0, "w");
        assert_eq!(sweep.axes[0].grid[0].1, vec![1e-6, 2e-6, 4e-6]);
        assert_eq!(d.defaults[0].w, Some(1e-6));
        assert_eq!(d.defaults[0].l, Some(0.5e-6));
    }

    #[test]
    fn ac_magnitude_parses() {
        let d = parse("V1 a 0 dc 1.0 ac 0.5\n").unwrap();
        match &d.top[0] {
            Item::Device(Device {
                kind: DeviceKind::Vsource { ac, .. },
                ..
            }) => assert_eq!(*ac, Value::Lit(0.5)),
            _ => panic!("expected a vsource"),
        }
    }

    #[test]
    fn pwl_and_pulse_parse() {
        let d = parse("I1 a 0 pwl 0 0 1u 1n 2u 0\nV2 b 0 pulse 0 1 0 1n 1n 5n 10n\n").unwrap();
        match &d.top[0] {
            Item::Device(Device {
                kind: DeviceKind::Isource { wave: WaveSpec::Pwl(pts), .. },
                ..
            }) => assert_eq!(pts.len(), 3),
            _ => panic!("expected pwl isource"),
        }
    }

    #[test]
    fn tran_card_forms() {
        let d = parse("R1 a 0 1k\n.tran 1u\n.end\n").unwrap();
        assert_eq!(d.tran, Some(TranSpec {
            t_stop: 1e-6,
            dt_max: None,
            method: None,
        }));
        let d = parse("R1 a 0 1k\n.tran 1u 10n\n.end\n").unwrap();
        assert_eq!(d.tran.unwrap().dt_max, Some(1e-8));
        let d = parse("R1 a 0 1k\n.tran 1u 10n trap\n.end\n").unwrap();
        assert_eq!(d.tran.as_ref().unwrap().method, Some(TranMethod::Trap));
        // Method without dt_max is legal: the second field dispatches
        // on whether it parses as a number.
        let d = parse("R1 a 0 1k\n.tran 1u be\n.end\n").unwrap();
        let tran = d.tran.unwrap();
        assert_eq!(tran.dt_max, None);
        assert_eq!(tran.method, Some(TranMethod::Be));
    }

    #[test]
    fn golden_tran_errors() {
        assert_eq!(
            err(".tran 1u 10n euler\n").to_string(),
            "line 1, col 14: unknown integration method `euler`: expected be or trap"
        );
        assert_eq!(
            err(".tran 1u\n.tran 2u\n.end\n").to_string(),
            "line 2, col 1: duplicate .tran card"
        );
        assert_eq!(
            err(".tran\n").to_string(),
            "line 1, col 6: expected a stop time, found end of line"
        );
        assert_eq!(
            err(".tran abc\n").to_string(),
            "line 1, col 7: `abc` is not a number"
        );
        assert_eq!(
            err(".tran -1u\n").to_string(),
            "line 1, col 7: expected a positive stop time, found `-1u`"
        );
        assert_eq!(
            err(".tran 1u 0\n").to_string(),
            "line 1, col 10: expected a positive maximum step, found `0`"
        );
        assert_eq!(
            err(".subckt s a\n.tran 1u\n.ends\n").to_string(),
            "line 2, col 1: `.tran` is only valid at top level, not inside .subckt"
        );
        assert_eq!(
            err(".tran 1u 10n trap extra\n").to_string(),
            "line 1, col 19: unexpected trailing token `extra`"
        );
    }
}
