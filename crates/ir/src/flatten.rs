//! Recursive elaboration of a [`Design`] into a flat
//! [`ulp_spice::Netlist`].
//!
//! ## Naming contract
//!
//! Flattened names are the dot-joined instance path: a device `M1`
//! inside instance `x2` of instance `x1` becomes element `x1.x2.M1`,
//! and an internal net `cs` of that scope becomes node `x1.x2.cs`.
//! Ports do not create nodes — they bind to the parent net the
//! instance card connects, so the parent's name wins. The net `0` is
//! the global ground at every depth.
//!
//! ## Parameters
//!
//! Each instantiation evaluates in its own environment: global
//! `.param` constants, shadowed by the subcircuit's declared defaults,
//! shadowed by the instance card's overrides (which are themselves
//! evaluated in the *parent* environment, so values chain down the
//! hierarchy). Referencing an undeclared parameter, overriding one the
//! subcircuit does not declare, or producing a physically invalid
//! value (e.g. a non-positive resistance) is a typed [`FlattenError`],
//! not a panic.

use crate::ast::*;
use std::collections::HashMap;
use std::fmt;
use ulp_device::{Mosfet, Polarity};
use ulp_device::load::PmosLoad;
use ulp_spice::{Netlist, Node, Waveform};

/// Why a design could not be flattened.
#[derive(Debug, Clone, PartialEq)]
pub enum FlattenError {
    /// An instance names a subcircuit the design does not define.
    UnknownSubckt {
        /// Flattened instance path.
        instance: String,
        /// The missing definition name.
        subckt: String,
    },
    /// The instantiation hierarchy contains a cycle.
    Recursion {
        /// The definition-name path that closed the cycle.
        path: Vec<String>,
    },
    /// An instance connects a different number of nets than the
    /// subcircuit declares ports.
    PortArity {
        /// Flattened instance path.
        instance: String,
        /// The instantiated subcircuit.
        subckt: String,
        /// Declared port count.
        expected: usize,
        /// Connected net count.
        got: usize,
    },
    /// An instance overrides a parameter the subcircuit does not
    /// declare.
    UnknownOverride {
        /// Flattened instance path.
        instance: String,
        /// The undeclared parameter.
        param: String,
    },
    /// A device references a parameter not visible in its scope.
    UnknownParam {
        /// Flattened device path.
        device: String,
        /// The unresolved name.
        param: String,
    },
    /// A MOS card has no `w`/`l` and no `.default` for its class.
    MissingGeometry {
        /// Flattened device path.
        device: String,
        /// Which dimension is missing (`w` or `l`).
        field: &'static str,
    },
    /// A resolved value is outside the physical domain of its field.
    BadValue {
        /// Flattened device path.
        device: String,
        /// The offending field.
        field: &'static str,
        /// The resolved value.
        value: f64,
    },
}

impl fmt::Display for FlattenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlattenError::UnknownSubckt { instance, subckt } => {
                write!(f, "instance `{instance}` uses undefined subcircuit `{subckt}`")
            }
            FlattenError::Recursion { path } => {
                write!(f, "recursive subcircuit instantiation: {}", path.join(" -> "))
            }
            FlattenError::PortArity {
                instance,
                subckt,
                expected,
                got,
            } => write!(
                f,
                "instance `{instance}` connects {got} net(s) but subcircuit `{subckt}` declares {expected} port(s)"
            ),
            FlattenError::UnknownOverride { instance, param } => write!(
                f,
                "instance `{instance}` overrides `{param}`, which its subcircuit does not declare"
            ),
            FlattenError::UnknownParam { device, param } => {
                write!(f, "device `{device}` references undefined parameter `{param}`")
            }
            FlattenError::MissingGeometry { device, field } => write!(
                f,
                "MOS device `{device}` has no `{field}` and no .default for its class"
            ),
            FlattenError::BadValue {
                device,
                field,
                value,
            } => write!(
                f,
                "device `{device}`: `{field}` must be positive, got {}",
                crate::ast::fmt_f64(*value)
            ),
        }
    }
}

impl std::error::Error for FlattenError {}

/// Flattens `design` into a single-level [`Netlist`], recursively
/// elaborating every instance.
///
/// # Errors
///
/// Any [`FlattenError`] — unknown definitions, recursion, port-arity
/// mismatches, unresolved or invalid parameter values.
pub fn flatten(design: &Design) -> Result<Netlist, FlattenError> {
    let mut nl = Netlist::new();
    let genv: HashMap<&str, f64> = design
        .params
        .iter()
        .map(|(k, v)| (k.as_str(), *v))
        .collect();
    let mut stack = Vec::new();
    let mut scope = Scope {
        prefix: String::new(),
        env: genv.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        bindings: HashMap::new(),
    };
    emit_items(&mut nl, design, &design.top, &mut scope, &mut stack)?;
    Ok(nl)
}

/// One elaboration scope: the flattened name prefix, the parameter
/// environment, and the port→parent-node bindings.
struct Scope {
    prefix: String,
    env: HashMap<String, f64>,
    bindings: HashMap<String, Node>,
}

impl Scope {
    fn device_path(&self, name: &str) -> String {
        format!("{}{name}", self.prefix)
    }

    fn resolve_node(&self, nl: &mut Netlist, net: &str) -> Node {
        if net == "0" {
            return Netlist::GROUND;
        }
        if let Some(&n) = self.bindings.get(net) {
            return n;
        }
        nl.node(&format!("{}{net}", self.prefix))
    }

    fn eval(&self, device: &str, value: &Value) -> Result<f64, FlattenError> {
        match value {
            Value::Lit(v) => Ok(*v),
            Value::Ref(name) => {
                self.env
                    .get(name)
                    .copied()
                    .ok_or_else(|| FlattenError::UnknownParam {
                        device: device.to_string(),
                        param: name.clone(),
                    })
            }
        }
    }
}

fn emit_items(
    nl: &mut Netlist,
    design: &Design,
    items: &[Item],
    scope: &mut Scope,
    stack: &mut Vec<String>,
) -> Result<(), FlattenError> {
    for item in items {
        match item {
            Item::Device(d) => emit_device(nl, design, d, scope)?,
            Item::Instance(inst) => emit_instance(nl, design, inst, scope, stack)?,
        }
    }
    Ok(())
}

fn emit_instance(
    nl: &mut Netlist,
    design: &Design,
    inst: &Instance,
    scope: &mut Scope,
    stack: &mut Vec<String>,
) -> Result<(), FlattenError> {
    let path = scope.device_path(&inst.name);
    let Some(sub) = design.subckt(&inst.subckt) else {
        return Err(FlattenError::UnknownSubckt {
            instance: path,
            subckt: inst.subckt.clone(),
        });
    };
    if stack.contains(&sub.name) {
        let mut cycle = stack.clone();
        cycle.push(sub.name.clone());
        return Err(FlattenError::Recursion { path: cycle });
    }
    if inst.conns.len() != sub.ports.len() {
        return Err(FlattenError::PortArity {
            instance: path,
            subckt: sub.name.clone(),
            expected: sub.ports.len(),
            got: inst.conns.len(),
        });
    }
    // Child environment: globals, shadowed by subckt defaults,
    // shadowed by overrides evaluated in the *parent* scope.
    let mut env: HashMap<String, f64> = design
        .params
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    for (k, v) in &sub.params {
        env.insert(k.clone(), *v);
    }
    for (k, v) in &inst.params {
        if !sub.params.iter().any(|(name, _)| name == k) {
            return Err(FlattenError::UnknownOverride {
                instance: path,
                param: k.clone(),
            });
        }
        env.insert(k.clone(), scope.eval(&path, v)?);
    }
    // Port bindings resolve in the parent scope.
    let bindings: HashMap<String, Node> = sub
        .ports
        .iter()
        .zip(&inst.conns)
        .map(|(p, net)| (p.name.clone(), scope.resolve_node(nl, net)))
        .collect();
    let mut child = Scope {
        prefix: format!("{path}."),
        env,
        bindings,
    };
    stack.push(sub.name.clone());
    emit_items(nl, design, &sub.items, &mut child, stack)?;
    stack.pop();
    Ok(())
}

/// Evaluates a value and requires it strictly positive — the IR-level
/// mirror of the `Netlist` builder's assertions, as typed errors.
fn positive(
    scope: &Scope,
    device: &str,
    field: &'static str,
    value: &Value,
) -> Result<f64, FlattenError> {
    let v = scope.eval(device, value)?;
    if v > 0.0 {
        Ok(v)
    } else {
        Err(FlattenError::BadValue {
            device: device.to_string(),
            field,
            value: v,
        })
    }
}

fn emit_device(
    nl: &mut Netlist,
    design: &Design,
    d: &Device,
    scope: &mut Scope,
) -> Result<(), FlattenError> {
    let path = scope.device_path(&d.name);
    let nodes: Vec<Node> = d.nodes.iter().map(|n| scope.resolve_node(nl, n)).collect();
    match &d.kind {
        DeviceKind::Resistor { ohms } => {
            let ohms = positive(scope, &path, "ohms", ohms)?;
            nl.resistor(&path, nodes[0], nodes[1], ohms);
        }
        DeviceKind::Capacitor { farads } => {
            let farads = positive(scope, &path, "farads", farads)?;
            nl.capacitor(&path, nodes[0], nodes[1], farads);
        }
        DeviceKind::Vsource { wave, ac } => {
            let wave = eval_wave(scope, &path, wave)?;
            let ac = scope.eval(&path, ac)?;
            nl.vsource_wave_ac(&path, nodes[0], nodes[1], wave, ac);
        }
        DeviceKind::Isource { wave, ac } => {
            let wave = eval_wave(scope, &path, wave)?;
            let ac = scope.eval(&path, ac)?;
            nl.isource_wave_ac(&path, nodes[0], nodes[1], wave, ac);
        }
        DeviceKind::Vcvs { gain } => {
            let gain = scope.eval(&path, gain)?;
            nl.vcvs(&path, nodes[0], nodes[1], nodes[2], nodes[3], gain);
        }
        DeviceKind::Vccs { gm } => {
            let gm = scope.eval(&path, gm)?;
            nl.vccs(&path, nodes[0], nodes[1], nodes[2], nodes[3], gm);
        }
        DeviceKind::Diode { is_sat, n_id } => {
            let is_sat = positive(scope, &path, "is", is_sat)?;
            let n_id = positive(scope, &path, "n", n_id)?;
            nl.diode(&path, nodes[0], nodes[1], is_sat, n_id);
        }
        DeviceKind::Mos { polarity, w, l } => {
            let (w, l) = mos_geometry(design, scope, &path, *polarity, w, l)?;
            let dev = Mosfet::new(*polarity, w, l);
            nl.mosfet(&path, nodes[0], nodes[1], nodes[2], nodes[3], dev);
        }
        DeviceKind::SclLoad { vsw, iss } => {
            let vsw = positive(scope, &path, "vsw", vsw)?;
            let iss = positive(scope, &path, "iss", iss)?;
            nl.scl_load(&path, nodes[0], nodes[1], PmosLoad::new(vsw), iss);
        }
    }
    Ok(())
}

fn mos_geometry(
    design: &Design,
    scope: &Scope,
    path: &str,
    polarity: Polarity,
    w: &Option<Value>,
    l: &Option<Value>,
) -> Result<(f64, f64), FlattenError> {
    let default = design.class_default(polarity);
    let resolve = |field: &'static str,
                   explicit: &Option<Value>,
                   fallback: Option<f64>|
     -> Result<f64, FlattenError> {
        match explicit {
            Some(v) => positive(scope, path, field, v),
            None => match fallback {
                Some(v) if v > 0.0 => Ok(v),
                Some(v) => Err(FlattenError::BadValue {
                    device: path.to_string(),
                    field,
                    value: v,
                }),
                None => Err(FlattenError::MissingGeometry {
                    device: path.to_string(),
                    field,
                }),
            },
        }
    };
    let w = resolve("w", w, default.and_then(|d| d.w))?;
    let l = resolve("l", l, default.and_then(|d| d.l))?;
    Ok((w, l))
}

fn eval_wave(scope: &Scope, path: &str, wave: &WaveSpec) -> Result<Waveform, FlattenError> {
    let ev = |v: &Value| scope.eval(path, v);
    Ok(match wave {
        WaveSpec::Dc(v) => Waveform::Dc(ev(v)?),
        WaveSpec::Pulse {
            v0,
            v1,
            delay,
            rise,
            fall,
            width,
            period,
        } => Waveform::Pulse {
            v0: ev(v0)?,
            v1: ev(v1)?,
            delay: ev(delay)?,
            rise: ev(rise)?,
            fall: ev(fall)?,
            width: ev(width)?,
            period: ev(period)?,
        },
        WaveSpec::Sine {
            offset,
            amp,
            freq,
            delay,
        } => Waveform::Sine {
            offset: ev(offset)?,
            amp: ev(amp)?,
            freq: ev(freq)?,
            delay: ev(delay)?,
        },
        WaveSpec::Pwl(points) => Waveform::Pwl(
            points
                .iter()
                .map(|(t, v)| Ok((ev(t)?, ev(v)?)))
                .collect::<Result<Vec<_>, FlattenError>>()?,
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn hierarchical_names_follow_the_contract() {
        let d = parse(
            ".subckt inner a b\nR1 a mid 1k\nR2 mid b 1k\n.ends\n.subckt outer p q\nX2 p q inner\n.ends\nV1 top 0 dc 1.0\nX1 top 0 outer\n.end\n",
        )
        .unwrap();
        let nl = flatten(&d).unwrap();
        let names: Vec<&str> = nl.elements().iter().map(|e| e.name()).collect();
        assert_eq!(names, vec!["V1", "X1.X2.R1", "X1.X2.R2"]);
        // The internal net of the innermost scope carries the full path.
        let mut nl = nl;
        let mid = nl.node("X1.X2.mid");
        assert_eq!(nl.node_name(mid), "X1.X2.mid");
    }

    #[test]
    fn ports_bind_to_parent_nets_and_ground_is_global() {
        let d = parse(
            ".subckt load a\nR1 a 0 1k\n.ends\nV1 x 0 dc 1.0\nX1 x load\n.end\n",
        )
        .unwrap();
        let nl = flatten(&d).unwrap();
        // R1's `a` is the parent's `x`; its other terminal is ground.
        match &nl.elements()[1] {
            ulp_spice::netlist::Element::Resistor { a, b, .. } => {
                assert_eq!(nl.node_name(*a), "x");
                assert!(b.is_ground());
            }
            e => panic!("unexpected element {e:?}"),
        }
    }

    #[test]
    fn parameter_overrides_chain_through_scopes() {
        let d = parse(
            ".param base=1k\n.subckt stage a ohms=2k\nR1 a 0 ohms\n.ends\nX1 p stage ohms=base\nX2 p stage\nV1 p 0 dc 1.0\n.end\n",
        )
        .unwrap();
        let nl = flatten(&d).unwrap();
        let get = |name: &str| -> f64 {
            match nl.element(name) {
                Some(ulp_spice::netlist::Element::Resistor { ohms, .. }) => *ohms,
                other => panic!("{name}: {other:?}"),
            }
        };
        assert_eq!(get("X1.R1"), 1e3); // override via global
        assert_eq!(get("X2.R1"), 2e3); // subckt default
    }

    #[test]
    fn recursion_is_detected() {
        let d = parse(
            ".subckt a p\nX1 p b\n.ends\n.subckt b p\nX1 p a\n.ends\nX1 top a\n.end\n",
        )
        .unwrap();
        match flatten(&d) {
            Err(FlattenError::Recursion { path }) => {
                assert_eq!(path, vec!["a", "b", "a"]);
            }
            other => panic!("expected recursion error, got {other:?}"),
        }
    }

    #[test]
    fn self_recursion_is_detected() {
        let d = parse(".subckt a p\nX1 p a\n.ends\nX1 top a\n.end\n").unwrap();
        let err = flatten(&d).unwrap_err();
        assert!(matches!(err, FlattenError::Recursion { .. }), "{err}");
        assert_eq!(
            err.to_string(),
            "recursive subcircuit instantiation: a -> a"
        );
    }

    #[test]
    fn port_arity_mismatch_is_reported() {
        let d = parse(".subckt buf a b\nR1 a b 1k\n.ends\nX1 p buf\n.end\n").unwrap();
        assert_eq!(
            flatten(&d).unwrap_err().to_string(),
            "instance `X1` connects 1 net(s) but subcircuit `buf` declares 2 port(s)"
        );
    }

    #[test]
    fn unknown_subckt_param_and_override_errors() {
        let d = parse("X1 a b nothere\n.end\n").unwrap();
        assert_eq!(
            flatten(&d).unwrap_err().to_string(),
            "instance `X1` uses undefined subcircuit `nothere`"
        );

        let d = parse(".subckt buf a\nR1 a 0 ohms\n.ends\nX1 p buf\n.end\n").unwrap();
        assert_eq!(
            flatten(&d).unwrap_err().to_string(),
            "device `X1.R1` references undefined parameter `ohms`"
        );

        let d = parse(".subckt buf a\nR1 a 0 1k\n.ends\nX1 p buf gain=2\n.end\n").unwrap();
        assert_eq!(
            flatten(&d).unwrap_err().to_string(),
            "instance `X1` overrides `gain`, which its subcircuit does not declare"
        );
    }

    #[test]
    fn invalid_values_are_typed_errors_not_panics() {
        let d = parse("R1 a 0 -5\n.end\n").unwrap();
        assert_eq!(
            flatten(&d).unwrap_err().to_string(),
            "device `R1`: `ohms` must be positive, got -5.0"
        );
    }

    #[test]
    fn missing_geometry_without_default_errors() {
        let d = parse("M1 d g s 0 nmos\n.end\n").unwrap();
        assert_eq!(
            flatten(&d).unwrap_err().to_string(),
            "MOS device `M1` has no `w` and no .default for its class"
        );
        let d = parse(".default nmos w=1u l=0.5u\nM1 d g s 0 nmos\n.end\n").unwrap();
        let nl = flatten(&d).unwrap();
        match nl.element("M1") {
            Some(ulp_spice::netlist::Element::Mos { dev, .. }) => {
                assert_eq!(dev.w, 1e-6);
                assert_eq!(dev.l, 0.5e-6);
            }
            other => panic!("{other:?}"),
        }
    }
}
