//! # ulp-ir — declarative netlist intermediate representation
//!
//! The crates below this one build circuits *imperatively*: Rust code
//! calls [`ulp_spice::Netlist`] builder methods. That is precise but
//! closed — every topology needs a new function, and a parameter sweep
//! needs bespoke loop code. `ulp-ir` adds the open, data-driven layer
//! the platform papers assume: circuits as *documents*.
//!
//! - [`ast`] — plain-data IR: a [`Design`] of [`Subckt`] definitions
//!   with typed ports ([`PortRole`]), device cards, hierarchical
//!   [`Instance`]s, named parameters, and declarative sweep cards.
//! - [`parse`] — a line-oriented text dialect (`.subckt`/`.ends`,
//!   device cards, `X…` instances) with typed errors carrying line,
//!   column and offending token; [`Design::to_text`] is the inverse,
//!   byte-stable serializer: `parse(d.to_text()) == d`.
//! - [`flatten`] — recursive elaboration into a flat
//!   [`ulp_spice::Netlist`] under the `x1.x2.node` naming contract,
//!   so the whole existing stack (ERC, lints, the interval certifier,
//!   both solver backends, telemetry) applies unchanged.
//! - [`sweep`] — expansion of `.tech`/`.sweep` cards into a
//!   deterministic, index-addressable [`SweepPlan`] ready for
//!   `ulp-exec` ensembles.
//! - [`import`] — the reverse bridge: lift a builder-made netlist
//!   into the IR for serialization.
//!
//! ## From text to a solved operating point
//!
//! ```
//! use ulp_ir::{flatten, parse};
//! use ulp_spice::dcop::DcOperatingPoint;
//! use ulp_device::Technology;
//!
//! let src = "\
//! * resistive divider with a subcircuit half
//! .subckt half top bot
//! R1 top bot 10k
//! .ends
//! V1 vin 0 dc 1.0
//! X1 vin mid half
//! X2 mid 0 half
//! .end
//! ";
//! let design = parse(src)?;
//! let nl = flatten(&design)?;
//! let op = DcOperatingPoint::solve(&nl, &Technology::nominal())?;
//! let mid = nl.find_node("mid").unwrap();
//! assert!((op.voltage(mid) - 0.5).abs() < 1e-6);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod flatten;
pub mod import;
pub mod parse;
pub mod sweep;

pub use ast::{
    ClassDefault, Design, Device, DeviceKind, Instance, Item, Port, PortRole, Subckt, SweepAxis,
    SweepSpec, TranMethod, TranSpec, Value, WaveSpec,
};
pub use flatten::{flatten, FlattenError};
pub use import::{design_from_netlist, ImportError};
pub use parse::{parse, ParseError, ParseErrorKind};
pub use sweep::{SweepError, SweepPlan, SweepPoint, TechTarget};

use std::fmt;

/// Umbrella error for whole-pipeline drivers (parse → flatten →
/// sweep), so a CLI stage can `?` uniformly.
#[derive(Debug, Clone, PartialEq)]
pub enum IrError {
    /// The text failed to parse.
    Parse(ParseError),
    /// The design failed to flatten.
    Flatten(FlattenError),
    /// The sweep cards failed to expand.
    Sweep(SweepError),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::Parse(e) => write!(f, "{e}"),
            IrError::Flatten(e) => write!(f, "{e}"),
            IrError::Sweep(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for IrError {}

impl From<ParseError> for IrError {
    fn from(e: ParseError) -> Self {
        IrError::Parse(e)
    }
}

impl From<FlattenError> for IrError {
    fn from(e: FlattenError) -> Self {
        IrError::Flatten(e)
    }
}

impl From<SweepError> for IrError {
    fn from(e: SweepError) -> Self {
        IrError::Sweep(e)
    }
}
