//! Lifting a programmatically built [`Netlist`] into the IR.
//!
//! [`design_from_netlist`] produces a flat [`Design`] whose top level
//! carries one literal-valued device card per element, suitable for
//! [`Design::to_text`] serialization. This is the bridge that lets the
//! existing Rust builders (e.g. the STSCL buffer in `ulp-stscl`)
//! participate in the text pipeline, and what the builder↔IR
//! equivalence tests rest on.
//!
//! The text dialect dispatches device cards on the first letter of
//! their name, so element names that do not start with their card's
//! letter are normalized by prepending `<letter>_` — the STSCL
//! builder's `RLP` load becomes the `L` card `L_RLP`.

use crate::ast::*;
use std::fmt;
use ulp_spice::netlist::Element;
use ulp_spice::{Netlist, Waveform};

/// Why a netlist could not be lifted into the IR.
#[derive(Debug, Clone, PartialEq)]
pub enum ImportError {
    /// A MOS device carries per-instance mismatch shifts
    /// (`delta_vt`/`delta_beta`), which the text dialect cannot
    /// express.
    MismatchedMos {
        /// The offending element name.
        device: String,
    },
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportError::MismatchedMos { device } => write!(
                f,
                "MOS device `{device}` carries mismatch shifts (delta_vt/delta_beta), which the IR cannot express"
            ),
        }
    }
}

impl std::error::Error for ImportError {}

fn canonical_name(name: &str, letter: char) -> String {
    let starts = name
        .chars()
        .next()
        .is_some_and(|c| c.to_ascii_uppercase() == letter);
    if starts {
        name.to_string()
    } else {
        format!("{letter}_{name}")
    }
}

fn wave_spec(wave: &Waveform) -> WaveSpec {
    let lit = Value::Lit;
    match wave {
        Waveform::Dc(v) => WaveSpec::Dc(lit(*v)),
        Waveform::Pulse {
            v0,
            v1,
            delay,
            rise,
            fall,
            width,
            period,
        } => WaveSpec::Pulse {
            v0: lit(*v0),
            v1: lit(*v1),
            delay: lit(*delay),
            rise: lit(*rise),
            fall: lit(*fall),
            width: lit(*width),
            period: lit(*period),
        },
        Waveform::Sine {
            offset,
            amp,
            freq,
            delay,
        } => WaveSpec::Sine {
            offset: lit(*offset),
            amp: lit(*amp),
            freq: lit(*freq),
            delay: lit(*delay),
        },
        Waveform::Pwl(points) => {
            WaveSpec::Pwl(points.iter().map(|(t, v)| (lit(*t), lit(*v))).collect())
        }
    }
}

/// Lifts `nl` into a flat [`Design`]: no subcircuits, no sweep, one
/// literal-valued top-level card per element.
///
/// # Errors
///
/// [`ImportError::MismatchedMos`] when a MOS element carries nonzero
/// `delta_vt`/`delta_beta` shifts — those have no text form.
pub fn design_from_netlist(nl: &Netlist) -> Result<Design, ImportError> {
    let mut design = Design::default();
    let node = |n: &ulp_spice::Node| nl.node_name(*n).to_string();
    for e in nl.elements() {
        let lit = Value::Lit;
        let (name, nodes, kind) = match e {
            Element::Resistor { name, a, b, ohms } => (
                canonical_name(name, 'R'),
                vec![node(a), node(b)],
                DeviceKind::Resistor { ohms: lit(*ohms) },
            ),
            Element::Capacitor { name, a, b, farads } => (
                canonical_name(name, 'C'),
                vec![node(a), node(b)],
                DeviceKind::Capacitor { farads: lit(*farads) },
            ),
            Element::Vsource { name, p, n, wave, ac } => (
                canonical_name(name, 'V'),
                vec![node(p), node(n)],
                DeviceKind::Vsource {
                    wave: wave_spec(wave),
                    ac: lit(*ac),
                },
            ),
            Element::Isource { name, p, n, wave, ac } => (
                canonical_name(name, 'I'),
                vec![node(p), node(n)],
                DeviceKind::Isource {
                    wave: wave_spec(wave),
                    ac: lit(*ac),
                },
            ),
            Element::Vcvs { name, p, n, cp, cn, gain } => (
                canonical_name(name, 'E'),
                vec![node(p), node(n), node(cp), node(cn)],
                DeviceKind::Vcvs { gain: lit(*gain) },
            ),
            Element::Vccs { name, p, n, cp, cn, gm } => (
                canonical_name(name, 'G'),
                vec![node(p), node(n), node(cp), node(cn)],
                DeviceKind::Vccs { gm: lit(*gm) },
            ),
            Element::Diode { name, p, n, is_sat, n_id } => (
                canonical_name(name, 'D'),
                vec![node(p), node(n)],
                DeviceKind::Diode {
                    is_sat: lit(*is_sat),
                    n_id: lit(*n_id),
                },
            ),
            Element::Mos { name, d, g, s, b, dev } => {
                if dev.delta_vt != 0.0 || dev.delta_beta != 0.0 {
                    return Err(ImportError::MismatchedMos {
                        device: name.clone(),
                    });
                }
                (
                    canonical_name(name, 'M'),
                    vec![node(d), node(g), node(s), node(b)],
                    DeviceKind::Mos {
                        polarity: dev.polarity,
                        w: Some(lit(dev.w)),
                        l: Some(lit(dev.l)),
                    },
                )
            }
            Element::SclLoad { name, a, b, load, iss } => (
                canonical_name(name, 'L'),
                vec![node(a), node(b)],
                DeviceKind::SclLoad {
                    vsw: lit(load.vsw),
                    iss: lit(*iss),
                },
            ),
        };
        design.top.push(Item::Device(Device { name, nodes, kind }));
    }
    Ok(design)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flatten::flatten;
    use crate::parse::parse;
    use ulp_device::{Mosfet, Polarity};

    #[test]
    fn import_serialize_parse_flatten_round_trips() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource("V1", a, Netlist::GROUND, 1.0);
        nl.resistor("R1", a, b, 2.2e3);
        nl.capacitor("C1", b, Netlist::GROUND, 1e-12);
        nl.mosfet(
            "M1",
            b,
            a,
            Netlist::GROUND,
            Netlist::GROUND,
            Mosfet::new(Polarity::Nmos, 1e-6, 0.5e-7),
        );
        let design = design_from_netlist(&nl).unwrap();
        let text = design.to_text();
        let reparsed = parse(&text).unwrap();
        assert_eq!(design, reparsed);
        let flat = flatten(&reparsed).unwrap();
        assert_eq!(flat.elements(), nl.elements());
        assert_eq!(flat.node_count(), nl.node_count());
    }

    #[test]
    fn names_are_normalized_to_their_card_letter() {
        use ulp_device::load::PmosLoad;
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let out = nl.node("out");
        nl.vsource("VDD", vdd, Netlist::GROUND, 1.0);
        nl.scl_load("RLP", vdd, out, PmosLoad::new(0.2), 1e-9);
        nl.resistor("shunt", out, Netlist::GROUND, 1e6);
        let design = design_from_netlist(&nl).unwrap();
        let names: Vec<&str> = design.top.iter().map(|i| i.name()).collect();
        assert_eq!(names, vec!["VDD", "L_RLP", "R_shunt"]);
        // Normalized cards still round-trip through the text form.
        assert_eq!(parse(&design.to_text()).unwrap(), design);
    }

    #[test]
    fn mismatch_shifts_are_rejected() {
        let mut nl = Netlist::new();
        let d = nl.node("d");
        nl.vsource("V1", d, Netlist::GROUND, 1.0);
        let mut dev = Mosfet::new(Polarity::Nmos, 1e-6, 0.5e-6);
        dev.delta_vt = 5e-3;
        nl.mosfet("M1", d, d, Netlist::GROUND, Netlist::GROUND, dev);
        assert_eq!(
            design_from_netlist(&nl).unwrap_err().to_string(),
            "MOS device `M1` carries mismatch shifts (delta_vt/delta_beta), which the IR cannot express"
        );
    }
}
