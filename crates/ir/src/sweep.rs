//! Expansion of a design's declarative `.tech`/`.sweep` cards into a
//! deterministic, index-addressable grid of concrete netlists.
//!
//! A [`SweepPlan`] is a mixed-radix counter over the design's sweep
//! dimensions. The technology dimension varies slowest; the `.sweep`
//! axes follow in declaration order, and within one axis the first
//! swept parameter is slower than the second. Point `i` therefore
//! always denotes the same (tech, geometry) combination, regardless of
//! how many workers realize the grid — which is what lets an
//! `ulp-exec` ensemble gather byte-identical results at any
//! `ULP_JOBS`.

use crate::ast::{Design, SweepSpec};
use crate::flatten::{flatten, FlattenError};
use std::fmt;
use ulp_device::pvt::Corner;
use ulp_device::Technology;
use ulp_spice::Netlist;

/// Why a sweep plan could not be built.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// The design has no `.tech`/`.sweep` cards.
    NoSweep,
    /// A `.tech` card names an unknown target.
    UnknownTech {
        /// The unrecognized name.
        name: String,
    },
    /// A `.sweep` axis grids a parameter other than `w`/`l`.
    BadParam {
        /// The unsupported parameter.
        param: String,
    },
    /// A `.sweep` axis grid contains a non-positive value.
    BadGridValue {
        /// The parameter whose grid is invalid.
        param: String,
        /// The offending value.
        value: f64,
    },
    /// A swept device path is not a MOS element of the flattened
    /// netlist.
    NotMos {
        /// The flattened device path from the `.sweep` card.
        device: String,
    },
    /// The design itself failed to flatten.
    Flatten(FlattenError),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::NoSweep => write!(f, "design declares no .tech or .sweep cards"),
            SweepError::UnknownTech { name } => write!(
                f,
                "unknown technology target `{name}` (expected tt, nominal, ss, ff, sf, fs, hot or cold)"
            ),
            SweepError::BadParam { param } => {
                write!(f, "sweeps may grid only `w` and `l`, got `{param}`")
            }
            SweepError::BadGridValue { param, value } => write!(
                f,
                "sweep grid for `{param}` must be positive, got {}",
                crate::ast::fmt_f64(*value)
            ),
            SweepError::NotMos { device } => write!(
                f,
                "swept device `{device}` is not a MOS element of the flattened netlist"
            ),
            SweepError::Flatten(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<FlattenError> for SweepError {
    fn from(e: FlattenError) -> Self {
        SweepError::Flatten(e)
    }
}

/// A named technology target of a `.tech` card.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TechTarget {
    /// Typical corner at 300 K (`tt`, `nominal`).
    Typical,
    /// Slow-slow corner (`ss`).
    SlowSlow,
    /// Fast-fast corner (`ff`).
    FastFast,
    /// Slow NMOS, fast PMOS (`sf`).
    SlowFast,
    /// Fast NMOS, slow PMOS (`fs`).
    FastSlow,
    /// Typical corner at 358 K (`hot`).
    Hot,
    /// Typical corner at 253 K (`cold`).
    Cold,
}

impl TechTarget {
    /// Parses a `.tech` card token (case-insensitive).
    pub fn parse(name: &str) -> Result<Self, SweepError> {
        Ok(match name.to_ascii_lowercase().as_str() {
            "tt" | "nominal" => TechTarget::Typical,
            "ss" => TechTarget::SlowSlow,
            "ff" => TechTarget::FastFast,
            "sf" => TechTarget::SlowFast,
            "fs" => TechTarget::FastSlow,
            "hot" => TechTarget::Hot,
            "cold" => TechTarget::Cold,
            _ => {
                return Err(SweepError::UnknownTech {
                    name: name.to_string(),
                })
            }
        })
    }

    /// The canonical lower-case token.
    pub fn token(self) -> &'static str {
        match self {
            TechTarget::Typical => "tt",
            TechTarget::SlowSlow => "ss",
            TechTarget::FastFast => "ff",
            TechTarget::SlowFast => "sf",
            TechTarget::FastSlow => "fs",
            TechTarget::Hot => "hot",
            TechTarget::Cold => "cold",
        }
    }

    /// Realizes the concrete device card.
    pub fn technology(self) -> Technology {
        let nom = Technology::nominal();
        match self {
            TechTarget::Typical => nom,
            TechTarget::SlowSlow => nom.at_corner(Corner::SlowSlow),
            TechTarget::FastFast => nom.at_corner(Corner::FastFast),
            TechTarget::SlowFast => nom.at_corner(Corner::SlowFast),
            TechTarget::FastSlow => nom.at_corner(Corner::FastSlow),
            TechTarget::Hot => nom.at_temperature(358.0),
            TechTarget::Cold => nom.at_temperature(253.0),
        }
    }
}

/// One dimension of the mixed-radix counter: a set of device paths and
/// one gridded parameter.
#[derive(Debug, Clone, PartialEq)]
struct Dim {
    devices: Vec<String>,
    param: String,
    values: Vec<f64>,
}

/// A fully validated, index-addressable expansion of a design's sweep
/// cards.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    base: Netlist,
    techs: Vec<TechTarget>,
    dims: Vec<Dim>,
}

/// One concrete point of a [`SweepPlan`].
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The flat point index this realizes.
    pub index: usize,
    /// The technology target of this point.
    pub tech: TechTarget,
    /// `(device path, parameter, value)` for every swept knob, in
    /// dimension order.
    pub settings: Vec<(String, String, f64)>,
    /// The realized netlist.
    pub netlist: Netlist,
}

impl SweepPoint {
    /// A deterministic human-readable label, e.g.
    /// `tt/M1.w=1e-6/M1.l=5e-7`.
    pub fn label(&self) -> String {
        let mut s = self.tech.token().to_string();
        for (dev, param, value) in &self.settings {
            s.push('/');
            s.push_str(&format!("{dev}.{param}={}", crate::ast::fmt_f64(*value)));
        }
        s
    }
}

impl SweepPlan {
    /// Builds a plan from `design`, validating every sweep card
    /// against the flattened netlist.
    ///
    /// # Errors
    ///
    /// [`SweepError::NoSweep`] when the design declares no sweep;
    /// otherwise any tech/axis/device validation failure, or the
    /// underlying [`FlattenError`].
    pub fn build(design: &Design) -> Result<Self, SweepError> {
        let Some(spec) = &design.sweep else {
            return Err(SweepError::NoSweep);
        };
        let base = flatten(design)?;
        let techs = resolve_techs(spec)?;
        let mut dims = Vec::new();
        for axis in &spec.axes {
            for dev in &axis.devices {
                let is_mos = matches!(
                    base.element(dev),
                    Some(ulp_spice::netlist::Element::Mos { .. })
                );
                if !is_mos {
                    return Err(SweepError::NotMos {
                        device: dev.clone(),
                    });
                }
            }
            for (param, values) in &axis.grid {
                if param != "w" && param != "l" {
                    return Err(SweepError::BadParam {
                        param: param.clone(),
                    });
                }
                if let Some(&bad) = values.iter().find(|v| **v <= 0.0) {
                    return Err(SweepError::BadGridValue {
                        param: param.clone(),
                        value: bad,
                    });
                }
                dims.push(Dim {
                    devices: axis.devices.clone(),
                    param: param.clone(),
                    values: values.clone(),
                });
            }
        }
        Ok(SweepPlan { base, techs, dims })
    }

    /// Total number of points: `techs × Π dim-lengths`.
    pub fn len(&self) -> usize {
        self.dims
            .iter()
            .fold(self.techs.len(), |acc, d| acc * d.values.len())
    }

    /// True when the plan has no points (never for a built plan — a
    /// design with sweep cards always has at least one tech).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The technology targets, slowest dimension first.
    pub fn techs(&self) -> &[TechTarget] {
        &self.techs
    }

    /// Realizes point `index` (row-major: tech slowest, then each
    /// `.sweep` grid in declaration order).
    ///
    /// # Panics
    ///
    /// Panics when `index >= self.len()`.
    pub fn point(&self, index: usize) -> SweepPoint {
        assert!(index < self.len(), "sweep index {index} out of range");
        // Decode the mixed-radix index, fastest dimension last.
        let mut rem = index;
        let mut digits = vec![0usize; self.dims.len()];
        for (slot, dim) in digits.iter_mut().zip(&self.dims).rev() {
            *slot = rem % dim.values.len();
            rem /= dim.values.len();
        }
        let tech = self.techs[rem];
        let mut netlist = self.base.clone();
        let mut settings = Vec::new();
        for (dim, &digit) in self.dims.iter().zip(&digits) {
            let value = dim.values[digit];
            for dev in &dim.devices {
                let updated = netlist.update_mosfet(dev, |m| {
                    let mut m = *m;
                    match dim.param.as_str() {
                        "w" => m.w = value,
                        _ => m.l = value,
                    }
                    m
                });
                debug_assert!(updated, "validated at build time");
                settings.push((dev.clone(), dim.param.clone(), value));
            }
        }
        SweepPoint {
            index,
            tech,
            settings,
            netlist,
        }
    }

    /// Iterates every point in index order.
    pub fn points(&self) -> impl Iterator<Item = SweepPoint> + '_ {
        (0..self.len()).map(|i| self.point(i))
    }
}

fn resolve_techs(spec: &SweepSpec) -> Result<Vec<TechTarget>, SweepError> {
    if spec.techs.is_empty() {
        // `.sweep` without `.tech` runs the nominal card only.
        return Ok(vec![TechTarget::Typical]);
    }
    spec.techs.iter().map(|t| TechTarget::parse(t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    const BASE: &str = "\
.default nmos w=1u l=0.5u
V1 d 0 dc 1.0
M1 d g 0 0 nmos
M2 d g 0 0 nmos
R1 g 0 1k
";

    fn design(sweep: &str) -> Design {
        parse(&format!("{BASE}{sweep}.end\n")).unwrap()
    }

    #[test]
    fn index_order_is_tech_slowest_then_axes_in_declaration_order() {
        let d = design(".tech tt ss\n.sweep M1 w=1u,2u\n.sweep M2 l=0.5u,0.6u,0.7u\n");
        let plan = SweepPlan::build(&d).unwrap();
        assert_eq!(plan.len(), 2 * 2 * 3);
        // Fastest digit: M2.l; middle: M1.w; slowest: tech.
        let p0 = plan.point(0);
        assert_eq!(p0.label(), "tt/M1.w=1e-6/M2.l=5e-7");
        let p1 = plan.point(1);
        assert_eq!(p1.label(), "tt/M1.w=1e-6/M2.l=6e-7");
        let p3 = plan.point(3);
        assert_eq!(p3.label(), "tt/M1.w=2e-6/M2.l=5e-7");
        let p6 = plan.point(6);
        assert_eq!(p6.label(), "ss/M1.w=1e-6/M2.l=5e-7");
        let last = plan.point(plan.len() - 1);
        assert_eq!(last.label(), "ss/M1.w=2e-6/M2.l=7e-7");
    }

    #[test]
    fn one_axis_two_params_first_param_is_slower() {
        let d = design(".sweep M1 w=1u,2u l=0.5u,0.6u\n");
        let plan = SweepPlan::build(&d).unwrap();
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.point(0).label(), "tt/M1.w=1e-6/M1.l=5e-7");
        assert_eq!(plan.point(1).label(), "tt/M1.w=1e-6/M1.l=6e-7");
        assert_eq!(plan.point(2).label(), "tt/M1.w=2e-6/M1.l=5e-7");
    }

    #[test]
    fn points_realize_geometry_on_the_netlist() {
        let d = design(".sweep M1 M2 w=3u\n");
        let plan = SweepPlan::build(&d).unwrap();
        let p = plan.point(0);
        for name in ["M1", "M2"] {
            match p.netlist.element(name) {
                Some(ulp_spice::netlist::Element::Mos { dev, .. }) => {
                    assert_eq!(dev.w, 3e-6);
                    assert_eq!(dev.l, 0.5e-6); // untouched default
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            SweepPlan::build(&design("")).unwrap_err(),
            SweepError::NoSweep
        );
        assert_eq!(
            SweepPlan::build(&design(".tech lightning\n"))
                .unwrap_err()
                .to_string(),
            "unknown technology target `lightning` (expected tt, nominal, ss, ff, sf, fs, hot or cold)"
        );
        assert_eq!(
            SweepPlan::build(&design(".sweep R1 w=1u\n"))
                .unwrap_err()
                .to_string(),
            "swept device `R1` is not a MOS element of the flattened netlist"
        );
        assert_eq!(
            SweepPlan::build(&design(".sweep M1 vsw=0.2\n"))
                .unwrap_err()
                .to_string(),
            "sweeps may grid only `w` and `l`, got `vsw`"
        );
        assert_eq!(
            SweepPlan::build(&design(".sweep M1 w=1u,-2u\n"))
                .unwrap_err()
                .to_string(),
            "sweep grid for `w` must be positive, got -2e-6"
        );
    }

    #[test]
    fn tech_targets_parse_and_round_trip_tokens() {
        for tok in ["tt", "ss", "ff", "sf", "fs", "hot", "cold"] {
            let t = TechTarget::parse(tok).unwrap();
            assert_eq!(t.token(), tok);
            // The realized card must be constructible.
            let _ = t.technology();
        }
        assert_eq!(TechTarget::parse("NOMINAL").unwrap(), TechTarget::Typical);
    }
}
