//! Property tests of the text dialect: any well-formed [`Design`] the
//! generator below can produce must survive `parse(to_text(d)) == d`,
//! and the canonical text must be a serializer fixed point.

use proptest::prelude::*;
use ulp_device::Polarity;
use ulp_ir::ast::*;
use ulp_ir::parse;

/// Deterministic design generator (SplitMix64 core). Produces only
/// designs that satisfy the dialect's invariants — card-letter device
/// names, unique names per scope, finite literals — which is exactly
/// the value space the serializer promises to round-trip.
struct Gen {
    s: u64,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen {
            s: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn next(&mut self) -> u64 {
        self.s = self.s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> usize {
        (self.next() % bound) as usize
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.next() % 100 < percent
    }

    /// A finite literal spanning many magnitudes, both signs, and the
    /// subnormal/huge extremes that stress shortest-repr formatting.
    fn lit(&mut self) -> f64 {
        match self.below(12) {
            0 => 0.0,
            1 => -1.5,
            2 => 5e-324,
            3 => f64::MAX,
            4 => -f64::MIN_POSITIVE,
            _ => {
                let mantissa = (self.next() >> 11) as f64 / (1u64 << 53) as f64;
                let exp = self.below(37) as i32 - 18;
                let sign = if self.chance(40) { -1.0 } else { 1.0 };
                sign * (0.5 + mantissa) * 10f64.powi(exp)
            }
        }
    }

    /// A strictly positive literal (geometry, component values).
    fn pos(&mut self) -> f64 {
        let mantissa = (self.next() >> 11) as f64 / (1u64 << 53) as f64;
        (0.5 + mantissa) * 10f64.powi(self.below(25) as i32 - 12)
    }

    fn value(&mut self, params: &[String]) -> Value {
        if !params.is_empty() && self.chance(30) {
            Value::Ref(params[self.below(params.len() as u64)].clone())
        } else {
            Value::Lit(self.lit())
        }
    }

    fn pos_value(&mut self, params: &[String]) -> Value {
        if !params.is_empty() && self.chance(30) {
            Value::Ref(params[self.below(params.len() as u64)].clone())
        } else {
            Value::Lit(self.pos())
        }
    }

    fn net(&mut self, nets: &[String]) -> String {
        if self.chance(15) {
            "0".to_string()
        } else {
            nets[self.below(nets.len() as u64)].clone()
        }
    }

    fn wave(&mut self, params: &[String]) -> WaveSpec {
        match self.below(4) {
            0 => WaveSpec::Dc(self.value(params)),
            1 => WaveSpec::Pulse {
                v0: self.value(params),
                v1: self.value(params),
                delay: self.value(params),
                rise: self.pos_value(params),
                fall: self.pos_value(params),
                width: self.value(params),
                period: self.value(params),
            },
            2 => WaveSpec::Sine {
                offset: self.value(params),
                amp: self.value(params),
                freq: self.pos_value(params),
                delay: self.value(params),
            },
            _ => {
                let n = 1 + self.below(4);
                WaveSpec::Pwl(
                    (0..n)
                        .map(|_| (self.value(params), self.value(params)))
                        .collect(),
                )
            }
        }
    }

    fn device(&mut self, idx: usize, nets: &[String], params: &[String]) -> Device {
        let kind = match self.below(9) {
            0 => DeviceKind::Resistor {
                ohms: self.pos_value(params),
            },
            1 => DeviceKind::Capacitor {
                farads: self.pos_value(params),
            },
            2 => DeviceKind::Vsource {
                wave: self.wave(params),
                ac: if self.chance(30) {
                    self.value(params)
                } else {
                    Value::Lit(0.0)
                },
            },
            3 => DeviceKind::Isource {
                wave: self.wave(params),
                ac: Value::Lit(0.0),
            },
            4 => DeviceKind::Vcvs {
                gain: self.value(params),
            },
            5 => DeviceKind::Vccs {
                gm: self.value(params),
            },
            6 => DeviceKind::Diode {
                is_sat: self.pos_value(params),
                n_id: self.pos_value(params),
            },
            7 => DeviceKind::Mos {
                polarity: if self.chance(50) {
                    Polarity::Nmos
                } else {
                    Polarity::Pmos
                },
                w: self.chance(70).then(|| self.pos_value(params)),
                l: self.chance(70).then(|| self.pos_value(params)),
            },
            _ => DeviceKind::SclLoad {
                vsw: self.pos_value(params),
                iss: self.pos_value(params),
            },
        };
        let letter = kind.card_letter();
        let arity = kind.pins().len();
        Device {
            name: format!("{letter}{idx}"),
            nodes: (0..arity).map(|_| self.net(nets)).collect(),
            kind,
        }
    }

    fn items(
        &mut self,
        count: usize,
        nets: &[String],
        params: &[String],
        subckts: &[(String, Vec<(String, f64)>)],
    ) -> Vec<Item> {
        (0..count)
            .map(|i| {
                if !subckts.is_empty() && self.chance(25) {
                    let (sub, sub_params) = &subckts[self.below(subckts.len() as u64)];
                    let conns = 1 + self.below(4);
                    let mut overrides = Vec::new();
                    for (k, _) in sub_params {
                        if self.chance(30) {
                            overrides.push((k.clone(), self.value(params)));
                        }
                    }
                    Item::Instance(Instance {
                        name: format!("X{i}"),
                        conns: (0..conns).map(|_| self.net(nets)).collect(),
                        subckt: sub.clone(),
                        params: overrides,
                    })
                } else {
                    Item::Device(self.device(i, nets, params))
                }
            })
            .collect()
    }

    fn design(&mut self) -> Design {
        let mut d = Design::default();
        let param_count = self.below(4);
        for i in 0..param_count {
            d.params.push((format!("p{i}"), self.lit()));
        }
        let param_names: Vec<String> = d.params.iter().map(|(k, _)| k.clone()).collect();
        if self.chance(40) {
            d.defaults.push(ClassDefault {
                polarity: Polarity::Nmos,
                w: self.chance(80).then(|| self.pos()),
                l: self.chance(80).then(|| self.pos()),
            });
        }
        if self.chance(25) {
            d.defaults.push(ClassDefault {
                polarity: Polarity::Pmos,
                w: Some(self.pos()),
                l: Some(self.pos()),
            });
        }
        let nets: Vec<String> = ["a", "b", "mid", "out", "n5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let sub_count = self.below(3);
        for si in 0..sub_count {
            let port_count = 1 + self.below(3);
            let roles = [PortRole::In, PortRole::Out, PortRole::Bidir];
            let ports: Vec<Port> = (0..port_count)
                .map(|pi| Port {
                    name: format!("port{pi}"),
                    role: roles[self.below(3)],
                })
                .collect();
            let sp_count = self.below(3);
            let sparams: Vec<(String, f64)> =
                (0..sp_count).map(|k| (format!("sp{k}"), self.lit())).collect();
            let mut scope_params = param_names.clone();
            scope_params.extend(sparams.iter().map(|(k, _)| k.clone()));
            let mut scope_nets = nets.clone();
            scope_nets.extend(ports.iter().map(|p| p.name.clone()));
            let prior: Vec<(String, Vec<(String, f64)>)> = d
                .subckts
                .iter()
                .map(|s| (s.name.clone(), s.params.clone()))
                .collect();
            let item_count = self.below(5);
            let items = self.items(item_count, &scope_nets, &scope_params, &prior);
            d.subckts.push(Subckt {
                name: format!("sub{si}"),
                ports,
                params: sparams,
                items,
            });
        }
        let known: Vec<(String, Vec<(String, f64)>)> = d
            .subckts
            .iter()
            .map(|s| (s.name.clone(), s.params.clone()))
            .collect();
        let top_count = 1 + self.below(6);
        d.top = self.items(top_count, &nets, &param_names, &known);
        if self.chance(40) {
            d.tran = Some(TranSpec {
                t_stop: self.pos(),
                dt_max: self.chance(60).then(|| self.pos()),
                method: match self.below(3) {
                    0 => None,
                    1 => Some(TranMethod::Be),
                    _ => Some(TranMethod::Trap),
                },
            });
        }
        if self.chance(50) {
            let mut spec = SweepSpec::default();
            let techs = ["tt", "ss", "ff", "sf", "fs", "hot", "cold"];
            let tech_count = self.below(4);
            for t in techs.iter().take(tech_count) {
                spec.techs.push(t.to_string());
            }
            let axis_count = self.below(3);
            for _ in 0..axis_count {
                let dev_count = 1 + self.below(2);
                let grid_params = if self.chance(50) {
                    vec!["w"]
                } else {
                    vec!["w", "l"]
                };
                spec.axes.push(SweepAxis {
                    devices: (0..dev_count).map(|k| format!("M{k}")).collect(),
                    grid: grid_params
                        .into_iter()
                        .map(|p| {
                            let n = 1 + self.below(4);
                            (p.to_string(), (0..n).map(|_| self.pos()).collect())
                        })
                        .collect(),
                });
            }
            // An empty spec serializes to nothing and would parse back
            // as None; only attach a spec with at least one card.
            if !spec.techs.is_empty() || !spec.axes.is_empty() {
                d.sweep = Some(spec);
            }
        }
        d
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `parse(serialize(d)) == d` for arbitrary well-formed designs,
    /// and serialization is a fixed point on the canonical form.
    #[test]
    fn random_designs_round_trip(seed in any::<u64>()) {
        let design = Gen::new(seed).design();
        let text = design.to_text();
        let reparsed = parse(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: canonical text failed to parse: {e}\n{text}"));
        prop_assert_eq!(&design, &reparsed, "seed {}:\n{}", seed, text);
        prop_assert_eq!(text, reparsed.to_text(), "seed {}: serializer not a fixed point", seed);
    }
}
