//! The differential STSCL cell library.
//!
//! Because every STSCL cell is fully differential, complement outputs
//! are free (swap the output wires) and inversion costs nothing — so the
//! library carries AND/NAND, OR/NOR etc. as the *same* cell. Stacked
//! NMOS differential pairs implement compound functions in a single
//! cell (one tail current): the paper's §III-B uses a three-level stack
//! for the majority detector of Fig. 8, merged with an output latch for
//! pipelining.
//!
//! Each cell reports its **stack depth** (differential pair levels).
//! The supply headroom allows at most [`MAX_STACK`] levels — the same
//! constraint that bounds how much function can be merged into one tail
//! current.

use std::fmt;

/// Maximum NMOS stack levels that fit under the supply (paper uses 3 in
/// Fig. 8).
pub const MAX_STACK: usize = 3;

/// One differential STSCL cell function.
///
/// Arity and stack depth are intrinsic to the function; power is *not* —
/// every cell burns exactly one tail current.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Buffer (also the inverter — complement output is free).
    Buf,
    /// 2-input AND (NAND/AND-with-inverted-inputs come free).
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR (one stacked level: the classic SCL XOR uses a
    /// two-level series-gated pair).
    Xor2,
    /// 2-input XNOR — in differential logic the same cell as
    /// [`CellKind::Xor2`] with the output wires swapped (free
    /// inversion), kept distinct for netlist readability.
    Xnor2,
    /// `a ∧ ¬b` — an AND2 with one input's differential wires swapped.
    AndNot2,
    /// 2-input NOR — an AND2 with inputs and output swapped.
    Nor2,
    /// 2:1 multiplexer: `s ? a : b` — two stacked levels (select on the
    /// lower level).
    Mux2,
    /// 3-input AND, three stacked levels.
    And3,
    /// 3-input OR.
    Or3,
    /// 3-input majority (the Fig. 8 bubble-removal cell), three stacked
    /// levels.
    Maj3,
    /// 3-input XOR (full-adder sum) in one three-level stack — the
    /// compound cell behind the 5 fJ/stage pipelined adder of ref \[13\].
    Xor3,
    /// Compound AND-OR `a·b + c` (two stacked levels) — the paper's
    /// "compound logic operations" merging two gates into one tail.
    AndOr21,
    /// Level-sensitive latch: transparent while the clock is high,
    /// holding while low (the Fig. 8 pipelining latch).
    Latch,
}

impl CellKind {
    /// Number of data inputs (the latch's clock is *not* counted — it is
    /// routed separately in the netlist).
    pub fn arity(self) -> usize {
        match self {
            CellKind::Buf | CellKind::Latch => 1,
            CellKind::And2
            | CellKind::Or2
            | CellKind::Xor2
            | CellKind::Xnor2
            | CellKind::AndNot2
            | CellKind::Nor2 => 2,
            CellKind::Mux2
            | CellKind::And3
            | CellKind::Or3
            | CellKind::Maj3
            | CellKind::Xor3
            | CellKind::AndOr21 => 3,
        }
    }

    /// Differential-pair stack levels used by the switching network.
    pub fn stack_depth(self) -> usize {
        match self {
            CellKind::Buf | CellKind::And2 | CellKind::Or2 | CellKind::And3 | CellKind::Or3 => {
                // Series gating implements n-input AND/OR in n levels for
                // AND3/OR3, 2 for the 2-input forms, 1 for the buffer.
                match self {
                    CellKind::Buf => 1,
                    CellKind::And2 | CellKind::Or2 => 2,
                    _ => 3,
                }
            }
            CellKind::Xor2 | CellKind::Xnor2 => 2,
            CellKind::AndNot2 | CellKind::Nor2 => 2,
            CellKind::Mux2 => 2,
            CellKind::Maj3 | CellKind::Xor3 => 3,
            CellKind::AndOr21 => 2,
            CellKind::Latch => 2, // data pair over clock pair
        }
    }

    /// True for sequential (state-holding) cells.
    pub fn is_sequential(self) -> bool {
        matches!(self, CellKind::Latch)
    }

    /// Evaluates the combinational function.
    ///
    /// For [`CellKind::Latch`] this returns the *transparent* value
    /// (input passed through); the hold behaviour lives in the
    /// simulator.
    ///
    /// # Panics
    ///
    /// Panics unless `inputs.len() == self.arity()`.
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert_eq!(
            inputs.len(),
            self.arity(),
            "cell {self} expects {} inputs",
            self.arity()
        );
        match self {
            CellKind::Buf | CellKind::Latch => inputs[0],
            CellKind::And2 => inputs[0] && inputs[1],
            CellKind::Or2 => inputs[0] || inputs[1],
            CellKind::Xor2 => inputs[0] ^ inputs[1],
            CellKind::Xnor2 => !(inputs[0] ^ inputs[1]),
            CellKind::AndNot2 => inputs[0] && !inputs[1],
            CellKind::Nor2 => !(inputs[0] || inputs[1]),
            CellKind::Mux2 => {
                // inputs = [s, a, b]: s ? a : b
                if inputs[0] {
                    inputs[1]
                } else {
                    inputs[2]
                }
            }
            CellKind::And3 => inputs[0] && inputs[1] && inputs[2],
            CellKind::Or3 => inputs[0] || inputs[1] || inputs[2],
            CellKind::Maj3 => {
                (inputs[0] as u8 + inputs[1] as u8 + inputs[2] as u8) >= 2
            }
            CellKind::Xor3 => inputs[0] ^ inputs[1] ^ inputs[2],
            CellKind::AndOr21 => (inputs[0] && inputs[1]) || inputs[2],
        }
    }

    /// The number of simple 2-input cells this compound function would
    /// cost if it were *not* merged into one stacked cell — the
    /// denominator of the compound-gate power saving (ablation E9b).
    pub fn equivalent_simple_cells(self) -> usize {
        match self {
            CellKind::Buf
            | CellKind::And2
            | CellKind::Or2
            | CellKind::Xor2
            | CellKind::Xnor2
            | CellKind::AndNot2
            | CellKind::Nor2
            | CellKind::Latch => 1,
            CellKind::Mux2 | CellKind::AndOr21 => 2,
            CellKind::And3 | CellKind::Or3 => 2,
            // MAJ3 = ab + bc + ca: three ANDs + two ORs when flattened.
            CellKind::Maj3 => 5,
            // XOR3 = two cascaded 2-input XORs.
            CellKind::Xor3 => 2,
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CellKind::Buf => "BUF",
            CellKind::And2 => "AND2",
            CellKind::Or2 => "OR2",
            CellKind::Xor2 => "XOR2",
            CellKind::Xnor2 => "XNOR2",
            CellKind::AndNot2 => "ANDN2",
            CellKind::Nor2 => "NOR2",
            CellKind::Mux2 => "MUX2",
            CellKind::And3 => "AND3",
            CellKind::Or3 => "OR3",
            CellKind::Maj3 => "MAJ3",
            CellKind::Xor3 => "XOR3",
            CellKind::AndOr21 => "AO21",
            CellKind::Latch => "LATCH",
        };
        write!(f, "{s}")
    }
}

/// Every library cell, for iteration in tests and reports.
pub const ALL_CELLS: [CellKind; 14] = [
    CellKind::Buf,
    CellKind::And2,
    CellKind::Or2,
    CellKind::Xor2,
    CellKind::Xnor2,
    CellKind::AndNot2,
    CellKind::Nor2,
    CellKind::Mux2,
    CellKind::And3,
    CellKind::Or3,
    CellKind::Maj3,
    CellKind::Xor3,
    CellKind::AndOr21,
    CellKind::Latch,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_eval_expectations() {
        for cell in ALL_CELLS {
            let inputs = vec![false; cell.arity()];
            let _ = cell.eval(&inputs); // must not panic
        }
    }

    #[test]
    #[should_panic(expected = "expects")]
    fn wrong_arity_panics() {
        CellKind::And2.eval(&[true]);
    }

    #[test]
    fn truth_tables() {
        assert!(CellKind::And2.eval(&[true, true]));
        assert!(!CellKind::And2.eval(&[true, false]));
        assert!(CellKind::Or2.eval(&[false, true]));
        assert!(CellKind::Xor2.eval(&[true, false]));
        assert!(!CellKind::Xor2.eval(&[true, true]));
        assert!(CellKind::Mux2.eval(&[true, true, false])); // s=1 → a
        assert!(!CellKind::Mux2.eval(&[false, true, false])); // s=0 → b
        assert!(CellKind::And3.eval(&[true, true, true]));
        assert!(!CellKind::And3.eval(&[true, true, false]));
        assert!(CellKind::Or3.eval(&[false, false, true]));
        assert!(CellKind::AndOr21.eval(&[true, true, false]));
        assert!(CellKind::AndOr21.eval(&[false, false, true]));
        assert!(!CellKind::AndOr21.eval(&[true, false, false]));
    }

    #[test]
    fn majority_truth_table() {
        // MAJ3 is the bubble-correction cell of Fig. 8: 2-of-3 vote.
        let cases = [
            ([false, false, false], false),
            ([true, false, false], false),
            ([false, true, false], false),
            ([true, true, false], true),
            ([true, false, true], true),
            ([false, true, true], true),
            ([true, true, true], true),
        ];
        for (inp, want) in cases {
            assert_eq!(CellKind::Maj3.eval(&inp), want, "maj{inp:?}");
        }
    }

    #[test]
    fn stack_depths_respect_headroom() {
        for cell in ALL_CELLS {
            assert!(cell.stack_depth() >= 1);
            assert!(
                cell.stack_depth() <= MAX_STACK,
                "{cell} exceeds stack headroom"
            );
        }
        assert_eq!(CellKind::Maj3.stack_depth(), 3);
        assert_eq!(CellKind::Buf.stack_depth(), 1);
    }

    #[test]
    fn compound_cells_save_tails() {
        // The whole point of stacking: MAJ3 does 5 simple cells' work on
        // one tail current.
        assert_eq!(CellKind::Maj3.equivalent_simple_cells(), 5);
        assert!(CellKind::AndOr21.equivalent_simple_cells() > 1);
        assert_eq!(CellKind::Buf.equivalent_simple_cells(), 1);
    }

    #[test]
    fn only_latch_is_sequential() {
        for cell in ALL_CELLS {
            assert_eq!(cell.is_sequential(), cell == CellKind::Latch);
        }
    }

    #[test]
    fn display_names_unique() {
        let names: Vec<String> = ALL_CELLS.iter().map(|c| c.to_string()).collect();
        for (i, a) in names.iter().enumerate() {
            for b in &names[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
