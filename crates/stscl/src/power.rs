//! Netlist-level power roll-ups (the paper's Eq. 1 applied to real gate
//! graphs).
//!
//! STSCL power accounting is exact and trivial by construction — each
//! cell draws exactly its programmed tail current, always — which is
//! itself one of the paper's points (contrast the unpredictable leakage
//! of subthreshold CMOS). What this module adds is the *sizing* step:
//! given a netlist and a throughput target, what tail current must the
//! replica bias deliver, and what does the block then burn?

use crate::gate::SclParams;
use crate::netlist::{GateNetlist, NetlistError};

/// A sized operating point for an STSCL block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Operating (clock) frequency, Hz.
    pub fop: f64,
    /// Pipeline-aware logic depth used for sizing.
    pub logic_depth: usize,
    /// Tail current programmed into every gate, A.
    pub iss_per_gate: f64,
    /// Number of gates (tail currents).
    pub gates: usize,
    /// Total block power, W.
    pub total: f64,
    /// Energy per clock cycle, J.
    pub energy_per_cycle: f64,
}

/// Sizes the block bias for operating frequency `fop` with a safety
/// `margin` (> 1 clocks the gates faster than strictly needed — real
/// designs leave timing slack; the paper's measured chip runs ≈4×
/// margin per DESIGN.md calibration).
///
/// # Errors
///
/// Propagates [`NetlistError::CombinationalCycle`].
///
/// # Panics
///
/// Panics unless `fop > 0` and `margin >= 1`.
pub fn size_for_frequency(
    nl: &GateNetlist,
    params: &SclParams,
    fop: f64,
    margin: f64,
) -> Result<PowerReport, NetlistError> {
    assert!(fop > 0.0, "operating frequency must be positive");
    assert!(margin >= 1.0, "margin must be at least 1");
    let depth = nl.logic_depth()?.max(1);
    let iss = params.iss_for_frequency(fop * margin, depth);
    let gates = nl.gate_count();
    let total = gates as f64 * params.gate_power(iss);
    Ok(PowerReport {
        fop,
        logic_depth: depth,
        iss_per_gate: iss,
        gates,
        total,
        energy_per_cycle: total / fop,
    })
}

/// Power at an externally fixed tail current (e.g. set by the shared
/// analog bias of the mixed-signal controller): `gates · ISS · VDD`.
pub fn power_at_bias(nl: &GateNetlist, params: &SclParams, iss: f64) -> f64 {
    nl.gate_count() as f64 * params.gate_power(iss)
}

/// Power saving of the compound-cell mapping relative to a flat 2-input
/// mapping of the same functions at the same bias (ablation E9b):
/// `flattened_gate_count / gate_count`.
pub fn compound_saving(nl: &GateNetlist) -> f64 {
    if nl.gate_count() == 0 {
        return 1.0;
    }
    nl.flattened_gate_count() as f64 / nl.gate_count() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellKind;

    fn majority_bank(n: usize) -> GateNetlist {
        let mut nl = GateNetlist::new();
        for i in 0..n {
            let a = nl.input(&format!("a{i}"));
            let b = nl.input(&format!("b{i}"));
            let c = nl.input(&format!("c{i}"));
            let m = nl
                .latched_gate(CellKind::Maj3, &[a, b, c], &format!("m{i}"))
                .unwrap();
            nl.output(m);
        }
        nl
    }

    #[test]
    fn sizing_scales_linearly_with_frequency() {
        let nl = majority_bank(10);
        let p = SclParams::default();
        let r1 = size_for_frequency(&nl, &p, 1e3, 1.0).unwrap();
        let r2 = size_for_frequency(&nl, &p, 1e4, 1.0).unwrap();
        assert!((r2.total / r1.total - 10.0).abs() < 1e-9);
        assert!((r2.iss_per_gate / r1.iss_per_gate - 10.0).abs() < 1e-9);
        assert_eq!(r1.logic_depth, 1);
        assert_eq!(r1.gates, 10);
    }

    #[test]
    fn energy_per_cycle_is_frequency_independent() {
        let nl = majority_bank(5);
        let p = SclParams::default();
        let r1 = size_for_frequency(&nl, &p, 1e3, 1.0).unwrap();
        let r2 = size_for_frequency(&nl, &p, 1e5, 1.0).unwrap();
        assert!((r1.energy_per_cycle / r2.energy_per_cycle - 1.0).abs() < 1e-9);
    }

    #[test]
    fn margin_multiplies_power() {
        let nl = majority_bank(5);
        let p = SclParams::default();
        let r1 = size_for_frequency(&nl, &p, 1e3, 1.0).unwrap();
        let r45 = size_for_frequency(&nl, &p, 1e3, 4.5).unwrap();
        assert!((r45.total / r1.total - 4.5).abs() < 1e-9);
    }

    #[test]
    fn fixed_bias_power() {
        let nl = majority_bank(7);
        let p = SclParams::default();
        assert!((power_at_bias(&nl, &p, 1e-9) - 7e-9).abs() < 1e-18);
    }

    #[test]
    fn compound_saving_for_majority() {
        let nl = majority_bank(4);
        // Each MAJ3 replaces 5 simple cells.
        assert!((compound_saving(&nl) - 5.0).abs() < 1e-12);
        assert_eq!(compound_saving(&GateNetlist::new()), 1.0);
    }

    #[test]
    #[should_panic(expected = "margin")]
    fn sub_unity_margin_rejected() {
        let nl = majority_bank(1);
        let _ = size_for_frequency(&nl, &SclParams::default(), 1e3, 0.5);
    }
}
