//! STSCL cell physics: delay, power, minimum supply, noise margin.
//!
//! Everything in this module is the paper's §II-A in executable form.
//! The cell charges/discharges its differential output through the
//! replica-calibrated load resistance `R_L = VSW/ISS`, so the output
//! time constant is `τ = R_L·C_L = VSW·C_L/ISS` and the 50 %-swing
//! propagation delay is `t_d = ln2·τ`. Power is the tail current times
//! the supply, full stop — there is no dynamic/leakage split to manage.

use ulp_device::Technology;
use ulp_num::stats::q_function;

/// Design parameters of an STSCL cell family (shared by every gate in a
/// block; the tail current is the per-gate/per-block tuning knob).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SclParams {
    /// Differential output voltage swing `VSW`, V.
    pub vsw: f64,
    /// Load capacitance per output `C_L` (self + wire + fan-in), F.
    pub cl: f64,
    /// Supply voltage `VDD`, V.
    pub vdd: f64,
}

impl SclParams {
    /// The workspace-wide nominal cell: 200 mV swing, 10 fF load, 1 V
    /// supply — the calibration that reproduces the paper's measured
    /// digital power split (see DESIGN.md).
    pub fn new(vsw: f64, cl: f64, vdd: f64) -> Self {
        assert!(
            vsw > 0.0 && cl > 0.0 && vdd > 0.0,
            "STSCL parameters must be positive"
        );
        SclParams { vsw, cl, vdd }
    }

    /// Propagation delay of one cell at tail current `iss`, s:
    /// `t_d = ln2·VSW·C_L/ISS`.
    ///
    /// # Panics
    ///
    /// Panics unless `iss` is strictly positive.
    pub fn delay(&self, iss: f64) -> f64 {
        assert!(iss > 0.0, "tail current must be positive");
        std::f64::consts::LN_2 * self.vsw * self.cl / iss
    }

    /// Static power of one cell at tail current `iss`, W: `P = ISS·VDD`.
    pub fn gate_power(&self, iss: f64) -> f64 {
        iss * self.vdd
    }

    /// Power-delay product (energy per transition), J — independent of
    /// `ISS`: `PDP = ln2·VSW·C_L·VDD`.
    pub fn pdp(&self) -> f64 {
        std::f64::consts::LN_2 * self.vsw * self.cl * self.vdd
    }

    /// Maximum clock frequency of a path of `nl` cells, Hz:
    /// `f_max = ISS/(2·ln2·VSW·C_L·N_L)` (each phase must settle the
    /// whole path).
    ///
    /// # Panics
    ///
    /// Panics if `nl == 0` or `iss <= 0`.
    pub fn fmax(&self, iss: f64, nl: usize) -> f64 {
        assert!(nl > 0, "logic depth must be at least 1");
        1.0 / (2.0 * self.delay(iss) * nl as f64)
    }

    /// The tail current required to clock a path of `nl` cells at
    /// `fop` Hz, A — the inversion of the paper's Eq. (1):
    /// `ISS = 2·ln2·VSW·C_L·N_L·f_op`.
    ///
    /// # Panics
    ///
    /// Panics if `nl == 0` or `fop <= 0`.
    pub fn iss_for_frequency(&self, fop: f64, nl: usize) -> f64 {
        assert!(nl > 0 && fop > 0.0, "invalid operating point");
        2.0 * std::f64::consts::LN_2 * self.vsw * self.cl * nl as f64 * fop
    }

    /// Eq. (1) directly: power of one critical-path cell when a path of
    /// `nl` cells runs at `fop`, W: `P = 2·ln2·VSW·C_L·N_L·f_op·VDD`.
    pub fn eq1_power(&self, fop: f64, nl: usize) -> f64 {
        self.gate_power(self.iss_for_frequency(fop, nl))
    }

    /// Small-signal gain of the cell, `A = VSW/(n·UT)` — note: no VDD,
    /// no ISS. This is the supply- and bias-independence the paper
    /// builds the platform on.
    pub fn gain(&self, tech: &Technology) -> f64 {
        self.vsw / (tech.nmos.n * tech.thermal_voltage())
    }

    /// First-order static noise margin, V: `NM = (VSW/2)·(1 − 2/A)`.
    /// Independent of both `VDD` and `ISS`.
    pub fn noise_margin(&self, tech: &Technology) -> f64 {
        let a = self.gain(tech);
        0.5 * self.vsw * (1.0 - 2.0 / a)
    }

    /// Static bit-error probability of one cell against Gaussian
    /// differential noise of RMS `sigma_noise` volts:
    /// `BER = Q(NM/σ)`.
    ///
    /// Because the noise margin involves neither `VDD` nor `ISS`, so
    /// does the error rate — the paper's "decoupling of the power
    /// dissipation from voltage swing, and thus, from noise margins" in
    /// its most operational form: you buy reliability with `VSW` alone
    /// and speed with `ISS` alone.
    ///
    /// # Panics
    ///
    /// Panics unless `sigma_noise > 0`.
    pub fn bit_error_rate(&self, tech: &Technology, sigma_noise: f64) -> f64 {
        assert!(sigma_noise > 0.0, "noise sigma must be positive");
        q_function(self.noise_margin(tech) / sigma_noise)
    }

    /// The smallest swing that keeps the static error rate under
    /// `ber_target` against noise `sigma_noise`, found by bisection, V.
    /// Returns `None` if even a 1 V swing cannot reach the target.
    pub fn min_swing_for_ber(
        tech: &Technology,
        cl: f64,
        vdd: f64,
        sigma_noise: f64,
        ber_target: f64,
    ) -> Option<f64> {
        let ber_at = |vsw: f64| SclParams::new(vsw, cl, vdd).bit_error_rate(tech, sigma_noise);
        if ber_at(1.0) > ber_target {
            return None;
        }
        let (mut lo, mut hi) = (1e-3, 1.0);
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if ber_at(mid) > ber_target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(hi)
    }

    /// Minimum supply voltage at tail current `iss`, V (paper Fig. 9b).
    ///
    /// The stack must fit the output swing, the tail-source saturation
    /// (~4·UT), and the gate-drive headroom of the tail NMOS mirror and
    /// PMOS load bias, both of which rise by `n·UT` per e-fold of
    /// current. Referenced so that `VDDmin(1 nA) ≈ 0.35 V` with a
    /// 200 mV swing, rising ≈ (n_n + n_p)·UT·ln10 ≈ 160 mV per decade,
    /// and floored at `VSW + 4·UT` when the logarithmic terms fall away
    /// — matching the measured shape of Fig. 9b.
    pub fn min_vdd(&self, tech: &Technology, iss: f64) -> f64 {
        assert!(iss > 0.0, "tail current must be positive");
        let ut = tech.thermal_voltage();
        let floor = self.vsw + 4.0 * ut;
        let i_ref = 0.5e-9; // A, anchors VDDmin(1 nA) = 0.35 V at VSW = 0.2 V
        let headroom = (tech.nmos.n + tech.pmos.n) * ut * (iss / i_ref).ln();
        (floor + headroom.max(0.0)).max(floor)
    }

    /// True when the cell still has working noise margins at supply
    /// `vdd` and tail current `iss`.
    pub fn operates_at(&self, tech: &Technology, vdd: f64, iss: f64) -> bool {
        vdd >= self.min_vdd(tech, iss)
    }
}

impl Default for SclParams {
    fn default() -> Self {
        SclParams::new(0.2, 10e-15, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> SclParams {
        SclParams::default()
    }

    #[test]
    fn delay_inverse_in_current() {
        let d1 = p().delay(1e-9);
        let d10 = p().delay(10e-9);
        assert!((d1 / d10 - 10.0).abs() < 1e-12);
        // Magnitude check: ≈1.39 µs at 1 nA with 200 mV / 10 fF.
        assert!((d1 - 1.386e-6).abs() / 1.386e-6 < 1e-3);
    }

    #[test]
    fn pdp_is_bias_independent() {
        let params = p();
        let e1 = params.gate_power(1e-9) * 2.0 * params.delay(1e-9);
        let e2 = params.gate_power(1e-6) * 2.0 * params.delay(1e-6);
        assert!((e1 / e2 - 1.0).abs() < 1e-12);
        assert!((params.pdp() - std::f64::consts::LN_2 * 0.2 * 10e-15 * 1.0).abs() < 1e-30);
    }

    #[test]
    fn fmax_magnitude_calibration() {
        // DESIGN.md calibration: fmax(1 nA, NL = 1) ≈ 360 kHz.
        let f = p().fmax(1e-9, 1);
        assert!(f > 3.0e5 && f < 4.2e5, "fmax = {f}");
    }

    #[test]
    fn eq1_roundtrip() {
        let params = p();
        let fop = 80e3;
        let nl = 3;
        let iss = params.iss_for_frequency(fop, nl);
        assert!((params.fmax(iss, nl) / fop - 1.0).abs() < 1e-12);
        assert!((params.eq1_power(fop, nl) - iss * params.vdd).abs() < 1e-24);
    }

    #[test]
    fn eq1_linear_in_frequency_and_depth() {
        let params = p();
        assert!(
            (params.eq1_power(2e4, 1) / params.eq1_power(1e4, 1) - 2.0).abs() < 1e-12,
            "linear in f"
        );
        assert!(
            (params.eq1_power(1e4, 4) / params.eq1_power(1e4, 1) - 4.0).abs() < 1e-12,
            "linear in NL"
        );
    }

    #[test]
    fn gain_and_noise_margin_supply_independent() {
        let tech = Technology::default();
        let lo = SclParams::new(0.2, 10e-15, 0.5);
        let hi = SclParams::new(0.2, 10e-15, 1.25);
        assert_eq!(lo.gain(&tech), hi.gain(&tech));
        assert_eq!(lo.noise_margin(&tech), hi.noise_margin(&tech));
        // A ≈ 0.2/(1.35·0.0259) ≈ 5.7; NM ≈ 65 mV.
        let a = lo.gain(&tech);
        assert!(a > 5.0 && a < 6.5, "gain = {a}");
        let nm = lo.noise_margin(&tech);
        assert!(nm > 0.05 && nm < 0.08, "nm = {nm}");
    }

    #[test]
    fn ber_decoupled_from_power_knobs() {
        let tech = Technology::default();
        let lo_vdd = SclParams::new(0.2, 10e-15, 0.5);
        let hi_vdd = SclParams::new(0.2, 10e-15, 1.25);
        let sigma = 10e-3;
        assert_eq!(
            lo_vdd.bit_error_rate(&tech, sigma),
            hi_vdd.bit_error_rate(&tech, sigma)
        );
        // 200 mV swing vs 10 mV noise: NM/σ ≈ 6.5 → essentially
        // error-free.
        assert!(lo_vdd.bit_error_rate(&tech, sigma) < 1e-9);
        // Halving the swing costs orders of magnitude of reliability.
        let half = SclParams::new(0.1, 10e-15, 1.0);
        assert!(half.bit_error_rate(&tech, sigma) > 1e3 * lo_vdd.bit_error_rate(&tech, sigma));
    }

    #[test]
    fn min_swing_for_ber_bisection() {
        let tech = Technology::default();
        let vsw = SclParams::min_swing_for_ber(&tech, 10e-15, 1.0, 10e-3, 1e-12).unwrap();
        // The found swing actually meets the target, and shaving 10 %
        // off breaks it.
        let p = SclParams::new(vsw, 10e-15, 1.0);
        assert!(p.bit_error_rate(&tech, 10e-3) <= 1e-12);
        let p_less = SclParams::new(0.9 * vsw, 10e-15, 1.0);
        assert!(p_less.bit_error_rate(&tech, 10e-3) > 1e-12);
        // An impossible target reports None.
        assert!(SclParams::min_swing_for_ber(&tech, 10e-15, 1.0, 0.5, 1e-30).is_none());
    }

    #[test]
    fn min_vdd_anchors() {
        let tech = Technology::default();
        let params = p();
        // Paper Fig. 9b: ≈0.35 V at 1 nA…
        let v1n = params.min_vdd(&tech, 1e-9);
        assert!((v1n - 0.35).abs() < 0.03, "VDDmin(1nA) = {v1n}");
        // …below 0.5 V for anything under 10 nA…
        assert!(params.min_vdd(&tech, 9e-9) < 0.52);
        // …monotone non-decreasing in ISS and floored at VSW + 4UT.
        let floor = params.vsw + 4.0 * tech.thermal_voltage();
        assert!((params.min_vdd(&tech, 1e-12) - floor).abs() < 1e-12);
        let grid = [1e-12, 1e-11, 1e-10, 1e-9, 1e-8, 1e-7];
        for w in grid.windows(2) {
            assert!(params.min_vdd(&tech, w[1]) >= params.min_vdd(&tech, w[0]));
        }
    }

    #[test]
    fn operates_at_respects_min_vdd() {
        let tech = Technology::default();
        let params = p();
        assert!(params.operates_at(&tech, 1.0, 1e-9));
        assert!(!params.operates_at(&tech, 0.3, 1e-9));
        // Bigger tail current needs more supply.
        assert!(params.operates_at(&tech, 0.55, 10e-9));
        assert!(!params.operates_at(&tech, 0.45, 100e-9));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_current_rejected() {
        let _ = p().delay(0.0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_depth_rejected() {
        let _ = p().fmax(1e-9, 0);
    }
}
