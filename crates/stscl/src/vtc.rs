//! Transistor-level STSCL gate export for circuit-level verification
//! (experiment E10).
//!
//! Builds the paper's Fig. 2 buffer — NMOS differential pair, ideal
//! replica-programmed tail current, bulk-drain-shorted PMOS loads,
//! explicit load capacitances — as a [`ulp_spice`] netlist, then
//! measures its VTC, gain, swing and propagation delay with the circuit
//! simulator so the analytic gate model ([`crate::gate::SclParams`]) can
//! be checked against "silicon" rather than against itself.

use crate::gate::SclParams;
use ulp_device::load::PmosLoad;
use ulp_device::{Mosfet, Polarity, Technology};
use ulp_spice::dcop::DcOperatingPoint;
use ulp_spice::sweep::dc_sweep;
use ulp_spice::tran::{Transient, TranOptions};
use ulp_spice::{Netlist, Node, SimError, Waveform};

/// A transistor-level STSCL buffer with differential drive machinery.
#[derive(Debug, Clone)]
pub struct SclBufferCircuit {
    /// The circuit.
    pub netlist: Netlist,
    /// Differential control node (the swept/pulsed stimulus; the true
    /// gate inputs sit at `vcm ± ctl/2`).
    pub ctl: Node,
    /// Positive gate input.
    pub inp: Node,
    /// Negative gate input.
    pub inn: Node,
    /// Positive output (drain of the `inn` device).
    pub outp: Node,
    /// Negative output.
    pub outn: Node,
    /// Cell design point used to build the circuit.
    pub params: SclParams,
    /// Tail current, A.
    pub iss: f64,
}

impl SclBufferCircuit {
    /// Builds the buffer at tail current `iss` with inputs biased at
    /// common mode `vcm` and the differential stimulus `ctl_wave` on the
    /// control node.
    ///
    /// # Panics
    ///
    /// Panics unless `iss > 0` and `0 < vcm < params.vdd`.
    pub fn build(
        tech: &Technology,
        params: &SclParams,
        iss: f64,
        vcm: f64,
        ctl_wave: Waveform,
    ) -> Self {
        assert!(iss > 0.0, "tail current must be positive");
        assert!(vcm > 0.0 && vcm < params.vdd, "common mode must sit inside the rails");
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let ctl = nl.node("ctl");
        let vcm_n = nl.node("vcm");
        let inp = nl.node("inp");
        let inn = nl.node("inn");
        let outp = nl.node("outp");
        let outn = nl.node("outn");
        let cs = nl.node("cs");
        nl.vsource("VDD", vdd, Netlist::GROUND, params.vdd);
        nl.vsource_wave("VCTL", ctl, Netlist::GROUND, ctl_wave);
        nl.vsource("VCM", vcm_n, Netlist::GROUND, vcm);
        // inp = vcm + ctl/2, inn = vcm − ctl/2.
        nl.vcvs("EP", inp, vcm_n, ctl, Netlist::GROUND, 0.5);
        nl.vcvs("EN", inn, vcm_n, ctl, Netlist::GROUND, -0.5);
        // Differential pair, 1 µm / 0.5 µm as in minimal STSCL cells.
        let pair = Mosfet::new(Polarity::Nmos, 1e-6, 0.5e-6);
        nl.mosfet("M1", outn, inp, cs, Netlist::GROUND, pair);
        nl.mosfet("M2", outp, inn, cs, Netlist::GROUND, pair);
        // Ideal replica-programmed tail.
        nl.isource("ITAIL", cs, Netlist::GROUND, iss);
        // Bulk-drain-shorted PMOS loads, replica-calibrated for VSW at
        // ISS.
        let load = PmosLoad::new(params.vsw);
        nl.scl_load("RLP", vdd, outp, load, iss);
        nl.scl_load("RLN", vdd, outn, load, iss);
        // Explicit load capacitances.
        nl.capacitor("CLP", outp, Netlist::GROUND, params.cl);
        nl.capacitor("CLN", outn, Netlist::GROUND, params.cl);
        ulp_spice::lint::debug_assert_clean(&nl, tech);
        SclBufferCircuit {
            netlist: nl,
            ctl,
            inp,
            inn,
            outp,
            outn,
            params: *params,
            iss,
        }
    }

    /// Differential DC transfer curve: `(v_diff_in, v_diff_out)` pairs.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn dc_transfer(
        &self,
        tech: &Technology,
        vd_values: &[f64],
    ) -> Result<Vec<(f64, f64)>, SimError> {
        let sweep = ulp_spice::telemetry::phase("stscl::vtc::dc_transfer", || {
            dc_sweep(&self.netlist, tech, "VCTL", vd_values)
        })?;
        let vp = sweep.voltage_trace(self.outp);
        let vn = sweep.voltage_trace(self.outn);
        Ok(vd_values
            .iter()
            .zip(vp.iter().zip(&vn))
            .map(|(&vin, (p, n))| (vin, p - n))
            .collect())
    }

    /// Measured differential output swing (at full steering), V.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn measured_swing(&self, tech: &Technology) -> Result<f64, SimError> {
        let curve = self.dc_transfer(tech, &[-0.4, 0.4])?;
        Ok((curve[1].1 - curve[0].1).abs() / 2.0)
    }

    /// Small-signal differential gain at balance, from a ±5 mV secant
    /// through the VTC.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn small_signal_gain(&self, tech: &Technology) -> Result<f64, SimError> {
        let dv = 5e-3;
        let curve = self.dc_transfer(tech, &[-dv, dv])?;
        Ok((curve[1].1 - curve[0].1) / (2.0 * dv))
    }

    /// Transient propagation delay: drive a full differential step and
    /// time the differential-output zero crossing, s.
    ///
    /// # Errors
    ///
    /// Propagates solver failures; [`SimError::NoConvergence`] wrapped in
    /// [`SimError::BadParameter`] semantics is avoided by sizing the
    /// timestep from the analytic delay.
    pub fn spice_delay(&self, tech: &Technology) -> Result<f64, SimError> {
        let td_analytic = self.params.delay(self.iss);
        // Fresh circuit with a step stimulus timed after 3 settle
        // constants.
        let t_step = 5.0 * td_analytic;
        let circuit = SclBufferCircuit::build(
            tech,
            &self.params,
            self.iss,
            0.6 * self.params.vdd,
            Waveform::Pulse {
                v0: -0.4,
                v1: 0.4,
                delay: t_step,
                rise: td_analytic * 0.01,
                fall: td_analytic * 0.01,
                width: 20.0 * td_analytic,
                period: 0.0,
            },
        );
        let opts = TranOptions::new(t_step + 10.0 * td_analytic, td_analytic / 50.0);
        let tr = ulp_spice::telemetry::phase("stscl::vtc::spice_delay", || {
            Transient::run(&circuit.netlist, tech, &opts)
        })?;
        let vp = tr.voltage(circuit.outp);
        let vn = tr.voltage(circuit.outn);
        let time = tr.time();
        // Find the differential zero crossing after the step.
        for i in 1..time.len() {
            if time[i] <= t_step {
                continue;
            }
            let d0 = vp[i - 1] - vn[i - 1];
            let d1 = vp[i] - vn[i];
            if d0 < 0.0 && d1 >= 0.0 {
                let frac = -d0 / (d1 - d0);
                return Ok(time[i - 1] + frac * (time[i] - time[i - 1]) - t_step);
            }
        }
        Err(SimError::BadParameter(
            "differential output never crossed zero".to_string(),
        ))
    }

    /// Static supply current drawn at balance, A — should equal the tail
    /// current exactly (the STSCL predictability claim).
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn supply_current(&self, tech: &Technology) -> Result<f64, SimError> {
        let op = DcOperatingPoint::solve(&self.netlist, tech)?;
        // VDD branch current: negative = delivering.
        Ok(-op.branch_current(&self.netlist, "VDD")?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulp_num::interp;

    fn tech() -> Technology {
        Technology::default()
    }

    fn circuit(iss: f64) -> SclBufferCircuit {
        SclBufferCircuit::build(
            &tech(),
            &SclParams::default(),
            iss,
            0.6,
            Waveform::Dc(0.0),
        )
    }

    #[test]
    fn built_netlist_is_erc_clean_across_tail_currents() {
        // The generated buffer topology must pass the static rule check
        // (no floating nodes, undriven gates or source loops) at the
        // default technology, over the paper's full current range.
        for iss in [10e-12, 1e-9, 100e-9] {
            let c = circuit(iss);
            let report = ulp_spice::erc::check(&c.netlist);
            assert!(report.is_clean(), "iss = {iss}:\n{report}");
        }
    }

    #[test]
    fn vtc_is_odd_and_saturates_at_swing() {
        let c = circuit(1e-9);
        let vds = interp::linspace(-0.4, 0.4, 17);
        let curve = c.dc_transfer(&tech(), &vds).unwrap();
        // Ends saturate near ±VSW.
        let (lo, hi) = (curve[0].1, curve[16].1);
        assert!((hi - 0.2).abs() < 0.04, "hi = {hi}");
        assert!((lo + 0.2).abs() < 0.04, "lo = {lo}");
        // Odd symmetry about the origin within a few mV.
        for k in 0..8 {
            assert!(
                (curve[k].1 + curve[16 - k].1).abs() < 5e-3,
                "asymmetry at {k}: {} vs {}",
                curve[k].1,
                curve[16 - k].1
            );
        }
        // Monotone.
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-6);
        }
    }

    #[test]
    fn gain_matches_analytic_model() {
        let c = circuit(1e-9);
        let gain = c.small_signal_gain(&tech()).unwrap();
        // At balance each pair device carries ISS/2 (gm = ISS/(2·n·UT))
        // and the tanh load presents R₀ = VSW/ISS · tanh(α)/α, so the
        // physical differential gain is the ideal A = VSW/(n·UT) scaled
        // by 0.5 · tanh(1.2)/1.2 ≈ 0.35.
        let ideal = SclParams::default().gain(&tech());
        let shape = 0.5 * (1.2f64).tanh() / 1.2;
        let expected = ideal * shape;
        assert!(
            (gain / expected - 1.0).abs() < 0.35,
            "spice gain {gain} vs expected {expected}"
        );
        assert!(gain > 1.0, "must actually amplify");
    }

    #[test]
    fn swing_tracks_design_value_over_decades() {
        for iss in [1e-10, 1e-9, 1e-8] {
            let c = circuit(iss);
            let swing = c.measured_swing(&tech()).unwrap();
            assert!(
                (swing - 0.2).abs() < 0.04,
                "iss {iss:e}: swing = {swing}"
            );
        }
    }

    #[test]
    fn supply_current_equals_tail() {
        let c = circuit(1e-9);
        let idd = c.supply_current(&tech()).unwrap();
        assert!(
            (idd / 1e-9 - 1.0).abs() < 0.05,
            "idd = {idd:e} (tail 1 nA)"
        );
    }

    #[test]
    fn spice_delay_matches_ln2_tau() {
        let params = SclParams::default();
        let iss = 1e-9;
        let c = circuit(iss);
        let td = c.spice_delay(&tech()).unwrap();
        let analytic = params.delay(iss);
        assert!(
            (td / analytic - 1.0).abs() < 0.5,
            "spice {td:e} vs analytic {analytic:e}"
        );
    }

    #[test]
    fn delay_scales_inversely_with_current_in_spice() {
        let t = tech();
        let td1 = circuit(1e-9).spice_delay(&t).unwrap();
        let td10 = circuit(10e-9).spice_delay(&t).unwrap();
        let ratio = td1 / td10;
        assert!((ratio - 10.0).abs() < 1.5, "ratio = {ratio}");
    }

    #[test]
    #[should_panic(expected = "common mode")]
    fn bad_common_mode_rejected() {
        let _ = SclBufferCircuit::build(
            &tech(),
            &SclParams::default(),
            1e-9,
            2.0,
            Waveform::Dc(0.0),
        );
    }
}
