//! Functional and timing simulation of STSCL gate netlists.
//!
//! Two views of the same netlist:
//!
//! * **Functional** — [`evaluate`] settles the combinational logic for
//!   one input vector; [`ClockedSim`] steps the pipeline cycle by cycle,
//!   treating latched gates as stage registers (physically they are the
//!   Fig. 8 merged latches clocked on alternating phases; functionally,
//!   one value advances per stage per cycle).
//! * **Timing** — [`propagation_delay`] runs an event-driven simulation
//!   with per-gate delay `t_d(ISS)` and reports when the outputs settle;
//!   [`max_frequency`] converts the critical-path depth into the clock
//!   limit `f_max = ISS/(2·ln2·VSW·C_L·N_L)`.

use crate::gate::SclParams;
use crate::netlist::{GateNetlist, NetId, NetlistError};
use std::collections::{BinaryHeap, HashMap};

/// A settled assignment of values to nets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetValues {
    values: Vec<bool>,
}

impl NetValues {
    /// Value of one net.
    pub fn get(&self, net: NetId) -> bool {
        self.values[net.index()]
    }

    /// Values of several nets (e.g. an output bus), MSB-first as given.
    pub fn bus(&self, nets: &[NetId]) -> Vec<bool> {
        nets.iter().map(|&n| self.get(n)).collect()
    }

    /// Interprets `nets` as an unsigned big-endian bus.
    pub fn bus_value(&self, nets: &[NetId]) -> u64 {
        nets.iter().fold(0, |acc, &n| (acc << 1) | self.get(n) as u64)
    }
}

/// Settles the combinational logic for one primary-input vector, with
/// latched-gate outputs pinned to `state` (one entry per latched gate,
/// in gate order).
///
/// # Errors
///
/// Propagates [`NetlistError::CombinationalCycle`].
///
/// # Panics
///
/// Panics if `pi.len()` differs from the primary-input count or
/// `state.len()` from the latch count.
pub fn evaluate(
    nl: &GateNetlist,
    pi: &[bool],
    state: &[bool],
) -> Result<NetValues, NetlistError> {
    assert_eq!(pi.len(), nl.inputs().len(), "primary input width mismatch");
    assert_eq!(state.len(), nl.latch_count(), "latch state width mismatch");
    let mut values = vec![false; nl.net_count()];
    for (net, v) in nl.inputs().iter().zip(pi) {
        values[net.index()] = *v;
    }
    // Pin latched outputs from state.
    let mut latch_i = 0usize;
    for g in nl.gates() {
        if g.latched {
            values[g.output.index()] = state[latch_i];
            latch_i += 1;
        }
    }
    // Propagate in topological order (latched gates are skipped — their
    // outputs are state).
    for gid in nl.levelize()? {
        let g = &nl.gates()[gid.index()];
        if g.latched {
            continue;
        }
        values[g.output.index()] = g.eval_on(&values);
    }
    Ok(NetValues { values })
}

/// The values latched gates *would capture* at the next stage boundary,
/// given settled values.
///
/// # Errors
///
/// Propagates [`NetlistError::CombinationalCycle`].
fn next_state(nl: &GateNetlist, settled: &NetValues) -> Vec<bool> {
    nl.gates()
        .iter()
        .filter(|g| g.latched)
        .map(|g| g.eval_on(&settled.values))
        .collect()
}

/// Cycle-accurate functional simulator of a pipelined netlist.
///
/// # Example
///
/// A two-stage pipeline delays data by two cycles:
///
/// ```
/// use ulp_stscl::{CellKind, GateNetlist};
/// use ulp_stscl::sim::ClockedSim;
///
/// # fn main() -> Result<(), ulp_stscl::netlist::NetlistError> {
/// let mut nl = GateNetlist::new();
/// let a = nl.input("a");
/// let s1 = nl.latched_gate(CellKind::Buf, &[a], "s1")?;
/// let s2 = nl.latched_gate(CellKind::Buf, &[s1], "s2")?;
/// nl.output(s2);
/// let mut sim = ClockedSim::new(&nl);
/// let y0 = sim.step(&[true])?;
/// let y1 = sim.step(&[false])?;
/// let y2 = sim.step(&[false])?;
/// assert!(!y0.get(s2));         // nothing through yet
/// assert!(!y1.get(s2));
/// assert!(y2.get(s2));          // the `true` arrives after 2 cycles
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ClockedSim<'a> {
    nl: &'a GateNetlist,
    state: Vec<bool>,
}

impl<'a> ClockedSim<'a> {
    /// Creates a simulator with all stage latches cleared.
    pub fn new(nl: &'a GateNetlist) -> Self {
        ClockedSim {
            nl,
            state: vec![false; nl.latch_count()],
        }
    }

    /// Current latch state (one entry per latched gate, gate order).
    pub fn state(&self) -> &[bool] {
        &self.state
    }

    /// Applies one input vector, returns the settled values *before* the
    /// clock edge, then advances the stage latches.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError::CombinationalCycle`].
    pub fn step(&mut self, pi: &[bool]) -> Result<NetValues, NetlistError> {
        let settled = evaluate(self.nl, pi, &self.state)?;
        self.state = next_state(self.nl, &settled);
        Ok(settled)
    }
}

/// Event-driven timing report.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Time at which the last net settled, s.
    pub settle_time: f64,
    /// Total events processed (gate output changes).
    pub events: usize,
}

#[derive(Debug, PartialEq)]
struct Event {
    time: f64,
    gate: usize,
    value: bool,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on time.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are finite")
            .then_with(|| other.gate.cmp(&self.gate))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Event-driven propagation-delay measurement: starting from the settled
/// response to `from`, applies `to` at `t = 0` and simulates with
/// per-gate delay `params.delay(iss)` until quiescent. Latched gates are
/// treated as transparent (this measures the combinational path, which
/// is what bounds the clock half-period).
///
/// # Errors
///
/// Propagates [`NetlistError::CombinationalCycle`] from the initial
/// settling.
///
/// # Panics
///
/// Panics on input-width mismatch or non-positive `iss`.
pub fn propagation_delay(
    nl: &GateNetlist,
    params: &SclParams,
    iss: f64,
    from: &[bool],
    to: &[bool],
) -> Result<TimingReport, NetlistError> {
    assert_eq!(from.len(), nl.inputs().len(), "input width mismatch");
    assert_eq!(to.len(), nl.inputs().len(), "input width mismatch");
    let td = params.delay(iss);

    // Settle at `from` treating latches as transparent: emulate by a
    // netlist-wide relaxation (latched gates evaluate like plain gates).
    let mut values = vec![false; nl.net_count()];
    for (net, v) in nl.inputs().iter().zip(from) {
        values[net.index()] = *v;
    }
    // Relax to a fixed point (bounded by gate count iterations; the
    // levelize order makes one pass sufficient for acyclic cores, and
    // latched feedback loops converge or oscillate — bound the passes).
    let order = nl.levelize()?;
    for _ in 0..nl.gate_count().max(1) {
        let mut changed = false;
        for gid in &order {
            let g = &nl.gates()[gid.index()];
            let v = g.eval_on(&values);
            if values[g.output.index()] != v {
                values[g.output.index()] = v;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Fanout map: net → gates.
    let mut fanout: HashMap<usize, Vec<usize>> = HashMap::new();
    for (gi, g) in nl.gates().iter().enumerate() {
        for inp in &g.inputs {
            fanout.entry(inp.index()).or_default().push(gi);
        }
    }

    let mut heap: BinaryHeap<Event> = BinaryHeap::new();
    // Apply the new input vector and schedule affected gates.
    let schedule_net = |net: NetId,
                            heap: &mut BinaryHeap<Event>,
                            values: &[bool],
                            t: f64| {
        if let Some(gs) = fanout.get(&net.index()) {
            for &gi in gs {
                let g = &nl.gates()[gi];
                let v = g.eval_on(values);
                heap.push(Event {
                    time: t + td,
                    gate: gi,
                    value: v,
                });
            }
        }
    };
    for (net, v) in nl.inputs().iter().zip(to) {
        if values[net.index()] != *v {
            values[net.index()] = *v;
            schedule_net(*net, &mut heap, &values, 0.0);
        }
    }

    let mut settle = 0.0f64;
    let mut events = 0usize;
    let budget = 10_000 * nl.gate_count().max(1);
    while let Some(ev) = heap.pop() {
        events += 1;
        if events > budget {
            // Oscillating feedback — report the time reached so far.
            break;
        }
        let g = &nl.gates()[ev.gate];
        // Re-evaluate at pop time (inputs may have changed since
        // scheduling) — inertial-delay approximation.
        let v = g.eval_on(&values);
        if values[g.output.index()] == v {
            continue;
        }
        values[g.output.index()] = v;
        settle = settle.max(ev.time);
        schedule_net(g.output, &mut heap, &values, ev.time);
    }
    Ok(TimingReport {
        settle_time: settle,
        events,
    })
}

/// Maximum clock frequency of the netlist at tail current `iss`:
/// `f_max = 1/(2·N_L·t_d)` with `N_L` the pipeline-aware logic depth.
///
/// # Errors
///
/// Propagates [`NetlistError::CombinationalCycle`].
pub fn max_frequency(
    nl: &GateNetlist,
    params: &SclParams,
    iss: f64,
) -> Result<f64, NetlistError> {
    let nl_depth = nl.logic_depth()?.max(1);
    Ok(params.fmax(iss, nl_depth))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellKind;

    fn adder_carry() -> (GateNetlist, NetId) {
        let mut nl = GateNetlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let c = nl.input("c");
        let m = nl.gate(CellKind::Maj3, &[a, b, c], "m").unwrap();
        nl.output(m);
        (nl, m)
    }

    #[test]
    fn evaluate_majority() {
        let (nl, m) = adder_carry();
        let v = evaluate(&nl, &[true, true, false], &[]).unwrap();
        assert!(v.get(m));
        let v = evaluate(&nl, &[true, false, false], &[]).unwrap();
        assert!(!v.get(m));
    }

    #[test]
    fn bus_value_big_endian() {
        let mut nl = GateNetlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let v = evaluate(&nl, &[true, false], &[]).unwrap();
        assert_eq!(v.bus(&[a, b]), vec![true, false]);
        assert_eq!(v.bus_value(&[a, b]), 0b10);
    }

    #[test]
    fn pipeline_latency() {
        let mut nl = GateNetlist::new();
        let a = nl.input("a");
        let s1 = nl.latched_gate(CellKind::Buf, &[a], "s1").unwrap();
        let s2 = nl.latched_gate(CellKind::Buf, &[s1], "s2").unwrap();
        let s3 = nl.latched_gate(CellKind::Buf, &[s2], "s3").unwrap();
        nl.output(s3);
        let mut sim = ClockedSim::new(&nl);
        let pattern = [true, false, true, true, false, false, false];
        let mut got = Vec::new();
        for &x in &pattern {
            got.push(sim.step(&[x]).unwrap().get(s3));
        }
        // Output is the input delayed by 3 cycles (zeros priming).
        assert_eq!(got[..3], [false, false, false]);
        assert_eq!(got[3..], pattern[..4]);
    }

    #[test]
    fn pipelined_logic_computes_correctly() {
        // XOR-accumulate parity through a latched stage.
        let mut nl = GateNetlist::new();
        let a = nl.input("a");
        let q = nl.net("q");
        let x = nl.gate(CellKind::Xor2, &[a, q], "x").unwrap();
        let id = nl.gate_onto(CellKind::Buf, &[x], q).unwrap();
        nl.set_latched(id, true);
        nl.output(q);
        let mut sim = ClockedSim::new(&nl);
        let mut parity = false;
        for bit in [true, true, false, true, false, true] {
            sim.step(&[bit]).unwrap();
            parity ^= bit;
            assert_eq!(sim.state()[0], parity);
        }
    }

    #[test]
    fn propagation_delay_chain() {
        let mut nl = GateNetlist::new();
        let mut prev = nl.input("in");
        for i in 0..4 {
            prev = nl.gate(CellKind::Buf, &[prev], &format!("n{i}")).unwrap();
        }
        nl.output(prev);
        let p = SclParams::default();
        let iss = 1e-9;
        let rep = propagation_delay(&nl, &p, iss, &[false], &[true]).unwrap();
        let expect = 4.0 * p.delay(iss);
        assert!(
            (rep.settle_time / expect - 1.0).abs() < 1e-9,
            "settle {} vs {}",
            rep.settle_time,
            expect
        );
        assert!(rep.events >= 4);
    }

    #[test]
    fn no_change_no_delay() {
        let (nl, _) = adder_carry();
        let p = SclParams::default();
        let rep =
            propagation_delay(&nl, &p, 1e-9, &[true, true, false], &[true, true, false]).unwrap();
        assert_eq!(rep.settle_time, 0.0);
    }

    #[test]
    fn masked_input_change_settles_fast() {
        // Changing c when a = b = 1 cannot flip a majority output.
        let (nl, _) = adder_carry();
        let p = SclParams::default();
        let rep =
            propagation_delay(&nl, &p, 1e-9, &[true, true, false], &[true, true, true]).unwrap();
        assert_eq!(rep.settle_time, 0.0, "output never flips");
    }

    #[test]
    fn max_frequency_tracks_depth_and_current() {
        let mut nl = GateNetlist::new();
        let mut prev = nl.input("in");
        for i in 0..4 {
            prev = nl.gate(CellKind::Buf, &[prev], &format!("n{i}")).unwrap();
        }
        nl.output(prev);
        let p = SclParams::default();
        let f1 = max_frequency(&nl, &p, 1e-9).unwrap();
        let f2 = max_frequency(&nl, &p, 2e-9).unwrap();
        assert!((f2 / f1 - 2.0).abs() < 1e-12);
        // Pipelining the same chain recovers 4× the clock rate.
        let mut piped = GateNetlist::new();
        let mut prev = piped.input("in");
        for i in 0..4 {
            prev = piped
                .latched_gate(CellKind::Buf, &[prev], &format!("n{i}"))
                .unwrap();
        }
        piped.output(prev);
        let fp = max_frequency(&piped, &p, 1e-9).unwrap();
        assert!((fp / f1 - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_input_width_panics() {
        let (nl, _) = adder_carry();
        let _ = evaluate(&nl, &[true], &[]);
    }
}
