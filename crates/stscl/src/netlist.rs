//! Gate-level netlists of STSCL cells, with logic-depth analysis.
//!
//! Nets are single-driver boolean signals (differential in hardware —
//! the complement wire is implicit). Any gate can be *latched*: the
//! paper's Fig. 8 merges a clocked latch into the output of a compound
//! cell, turning it into a pipeline stage boundary at no extra tail
//! current. Logic depth `N_L` — the quantity that multiplies power in
//! Eq. (1) — is the longest run of unlatched gates between stage
//! boundaries (primary inputs and latched-gate outputs) and the next
//! boundary (latched gate or primary output), counting every gate on the
//! way including the terminating latched gate.

use crate::cells::CellKind;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Handle to a net (a named boolean signal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) usize);

/// Handle to a gate instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub(crate) usize);

impl NetId {
    /// Index into the netlist's net table.
    pub fn index(self) -> usize {
        self.0
    }
}

impl GateId {
    /// Index into the netlist's gate table.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One gate instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Gate {
    /// Cell function.
    pub kind: CellKind,
    /// Input nets, in [`CellKind::arity`] order.
    pub inputs: Vec<NetId>,
    /// Per-input inversion flags. STSCL is fully differential, so an
    /// inverted input is a free wire swap — no extra cell, no extra
    /// tail current.
    pub inverted: Vec<bool>,
    /// Output net (single driver).
    pub output: NetId,
    /// True when a pipeline latch is merged into this cell's output
    /// (paper Fig. 8) — the output becomes a stage boundary.
    pub latched: bool,
}

impl Gate {
    /// Evaluates this gate's function on already-resolved net values.
    pub fn eval_on(&self, values: &[bool]) -> bool {
        let ins: Vec<bool> = self
            .inputs
            .iter()
            .zip(&self.inverted)
            .map(|(n, inv)| values[n.index()] ^ inv)
            .collect();
        self.kind.eval(&ins)
    }
}

/// Netlist construction/analysis errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A net would acquire a second driver.
    MultipleDrivers(String),
    /// The unlatched gates contain a combinational cycle through the
    /// named net.
    CombinationalCycle(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::MultipleDrivers(n) => write!(f, "net {n} has multiple drivers"),
            NetlistError::CombinationalCycle(n) => {
                write!(f, "combinational cycle through net {n}")
            }
        }
    }
}

impl Error for NetlistError {}

/// A gate-level STSCL netlist.
///
/// # Example
///
/// A full adder's carry via one majority cell:
///
/// ```
/// use ulp_stscl::{CellKind, GateNetlist};
///
/// # fn main() -> Result<(), ulp_stscl::netlist::NetlistError> {
/// let mut nl = GateNetlist::new();
/// let a = nl.input("a");
/// let b = nl.input("b");
/// let cin = nl.input("cin");
/// let cout = nl.gate(CellKind::Maj3, &[a, b, cin], "cout")?;
/// nl.output(cout);
/// assert_eq!(nl.gate_count(), 1);
/// assert_eq!(nl.logic_depth()?, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct GateNetlist {
    net_names: Vec<String>,
    driver: Vec<Option<GateId>>, // per net
    gates: Vec<Gate>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
}

impl GateNetlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        GateNetlist::default()
    }

    /// Creates a fresh named net with no driver.
    pub fn net(&mut self, name: &str) -> NetId {
        self.net_names.push(name.to_string());
        self.driver.push(None);
        NetId(self.net_names.len() - 1)
    }

    /// Creates a primary input net.
    pub fn input(&mut self, name: &str) -> NetId {
        let n = self.net(name);
        self.inputs.push(n);
        n
    }

    /// Marks a net as a primary output.
    pub fn output(&mut self, net: NetId) {
        self.outputs.push(net);
    }

    /// Adds a combinational gate driving a new net named `out_name`.
    ///
    /// # Errors
    ///
    /// Never fails for a fresh output net; the `Result` mirrors
    /// [`GateNetlist::gate_onto`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` does not match the cell arity.
    pub fn gate(
        &mut self,
        kind: CellKind,
        inputs: &[NetId],
        out_name: &str,
    ) -> Result<NetId, NetlistError> {
        let out = self.net(out_name);
        self.gate_onto(kind, inputs, out)?;
        Ok(out)
    }

    /// Adds a combinational gate driving an existing net.
    ///
    /// # Errors
    ///
    /// [`NetlistError::MultipleDrivers`] if `out` is already driven.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` does not match the cell arity.
    pub fn gate_onto(
        &mut self,
        kind: CellKind,
        inputs: &[NetId],
        out: NetId,
    ) -> Result<GateId, NetlistError> {
        let signed: Vec<(NetId, bool)> = inputs.iter().map(|&n| (n, false)).collect();
        self.gate_inv_onto(kind, &signed, out)
    }

    /// Adds a gate with per-input inversion flags (free differential
    /// complements) driving a new net.
    ///
    /// # Errors
    ///
    /// As for [`GateNetlist::gate`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` does not match the cell arity.
    pub fn gate_inv(
        &mut self,
        kind: CellKind,
        inputs: &[(NetId, bool)],
        out_name: &str,
    ) -> Result<NetId, NetlistError> {
        let out = self.net(out_name);
        self.gate_inv_onto(kind, inputs, out)?;
        Ok(out)
    }

    /// Adds a gate with per-input inversion flags driving an existing
    /// net.
    ///
    /// # Errors
    ///
    /// [`NetlistError::MultipleDrivers`] if `out` is already driven.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` does not match the cell arity.
    pub fn gate_inv_onto(
        &mut self,
        kind: CellKind,
        inputs: &[(NetId, bool)],
        out: NetId,
    ) -> Result<GateId, NetlistError> {
        assert_eq!(
            inputs.len(),
            kind.arity(),
            "cell {kind} expects {} inputs",
            kind.arity()
        );
        if self.driver[out.0].is_some() {
            return Err(NetlistError::MultipleDrivers(self.net_names[out.0].clone()));
        }
        let id = GateId(self.gates.len());
        self.gates.push(Gate {
            kind,
            inputs: inputs.iter().map(|(n, _)| *n).collect(),
            inverted: inputs.iter().map(|(_, i)| *i).collect(),
            output: out,
            latched: false,
        });
        self.driver[out.0] = Some(id);
        Ok(id)
    }

    /// Adds a gate with a merged output latch (a pipeline stage
    /// boundary, Fig. 8 style).
    ///
    /// # Errors
    ///
    /// As for [`GateNetlist::gate`].
    pub fn latched_gate(
        &mut self,
        kind: CellKind,
        inputs: &[NetId],
        out_name: &str,
    ) -> Result<NetId, NetlistError> {
        let out = self.net(out_name);
        let id = self.gate_onto(kind, inputs, out)?;
        self.gates[id.0].latched = true;
        Ok(out)
    }

    /// Marks an existing gate as latched (used by the pipelining
    /// transform).
    pub fn set_latched(&mut self, gate: GateId, latched: bool) {
        self.gates[gate.0].latched = latched;
    }

    /// Number of gate instances (each burns one tail current).
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of latched gates (pipeline boundaries).
    pub fn latch_count(&self) -> usize {
        self.gates.iter().filter(|g| g.latched).count()
    }

    /// Borrows the gate list.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Primary inputs in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary outputs in declaration order.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Total nets.
    pub fn net_count(&self) -> usize {
        self.net_names.len()
    }

    /// Name of a net.
    pub fn net_name(&self, net: NetId) -> &str {
        &self.net_names[net.0]
    }

    /// The gate driving `net`, if any.
    pub fn driver(&self, net: NetId) -> Option<GateId> {
        self.driver[net.0]
    }

    /// Topological order of the *unlatched* combinational gates; latched
    /// gates are included but treated as sinks (their outputs are stage
    /// sources and break the ordering constraint).
    ///
    /// # Errors
    ///
    /// [`NetlistError::CombinationalCycle`] if unlatched gates form a
    /// loop.
    pub fn levelize(&self) -> Result<Vec<GateId>, NetlistError> {
        // Kahn's algorithm over gate→gate edges that cross an unlatched
        // net (edges out of latched gates are cut).
        let n = self.gates.len();
        let mut indegree = vec![0usize; n];
        let mut fanout: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (gi, g) in self.gates.iter().enumerate() {
            for &inp in &g.inputs {
                if let Some(d) = self.driver[inp.0] {
                    if !self.gates[d.0].latched {
                        indegree[gi] += 1;
                        fanout[d.0].push(gi);
                    }
                }
            }
        }
        let mut queue: VecDeque<usize> =
            (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(g) = queue.pop_front() {
            order.push(GateId(g));
            if self.gates[g].latched {
                continue; // outputs of latched gates do not propagate depth
            }
            for &f in &fanout[g] {
                indegree[f] -= 1;
                if indegree[f] == 0 {
                    queue.push_back(f);
                }
            }
        }
        if order.len() != n {
            let culprit = (0..n)
                .find(|&i| indegree[i] > 0)
                .map(|i| self.net_names[self.gates[i].output.0].clone())
                .unwrap_or_default();
            return Err(NetlistError::CombinationalCycle(culprit));
        }
        Ok(order)
    }

    /// Per-gate combinational arrival depth (gates since the last stage
    /// boundary, counting this gate).
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError::CombinationalCycle`].
    pub fn arrival_depths(&self) -> Result<Vec<usize>, NetlistError> {
        let order = self.levelize()?;
        let mut depth = vec![0usize; self.gates.len()];
        for gid in order {
            let g = &self.gates[gid.0];
            let mut max_in = 0usize;
            for &inp in &g.inputs {
                if let Some(d) = self.driver[inp.0] {
                    if !self.gates[d.0].latched {
                        max_in = max_in.max(depth[d.0]);
                    }
                }
            }
            depth[gid.0] = max_in + 1;
        }
        Ok(depth)
    }

    /// Logic depth `N_L`: the longest run of gates between pipeline
    /// boundaries — the multiplier in Eq. (1). Returns 0 for an empty
    /// netlist.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError::CombinationalCycle`].
    pub fn logic_depth(&self) -> Result<usize, NetlistError> {
        Ok(self.arrival_depths()?.into_iter().max().unwrap_or(0))
    }

    /// The gates on one longest path, source to sink.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError::CombinationalCycle`].
    pub fn critical_path(&self) -> Result<Vec<GateId>, NetlistError> {
        let depth = self.arrival_depths()?;
        let Some((mut gi, _)) = depth.iter().enumerate().max_by_key(|(_, d)| **d) else {
            return Ok(Vec::new());
        };
        let mut path = vec![GateId(gi)];
        loop {
            let g = &self.gates[gi];
            let mut pred = None;
            for &inp in &g.inputs {
                if let Some(d) = self.driver[inp.0] {
                    if !self.gates[d.0].latched && depth[d.0] + 1 == depth[gi] {
                        pred = Some(d.0);
                        break;
                    }
                }
            }
            match pred {
                Some(p) => {
                    path.push(GateId(p));
                    gi = p;
                }
                None => break,
            }
        }
        path.reverse();
        Ok(path)
    }

    /// Tail-current cost if every compound cell were flattened to simple
    /// 2-input cells — the baseline for the compound-gate ablation.
    pub fn flattened_gate_count(&self) -> usize {
        self.gates
            .iter()
            .map(|g| g.kind.equivalent_simple_cells())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> GateNetlist {
        let mut nl = GateNetlist::new();
        let mut prev = nl.input("in");
        for i in 0..n {
            prev = nl.gate(CellKind::Buf, &[prev], &format!("n{i}")).unwrap();
        }
        nl.output(prev);
        nl
    }

    #[test]
    fn chain_depth_equals_length() {
        let nl = chain(5);
        assert_eq!(nl.gate_count(), 5);
        assert_eq!(nl.logic_depth().unwrap(), 5);
        assert_eq!(nl.critical_path().unwrap().len(), 5);
    }

    #[test]
    fn latch_resets_depth() {
        let mut nl = GateNetlist::new();
        let a = nl.input("a");
        let x = nl.gate(CellKind::Buf, &[a], "x").unwrap();
        let y = nl.latched_gate(CellKind::Buf, &[x], "y").unwrap();
        let z = nl.gate(CellKind::Buf, &[y], "z").unwrap();
        nl.output(z);
        // Two stages of depth 2 and 1 → NL = 2.
        assert_eq!(nl.logic_depth().unwrap(), 2);
        assert_eq!(nl.latch_count(), 1);
    }

    #[test]
    fn fully_pipelined_depth_is_one() {
        let mut nl = GateNetlist::new();
        let mut prev = nl.input("in");
        for i in 0..6 {
            prev = nl
                .latched_gate(CellKind::Buf, &[prev], &format!("s{i}"))
                .unwrap();
        }
        nl.output(prev);
        assert_eq!(nl.logic_depth().unwrap(), 1);
    }

    #[test]
    fn multiple_drivers_rejected() {
        let mut nl = GateNetlist::new();
        let a = nl.input("a");
        let x = nl.gate(CellKind::Buf, &[a], "x").unwrap();
        let err = nl.gate_onto(CellKind::Buf, &[a], x).unwrap_err();
        assert!(matches!(err, NetlistError::MultipleDrivers(_)));
        assert!(err.to_string().contains('x'));
    }

    #[test]
    fn combinational_cycle_detected() {
        let mut nl = GateNetlist::new();
        let a = nl.net("a");
        let b = nl.net("b");
        nl.gate_onto(CellKind::Buf, &[b], a).unwrap();
        nl.gate_onto(CellKind::Buf, &[a], b).unwrap();
        assert!(matches!(
            nl.logic_depth(),
            Err(NetlistError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn latched_feedback_is_legal() {
        // A latched gate may feed back (state element) without creating
        // a combinational cycle.
        let mut nl = GateNetlist::new();
        let a = nl.input("a");
        let q = nl.net("q");
        let d = nl.gate(CellKind::Xor2, &[a, q], "d").unwrap();
        let id = nl.gate_onto(CellKind::Buf, &[d], q).unwrap();
        nl.set_latched(id, true);
        nl.output(q);
        assert_eq!(nl.logic_depth().unwrap(), 2); // XOR then latched BUF
    }

    #[test]
    fn diamond_depth() {
        let mut nl = GateNetlist::new();
        let a = nl.input("a");
        let l = nl.gate(CellKind::Buf, &[a], "l").unwrap();
        let r1 = nl.gate(CellKind::Buf, &[a], "r1").unwrap();
        let r2 = nl.gate(CellKind::Buf, &[r1], "r2").unwrap();
        let o = nl.gate(CellKind::And2, &[l, r2], "o").unwrap();
        nl.output(o);
        assert_eq!(nl.logic_depth().unwrap(), 3); // a→r1→r2→o
        let cp = nl.critical_path().unwrap();
        assert_eq!(cp.len(), 3);
        assert_eq!(nl.gates()[cp[2].index()].output, o);
    }

    #[test]
    fn flattened_count_exceeds_compound() {
        let mut nl = GateNetlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let c = nl.input("c");
        let m = nl.gate(CellKind::Maj3, &[a, b, c], "m").unwrap();
        nl.output(m);
        assert_eq!(nl.gate_count(), 1);
        assert_eq!(nl.flattened_gate_count(), 5);
    }

    #[test]
    fn net_names_and_drivers() {
        let mut nl = GateNetlist::new();
        let a = nl.input("a");
        let x = nl.gate(CellKind::Buf, &[a], "x").unwrap();
        assert_eq!(nl.net_name(a), "a");
        assert_eq!(nl.net_name(x), "x");
        assert!(nl.driver(a).is_none());
        assert!(nl.driver(x).is_some());
        assert_eq!(nl.net_count(), 2);
        assert_eq!(nl.inputs().len(), 1);
        assert_eq!(nl.outputs().len(), 0);
    }

    #[test]
    fn empty_netlist_depth_zero() {
        let nl = GateNetlist::new();
        assert_eq!(nl.logic_depth().unwrap(), 0);
        assert!(nl.critical_path().unwrap().is_empty());
    }
}
