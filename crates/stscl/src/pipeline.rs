//! The pipelining transform (paper §III-B, refs \[10\], \[13\], \[16\]).
//!
//! STSCL power is `P = 2·ln2·VSW·CL·NL·fop·VDD` *per critical-path
//! cell*: deep logic multiplies the tail current every gate must carry
//! to hold the clock rate. Merging a latch into each cell's output
//! (Fig. 8) cuts `NL` to 1 at no extra tail current, trading latency for
//! an `NL`-fold reduction of the required per-gate bias — the paper's
//! headline digital power technique, quantified here for ablation E9a.

use crate::gate::SclParams;
use crate::netlist::{GateNetlist, NetlistError};

/// Fully pipelines a netlist: every gate gets a merged output latch, so
/// the pipeline-aware logic depth becomes 1. Returns the transformed
/// copy.
pub fn pipeline_fully(nl: &GateNetlist) -> GateNetlist {
    let mut out = nl.clone();
    for i in 0..out.gate_count() {
        out.set_latched(crate::netlist::GateId(i), true);
    }
    out
}

/// Removes every merged latch (the unpipelined baseline).
pub fn unpipeline(nl: &GateNetlist) -> GateNetlist {
    let mut out = nl.clone();
    for i in 0..out.gate_count() {
        out.set_latched(crate::netlist::GateId(i), false);
    }
    out
}

/// Comparison of a netlist against its fully pipelined version at equal
/// throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineGain {
    /// Logic depth before pipelining.
    pub depth_before: usize,
    /// Logic depth after (always 1 for a non-empty netlist).
    pub depth_after: usize,
    /// Total power before, W.
    pub power_before: f64,
    /// Total power after, W.
    pub power_after: f64,
    /// Power saving factor (before/after).
    pub saving: f64,
    /// Added pipeline latency, clock cycles.
    pub added_latency: usize,
}

/// Quantifies the pipelining gain at operating frequency `fop`:
/// every gate's tail current is sized for the netlist's own depth, so
/// power scales with depth at iso-throughput.
///
/// # Errors
///
/// Propagates [`NetlistError::CombinationalCycle`].
pub fn pipeline_gain(
    nl: &GateNetlist,
    params: &SclParams,
    fop: f64,
) -> Result<PipelineGain, NetlistError> {
    let before = unpipeline(nl);
    let after = pipeline_fully(nl);
    let depth_before = before.logic_depth()?.max(1);
    let depth_after = after.logic_depth()?.max(1);
    let iss_before = params.iss_for_frequency(fop, depth_before);
    let iss_after = params.iss_for_frequency(fop, depth_after);
    let n = nl.gate_count() as f64;
    let power_before = n * params.gate_power(iss_before);
    let power_after = n * params.gate_power(iss_after);
    Ok(PipelineGain {
        depth_before,
        depth_after,
        power_before,
        power_after,
        saving: power_before / power_after,
        added_latency: depth_before.saturating_sub(1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellKind;

    fn chain(n: usize) -> GateNetlist {
        let mut nl = GateNetlist::new();
        let mut prev = nl.input("in");
        for i in 0..n {
            prev = nl.gate(CellKind::Buf, &[prev], &format!("n{i}")).unwrap();
        }
        nl.output(prev);
        nl
    }

    #[test]
    fn full_pipeline_depth_one() {
        let nl = chain(8);
        let p = pipeline_fully(&nl);
        assert_eq!(p.logic_depth().unwrap(), 1);
        assert_eq!(p.latch_count(), 8);
        let u = unpipeline(&p);
        assert_eq!(u.logic_depth().unwrap(), 8);
        assert_eq!(u.latch_count(), 0);
    }

    #[test]
    fn gain_equals_depth_for_chain() {
        // For a pure chain, pipelining divides power exactly by the
        // depth (Eq. 1 is linear in NL).
        let nl = chain(8);
        let g = pipeline_gain(&nl, &SclParams::default(), 80e3).unwrap();
        assert_eq!(g.depth_before, 8);
        assert_eq!(g.depth_after, 1);
        assert!((g.saving - 8.0).abs() < 1e-9);
        assert_eq!(g.added_latency, 7);
        assert!(g.power_before > g.power_after);
    }

    #[test]
    fn gain_on_already_pipelined_is_identity() {
        let nl = pipeline_fully(&chain(4));
        let g = pipeline_gain(&nl, &SclParams::default(), 1e4).unwrap();
        // pipeline_gain reconstructs the unpipelined baseline itself.
        assert_eq!(g.depth_before, 4);
        assert!((g.saving - 4.0).abs() < 1e-9);
    }

    #[test]
    fn absolute_power_calibration() {
        // 196 gates, depth 1, 80 kHz: the paper's measured ≈200 nW
        // digital power (DESIGN.md calibration).
        let mut nl = GateNetlist::new();
        let mut prev = nl.input("in");
        for i in 0..196 {
            prev = nl
                .latched_gate(CellKind::Buf, &[prev], &format!("n{i}"))
                .unwrap();
        }
        nl.output(prev);
        let params = SclParams::default();
        let g = pipeline_gain(&nl, &params, 80e3).unwrap();
        // power_after = 196 · ISS(80 kHz, NL = 1) · VDD.
        assert!(
            g.power_after > 20e-9 && g.power_after < 80e-9,
            "power = {:.3e} W",
            g.power_after
        );
    }
}
