//! Replica-bias generation and distribution.
//!
//! All STSCL tail currents in a block are copies of one reference,
//! produced by a replica-bias generator (paper Fig. 2 and §II-A): a
//! feedback loop sizes the PMOS load gate voltage so that a replica cell
//! develops exactly `VSW` at `ISS`, and NMOS current mirrors fan the
//! tail current out to every cell. Two practical effects are modelled:
//!
//! * **Mirror mismatch** — Pelgrom threshold scatter in the mirror
//!   devices spreads the per-gate tail currents (and hence delays);
//!   exponential in weak inversion: `ΔI/I = ΔVT/(n·UT)`.
//! * **Headroom check** — the mirror compliance plus the replica loop
//!   set the minimum usable supply ([`crate::gate::SclParams::min_vdd`]).

use crate::gate::SclParams;
use ulp_device::mismatch::MismatchRng;
use ulp_device::tech::MosModel;
use ulp_device::Technology;

/// A replica-bias distribution network for one STSCL block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaBias {
    /// Reference tail current, A.
    pub iss_ref: f64,
    /// Mirror device width, m.
    pub mirror_w: f64,
    /// Mirror device length, m.
    pub mirror_l: f64,
}

impl ReplicaBias {
    /// Creates a distribution with the given reference current and
    /// mirror geometry. The paper recommends "large enough transistor
    /// sizes" for the mirrors; defaults in the ADC use 2 µm × 2 µm.
    ///
    /// # Panics
    ///
    /// Panics unless all parameters are strictly positive.
    pub fn new(iss_ref: f64, mirror_w: f64, mirror_l: f64) -> Self {
        assert!(
            iss_ref > 0.0 && mirror_w > 0.0 && mirror_l > 0.0,
            "replica bias parameters must be positive"
        );
        ReplicaBias {
            iss_ref,
            mirror_w,
            mirror_l,
        }
    }

    /// Relative 1-σ spread of the mirrored tail currents from threshold
    /// mismatch: `σ(ΔI)/I = σ(ΔVT)/(n·UT)` (weak inversion).
    pub fn current_spread_sigma(&self, tech: &Technology) -> f64 {
        let sigma_vt = MismatchRng::sigma_delta_vt(&tech.nmos, self.mirror_w, self.mirror_l);
        sigma_vt / (tech.nmos.n * tech.thermal_voltage())
    }

    /// Draws one mirrored tail current, A.
    ///
    /// The relevant mismatch is the *pair* deviation between the replica
    /// reference device and this mirror device, so the full Pelgrom pair
    /// σ applies.
    pub fn draw_tail_current(&self, tech: &Technology, rng: &mut MismatchRng) -> f64 {
        let dvt = rng.draw_pair_offset(&tech.nmos, self.mirror_w, self.mirror_l);
        // Weak-inversion mirror: I = Iref·exp(−ΔVT/(n·UT)).
        self.iss_ref * (-dvt / (tech.nmos.n * tech.thermal_voltage())).exp()
    }

    /// Draws `n` mirrored tail currents.
    pub fn draw_tail_currents(
        &self,
        tech: &Technology,
        rng: &mut MismatchRng,
        n: usize,
    ) -> Vec<f64> {
        (0..n).map(|_| self.draw_tail_current(tech, rng)).collect()
    }

    /// 1-σ relative spread of gate delays implied by the mirror spread
    /// (delay ∝ 1/ISS, so small relative current errors map one-to-one
    /// onto delay errors).
    pub fn delay_spread_sigma(&self, tech: &Technology) -> f64 {
        self.current_spread_sigma(tech)
    }

    /// Worst-case (k-σ) slow-corner delay of one cell, s.
    pub fn worst_case_delay(&self, tech: &Technology, params: &SclParams, k_sigma: f64) -> f64 {
        let slow_current = self.iss_ref * (1.0 - k_sigma * self.current_spread_sigma(tech)).max(0.1);
        params.delay(slow_current)
    }

    /// The NMOS mirror model card in use.
    pub fn mirror_model<'t>(&self, tech: &'t Technology) -> &'t MosModel {
        &tech.nmos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_shrinks_with_device_area() {
        let tech = Technology::default();
        let small = ReplicaBias::new(1e-9, 0.5e-6, 0.5e-6);
        let large = ReplicaBias::new(1e-9, 4e-6, 4e-6);
        assert!(small.current_spread_sigma(&tech) > 4.0 * large.current_spread_sigma(&tech));
    }

    #[test]
    fn drawn_currents_center_on_reference() {
        let tech = Technology::default();
        let rb = ReplicaBias::new(1e-9, 2e-6, 2e-6);
        let mut rng = MismatchRng::seed_from(42);
        let currents = rb.draw_tail_currents(&tech, &mut rng, 5000);
        let mean = currents.iter().sum::<f64>() / currents.len() as f64;
        assert!((mean / 1e-9 - 1.0).abs() < 0.02, "mean = {mean:e}");
        // Relative spread matches the analytic sigma within sampling
        // error.
        let sigma = rb.current_spread_sigma(&tech);
        let sd = {
            let var = currents
                .iter()
                .map(|c| (c / 1e-9 - mean / 1e-9).powi(2))
                .sum::<f64>()
                / (currents.len() - 1) as f64;
            var.sqrt()
        };
        assert!((sd / sigma - 1.0).abs() < 0.15, "sd {sd} vs sigma {sigma}");
    }

    #[test]
    fn paper_recommendation_large_mirrors_tighten_delay() {
        let tech = Technology::default();
        let params = SclParams::default();
        let small = ReplicaBias::new(1e-9, 0.5e-6, 0.5e-6);
        let large = ReplicaBias::new(1e-9, 4e-6, 4e-6);
        let nominal = params.delay(1e-9);
        let wc_small = small.worst_case_delay(&tech, &params, 3.0);
        let wc_large = large.worst_case_delay(&tech, &params, 3.0);
        assert!(wc_small > wc_large);
        assert!(wc_large < 1.2 * nominal, "large mirrors stay near nominal");
    }

    #[test]
    fn spread_is_bias_independent() {
        // Weak-inversion mirrors: relative spread does not depend on the
        // current level — the platform scales without re-verification.
        let tech = Technology::default();
        let lo = ReplicaBias::new(10e-12, 2e-6, 2e-6);
        let hi = ReplicaBias::new(1e-6, 2e-6, 2e-6);
        assert!((lo.current_spread_sigma(&tech) - hi.current_spread_sigma(&tech)).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_parameters_rejected() {
        let _ = ReplicaBias::new(0.0, 1e-6, 1e-6);
    }
}
