//! Transistor-level replica-bias generation (paper Fig. 2's `VBN`/`VBP`
//! rails, and §II-A's claim that "the tail bias current of such STSCL
//! circuits can be controlled very precisely using a current mirror and
//! a replica bias generator").
//!
//! [`crate::vtc::SclBufferCircuit`] uses an *ideal* tail current. This
//! module builds the real thing: a reference current into a
//! diode-connected NMOS generates `VBN`; an identical NMOS under the
//! gate's source-coupled pair mirrors it; the PMOS load gate rail `VBP`
//! comes from inverting the load device's EKV model at the target
//! swing. Because the mirror pair sees the *same* process corner and
//! temperature, the tail current — and with it the gate delay —
//! regenerates at every PVT point: the decoupling the paper builds the
//! platform on, demonstrated in circuit simulation rather than assumed.

use crate::gate::SclParams;
use ulp_device::load::PmosLoad;
use ulp_device::{Mosfet, Polarity, Technology};
use ulp_spice::dcop::{DcOperatingPoint, NewtonOptions};
use ulp_spice::{Netlist, Node, SimError, Waveform};

/// Newton options tuned for the steep subthreshold exponentials of the
/// replica leg (small damping step, generous iteration budget —
/// especially needed at cold-temperature corners where `UT` shrinks).
fn replica_newton() -> NewtonOptions {
    NewtonOptions {
        max_iter: 800,
        max_step: 0.05,
        ..NewtonOptions::default()
    }
}

/// An STSCL buffer with a transistor-level mirrored tail and replica
/// rails.
#[derive(Debug, Clone)]
pub struct ReplicaBiasedBuffer {
    /// The circuit.
    pub netlist: Netlist,
    /// Differential stimulus control node (inputs at `vcm ± ctl/2`).
    pub ctl: Node,
    /// Positive output.
    pub outp: Node,
    /// Negative output.
    pub outn: Node,
    /// The NMOS bias rail `VBN` (diode-connected reference).
    pub vbn: Node,
    /// Cell design point.
    pub params: SclParams,
    /// Programmed reference current, A.
    pub iref: f64,
}

impl ReplicaBiasedBuffer {
    /// Builds the buffer with reference current `iref` mirrored into the
    /// tail (1:1), inputs at common mode `vcm`.
    ///
    /// # Panics
    ///
    /// Panics unless `iref > 0` and `0 < vcm < params.vdd`.
    pub fn build(
        tech: &Technology,
        params: &SclParams,
        iref: f64,
        vcm: f64,
        ctl_wave: Waveform,
    ) -> Self {
        assert!(iref > 0.0, "reference current must be positive");
        assert!(
            vcm > 0.0 && vcm < params.vdd,
            "common mode must sit inside the rails"
        );
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let vbn = nl.node("vbn");
        let ctl = nl.node("ctl");
        let vcm_n = nl.node("vcm");
        let inp = nl.node("inp");
        let inn = nl.node("inn");
        let outp = nl.node("outp");
        let outn = nl.node("outn");
        let cs = nl.node("cs");
        nl.vsource("VDD", vdd, Netlist::GROUND, params.vdd);
        nl.vsource_wave("VCTL", ctl, Netlist::GROUND, ctl_wave);
        nl.vsource("VCM", vcm_n, Netlist::GROUND, vcm);
        nl.vcvs("EP", inp, vcm_n, ctl, Netlist::GROUND, 0.5);
        nl.vcvs("EN", inn, vcm_n, ctl, Netlist::GROUND, -0.5);
        // Replica leg: IREF into a diode-connected high-VT-class NMOS
        // (the paper recommends high-VT tail devices for precise
        // control; we use a long-channel device for the same effect).
        let mirror = Mosfet::new(Polarity::Nmos, 2e-6, 2e-6);
        nl.isource("IREF", vdd, vbn, iref);
        nl.mosfet("MREF", vbn, vbn, Netlist::GROUND, Netlist::GROUND, mirror);
        // Mirrored tail under the pair.
        nl.mosfet("MTAIL", cs, vbn, Netlist::GROUND, Netlist::GROUND, mirror);
        // Switching pair.
        let pair = Mosfet::new(Polarity::Nmos, 1e-6, 0.5e-6);
        nl.mosfet("M1", outn, inp, cs, Netlist::GROUND, pair);
        nl.mosfet("M2", outp, inn, cs, Netlist::GROUND, pair);
        // Replica-calibrated loads (the VBP side of the Fig. 2 replica).
        let load = PmosLoad::new(params.vsw);
        nl.scl_load("RLP", vdd, outp, load, iref);
        nl.scl_load("RLN", vdd, outn, load, iref);
        nl.capacitor("CLP", outp, Netlist::GROUND, params.cl);
        nl.capacitor("CLN", outn, Netlist::GROUND, params.cl);
        ulp_spice::lint::debug_assert_clean(&nl, tech);
        ReplicaBiasedBuffer {
            netlist: nl,
            ctl,
            outp,
            outn,
            vbn,
            params: *params,
            iref,
        }
    }

    /// Measured tail current (through the VDD source minus the replica
    /// leg), A.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn tail_current(&self, tech: &Technology) -> Result<f64, SimError> {
        let op = ulp_spice::telemetry::phase("stscl::replica::tail_current", || {
            DcOperatingPoint::solve_with(&self.netlist, tech, &replica_newton())
        })?;
        // Total supply draw = IREF (replica leg) + tail (through loads).
        let idd = -op.branch_current(&self.netlist, "VDD")?;
        Ok(idd - self.iref)
    }

    /// Differential output when fully steered, V (swing measurement
    /// through the mirrored tail).
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn steered_swing(&self, tech: &Technology) -> Result<f64, SimError> {
        let mut nl = self.netlist.clone();
        nl.set_source("VCTL", 0.4)?;
        let op = ulp_spice::telemetry::phase("stscl::replica::steered_swing", || {
            DcOperatingPoint::solve_with(&nl, tech, &replica_newton())
        })?;
        Ok(op.voltage(self.outp) - op.voltage(self.outn))
    }

    /// The bias rail voltage `VBN`, V.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn bias_rail(&self, tech: &Technology) -> Result<f64, SimError> {
        Ok(DcOperatingPoint::solve_with(&self.netlist, tech, &replica_newton())?.voltage(self.vbn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulp_device::pvt::Corner;

    fn build(tech: &Technology, iref: f64) -> ReplicaBiasedBuffer {
        ReplicaBiasedBuffer::build(tech, &SclParams::default(), iref, 0.6, Waveform::Dc(0.0))
    }

    #[test]
    fn built_netlist_is_erc_clean_across_reference_currents() {
        let tech = Technology::default();
        for iref in [10e-12, 1e-9, 10e-9] {
            let buf = build(&tech, iref);
            let report = ulp_spice::erc::check(&buf.netlist);
            assert!(report.is_clean(), "iref = {iref}:\n{report}");
        }
    }

    #[test]
    fn mirror_delivers_the_reference_current() {
        let tech = Technology::default();
        for iref in [100e-12, 1e-9, 10e-9] {
            let buf = build(&tech, iref);
            let tail = buf.tail_current(&tech).unwrap();
            assert!(
                (tail / iref - 1.0).abs() < 0.1,
                "iref {iref:e}: tail {tail:e}"
            );
        }
    }

    #[test]
    fn swing_develops_through_real_tail() {
        let tech = Technology::default();
        let buf = build(&tech, 1e-9);
        let swing = buf.steered_swing(&tech).unwrap().abs();
        assert!((swing - 0.2).abs() < 0.05, "swing = {swing}");
    }

    #[test]
    fn tail_current_regenerates_at_every_corner() {
        // The platform claim, at transistor level: process corners move
        // VBN (the devices changed) but not the mirrored current (both
        // mirror devices moved together).
        let nominal = Technology::default();
        let buf = build(&nominal, 1e-9);
        let mut rails = Vec::new();
        for corner in Corner::all() {
            let t = nominal.at_corner(corner);
            let tail = buf.tail_current(&t).unwrap();
            assert!(
                (tail / 1e-9 - 1.0).abs() < 0.1,
                "{corner}: tail = {tail:e}"
            );
            rails.push(buf.bias_rail(&t).unwrap());
        }
        // …while the rail itself moves by tens of millivolts.
        let spread = rails.iter().cloned().fold(f64::MIN, f64::max)
            - rails.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 0.02, "VBN must absorb the corner shift: {spread}");
    }

    #[test]
    fn tail_current_regenerates_over_temperature() {
        let nominal = Technology::default();
        let buf = build(&nominal, 1e-9);
        for t_k in [250.0, 300.0, 360.0] {
            let t = nominal.at_temperature(t_k);
            let tail = buf.tail_current(&t).unwrap();
            assert!(
                (tail / 1e-9 - 1.0).abs() < 0.1,
                "{t_k} K: tail = {tail:e}"
            );
        }
    }

    #[test]
    fn supply_variation_barely_moves_the_tail() {
        // VDD 1.0 → 1.25 V: the mirror's output conductance is the only
        // coupling; a few percent at most.
        let tech = Technology::default();
        let p10 = SclParams::new(0.2, 10e-15, 1.0);
        let p125 = SclParams::new(0.2, 10e-15, 1.25);
        let b10 = ReplicaBiasedBuffer::build(&tech, &p10, 1e-9, 0.6, Waveform::Dc(0.0));
        let b125 = ReplicaBiasedBuffer::build(&tech, &p125, 1e-9, 0.6, Waveform::Dc(0.0));
        let t10 = b10.tail_current(&tech).unwrap();
        let t125 = b125.tail_current(&tech).unwrap();
        assert!((t125 / t10 - 1.0).abs() < 0.05, "{t10:e} vs {t125:e}");
    }

    #[test]
    #[should_panic(expected = "reference current")]
    fn zero_reference_rejected() {
        let tech = Technology::default();
        let _ = ReplicaBiasedBuffer::build(
            &tech,
            &SclParams::default(),
            0.0,
            0.6,
            Waveform::Dc(0.0),
        );
    }
}
