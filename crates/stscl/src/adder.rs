//! The pipelined STSCL ripple adder (paper §III-B technique source,
//! ref \[13\]: "ultra low power 32-bit pipelined adder using subthreshold
//! source-coupled logic with 5 fJ/stage PDP").
//!
//! Each full-adder stage is exactly two compound cells — a three-level
//! [`CellKind::Xor3`] for the sum and a [`CellKind::Maj3`] for the
//! carry — so an `n`-bit adder costs `2n` tail currents. Unpipelined,
//! the carry ripple makes the logic depth `n`; with the Fig. 8 merged
//! latches the depth collapses to 1 and the adder becomes a systolic
//! (wave) pipeline: operand bit `k` must be presented `k` cycles after
//! bit 0 and sum bit `k` emerges with the matching skew. The
//! [`PipelinedAdder`] wrapper hides the skewing behind a word-at-a-time
//! streaming interface.

use crate::cells::CellKind;
use crate::gate::SclParams;
use crate::netlist::{GateNetlist, NetId, NetlistError};
use crate::sim::{evaluate, ClockedSim};

/// A structural ripple adder.
///
/// # Example
///
/// ```
/// use ulp_stscl::adder::RippleAdder;
///
/// let adder = RippleAdder::build(8, false);
/// let (sum, carry) = adder.add(200, 100, false);
/// assert_eq!(sum, 44);         // (200 + 100) mod 256
/// assert!(carry);
/// // Two compound cells per bit — the ref \[13\] economy.
/// assert_eq!(adder.netlist().gate_count(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct RippleAdder {
    netlist: GateNetlist,
    /// Cached unlatched view for combinational evaluation.
    comb: GateNetlist,
    width: usize,
    a: Vec<NetId>,
    b: Vec<NetId>,
    cin: NetId,
    sum: Vec<NetId>,
    cout: NetId,
}

impl RippleAdder {
    /// Builds an `width`-bit adder; `pipelined` merges a latch into
    /// every cell (ref \[13\] style).
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or on an internal netlist inconsistency.
    pub fn build(width: usize, pipelined: bool) -> Self {
        assert!(width > 0, "adder width must be positive");
        Self::try_build(width, pipelined).expect("adder construction is internally consistent")
    }

    fn try_build(width: usize, pipelined: bool) -> Result<Self, NetlistError> {
        let mut nl = GateNetlist::new();
        let a: Vec<NetId> = (0..width).map(|k| nl.input(&format!("a{k}"))).collect();
        let b: Vec<NetId> = (0..width).map(|k| nl.input(&format!("b{k}"))).collect();
        let cin = nl.input("cin");
        let mut carry = cin;
        let mut sum = Vec::with_capacity(width);
        for k in 0..width {
            let s = if pipelined {
                nl.latched_gate(CellKind::Xor3, &[a[k], b[k], carry], &format!("s{k}"))?
            } else {
                nl.gate(CellKind::Xor3, &[a[k], b[k], carry], &format!("s{k}"))?
            };
            let c = if pipelined {
                nl.latched_gate(CellKind::Maj3, &[a[k], b[k], carry], &format!("c{k}"))?
            } else {
                nl.gate(CellKind::Maj3, &[a[k], b[k], carry], &format!("c{k}"))?
            };
            sum.push(s);
            carry = c;
        }
        for &s in &sum {
            nl.output(s);
        }
        nl.output(carry);
        let comb = crate::pipeline::unpipeline(&nl);
        Ok(RippleAdder {
            netlist: nl,
            comb,
            width,
            a,
            b,
            cin,
            sum,
            cout: carry,
        })
    }

    /// Word width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Operand-A input nets, LSB-first.
    pub fn a_inputs(&self) -> &[NetId] {
        &self.a
    }

    /// Operand-B input nets, LSB-first.
    pub fn b_inputs(&self) -> &[NetId] {
        &self.b
    }

    /// Carry-in net.
    pub fn carry_in(&self) -> NetId {
        self.cin
    }

    /// Sum output nets, LSB-first.
    pub fn sum_outputs(&self) -> &[NetId] {
        &self.sum
    }

    /// Carry-out net.
    pub fn carry_out(&self) -> NetId {
        self.cout
    }

    /// The gate netlist (2 cells per bit).
    pub fn netlist(&self) -> &GateNetlist {
        &self.netlist
    }

    /// Combinational evaluation: `a + b + cin`, returning
    /// `(sum, carry_out)`. Works on both variants (latches are evaluated
    /// transparently through the unpipelined view).
    ///
    /// # Panics
    ///
    /// Panics if the operands exceed the adder width.
    pub fn add(&self, a: u64, b: u64, cin: bool) -> (u64, bool) {
        assert!(
            self.width == 64 || (a < (1u64 << self.width) && b < (1u64 << self.width)),
            "operands exceed adder width"
        );
        let mut pi = Vec::with_capacity(2 * self.width + 1);
        for k in 0..self.width {
            pi.push((a >> k) & 1 == 1);
        }
        for k in 0..self.width {
            pi.push((b >> k) & 1 == 1);
        }
        pi.push(cin);
        let v = evaluate(&self.comb, &pi, &[]).expect("adder netlist is acyclic");
        let mut s = 0u64;
        for (k, &net) in self.sum.iter().enumerate() {
            s |= (v.get(net) as u64) << k;
        }
        (s, v.get(self.cout))
    }

    /// Energy per addition at operating frequency `fop` and depth-aware
    /// bias sizing, J — and the ref \[13\] headline: the PDP *per stage*
    /// (per bit position, 2 cells).
    ///
    /// # Panics
    ///
    /// Panics if `fop <= 0`.
    pub fn energy_per_op(&self, params: &SclParams, fop: f64) -> AdderEnergy {
        assert!(fop > 0.0, "operating frequency must be positive");
        let depth = self
            .netlist
            .logic_depth()
            .expect("adder netlist is acyclic")
            .max(1);
        let iss = params.iss_for_frequency(fop, depth);
        let power = self.netlist.gate_count() as f64 * params.gate_power(iss);
        let energy = power / fop;
        AdderEnergy {
            power,
            energy_per_op: energy,
            pdp_per_stage: energy / self.width as f64,
            logic_depth: depth,
        }
    }
}

/// Energy report for one adder operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdderEnergy {
    /// Total adder power, W.
    pub power: f64,
    /// Energy per addition, J.
    pub energy_per_op: f64,
    /// Energy per bit-stage per addition, J (ref \[13\] reports 5 fJ).
    pub pdp_per_stage: f64,
    /// Depth used for bias sizing.
    pub logic_depth: usize,
}

/// Streaming interface to the pipelined adder: feeds whole words and
/// applies the systolic input/output skew internally.
#[derive(Debug, Clone)]
pub struct PipelinedAdder {
    adder: RippleAdder,
}

impl PipelinedAdder {
    /// Builds an `width`-bit fully pipelined adder.
    ///
    /// # Panics
    ///
    /// As for [`RippleAdder::build`].
    pub fn build(width: usize) -> Self {
        PipelinedAdder {
            adder: RippleAdder::build(width, true),
        }
    }

    /// The underlying structure.
    pub fn adder(&self) -> &RippleAdder {
        &self.adder
    }

    /// Pipeline latency for a full word, cycles.
    pub fn latency(&self) -> usize {
        // Bit k's sum is correct k+1 cycles after bit 0 enters; the
        // word-skewed drive below needs width cycles of fill plus one.
        self.adder.width + 1
    }

    /// Streams a sequence of `(a, b)` word pairs through the pipeline
    /// cycle by cycle (with input skewing) and returns the sums in
    /// order.
    ///
    /// This exercises the *latched* netlist — the real Fig. 8 pipeline —
    /// rather than the combinational view.
    ///
    /// # Panics
    ///
    /// Panics if any operand exceeds the width.
    pub fn stream(&self, pairs: &[(u64, u64)]) -> Vec<u64> {
        let w = self.adder.width;
        let nl = &self.adder.netlist;
        let mut sim = ClockedSim::new(nl);
        let total = pairs.len() + self.latency();
        let mut sums = vec![0u64; pairs.len()];
        for cycle in 0..total {
            // Input skew: bit k of pair j is presented at cycle j + k.
            let mut pi = vec![false; 2 * w + 1];
            for k in 0..w {
                if let Some(j) = cycle.checked_sub(k) {
                    if let Some(&(a, b)) = pairs.get(j) {
                        pi[k] = (a >> k) & 1 == 1;
                        pi[w + k] = (b >> k) & 1 == 1;
                    }
                }
            }
            let settled = sim.step(&pi).expect("adder netlist is acyclic");
            // Output skew: sum bit k of pair j is valid at cycle
            // j + k + 1 (one latch after its inputs).
            for k in 0..w {
                if let Some(j) = cycle.checked_sub(k + 1) {
                    if j < sums.len() {
                        // The value pinned *before* this cycle's edge is
                        // the latched output from the previous cycle, so
                        // read after stepping: latched outputs hold the
                        // value captured at the end of cycle j+k.
                        sums[j] |= (settled.get(self.adder.sum[k]) as u64) << k;
                    }
                }
            }
        }
        // Mask to width (bits above are never set).
        sums
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_bit_exhaustive() {
        let adder = RippleAdder::build(4, false);
        for a in 0..16u64 {
            for b in 0..16u64 {
                for cin in [false, true] {
                    let (s, co) = adder.add(a, b, cin);
                    let full = a + b + cin as u64;
                    assert_eq!(s, full & 0xF, "{a}+{b}+{cin}");
                    assert_eq!(co, full > 0xF, "{a}+{b}+{cin} carry");
                }
            }
        }
    }

    #[test]
    fn thirty_two_bit_spot_checks() {
        let adder = RippleAdder::build(32, false);
        let cases = [
            (0u64, 0u64),
            (1, u32::MAX as u64),
            (0xDEAD_BEEF, 0x1234_5678),
            (u32::MAX as u64, u32::MAX as u64),
            (0x8000_0000, 0x8000_0000),
        ];
        for (a, b) in cases {
            let (s, co) = adder.add(a, b, false);
            let full = a + b;
            assert_eq!(s, full & 0xFFFF_FFFF, "{a:x}+{b:x}");
            assert_eq!(co, full > 0xFFFF_FFFF, "{a:x}+{b:x} carry");
        }
    }

    #[test]
    fn costs_two_cells_per_bit() {
        let adder = RippleAdder::build(32, true);
        assert_eq!(adder.netlist().gate_count(), 64);
        assert_eq!(adder.width(), 32);
        // Flattened: XOR3→2 + MAJ3→5 per bit.
        assert_eq!(adder.netlist().flattened_gate_count(), 32 * 7);
    }

    #[test]
    fn pipelining_collapses_depth_32_to_1() {
        let plain = RippleAdder::build(32, false);
        let piped = RippleAdder::build(32, true);
        assert_eq!(plain.netlist().logic_depth().unwrap(), 32);
        assert_eq!(piped.netlist().logic_depth().unwrap(), 1);
    }

    #[test]
    fn ref13_pdp_class() {
        // Ref [13]: 5 fJ/stage. Our cell calibration gives
        // 2·PDP_cell-class numbers per stage — same femtojoule decade.
        let adder = RippleAdder::build(32, true);
        let params = SclParams::default();
        let e = adder.energy_per_op(&params, 1e5);
        assert_eq!(e.logic_depth, 1);
        assert!(
            e.pdp_per_stage > 0.5e-15 && e.pdp_per_stage < 20e-15,
            "PDP/stage = {:.2e} J",
            e.pdp_per_stage
        );
        // Pipelining gain: the unpipelined adder pays 32× more energy
        // per op at iso-frequency.
        let plain = RippleAdder::build(32, false);
        let e0 = plain.energy_per_op(&params, 1e5);
        assert!((e0.energy_per_op / e.energy_per_op - 32.0).abs() < 1e-9);
    }

    #[test]
    fn streaming_pipeline_matches_arithmetic() {
        let adder = PipelinedAdder::build(8);
        let pairs: Vec<(u64, u64)> = vec![
            (1, 2),
            (250, 10),
            (128, 128),
            (0, 0),
            (255, 255),
            (77, 33),
        ];
        let sums = adder.stream(&pairs);
        for ((a, b), s) in pairs.iter().zip(&sums) {
            assert_eq!(*s, (a + b) & 0xFF, "{a}+{b} -> {s}");
        }
    }

    #[test]
    fn streaming_throughput_one_word_per_cycle() {
        // 40 back-to-back words through a 16-bit pipeline: every result
        // lands despite the single-gate stage delay.
        let adder = PipelinedAdder::build(16);
        let pairs: Vec<(u64, u64)> = (0..40u64).map(|k| (k * 997 % 65536, k * 131 % 65536)).collect();
        let sums = adder.stream(&pairs);
        for ((a, b), s) in pairs.iter().zip(&sums) {
            assert_eq!(*s, (a + b) & 0xFFFF);
        }
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        let _ = RippleAdder::build(0, false);
    }
}
