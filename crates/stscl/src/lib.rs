//! Subthreshold source-coupled logic (STSCL) — the digital half of the
//! paper's mixed-signal platform.
//!
//! An STSCL cell (paper Fig. 2) is an NMOS differential switching
//! network steered by a replica-controlled tail current `ISS`, loaded by
//! bulk-drain-shorted PMOS resistances that convert the current back to
//! a differential voltage of swing `VSW`. Its defining properties, all
//! modelled here:
//!
//! * **Delay** `t_d = ln2·VSW·CL/ISS` — set *only* by the tail current;
//! * **Power** `P = ISS·VDD` per cell, constant and activity-independent;
//!   for a critical path of `NL` cells clocked at `f_op` this gives the
//!   paper's Eq. (1): `P = 2·ln2·VSW·CL·NL·f_op·VDD`;
//! * **Supply independence**: gain `A = VSW/(n·UT)` and noise margins do
//!   not involve `VDD` at all;
//! * **Stacking**: up to three differential levels implement compound
//!   gates (e.g. the Fig. 8 majority cell) for one cell's power;
//! * **Pipelining**: output latches cut `NL` to ~1 (paper §III-B).
//!
//! Modules: [`gate`] (cell physics), [`cells`] (differential cell
//! library), [`netlist`] (gate graphs + depth analysis), [`sim`]
//! (functional + timing simulation), [`pipeline`] (latch insertion),
//! [`power`] (Eq. 1 roll-ups), [`bias`] (replica-bias distribution),
//! [`vtc`] (transistor-level export to [`ulp_spice`] for verification).
//!
//! # Example
//!
//! ```
//! use ulp_stscl::gate::SclParams;
//!
//! let p = SclParams::default(); // VSW = 200 mV, CL = 10 fF, VDD = 1 V
//! // One decade of tail current buys exactly one decade of speed…
//! let f1 = p.fmax(1e-9, 1);
//! let f2 = p.fmax(10e-9, 1);
//! assert!((f2 / f1 - 10.0).abs() < 1e-9);
//! // …at exactly one decade of power (Eq. 1).
//! assert!((p.gate_power(10e-9) / p.gate_power(1e-9) - 10.0).abs() < 1e-9);
//! ```

pub mod adder;
pub mod bias;
pub mod cells;
pub mod gate;
pub mod netlist;
pub mod pipeline;
pub mod power;
pub mod replica;
pub mod sim;
pub mod vtc;

pub use cells::CellKind;
pub use gate::SclParams;
pub use netlist::{GateId, GateNetlist, NetId};
