//! Property-based tests of the STSCL digital library.

use proptest::prelude::*;
use ulp_stscl::adder::RippleAdder;
use ulp_stscl::cells::ALL_CELLS;
use ulp_stscl::pipeline::{pipeline_fully, pipeline_gain, unpipeline};
use ulp_stscl::sim::{evaluate, max_frequency, propagation_delay};
use ulp_stscl::{CellKind, GateNetlist, SclParams};

fn random_chain(kinds: &[usize]) -> GateNetlist {
    // A chain of 1-input-compatible cells fed by constants on extra
    // pins.
    let mut nl = GateNetlist::new();
    let a = nl.input("a");
    let b = nl.input("b");
    let mut prev = a;
    for (k, &ki) in kinds.iter().enumerate() {
        let kind = ALL_CELLS[ki % ALL_CELLS.len()];
        if kind == CellKind::Latch {
            continue; // keep the chain combinational
        }
        let ins: Vec<_> = match kind.arity() {
            1 => vec![prev],
            2 => vec![prev, b],
            _ => vec![prev, b, a],
        };
        prev = nl.gate(kind, &ins, &format!("n{k}")).expect("fresh net");
    }
    nl.output(prev);
    nl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Depth of any combinational chain equals its gate count; full
    /// pipelining always collapses it to 1 (or 0 when empty).
    #[test]
    fn pipelining_always_collapses_depth(kinds in prop::collection::vec(0usize..14, 1..30)) {
        let nl = random_chain(&kinds);
        let depth = nl.logic_depth().expect("acyclic");
        prop_assert_eq!(depth, nl.gate_count());
        let piped = pipeline_fully(&nl);
        prop_assert!(piped.logic_depth().expect("acyclic") <= 1);
        let back = unpipeline(&piped);
        prop_assert_eq!(back.logic_depth().expect("acyclic"), depth);
    }

    /// Eq. 1: the pipelining power saving of a chain equals its depth,
    /// for any operating frequency.
    #[test]
    fn pipeline_saving_equals_depth(
        n in 1usize..40, f_exp in 1.0f64..6.0
    ) {
        let mut nl = GateNetlist::new();
        let mut prev = nl.input("in");
        for k in 0..n {
            prev = nl.gate(CellKind::Buf, &[prev], &format!("n{k}")).expect("fresh");
        }
        nl.output(prev);
        let g = pipeline_gain(&nl, &SclParams::default(), 10f64.powf(f_exp)).expect("acyclic");
        prop_assert!((g.saving - n as f64).abs() < 1e-9);
    }

    /// Event-driven settle time of a buffer chain is exactly
    /// depth × t_d when the input flips.
    #[test]
    fn event_sim_matches_analytic_delay(
        n in 1usize..20, iss_exp in -11.0f64..-8.0
    ) {
        let mut nl = GateNetlist::new();
        let mut prev = nl.input("in");
        for k in 0..n {
            prev = nl.gate(CellKind::Buf, &[prev], &format!("n{k}")).expect("fresh");
        }
        nl.output(prev);
        let p = SclParams::default();
        let iss = 10f64.powf(iss_exp);
        let rep = propagation_delay(&nl, &p, iss, &[false], &[true]).expect("acyclic");
        let expect = n as f64 * p.delay(iss);
        prop_assert!((rep.settle_time / expect - 1.0).abs() < 1e-9);
        // And fmax is consistent with the same depth.
        let f = max_frequency(&nl, &p, iss).expect("acyclic");
        prop_assert!((f * 2.0 * rep.settle_time - 1.0).abs() < 1e-9);
    }

    /// Every cell's eval agrees with its flattened 2-input equivalent
    /// on all input vectors (spot: MAJ3 = ab + bc + ca, XOR3, AO21).
    #[test]
    fn compound_cells_match_flat_logic(bits in 0u8..8) {
        let a = bits & 1 == 1;
        let b = bits & 2 == 2;
        let c = bits & 4 == 4;
        // The canonical sum-of-products form of the majority function —
        // clippy's minimised form `b && (a || c) || (a && c)` obscures
        // the symmetry this test documents.
        #[allow(clippy::nonminimal_bool)]
        let maj_flat = (a && b) || (b && c) || (a && c);
        prop_assert_eq!(CellKind::Maj3.eval(&[a, b, c]), maj_flat);
        prop_assert_eq!(CellKind::Xor3.eval(&[a, b, c]), a ^ b ^ c);
        prop_assert_eq!(CellKind::AndOr21.eval(&[a, b, c]), (a && b) || c);
        prop_assert_eq!(CellKind::Mux2.eval(&[a, b, c]), if a { b } else { c });
    }

    /// The adder is correct for arbitrary operands at several widths.
    #[test]
    fn adder_correct_for_random_operands(a in any::<u32>(), b in any::<u32>(), cin in any::<bool>()) {
        let adder = RippleAdder::build(32, false);
        let (s, co) = adder.add(a as u64, b as u64, cin);
        let full = a as u64 + b as u64 + cin as u64;
        prop_assert_eq!(s, full & 0xFFFF_FFFF);
        prop_assert_eq!(co, full > 0xFFFF_FFFF);
    }

    /// Evaluate is deterministic and pure: same inputs, same outputs,
    /// arbitrary random two-level network.
    #[test]
    fn evaluate_is_pure(
        kinds in prop::collection::vec(0usize..14, 1..15),
        a in any::<bool>(), b in any::<bool>()
    ) {
        let nl = random_chain(&kinds);
        let v1 = evaluate(&nl, &[a, b], &[]).expect("acyclic");
        let v2 = evaluate(&nl, &[a, b], &[]).expect("acyclic");
        for out in nl.outputs() {
            prop_assert_eq!(v1.get(*out), v2.get(*out));
        }
    }

    /// min_vdd and fmax are consistent: any point reported operable can
    /// actually be biased for some positive frequency.
    #[test]
    fn operable_points_have_positive_speed(
        vdd in 0.3f64..1.3, iss_exp in -12.0f64..-7.0
    ) {
        let tech = ulp_device::Technology::default();
        let p = SclParams::new(0.2, 10e-15, vdd);
        let iss = 10f64.powf(iss_exp);
        if p.operates_at(&tech, vdd, iss) {
            prop_assert!(p.fmax(iss, 1) > 0.0);
            prop_assert!(p.noise_margin(&tech) > 0.0);
        }
    }
}
