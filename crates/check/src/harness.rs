//! The `ulp-exec` pool model: a scaled-down campaign (2–3 workers,
//! 4–8 trials) run through the **shipped** scheduling code —
//! [`ulp_exec::pool::deal`], [`ulp_exec::pool::worker_loop`],
//! [`WorkDeque`], [`CancelToken`] — instantiated with the [`Virtual`]
//! provider, under every schedule the explorer generates.
//!
//! The invariant checked on each schedule is the engine's determinism
//! contract: every trial gathered exactly once, every gathered value
//! bit-identical to the serial reference, cancellation leaving either a
//! complete value or a clean `Cancelled` marker — never a hole.
//!
//! [`Fault`] injects the defects the toolkit exists to catch, each a
//! realistic regression of the real engine, so the test suite can
//! assert the explorer/auditor actually fires:
//!
//! * [`Fault::RacyDeque`] — the deque's mutex "optimized away"
//!   ([`RaceCell`] instead of a lock) → `race`;
//! * [`Fault::CompletionOrderFold`] — telemetry folded in completion
//!   order instead of index order → `non-deterministic-fold`;
//! * [`Fault::DroppedCancelResult`] — a late cancellation check that
//!   drops an already-computed result record → `lost-cancel`.

use std::collections::VecDeque;

use rand::rngs::SplitMix64;
use rand::{RngCore, SeedableRng};

use ulp_exec::deque::WorkDeque;
use ulp_exec::pool;
use ulp_exec::sync::{SyncCounter, SyncMutex, SyncProvider};
use ulp_exec::CancelToken;
use ulp_spice::lint::rule;

use crate::report::Finding;
use crate::sync::{RaceCell, Virtual};
use crate::Scenario;

type VMutex<T> = <Virtual as SyncProvider>::Mutex<T>;
type VAtomicUsize = <Virtual as SyncProvider>::AtomicUsize;

/// A deliberately broken variant of the pool, or none.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The shipped, healthy pool.
    None,
    /// Deques stripped of their lock: raw shared `VecDeque`s.
    RacyDeque,
    /// Telemetry folded in completion order.
    CompletionOrderFold,
    /// A result record dropped when cancellation lands mid-trial.
    DroppedCancelResult,
}

/// One trial's gathered outcome in the model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trial {
    /// The trial's deterministic value (the serial reference is
    /// recomputable from seed and index alone).
    Value(u64),
    /// Skipped after cancellation — a legitimate, complete outcome.
    Cancelled,
}

/// The scaled-down campaign scenario.
#[derive(Debug, Clone)]
pub struct PoolModel {
    /// Worker thread count (2–3 keeps exhaustive exploration tractable).
    pub workers: usize,
    /// Trial count (4–8).
    pub trials: usize,
    /// Root seed for the per-trial reference values.
    pub seed: u64,
    /// Which defect to inject, if any.
    pub fault: Fault,
    /// Adds a canceller thread that raises the [`CancelToken`] at
    /// whatever point the schedule places it.
    pub cancel: bool,
}

impl PoolModel {
    /// The healthy pool, no cancellation.
    pub fn healthy(workers: usize, trials: usize, seed: u64) -> Self {
        PoolModel {
            workers,
            trials,
            seed,
            fault: Fault::None,
            cancel: false,
        }
    }

    /// The healthy pool with a schedule-placed cancellation.
    pub fn cancelling(workers: usize, trials: usize, seed: u64) -> Self {
        PoolModel {
            cancel: true,
            ..PoolModel::healthy(workers, trials, seed)
        }
    }

    /// Injects `fault` into this model.
    pub fn with_fault(mut self, fault: Fault) -> Self {
        self.fault = fault;
        if fault == Fault::DroppedCancelResult {
            self.cancel = true; // the defect only fires under cancellation
        }
        self
    }

    /// The serial reference value of `trial` — same derivation the real
    /// engine uses (`SplitMix64::derive_stream(trial)`).
    pub fn reference(&self, trial: usize) -> u64 {
        SplitMix64::seed_from_u64(self.seed)
            .derive_stream(trial as u64)
            .next_u64()
    }

    fn run_one(&self, trial: usize, state: &PoolState) -> Option<Trial> {
        match self.fault {
            Fault::DroppedCancelResult => {
                // BUG under test: compute first, check cancellation last,
                // and drop the whole record when it fires — the gather
                // ends up with a hole instead of a Cancelled marker.
                let v = self.reference(trial);
                state.progress.fetch_add_acq_rel(1);
                if state.cancel.is_cancelled() {
                    None
                } else {
                    Some(Trial::Value(v))
                }
            }
            _ => {
                if state.cancel.is_cancelled() {
                    return Some(Trial::Cancelled);
                }
                let v = self.reference(trial);
                state.progress.fetch_add_acq_rel(1);
                if self.fault == Fault::CompletionOrderFold {
                    state.log.with(|l| l.push(trial));
                }
                Some(Trial::Value(v))
            }
        }
    }

    /// The `RacyDeque` drain loop: same pop-own-then-steal shape as
    /// [`pool::worker_loop`], but over lockless cells.
    fn racy_loop(&self, w: usize, state: &PoolState) -> Vec<(usize, Option<Trial>)> {
        let n = state.racy.len();
        let mut out = Vec::new();
        loop {
            let next = state.racy[w].with_write(|q| q.pop_back()).or_else(|| {
                (1..n).find_map(|k| state.racy[(w + k) % n].with_write(|q| q.pop_front()))
            });
            match next {
                Some(trial) => out.push((trial, self.run_one(trial, state))),
                None => return out,
            }
        }
    }

    /// Order-sensitive fold a broken implementation might compute from
    /// a completion log.
    fn order_hash(log: &[usize]) -> u64 {
        log.iter()
            .fold(0u64, |h, &t| h.wrapping_mul(31).wrapping_add(t as u64 + 1))
    }
}

/// Shared state of one modelled campaign.
pub struct PoolState {
    deques: Vec<WorkDeque<usize, Virtual>>,
    racy: Vec<RaceCell<VecDeque<usize>>>,
    cancel: CancelToken<Virtual>,
    progress: VAtomicUsize,
    batches: Vec<VMutex<Vec<(usize, Trial)>>>,
    log: VMutex<Vec<usize>>,
}

impl Scenario for PoolModel {
    type State = PoolState;

    fn threads(&self) -> usize {
        self.workers + usize::from(self.cancel)
    }

    fn setup(&self) -> PoolState {
        let deques = if self.fault == Fault::RacyDeque {
            Vec::new()
        } else {
            pool::deal::<Virtual>(self.trials, self.workers)
        };
        let racy = if self.fault == Fault::RacyDeque {
            // Same round-robin deal as `pool::deal`, minus the lock.
            let cells: Vec<RaceCell<VecDeque<usize>>> = (0..self.workers)
                .map(|w| RaceCell::new(&format!("deque-{w}"), VecDeque::new()))
                .collect();
            for trial in 0..self.trials {
                cells[trial % self.workers].with_write(|q| q.push_back(trial));
            }
            cells
        } else {
            Vec::new()
        };
        PoolState {
            deques,
            racy,
            cancel: CancelToken::new(),
            progress: VAtomicUsize::new(0),
            batches: (0..self.workers).map(|_| VMutex::new(Vec::new())).collect(),
            log: VMutex::new(Vec::new()),
        }
    }

    fn worker(&self, tid: usize, state: &PoolState) {
        if self.cancel && tid == self.workers {
            // The canceller: one release-store, placed anywhere in the
            // campaign by the schedule explorer.
            state.cancel.cancel();
            return;
        }
        let batch = if self.fault == Fault::RacyDeque {
            self.racy_loop(tid, state)
        } else {
            pool::worker_loop(tid, &state.deques, &|trial, _w| self.run_one(trial, state))
        };
        // The engine gathers per-worker batches; dropped records
        // (`None` from the faulty run_one) vanish here, exactly like a
        // result slot never written.
        let keep: Vec<(usize, Trial)> = batch
            .into_iter()
            .filter_map(|(t, r)| r.map(|v| (t, v)))
            .collect();
        state.batches[tid].with(|b| *b = keep.clone());
    }

    fn check(&self, state: &PoolState) -> Vec<Finding> {
        let mut findings = Vec::new();
        // Reassemble by trial index, as Ensemble::run does.
        let mut slots: Vec<Option<Trial>> = vec![None; self.trials];
        for w in 0..self.workers {
            for (trial, out) in state.batches[w].with(|b| b.clone()) {
                if slots[trial].is_some() {
                    findings.push(
                        Finding::new(
                            rule::RACE,
                            format!("slot {trial}"),
                            format!("trial {trial} was gathered twice — the deque double-issued it"),
                        )
                        .with_threads([self.thread_name(w)]),
                    );
                }
                slots[trial] = Some(out);
            }
        }
        for (trial, slot) in slots.iter().enumerate() {
            match slot {
                None => findings.push(Finding::new(
                    rule::LOST_CANCEL,
                    format!("slot {trial}"),
                    format!(
                        "trial {trial} produced no result record — cancellation must yield \
                         TrialError::Cancelled, never a hole in the gather"
                    ),
                )),
                Some(Trial::Value(v)) if *v != self.reference(trial) => {
                    findings.push(Finding::new(
                        rule::NON_DETERMINISTIC_FOLD,
                        format!("slot {trial}"),
                        format!("trial {trial} gathered a value differing from the serial reference"),
                    ))
                }
                Some(Trial::Cancelled) if !self.cancel => findings.push(Finding::new(
                    rule::LOST_CANCEL,
                    format!("slot {trial}"),
                    format!("trial {trial} reported Cancelled but no cancellation was requested"),
                )),
                _ => {}
            }
        }
        if self.fault == Fault::CompletionOrderFold {
            // The broken fold consumes the completion log as-is; the
            // reference folds trial order. Any schedule where they
            // differ leaks scheduling into an output.
            let folded = state.log.with(|l| PoolModel::order_hash(l));
            let serial: Vec<usize> = (0..self.trials).collect();
            if folded != PoolModel::order_hash(&serial) {
                findings.push(Finding::new(
                    rule::NON_DETERMINISTIC_FOLD,
                    "telemetry fold",
                    "fold over completion order differs from the serial-order reference \
                     — outputs must fold in trial/worker index order",
                ));
            }
        }
        findings
    }

    fn thread_name(&self, tid: usize) -> String {
        if self.cancel && tid == self.workers {
            "canceller".to_string()
        } else {
            format!("worker-{tid}")
        }
    }
}
