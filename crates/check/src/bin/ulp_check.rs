//! `ulp-check` CLI: explore the `ulp-exec` pool model and emit SARIF.
//!
//! ```text
//! ulp_check [--workers N] [--trials N] [--bound B]
//!           [--walk N --seed S]            # random walk instead of exhaustive DFS
//!           [--fault none|race|fold|cancel] [--cancel]
//!           [--sarif PATH] [--expect-findings]
//! ```
//!
//! Exit status: 0 when the outcome matches expectation (clean by
//! default, defective with `--expect-findings`), 1 on mismatch, 2 on
//! usage errors.

use std::process::ExitCode;

use ulp_check::{explore, Config, Fault, PoolModel, Scenario};

struct Args {
    workers: usize,
    trials: usize,
    bound: usize,
    walk: usize,
    seed: u64,
    fault: Fault,
    cancel: bool,
    sarif: Option<String>,
    expect_findings: bool,
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("ulp_check: {msg}");
    eprintln!(
        "usage: ulp_check [--workers N] [--trials N] [--bound B] [--walk N] [--seed S] \
         [--fault none|race|fold|cancel] [--cancel] [--sarif PATH] [--expect-findings]"
    );
    ExitCode::from(2)
}

fn parse() -> Result<Args, String> {
    let mut args = Args {
        workers: 2,
        trials: 4,
        bound: 2,
        walk: 0,
        seed: 0xC0FFEE,
        fault: Fault::None,
        cancel: false,
        sarif: None,
        expect_findings: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--workers" => args.workers = value("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?,
            "--trials" => args.trials = value("--trials")?.parse().map_err(|e| format!("--trials: {e}"))?,
            "--bound" => args.bound = value("--bound")?.parse().map_err(|e| format!("--bound: {e}"))?,
            "--walk" => args.walk = value("--walk")?.parse().map_err(|e| format!("--walk: {e}"))?,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--fault" => {
                args.fault = match value("--fault")?.as_str() {
                    "none" => Fault::None,
                    "race" => Fault::RacyDeque,
                    "fold" => Fault::CompletionOrderFold,
                    "cancel" => Fault::DroppedCancelResult,
                    other => return Err(format!("unknown fault `{other}`")),
                }
            }
            "--cancel" => args.cancel = true,
            "--sarif" => args.sarif = Some(value("--sarif")?),
            "--expect-findings" => args.expect_findings = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.workers == 0 || args.trials == 0 {
        return Err("--workers and --trials must be positive".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse() {
        Ok(a) => a,
        Err(e) => return usage(&e),
    };
    let mut model = PoolModel {
        workers: args.workers,
        trials: args.trials,
        seed: args.seed,
        fault: Fault::None,
        cancel: args.cancel,
    }
    .with_fault(args.fault);
    if args.cancel {
        model.cancel = true;
    }
    let cfg = if args.walk > 0 {
        Config::walk(args.bound, args.seed, args.walk)
    } else {
        Config::exhaustive(args.bound)
    };
    let mode = if args.walk > 0 {
        format!("random walk x{}", args.walk)
    } else {
        "exhaustive".to_string()
    };
    println!(
        "ulp-check: pool model, {} worker(s), {} trial(s), {} thread(s), fault {:?}, bound {}, {mode}",
        model.workers,
        model.trials,
        model.threads(),
        model.fault,
        args.bound,
    );
    let report = explore(&cfg, &model);
    println!("ulp-check: {}", report.summary());
    let erc = report.to_erc();
    if !erc.is_empty() {
        print!("{}", erc.render());
    }
    if let Some(path) = &args.sarif {
        let sarif = report.to_sarif("exec/pool-model");
        if let Some(dir) = std::path::Path::new(path).parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("ulp_check: cannot create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
        if let Err(e) = std::fs::write(path, sarif) {
            eprintln!("ulp_check: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("ulp-check: SARIF written to {path}");
    }
    match (report.is_clean(), args.expect_findings) {
        (true, false) => ExitCode::SUCCESS,
        (false, true) => {
            println!("ulp-check: findings expected and found — defect detected as intended");
            ExitCode::SUCCESS
        }
        (true, true) => {
            eprintln!("ulp-check: FAIL — expected the injected defect to be detected, report is clean");
            ExitCode::FAILURE
        }
        (false, false) => {
            eprintln!("ulp-check: FAIL — concurrency findings on a supposedly healthy model");
            ExitCode::FAILURE
        }
    }
}
