//! The virtual synchronization provider: `ulp_exec::sync` primitives
//! routed through the model-checking scheduler.
//!
//! [`Virtual`] implements [`SyncProvider`], so the engine's generic
//! scheduling code ([`ulp_exec::pool`], [`ulp_exec::deque::WorkDeque`],
//! [`ulp_exec::CancelToken`]) instantiates with it unchanged — the
//! model checker drives the shipped code, not a re-implementation.
//! Every operation is a preemption point; mutexes and release/acquire
//! atomics contribute happens-before edges to the vector clocks.
//!
//! [`RaceCell`] is the deliberate opposite: physically safe (a real
//! mutex underneath, though the scheduler serializes everything
//! anyway), but *logically* unsynchronized — it contributes no
//! happens-before edge and every access is audited against the clocks.
//! Wrap shared state in it to ask "would this be a data race without
//! the lock I removed?".
//!
//! Virtual primitives can only be constructed inside
//! [`explore`](crate::explore()) — they register with the scheduler of
//! the schedule currently running.

use std::sync::{Arc, Mutex as StdMutex, PoisonError};

use ulp_exec::sync::{SyncCounter, SyncFlag, SyncMutex, SyncParker, SyncProvider, SyncWord};

use crate::sched::{current, ObjKind, SchedShared};

fn scheduler() -> Arc<SchedShared> {
    current()
        .expect("Virtual sync primitives can only be created inside ulp_check::explore")
        .shared
}

/// The model-checking [`SyncProvider`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Virtual;

impl SyncProvider for Virtual {
    type Mutex<T: Send> = Mutex<T>;
    type AtomicBool = AtomicBool;
    type AtomicUsize = AtomicUsize;
    type AtomicU64 = AtomicU64;
    type Parker = Parker;
}

/// A scheduler-instrumented mutex: acquire and release are preemption
/// points and happens-before edges; the protected value lives in a real
/// `std::sync::Mutex` (uncontended — the scheduler serializes).
pub struct Mutex<T> {
    shared: Arc<SchedShared>,
    obj: usize,
    data: StdMutex<T>,
}

impl<T: Send> SyncMutex<T> for Mutex<T> {
    fn new(value: T) -> Self {
        let shared = scheduler();
        let obj = shared.register(ObjKind::Mutex { held: false }, "mutex");
        Mutex {
            shared,
            obj,
            data: StdMutex::new(value),
        }
    }

    fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        self.shared.mutex_acquire(self.obj);
        let r = {
            let mut guard = self.data.lock().unwrap_or_else(PoisonError::into_inner);
            f(&mut guard)
        };
        self.shared.mutex_release(self.obj);
        r
    }
}

/// A scheduler-instrumented boolean flag (release store / acquire
/// load).
pub struct AtomicBool {
    shared: Arc<SchedShared>,
    obj: usize,
}

impl SyncFlag for AtomicBool {
    fn new(value: bool) -> Self {
        let shared = scheduler();
        let obj = shared.register(ObjKind::Atomic { value: value as u64 }, "atomic-bool");
        AtomicBool { shared, obj }
    }

    fn load_acquire(&self) -> bool {
        self.shared.atomic_load(self.obj) != 0
    }

    fn store_release(&self, value: bool) {
        self.shared.atomic_store(self.obj, value as u64)
    }
}

/// A scheduler-instrumented counter (AcqRel fetch-add).
pub struct AtomicUsize {
    shared: Arc<SchedShared>,
    obj: usize,
}

impl SyncCounter for AtomicUsize {
    fn new(value: usize) -> Self {
        let shared = scheduler();
        let obj = shared.register(ObjKind::Atomic { value: value as u64 }, "atomic-usize");
        AtomicUsize { shared, obj }
    }

    fn fetch_add_acq_rel(&self, n: usize) -> usize {
        self.shared.atomic_rmw(self.obj, |v| v + n as u64) as usize
    }

    fn load_acquire(&self) -> usize {
        self.shared.atomic_load(self.obj) as usize
    }
}

/// A scheduler-instrumented 64-bit word.
pub struct AtomicU64 {
    shared: Arc<SchedShared>,
    obj: usize,
}

impl SyncWord for AtomicU64 {
    fn new(value: u64) -> Self {
        let shared = scheduler();
        let obj = shared.register(ObjKind::Atomic { value }, "atomic-u64");
        AtomicU64 { shared, obj }
    }

    fn load_acquire(&self) -> u64 {
        self.shared.atomic_load(self.obj)
    }

    fn store_release(&self, value: u64) {
        self.shared.atomic_store(self.obj, value)
    }

    fn fetch_max_acq_rel(&self, value: u64) -> u64 {
        self.shared.atomic_rmw(self.obj, |v| v.max(value))
    }
}

/// A scheduler-instrumented park/unpark pair with token semantics.
pub struct Parker {
    shared: Arc<SchedShared>,
    obj: usize,
}

impl SyncParker for Parker {
    fn new() -> Self {
        let shared = scheduler();
        let obj = shared.register(ObjKind::Parker { token: false }, "parker");
        Parker { shared, obj }
    }

    fn park(&self) {
        self.shared.park(self.obj)
    }

    fn unpark(&self) {
        self.shared.unpark(self.obj)
    }
}

/// Audited, logically-unsynchronized shared data.
///
/// Physically race-free (the scheduler serializes and a real mutex
/// guards the value, keeping the crate `forbid(unsafe_code)`), but the
/// happens-before auditor treats every access as a raw memory access:
/// two accesses from different threads, at least one a write, not
/// ordered by the clocks → a `race` finding.
pub struct RaceCell<T> {
    shared: Arc<SchedShared>,
    obj: usize,
    data: StdMutex<T>,
}

impl<T: Send> RaceCell<T> {
    /// Wraps `value`; `label` names the location in race findings.
    pub fn new(label: &str, value: T) -> Self {
        let shared = scheduler();
        let obj = shared.data_object(label);
        RaceCell {
            shared,
            obj,
            data: StdMutex::new(value),
        }
    }

    /// An audited read access.
    pub fn with_read<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        self.shared.data_access(self.obj, false);
        let guard = self.data.lock().unwrap_or_else(PoisonError::into_inner);
        f(&guard)
    }

    /// An audited write access.
    pub fn with_write<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        self.shared.data_access(self.obj, true);
        let mut guard = self.data.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut guard)
    }
}
