//! The bounded schedule explorer.
//!
//! Execution under the virtual scheduler is fully determined by the
//! sequence of scheduling decisions, so exploring interleavings is
//! exploring decision sequences. A decision point only *branches* when
//! more than one choice is on offer:
//!
//! * a **preemption** — the current thread is runnable but the engine
//!   may switch away — branches only while the schedule's preemption
//!   count is below the context bound (iterative context bounding, the
//!   CHESS insight: almost all concurrency bugs need very few
//!   preemptions);
//! * a **forced switch** — the current thread blocked, parked or
//!   finished — always branches over every runnable thread and costs
//!   nothing against the bound.
//!
//! Exhaustive mode replays the campaign under depth-first search over
//! branch points: a replay script pins the first `k` branch decisions,
//! the default policy (keep running the current thread; else the
//! lowest-id runnable) extends the schedule deterministically past the
//! script, and the recorded [`BranchRecord`]s seed backtracking. Walk
//! mode replaces DFS with `n` independent runs whose branch choices
//! come from seed-derived [`SplitMix64`] streams — a cheap, fully
//! deterministic smoke mode for CI boxes that cannot afford the
//! exhaustive frontier.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use rand::rngs::SplitMix64;
use rand::SeedableRng;

use crate::report::{Finding, Report, MODEL_PANIC};
use crate::sched::{install_ctx, install_quiet_abort_hook, AbortPanic, SchedShared};

/// One branch point of a schedule: the runnable choices that were on
/// offer (default policy first) and which was taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchRecord {
    pub(crate) options: Vec<usize>,
    pub(crate) chosen: usize,
}

enum EngineMode {
    /// Replay `script` decisions at branch points, then default policy.
    Dfs { script: Vec<usize>, cursor: usize },
    /// Every branch decision drawn from a deterministic stream.
    Walk { rng: SplitMix64 },
}

/// The per-run scheduling policy: replays a prefix, applies the default
/// policy beyond it, and records every branch point it passes.
pub(crate) struct DecisionEngine {
    mode: EngineMode,
    bound: usize,
    preemptions: usize,
    trace: Vec<BranchRecord>,
}

impl DecisionEngine {
    pub(crate) fn dfs(bound: usize, script: Vec<usize>) -> Self {
        DecisionEngine {
            mode: EngineMode::Dfs { script, cursor: 0 },
            bound,
            preemptions: 0,
            trace: Vec::new(),
        }
    }

    pub(crate) fn walk(bound: usize, rng: SplitMix64) -> Self {
        DecisionEngine {
            mode: EngineMode::Walk { rng },
            bound,
            preemptions: 0,
            trace: Vec::new(),
        }
    }

    /// Chooses the next thread to run. `current` is the thread asking
    /// (`None` at campaign start / thread exit); `runnable` is sorted
    /// ascending and non-empty.
    pub(crate) fn decide(&mut self, current: Option<usize>, runnable: &[usize]) -> usize {
        let current_runnable = current.is_some_and(|c| runnable.contains(&c));
        // Default-policy-first option list.
        let options: Vec<usize> = if current_runnable {
            let cur = current.expect("current_runnable implies current");
            if runnable.len() > 1 && self.preemptions < self.bound {
                std::iter::once(cur)
                    .chain(runnable.iter().copied().filter(|&t| t != cur))
                    .collect()
            } else {
                vec![cur] // continuing is free; switching would cost a preemption
            }
        } else {
            runnable.to_vec() // forced switch: every choice, no preemption cost
        };
        let chosen = if options.len() == 1 {
            options[0]
        } else {
            let idx = match &mut self.mode {
                EngineMode::Dfs { script, cursor } => {
                    if *cursor < script.len() {
                        let want = script[*cursor];
                        *cursor += 1;
                        options
                            .iter()
                            .position(|&t| t == want)
                            .expect("replay script names a thread not on offer — nondeterminism")
                    } else {
                        0
                    }
                }
                EngineMode::Walk { rng } => {
                    use rand::RngCore;
                    (rng.next_u64() % options.len() as u64) as usize
                }
            };
            let chosen = options[idx];
            self.trace.push(BranchRecord {
                options,
                chosen,
            });
            chosen
        };
        if current_runnable && Some(chosen) != current {
            self.preemptions += 1;
        }
        chosen
    }

    pub(crate) fn take_trace(&mut self) -> Vec<BranchRecord> {
        std::mem::take(&mut self.trace)
    }
}

// ---------------------------------------------------------------------------
// Scenario + configuration.
// ---------------------------------------------------------------------------

/// A concurrent program under test.
pub trait Scenario: Sync {
    /// Shared state built once per schedule (before threads start).
    type State: Send + Sync;

    /// Number of virtual threads.
    fn threads(&self) -> usize;

    /// Builds the shared state. Runs unscheduled and unaudited.
    fn setup(&self) -> Self::State;

    /// One virtual thread's body. Every `Virtual`-provider operation
    /// inside is a preemption point.
    fn worker(&self, tid: usize, state: &Self::State);

    /// Invariant check after all threads joined (skipped when the
    /// schedule aborted). Runs unscheduled and unaudited.
    fn check(&self, state: &Self::State) -> Vec<Finding>;

    /// Display name for thread `tid` in findings.
    fn thread_name(&self, tid: usize) -> String {
        format!("worker-{tid}")
    }
}

/// How hard to explore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mode {
    /// Depth-first search over every schedule within the bound.
    Exhaustive,
    /// `walks` independent random-walk schedules from `seed` streams.
    Walk { seed: u64, walks: usize },
}

/// Exploration parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Preemption (context-switch) bound per schedule.
    pub bound: usize,
    /// Exhaustive DFS or seeded random walk.
    pub mode: Mode,
    /// DFS safety valve: stop (and mark the report truncated) after
    /// this many schedules.
    pub max_schedules: usize,
    /// Per-schedule step budget before declaring livelock.
    pub max_steps: usize,
}

impl Config {
    /// Exhaustive exploration at `bound` preemptions.
    pub fn exhaustive(bound: usize) -> Self {
        Config {
            bound,
            mode: Mode::Exhaustive,
            max_schedules: 50_000,
            max_steps: 100_000,
        }
    }

    /// `walks` seeded random-walk schedules at `bound` preemptions.
    pub fn walk(bound: usize, seed: u64, walks: usize) -> Self {
        Config {
            bound,
            mode: Mode::Walk { seed, walks },
            max_schedules: 50_000,
            max_steps: 100_000,
        }
    }
}

// ---------------------------------------------------------------------------
// The driver.
// ---------------------------------------------------------------------------

struct RunResult {
    findings: Vec<Finding>,
    trace: Vec<BranchRecord>,
}

/// Runs one schedule of `scenario` under `engine`.
fn run_schedule<S: Scenario>(cfg: &Config, scenario: &S, engine: DecisionEngine) -> RunResult {
    let names: Vec<String> = (0..scenario.threads())
        .map(|t| scenario.thread_name(t))
        .collect();
    let shared = Arc::new(SchedShared::new(names, engine, cfg.max_steps));
    // The coordinating thread gets a tid-less context: primitives
    // created in setup()/check() register against this scheduler but
    // execute physically.
    let _main_ctx = install_ctx(Arc::clone(&shared), None);
    let state = scenario.setup();
    std::thread::scope(|scope| {
        for tid in 0..scenario.threads() {
            let shared = Arc::clone(&shared);
            let state = &state;
            scope.spawn(move || {
                let _ctx = install_ctx(Arc::clone(&shared), Some(tid));
                // The whole body — start gate included — runs under
                // catch_unwind: an abort can unwind a thread while it
                // is still waiting its first turn.
                let result = catch_unwind(AssertUnwindSafe(|| {
                    shared.wait_start(tid);
                    scenario.worker(tid, state)
                }));
                let panic_msg = match result {
                    Ok(()) => None,
                    Err(p) if p.is::<AbortPanic>() => None, // cooperative teardown
                    Err(p) => Some(crate::panic_message(&*p)),
                };
                shared.finish(tid, panic_msg);
            });
        }
        shared.begin();
    });
    let outcome = shared.take_outcome();
    let mut findings = outcome.findings;
    for (tid, msg) in &outcome.panics {
        findings.push(
            Finding::new(
                MODEL_PANIC,
                "scenario",
                format!("{} panicked under the model: {msg}", scenario.thread_name(*tid)),
            )
            .with_threads([scenario.thread_name(*tid)]),
        );
    }
    // An aborted schedule never reached a quiescent final state, so the
    // scenario's invariant check would report nonsense; the abort cause
    // itself is already a finding.
    if outcome.abort.is_none() {
        findings.extend(scenario.check(&state));
    }
    RunResult {
        findings,
        trace: outcome.trace,
    }
}

/// Explores `scenario` under `cfg`, returning the aggregate [`Report`].
///
/// Fully deterministic: the same scenario and config produce the same
/// report, schedule for schedule, byte for byte.
pub fn explore<S: Scenario>(cfg: &Config, scenario: &S) -> Report {
    install_quiet_abort_hook();
    let mut report = Report::new();
    match cfg.mode {
        Mode::Walk { seed, walks } => {
            let root = SplitMix64::seed_from_u64(seed);
            for i in 0..walks {
                let rng = root.derive_stream(i as u64);
                let run = run_schedule(cfg, scenario, DecisionEngine::walk(cfg.bound, rng));
                report.schedules += 1;
                report.absorb(run.findings);
            }
        }
        Mode::Exhaustive => {
            // DFS over branch points. Each stack frame is one branch the
            // current replay prefix commits to; `next` indexes into its
            // recorded options.
            struct Frame {
                options: Vec<usize>,
                next: usize,
            }
            let mut stack: Vec<Frame> = Vec::new();
            loop {
                let script: Vec<usize> = stack.iter().map(|f| f.options[f.next]).collect();
                let run = run_schedule(cfg, scenario, DecisionEngine::dfs(cfg.bound, script));
                report.schedules += 1;
                report.absorb(run.findings);
                // The replay prefix is reproduced exactly, so the trace
                // extends the stack; push the new branch points (their
                // default choice, index 0, was just taken).
                assert!(
                    run.trace.len() >= stack.len(),
                    "schedule replay diverged: {} branch points, expected at least {}",
                    run.trace.len(),
                    stack.len()
                );
                for (frame, rec) in stack.iter().zip(run.trace.iter()) {
                    debug_assert_eq!(
                        rec.chosen,
                        frame.options[frame.next],
                        "replay prefix diverged from the DFS stack"
                    );
                }
                for rec in run.trace.into_iter().skip(stack.len()) {
                    stack.push(Frame {
                        options: rec.options,
                        next: 0,
                    });
                }
                // Backtrack to the deepest branch with an untried option.
                loop {
                    match stack.last_mut() {
                        None => return report,
                        Some(f) => {
                            f.next += 1;
                            if f.next < f.options.len() {
                                break;
                            }
                            stack.pop();
                        }
                    }
                }
                if report.schedules >= cfg.max_schedules {
                    report.truncated = true;
                    return report;
                }
            }
        }
    }
    report
}

/// Closure-shaped [`explore`] for small inline scenarios (see the crate
/// docs for an example).
pub fn explore_fn<T, FS, FW, FC>(
    cfg: &Config,
    threads: usize,
    setup: FS,
    worker: FW,
    check: FC,
) -> Report
where
    T: Send + Sync,
    FS: Fn() -> T + Sync,
    FW: Fn(usize, &T) + Sync,
    FC: Fn(&T) -> Vec<Finding> + Sync,
{
    struct FnScenario<FS, FW, FC> {
        threads: usize,
        setup: FS,
        worker: FW,
        check: FC,
    }
    impl<T, FS, FW, FC> Scenario for FnScenario<FS, FW, FC>
    where
        T: Send + Sync,
        FS: Fn() -> T + Sync,
        FW: Fn(usize, &T) + Sync,
        FC: Fn(&T) -> Vec<Finding> + Sync,
    {
        type State = T;
        fn threads(&self) -> usize {
            self.threads
        }
        fn setup(&self) -> T {
            (self.setup)()
        }
        fn worker(&self, tid: usize, state: &T) {
            (self.worker)(tid, state)
        }
        fn check(&self, state: &T) -> Vec<Finding> {
            (self.check)(state)
        }
    }
    explore(
        cfg,
        &FnScenario {
            threads,
            setup,
            worker,
            check,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::RaceCell;
    use ulp_exec::sync::{SyncFlag, SyncMutex, SyncParker, SyncProvider};
    use ulp_spice::lint::rule;

    type VMutex<T> = <crate::Virtual as SyncProvider>::Mutex<T>;
    type VFlag = <crate::Virtual as SyncProvider>::AtomicBool;
    type VParker = <crate::Virtual as SyncProvider>::Parker;

    #[test]
    fn opposite_lock_order_deadlocks_on_some_schedule() {
        let report = explore_fn(
            &Config::exhaustive(2),
            2,
            || (VMutex::new(()), VMutex::new(())),
            |tid, (a, b)| {
                // Thread 0 takes a then b, thread 1 takes b then a: a
                // preemption between the two acquires deadlocks.
                let (first, second) = if tid == 0 { (a, b) } else { (b, a) };
                first.with(|_| second.with(|_| ()));
            },
            |_| vec![],
        );
        assert!(report.has_rule(rule::SCHEDULE_DEADLOCK), "{report:?}");
        // The deadlock needs one preemption; bound 0 never finds it.
        let bound0 = explore_fn(
            &Config::exhaustive(0),
            2,
            || (VMutex::new(()), VMutex::new(())),
            |tid, (a, b)| {
                let (first, second) = if tid == 0 { (a, b) } else { (b, a) };
                first.with(|_| second.with(|_| ()));
            },
            |_| vec![],
        );
        assert!(bound0.is_clean(), "{bound0:?}");
    }

    #[test]
    fn release_acquire_flag_publishes() {
        // Writer publishes a RaceCell value behind a release-stored
        // flag; the reader only touches the cell after an acquire load
        // observes the flag — ordered, clean on every schedule.
        let report = explore_fn(
            &Config::exhaustive(2),
            2,
            || (VFlag::new(false), RaceCell::new("payload", 0u64)),
            |tid, (flag, cell)| {
                if tid == 0 {
                    cell.with_write(|v| *v = 42);
                    flag.store_release(true);
                } else if flag.load_acquire() {
                    cell.with_read(|v| assert_eq!(*v, 42));
                }
            },
            |_| vec![],
        );
        assert!(report.is_clean(), "{report:?}");
        assert!(report.schedules > 1);

        // Remove the flag gate and the same cell races.
        let racy = explore_fn(
            &Config::exhaustive(1),
            2,
            || (VFlag::new(false), RaceCell::new("payload", 0u64)),
            |tid, (flag, cell)| {
                if tid == 0 {
                    cell.with_write(|v| *v = 42);
                    flag.store_release(true);
                } else {
                    let _ = flag.load_acquire(); // load but ignore: no ordering used
                    cell.with_read(|v| *v);
                }
            },
            |_| vec![],
        );
        assert!(racy.has_rule(rule::RACE), "{racy:?}");
    }

    #[test]
    fn parker_token_semantics_hold_under_exploration() {
        // t1 parks; t0 writes a value and unparks. The unpark
        // happens-before the park's return, so the read is ordered even
        // though the cell itself is unsynchronized. Token semantics
        // (unpark-before-park returns immediately) keep every schedule
        // deadlock-free.
        let report = explore_fn(
            &Config::exhaustive(2),
            2,
            || (VParker::new(), RaceCell::new("handoff", 0u64)),
            |tid, (parker, cell)| {
                if tid == 0 {
                    cell.with_write(|v| *v = 7);
                    parker.unpark();
                } else {
                    parker.park();
                    cell.with_read(|v| assert_eq!(*v, 7));
                }
            },
            |_| vec![],
        );
        assert!(report.is_clean(), "{report:?}");
        assert!(!report.has_rule(rule::SCHEDULE_DEADLOCK));
    }

    #[test]
    fn worker_panic_surfaces_as_model_panic_finding() {
        let report = explore_fn(
            &Config::exhaustive(0),
            2,
            || (),
            |tid, ()| {
                assert_ne!(tid, 1, "injected failure");
            },
            |_| vec![],
        );
        assert!(report.has_rule(crate::MODEL_PANIC), "{report:?}");
    }

    #[test]
    fn exploration_is_deterministic() {
        let model = crate::PoolModel::healthy(2, 4, 99);
        let a = explore(&Config::exhaustive(1), &model);
        let b = explore(&Config::exhaustive(1), &model);
        assert_eq!(a, b);
        let w1 = explore(&Config::walk(2, 7, 16), &model);
        let w2 = explore(&Config::walk(2, 7, 16), &model);
        assert_eq!(w1, w2);
        assert_eq!(w1.schedules, 16);
    }

    #[test]
    fn widening_the_bound_widens_the_frontier() {
        let model = crate::PoolModel::healthy(2, 4, 5);
        let s0 = explore(&Config::exhaustive(0), &model).schedules;
        let s1 = explore(&Config::exhaustive(1), &model).schedules;
        let s2 = explore(&Config::exhaustive(2), &model).schedules;
        assert!(s0 < s1 && s1 < s2, "{s0} {s1} {s2}");
    }

    #[test]
    fn max_schedules_truncates_and_flags() {
        let model = crate::PoolModel::healthy(2, 4, 5);
        let mut cfg = Config::exhaustive(2);
        cfg.max_schedules = 10;
        let report = explore(&cfg, &model);
        assert!(report.truncated);
        assert_eq!(report.schedules, 10);
        assert!(report.summary().contains("TRUNCATED"));
    }
}
