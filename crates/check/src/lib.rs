//! `ulp-check`: a std-only, loom-style concurrency model checker for
//! the `ulp-exec` engine.
//!
//! The engine's scheduling core is generic over
//! [`ulp_exec::sync::SyncProvider`]. Production builds use `StdSync`
//! (plain `std::sync`, zero overhead); this crate supplies [`Virtual`],
//! a provider that routes every acquire, release, load, store, park and
//! unpark through a deterministic virtual scheduler. On top of that
//! seam sit:
//!
//! * a **bounded schedule explorer** ([`explore`], [`Config`]) —
//!   depth-first enumeration of every interleaving within a preemption
//!   bound (iterative context bounding), plus a seed-derived
//!   random-walk mode for CI;
//! * a **vector-clock race auditor** — the scheduler maintains the
//!   happens-before relation of everything the program does, and
//!   [`RaceCell`] accesses (logically unsynchronized shared data) are
//!   checked against it, djit+-style;
//! * the **pool model** ([`PoolModel`]) — a scaled-down `ulp-exec`
//!   campaign run through the *shipped* `pool::deal`/`pool::worker_loop`
//!   code on every explored schedule, asserting the determinism
//!   contract (every trial gathered once, bit-identical to the serial
//!   reference, cancellation never leaving a hole), with [`Fault`]
//!   variants that re-introduce real defects so tests can assert the
//!   toolkit catches them.
//!
//! Findings render through `ulp-spice`'s diagnostic machinery into the
//! same SARIF stream as the electrical lints ([`Report::to_sarif`]).
//!
//! # Example
//!
//! Two threads bump a shared counter. Without ordering, the auditor
//! flags the race on the very first schedule; put the accesses under a
//! virtual mutex and every schedule within the bound is clean:
//!
//! ```
//! use ulp_check::{explore_fn, Config, RaceCell};
//! use ulp_exec::sync::SyncMutex;
//!
//! // Unsynchronized: two writes, no happens-before edge between them.
//! let racy = explore_fn(
//!     &Config::exhaustive(1),
//!     2,
//!     || RaceCell::new("counter", 0u64),
//!     |_tid, c| {
//!         c.with_write(|v| *v += 1);
//!     },
//!     |_c| vec![],
//! );
//! assert!(!racy.is_clean());
//! assert_eq!(racy.findings().next().unwrap().rule, "race");
//!
//! // The same program with the accesses ordered by a mutex: the lock's
//! // release/acquire edges order the writes on every schedule.
//! let clean = explore_fn(
//!     &Config::exhaustive(2),
//!     2,
//!     || (ulp_check::sync::Mutex::new(()), RaceCell::new("counter", 0u64)),
//!     |_tid, (lock, c)| {
//!         lock.with(|_| c.with_write(|v| *v += 1));
//!     },
//!     |state| {
//!         let total = state.1.with_read(|v| *v);
//!         assert_eq!(total, 2);
//!         vec![]
//!     },
//! );
//! assert!(clean.is_clean());
//! assert!(clean.schedules > 1, "the explorer tried multiple interleavings");
//! ```

#![forbid(unsafe_code)]

pub mod clock;
pub mod explore;
pub mod harness;
pub mod report;
mod sched;
pub mod sync;

pub use explore::{explore, explore_fn, Config, Mode, Scenario};
pub use harness::{Fault, PoolModel, PoolState, Trial};
pub use report::{Finding, Report, MODEL_PANIC};
pub use sync::{RaceCell, Virtual};

/// Renders a caught panic payload into a message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
