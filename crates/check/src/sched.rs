//! The virtual scheduler: loom-style cooperative serialization of real
//! OS threads.
//!
//! Every virtual thread is a real `std::thread`, but at most one is
//! ever *running*: each synchronization operation of the `Virtual`
//! provider first reaches a **yield point**, where the
//! [`DecisionEngine`](crate::explore) either lets the current thread
//! continue or switches to another runnable thread. Because threads
//! only progress when chosen, the interleaving of visible operations is
//! exactly the decision sequence — deterministic, replayable, and
//! enumerable.
//!
//! The scheduler simultaneously maintains the happens-before relation
//! as vector clocks ([`crate::clock`]): mutex release/acquire, atomic
//! store/load (release/acquire), park/unpark and RMW operations all
//! contribute edges; [`crate::RaceCell`] accesses contribute *none* and
//! are audited against the clocks (djit+), so any pair of unordered
//! conflicting accesses is reported as a `race` finding.
//!
//! Aborts (deadlock, step budget, a sibling's panic) unwind every
//! in-flight thread with a quiet [`AbortPanic`] payload so the
//! `std::thread::scope` join always completes.

use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once, PoisonError};

use crate::clock::VectorClock;
use crate::explore::DecisionEngine;
use crate::report::Finding;
use ulp_spice::lint::rule;

/// Panic payload used for cooperative teardown after an abort. Not a
/// bug signal: the panic hook suppresses its report and the thread
/// wrapper maps it to "no panic".
pub(crate) struct AbortPanic;

/// Unwinds the current virtual thread quietly.
fn abort_panic() -> ! {
    std::panic::panic_any(AbortPanic)
}

/// Installs (once per process) a forwarding panic hook that silences
/// [`AbortPanic`] payloads and leaves every other panic's report
/// untouched.
pub(crate) fn install_quiet_abort_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<AbortPanic>() {
                return;
            }
            prev(info);
        }));
    });
}

// ---------------------------------------------------------------------------
// Thread-local context: which scheduler, which virtual thread.
// ---------------------------------------------------------------------------

#[derive(Clone)]
pub(crate) struct Ctx {
    pub shared: Arc<SchedShared>,
    /// `Some(tid)` inside a modelled worker; `None` on the coordinating
    /// thread during setup/check, where operations execute physically
    /// with no yields and no audit (execution is single-threaded there).
    pub tid: Option<usize>,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

pub(crate) fn current() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn current_tid() -> Option<usize> {
    CTX.with(|c| c.borrow().as_ref().and_then(|ctx| ctx.tid))
}

/// Installs a context for the current OS thread, restoring the previous
/// one on drop.
pub(crate) fn install_ctx(shared: Arc<SchedShared>, tid: Option<usize>) -> CtxGuard {
    let prev = CTX.with(|c| c.borrow_mut().replace(Ctx { shared, tid }));
    CtxGuard { prev }
}

pub(crate) struct CtxGuard {
    prev: Option<Ctx>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CTX.with(|c| *c.borrow_mut() = prev);
    }
}

// ---------------------------------------------------------------------------
// Scheduler state.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    /// Waiting for the mutex object to be released.
    Blocked(usize),
    /// Parked on the parker object.
    Parked(usize),
    Finished,
}

/// What kind of synchronization object a registered id refers to.
pub(crate) enum ObjKind {
    Mutex { held: bool },
    /// All atomics (bool/usize/u64) model their value as a `u64`.
    Atomic { value: u64 },
    Parker { token: bool },
    /// An audited, deliberately *unsynchronized* data location
    /// ([`crate::RaceCell`]): per-thread last-write and last-read
    /// epochs for djit+ race detection.
    Data {
        write_epochs: VectorClock,
        read_epochs: VectorClock,
    },
}

struct ObjState {
    kind: ObjKind,
    /// The object's release clock (meaningless for `Data`).
    clock: VectorClock,
    label: String,
}

struct Inner {
    status: Vec<Status>,
    /// The one virtual thread allowed to run (valid once `started`).
    active: usize,
    started: bool,
    engine: DecisionEngine,
    clocks: Vec<VectorClock>,
    objects: Vec<ObjState>,
    findings: Vec<Finding>,
    /// Set on deadlock / step-budget exhaustion / worker panic; every
    /// waiting thread unwinds when it observes this.
    abort: Option<String>,
    panics: Vec<(usize, String)>,
    steps: usize,
    max_steps: usize,
}

impl Inner {
    fn runnable(&self) -> Vec<usize> {
        (0..self.status.len())
            .filter(|&t| self.status[t] == Status::Runnable)
            .collect()
    }

    fn all_finished(&self) -> bool {
        self.status.iter().all(|&s| s == Status::Finished)
    }

    /// Picks the next active thread. `current` is `Some(tid)` when the
    /// decision is taken on behalf of a still-existing thread (it may or
    /// may not be runnable), `None` at campaign start and thread exit.
    /// Returns `Err` on deadlock (finding recorded, abort set).
    fn schedule_from(&mut self, current: Option<usize>, names: &[String]) -> Result<(), ()> {
        let runnable = self.runnable();
        if runnable.is_empty() {
            if self.all_finished() {
                return Ok(());
            }
            let stuck: Vec<String> = (0..self.status.len())
                .filter(|&t| self.status[t] != Status::Finished)
                .map(|t| names[t].clone())
                .collect();
            self.findings.push(
                Finding::new(
                    rule::SCHEDULE_DEADLOCK,
                    "scheduler",
                    format!(
                        "deadlock: no runnable thread, {} still waiting",
                        stuck.join(", ")
                    ),
                )
                .with_threads(stuck),
            );
            self.abort = Some("deadlock".to_string());
            return Err(());
        }
        self.active = self.engine.decide(current, &runnable);
        Ok(())
    }
}

/// The shared scheduler a whole run (one schedule) hangs off.
pub(crate) struct SchedShared {
    inner: Mutex<Inner>,
    cv: Condvar,
    names: Vec<String>,
}

impl SchedShared {
    pub(crate) fn new(names: Vec<String>, engine: DecisionEngine, max_steps: usize) -> Self {
        let n = names.len();
        SchedShared {
            inner: Mutex::new(Inner {
                status: vec![Status::Runnable; n],
                active: 0,
                started: false,
                engine,
                clocks: (0..n).map(|t| VectorClock::origin(n, t)).collect(),
                objects: Vec::new(),
                findings: Vec::new(),
                abort: None,
                panics: Vec::new(),
                steps: 0,
                max_steps,
            }),
            cv: Condvar::new(),
            names,
        }
    }

    fn lock_inner(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn name(&self, tid: usize) -> &str {
        &self.names[tid]
    }

    /// Registers a synchronization object, returning its id.
    pub(crate) fn register(&self, kind: ObjKind, label: impl Into<String>) -> usize {
        let threads = self.names.len();
        let mut g = self.lock_inner();
        g.objects.push(ObjState {
            kind,
            clock: VectorClock::zero(threads),
            label: label.into(),
        });
        g.objects.len() - 1
    }

    pub(crate) fn data_object(&self, label: impl Into<String>) -> usize {
        let threads = self.names.len();
        self.register(
            ObjKind::Data {
                write_epochs: VectorClock::zero(threads),
                read_epochs: VectorClock::zero(threads),
            },
            label,
        )
    }

    // -- the scheduling protocol ------------------------------------------

    /// Waits (guard in hand) until this thread is active and runnable,
    /// unwinding on abort. Returns with the guard re-acquired.
    fn wait_active<'a>(&'a self, mut g: MutexGuard<'a, Inner>, tid: usize) -> MutexGuard<'a, Inner> {
        loop {
            if g.abort.is_some() {
                drop(g);
                abort_panic();
            }
            if g.active == tid && g.status[tid] == Status::Runnable {
                return g;
            }
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// The preemption point before every visible operation: the engine
    /// chooses who runs next; if not us, block until chosen again.
    fn yield_point(&self, tid: usize) {
        let mut g = self.lock_inner();
        if g.abort.is_some() {
            drop(g);
            abort_panic();
        }
        g.steps += 1;
        if g.steps > g.max_steps {
            let msg = format!(
                "no termination within {} scheduler steps (livelock?)",
                g.max_steps
            );
            g.findings
                .push(Finding::new(rule::SCHEDULE_DEADLOCK, "scheduler", msg.clone()));
            g.abort = Some(msg);
            self.cv.notify_all();
            drop(g);
            abort_panic();
        }
        let runnable = g.runnable();
        debug_assert!(runnable.contains(&tid), "a running thread must be runnable");
        let chosen = g.engine.decide(Some(tid), &runnable);
        if chosen != tid {
            g.active = chosen;
            self.cv.notify_all();
            drop(self.wait_active(g, tid));
        }
    }

    /// Gate where every worker waits for the initial decision.
    pub(crate) fn wait_start(&self, tid: usize) {
        let mut g = self.lock_inner();
        loop {
            if g.abort.is_some() {
                drop(g);
                abort_panic();
            }
            if g.started && g.active == tid && g.status[tid] == Status::Runnable {
                return;
            }
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Opens the campaign: the first thread choice is a (free) branch
    /// point, so the explorer also covers "who goes first".
    pub(crate) fn begin(&self) {
        let mut g = self.lock_inner();
        g.started = true;
        let _ = g.schedule_from(None, &self.names);
        self.cv.notify_all();
    }

    /// A worker's exit. `panic_msg` carries a real (non-abort) panic.
    pub(crate) fn finish(&self, tid: usize, panic_msg: Option<String>) {
        let mut g = self.lock_inner();
        g.status[tid] = Status::Finished;
        if let Some(msg) = panic_msg {
            g.panics.push((tid, msg.clone()));
            if g.abort.is_none() {
                g.abort = Some(format!("worker panicked: {msg}"));
            }
        }
        if g.abort.is_none() {
            let _ = g.schedule_from(None, &self.names);
        }
        self.cv.notify_all();
    }

    /// Drains the run's results. Call after the thread scope has joined.
    pub(crate) fn take_outcome(&self) -> RunOutcome {
        let mut g = self.lock_inner();
        RunOutcome {
            findings: std::mem::take(&mut g.findings),
            trace: g.engine.take_trace(),
            abort: g.abort.take(),
            panics: std::mem::take(&mut g.panics),
            steps: g.steps,
        }
    }

    // -- mutex ------------------------------------------------------------

    pub(crate) fn mutex_acquire(&self, obj: usize) {
        let Some(tid) = current_tid() else {
            // Setup/check phase: single-threaded, no contention possible.
            if let ObjKind::Mutex { held } = &mut self.lock_inner().objects[obj].kind {
                *held = true;
            }
            return;
        };
        self.yield_point(tid);
        let mut g = self.lock_inner();
        loop {
            if g.abort.is_some() {
                drop(g);
                abort_panic();
            }
            let free = matches!(g.objects[obj].kind, ObjKind::Mutex { held: false });
            if free {
                if let ObjKind::Mutex { held } = &mut g.objects[obj].kind {
                    *held = true;
                }
                let oc = g.objects[obj].clock.clone();
                g.clocks[tid].join(&oc);
                return;
            }
            g.status[tid] = Status::Blocked(obj);
            if g.schedule_from(Some(tid), &self.names).is_err() {
                self.cv.notify_all();
                drop(g);
                abort_panic();
            }
            self.cv.notify_all();
            g = self.wait_active(g, tid);
        }
    }

    pub(crate) fn mutex_release(&self, obj: usize) {
        let Some(tid) = current_tid() else {
            if let ObjKind::Mutex { held } = &mut self.lock_inner().objects[obj].kind {
                *held = false;
            }
            return;
        };
        {
            let mut g = self.lock_inner();
            g.clocks[tid].tick(tid);
            let tc = g.clocks[tid].clone();
            g.objects[obj].clock.join(&tc);
            if let ObjKind::Mutex { held } = &mut g.objects[obj].kind {
                *held = false;
            }
            for u in 0..g.status.len() {
                if g.status[u] == Status::Blocked(obj) {
                    g.status[u] = Status::Runnable;
                }
            }
        }
        // Post-release preemption point: a freshly woken waiter may run.
        self.yield_point(tid);
    }

    // -- atomics ----------------------------------------------------------

    pub(crate) fn atomic_load(&self, obj: usize) -> u64 {
        let Some(tid) = current_tid() else {
            return self.atomic_value(obj);
        };
        self.yield_point(tid);
        let mut g = self.lock_inner();
        let oc = g.objects[obj].clock.clone();
        g.clocks[tid].join(&oc); // acquire edge
        match g.objects[obj].kind {
            ObjKind::Atomic { value } => value,
            _ => unreachable!("atomic_load on a non-atomic object"),
        }
    }

    pub(crate) fn atomic_store(&self, obj: usize, v: u64) {
        let Some(tid) = current_tid() else {
            self.set_atomic_value(obj, v);
            return;
        };
        self.yield_point(tid);
        let mut g = self.lock_inner();
        g.clocks[tid].tick(tid);
        let tc = g.clocks[tid].clone();
        g.objects[obj].clock.join(&tc); // release edge
        if let ObjKind::Atomic { value } = &mut g.objects[obj].kind {
            *value = v;
        }
    }

    /// AcqRel read-modify-write; returns the previous value.
    pub(crate) fn atomic_rmw(&self, obj: usize, f: impl FnOnce(u64) -> u64) -> u64 {
        let Some(tid) = current_tid() else {
            let old = self.atomic_value(obj);
            self.set_atomic_value(obj, f(old));
            return old;
        };
        self.yield_point(tid);
        let mut g = self.lock_inner();
        let oc = g.objects[obj].clock.clone();
        g.clocks[tid].join(&oc); // acquire half
        g.clocks[tid].tick(tid);
        let tc = g.clocks[tid].clone();
        g.objects[obj].clock.join(&tc); // release half
        match &mut g.objects[obj].kind {
            ObjKind::Atomic { value } => {
                let old = *value;
                *value = f(old);
                old
            }
            _ => unreachable!("atomic_rmw on a non-atomic object"),
        }
    }

    fn atomic_value(&self, obj: usize) -> u64 {
        match self.lock_inner().objects[obj].kind {
            ObjKind::Atomic { value } => value,
            _ => unreachable!(),
        }
    }

    fn set_atomic_value(&self, obj: usize, v: u64) {
        if let ObjKind::Atomic { value } = &mut self.lock_inner().objects[obj].kind {
            *value = v;
        }
    }

    // -- parker -----------------------------------------------------------

    pub(crate) fn park(&self, obj: usize) {
        let tid = current_tid()
            .expect("SyncParker::park outside a modelled thread would block forever");
        self.yield_point(tid);
        let mut g = self.lock_inner();
        let has_token = matches!(g.objects[obj].kind, ObjKind::Parker { token: true });
        if !has_token {
            g.status[tid] = Status::Parked(obj);
            if g.schedule_from(Some(tid), &self.names).is_err() {
                self.cv.notify_all();
                drop(g);
                abort_panic();
            }
            self.cv.notify_all();
            g = self.wait_active(g, tid);
            // The unpark that woke us already consumed the token.
        } else if let ObjKind::Parker { token } = &mut g.objects[obj].kind {
            *token = false;
        }
        let oc = g.objects[obj].clock.clone();
        g.clocks[tid].join(&oc); // unpark happens-before the park it wakes
    }

    pub(crate) fn unpark(&self, obj: usize) {
        let Some(tid) = current_tid() else {
            if let ObjKind::Parker { token } = &mut self.lock_inner().objects[obj].kind {
                *token = true;
            }
            return;
        };
        self.yield_point(tid);
        let mut g = self.lock_inner();
        g.clocks[tid].tick(tid);
        let tc = g.clocks[tid].clone();
        g.objects[obj].clock.join(&tc); // release edge carried to the waker
        let parked = (0..g.status.len()).find(|&u| g.status[u] == Status::Parked(obj));
        match parked {
            Some(u) => g.status[u] = Status::Runnable,
            None => {
                if let ObjKind::Parker { token } = &mut g.objects[obj].kind {
                    *token = true;
                }
            }
        }
    }

    // -- audited raw data access ------------------------------------------

    /// A [`crate::RaceCell`] access: contributes *no* happens-before
    /// edge; checked against every other thread's prior epochs (djit+).
    pub(crate) fn data_access(&self, obj: usize, is_write: bool) {
        let Some(tid) = current_tid() else {
            return; // setup/check phase is single-threaded — not audited
        };
        self.yield_point(tid);
        let mut g = self.lock_inner();
        let threads = self.names.len();
        let inner = &mut *g;
        let me = &inner.clocks[tid];
        let label = inner.objects[obj].label.clone();
        if let ObjKind::Data {
            write_epochs,
            read_epochs,
        } = &mut inner.objects[obj].kind
        {
            let mut conflict: Option<(usize, &'static str)> = None;
            for u in (0..threads).filter(|&u| u != tid) {
                if !me.dominates_component(write_epochs, u) {
                    conflict = Some((u, "write"));
                    break;
                }
                if is_write && !me.dominates_component(read_epochs, u) {
                    conflict = Some((u, "read"));
                    break;
                }
            }
            if let Some((u, prior)) = conflict {
                let kind = if is_write { "write" } else { "read" };
                inner.findings.push(
                    Finding::new(
                        rule::RACE,
                        label.clone(),
                        format!(
                            "unsynchronized {kind} of `{label}` by {} races with a prior {prior} by {}",
                            self.name(tid),
                            self.name(u)
                        ),
                    )
                    .with_threads([self.name(tid).to_string(), self.name(u).to_string()]),
                );
            }
            let epoch = me.component(tid);
            if is_write {
                write_epochs.record(tid, epoch);
            } else {
                read_epochs.record(tid, epoch);
            }
        }
    }
}

/// Everything one schedule produced.
pub(crate) struct RunOutcome {
    pub findings: Vec<Finding>,
    pub trace: Vec<crate::explore::BranchRecord>,
    pub abort: Option<String>,
    pub panics: Vec<(usize, String)>,
    #[allow(dead_code)]
    pub steps: usize,
}
