//! Vector clocks for the happens-before auditor.
//!
//! One clock per virtual thread and one per tracked synchronization
//! object. The ordering rules are the standard djit+ ones:
//!
//! * a thread's own component ticks on every release-shaped operation;
//! * an acquire-shaped operation joins the object's clock into the
//!   thread's clock;
//! * a release-shaped operation joins the thread's clock into the
//!   object's clock.
//!
//! Two events are ordered iff one's full clock is `<=` the other's at
//! the relevant component — which for per-thread epochs reduces to a
//! single component comparison (see [`VectorClock::dominates_component`]).

/// A fixed-width vector clock, one `u64` component per virtual thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorClock {
    lamport: Vec<u64>,
}

impl VectorClock {
    /// The zero clock over `threads` components ("before everything").
    pub fn zero(threads: usize) -> Self {
        VectorClock {
            lamport: vec![0; threads],
        }
    }

    /// A thread's initial clock: its own component at 1, rest 0.
    pub fn origin(threads: usize, tid: usize) -> Self {
        let mut c = VectorClock::zero(threads);
        c.lamport[tid] = 1;
        c
    }

    /// This thread's current epoch component.
    pub fn component(&self, tid: usize) -> u64 {
        self.lamport[tid]
    }

    /// Advances `tid`'s component (release-shaped operations).
    pub fn tick(&mut self, tid: usize) {
        self.lamport[tid] += 1;
    }

    /// Records an epoch value for `tid` (djit+ access-history update;
    /// epochs only grow, so plain assignment is a monotone update).
    pub fn record(&mut self, tid: usize, epoch: u64) {
        self.lamport[tid] = epoch;
    }

    /// Element-wise maximum with `other` (acquire/release joins).
    pub fn join(&mut self, other: &VectorClock) {
        for (mine, theirs) in self.lamport.iter_mut().zip(&other.lamport) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// True when this clock has seen `other`'s component `tid`, i.e. the
    /// event `other[tid]` happens-before the holder of `self`.
    pub fn dominates_component(&self, other: &VectorClock, tid: usize) -> bool {
        self.lamport[tid] >= other.lamport[tid]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_and_tick() {
        let mut c = VectorClock::origin(3, 1);
        assert_eq!(c.component(0), 0);
        assert_eq!(c.component(1), 1);
        c.tick(1);
        assert_eq!(c.component(1), 2);
    }

    #[test]
    fn join_takes_elementwise_max() {
        let mut a = VectorClock::origin(2, 0);
        let mut b = VectorClock::origin(2, 1);
        b.tick(1);
        a.join(&b);
        assert_eq!(a.component(0), 1);
        assert_eq!(a.component(1), 2);
        assert!(a.dominates_component(&b, 1));
        assert!(!b.dominates_component(&a, 0));
    }

    #[test]
    fn release_acquire_orders_across_threads() {
        // t0 writes (epoch t0:1), releases into an object, t1 acquires:
        // t1's clock then dominates t0's write epoch.
        let mut t0 = VectorClock::origin(2, 0);
        let mut t1 = VectorClock::origin(2, 1);
        let mut obj = VectorClock::zero(2);
        let write_epoch = t0.clone();
        t0.tick(0);
        obj.join(&t0); // release
        t1.join(&obj); // acquire
        assert!(t1.dominates_component(&write_epoch, 0));
    }
}
