//! Findings and reports: what the explorer and the race auditor emit,
//! rendered through `ulp-spice`'s `Diagnostic`/`ErcReport`/SARIF
//! machinery so concurrency verdicts land in the same `results/lint/`
//! pipeline as the electrical lints.

use std::collections::BTreeSet;

use ulp_spice::lint::rule;
use ulp_spice::sarif;
use ulp_spice::{Diagnostic, ErcReport, Severity};

/// Rule id for a scenario worker that panicked under the model (not in
/// the shared lint registry — it marks a broken *model*, not a broken
/// engine).
pub const MODEL_PANIC: &str = "model-panic";

/// One concurrency defect observed on at least one explored schedule.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Rule id (`ulp_spice::lint::rule::{RACE, NON_DETERMINISTIC_FOLD,
    /// LOST_CANCEL, SCHEDULE_DEADLOCK}` or [`MODEL_PANIC`]).
    pub rule: &'static str,
    /// Human-readable defect statement.
    pub message: String,
    /// What the finding is anchored to — a [`crate::RaceCell`] label,
    /// a result slot, a fold.
    pub location: String,
    /// The virtual threads involved.
    pub threads: Vec<String>,
}

impl Finding {
    /// Builds a finding with no thread attribution.
    pub fn new(rule: &'static str, location: impl Into<String>, message: impl Into<String>) -> Self {
        Finding {
            rule,
            message: message.into(),
            location: location.into(),
            threads: Vec::new(),
        }
    }

    /// Attaches the virtual threads involved.
    pub fn with_threads<I: IntoIterator<Item = String>>(mut self, threads: I) -> Self {
        self.threads = threads.into_iter().collect();
        self
    }
}

/// The aggregate verdict of one exploration: every distinct finding,
/// with the number of schedules it fired on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// How many schedules the explorer ran.
    pub schedules: usize,
    /// True when the exploration hit `Config::max_schedules` before the
    /// DFS frontier was exhausted — a clean truncated report is *not* a
    /// proof.
    pub truncated: bool,
    findings: Vec<(Finding, usize)>,
}

impl Report {
    pub(crate) fn new() -> Self {
        Report {
            schedules: 0,
            truncated: false,
            findings: Vec::new(),
        }
    }

    /// Folds one schedule's findings in, deduplicating within the
    /// schedule and counting across schedules. First-seen order is kept,
    /// which is deterministic because exploration order is.
    pub(crate) fn absorb(&mut self, schedule_findings: Vec<Finding>) {
        let distinct: BTreeSet<Finding> = schedule_findings.into_iter().collect();
        for f in distinct {
            match self.findings.iter_mut().find(|(seen, _)| *seen == f) {
                Some((_, hits)) => *hits += 1,
                None => self.findings.push((f, 1)),
            }
        }
    }

    /// True when no schedule produced any finding.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Distinct findings in first-seen order.
    pub fn findings(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().map(|(f, _)| f)
    }

    /// Whether any finding carries `rule`.
    pub fn has_rule(&self, rule: &str) -> bool {
        self.findings.iter().any(|(f, _)| f.rule == rule)
    }

    /// Renders findings as an [`ErcReport`] (severity Error — every
    /// concurrency rule is deny-by-default in the lint registry).
    pub fn to_erc(&self) -> ErcReport {
        let mut erc = ErcReport::new();
        for (f, hits) in &self.findings {
            erc.push(
                Diagnostic::new(
                    Severity::Error,
                    f.rule,
                    format!("{} [on {hits} of {} schedules]", f.message, self.schedules),
                )
                .with_nodes([f.location.clone()])
                .with_elements(f.threads.clone())
                .with_hint(hint_for(f.rule)),
            );
        }
        erc.sort();
        erc
    }

    /// Renders the report as a SARIF 2.1.0 log for `results/lint/`.
    pub fn to_sarif(&self, artifact: &str) -> String {
        sarif::to_sarif(&self.to_erc(), artifact)
    }

    /// One-line outcome for CI logs.
    pub fn summary(&self) -> String {
        format!(
            "{} schedule{} explored, {} distinct finding{}{}",
            self.schedules,
            if self.schedules == 1 { "" } else { "s" },
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" },
            if self.truncated {
                " (TRUNCATED at max_schedules — not exhaustive)"
            } else {
                ""
            }
        )
    }
}

fn hint_for(rule_id: &str) -> &'static str {
    match rule_id {
        rule::RACE => {
            "order the two accesses: protect the data with a SyncMutex or \
             publish it through a release store / acquire load on the SyncProvider seam"
        }
        rule::NON_DETERMINISTIC_FOLD => {
            "fold worker results in trial/worker index order; completion order is \
             schedule-dependent and must never reach an output"
        }
        rule::LOST_CANCEL => {
            "a cancelled trial must still fill its result slot with \
             TrialError::Cancelled — dropping the record leaves a partial merge"
        }
        rule::SCHEDULE_DEADLOCK => {
            "break the wait cycle: acquire locks in one global order and re-check \
             conditions after every wake"
        }
        _ => "re-run ulp-check with the same seed/bound to replay this schedule deterministically",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_dedups_within_and_counts_across_schedules() {
        let mut r = Report::new();
        let f = || Finding::new(rule::RACE, "counter", "boom");
        r.absorb(vec![f(), f()]); // same schedule: one distinct finding
        r.absorb(vec![f()]);
        r.schedules = 2;
        assert_eq!(r.findings().count(), 1);
        assert_eq!(r.findings[0].1, 2);
        assert!(r.has_rule(rule::RACE));
        assert!(!r.has_rule(rule::LOST_CANCEL));
        assert!(!r.is_clean());
    }

    #[test]
    fn erc_and_sarif_carry_the_rule_id() {
        let mut r = Report::new();
        r.absorb(vec![Finding::new(rule::LOST_CANCEL, "slot 3", "hole in gather")
            .with_threads(["worker-0".to_string()])]);
        r.schedules = 1;
        let erc = r.to_erc();
        assert!(!erc.is_clean());
        assert!(erc.find(rule::LOST_CANCEL).is_some());
        let sarif = r.to_sarif("exec/pool-model");
        assert!(sarif.contains("\"ruleId\": \"lost-cancel\""));
        assert!(sarif.contains("exec/pool-model"));
    }

    #[test]
    fn summary_flags_truncation() {
        let mut r = Report::new();
        r.schedules = 3;
        assert!(r.summary().contains("3 schedules"));
        r.truncated = true;
        assert!(r.summary().contains("TRUNCATED"));
    }
}
