//! Property-based tests of the circuit simulator: conservation laws and
//! linear-circuit theorems must hold for arbitrary element values.

use proptest::prelude::*;
use ulp_device::Technology;
use ulp_spice::dcop::DcOperatingPoint;
use ulp_spice::tran::{TranOptions, Transient};
use ulp_spice::{Netlist, Waveform};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any resistive ladder driven by a source satisfies KCL: the
    /// source branch current equals the sum of currents into the
    /// resistor tree (checked via the voltage drops).
    #[test]
    fn resistor_chain_kcl(
        rs in prop::collection::vec(10.0f64..1e6, 2..8),
        v in 0.1f64..10.0
    ) {
        let mut nl = Netlist::new();
        let mut prev = nl.node("n0");
        nl.vsource("V1", prev, Netlist::GROUND, v);
        for (k, &r) in rs.iter().enumerate() {
            let next = nl.node(&format!("n{}", k + 1));
            nl.resistor(&format!("R{k}"), prev, next, r);
            prev = next;
        }
        // Terminate to ground so current flows.
        nl.resistor("Rend", prev, Netlist::GROUND, 1e3);
        let op = DcOperatingPoint::solve(&nl, &Technology::default()).expect("linear solves");
        let total_r: f64 = rs.iter().sum::<f64>() + 1e3;
        let i_expected = v / total_r;
        let i_source = -op.branch_current(&nl, "V1").expect("branch exists");
        // gmin (1e-12 S per node) shunts a little current around
        // high-impedance chains; tolerate its ppm-level contribution.
        prop_assert!((i_source / i_expected - 1.0).abs() < 1e-4);
        // Voltages decrease monotonically down the chain.
        let mut last = v;
        for k in 1..=rs.len() {
            let node = nl.clone().node(&format!("n{k}"));
            let vn = op.voltage(node);
            prop_assert!(vn <= last + 1e-12);
            last = vn;
        }
    }

    /// Superposition: the response to two sources equals the sum of the
    /// responses to each alone (linear network).
    #[test]
    fn superposition_holds(
        v1 in -5.0f64..5.0, v2 in -5.0f64..5.0,
        r1 in 100.0f64..1e5, r2 in 100.0f64..1e5, r3 in 100.0f64..1e5
    ) {
        let build = |va: f64, vb: f64| {
            let mut nl = Netlist::new();
            let a = nl.node("a");
            let b = nl.node("b");
            let m = nl.node("m");
            nl.vsource("VA", a, Netlist::GROUND, va);
            nl.vsource("VB", b, Netlist::GROUND, vb);
            nl.resistor("R1", a, m, r1);
            nl.resistor("R2", b, m, r2);
            nl.resistor("R3", m, Netlist::GROUND, r3);
            let op = DcOperatingPoint::solve(&nl, &Technology::default()).expect("linear");
            op.voltage(m)
        };
        let both = build(v1, v2);
        let only1 = build(v1, 0.0);
        let only2 = build(0.0, v2);
        prop_assert!((both - (only1 + only2)).abs() < 1e-7);
    }

    /// The RC step response always lands on the source value and never
    /// overshoots (first-order system).
    #[test]
    fn rc_step_no_overshoot(
        r_exp in 2.0f64..6.0, c_exp in -9.0f64..-5.0, v in 0.1f64..5.0
    ) {
        let r = 10f64.powf(r_exp);
        let c = 10f64.powf(c_exp);
        let tau = r * c;
        let mut nl = Netlist::new();
        let inp = nl.node("in");
        let out = nl.node("out");
        nl.vsource_wave(
            "V1",
            inp,
            Netlist::GROUND,
            Waveform::Pwl(vec![(0.0, 0.0), (tau * 1e-3, v)]),
        );
        nl.resistor("R1", inp, out, r);
        nl.capacitor("C1", out, Netlist::GROUND, c);
        let opts = TranOptions::new(6.0 * tau, tau / 100.0);
        let tr = Transient::run(&nl, &Technology::default(), &opts).expect("transient");
        let wave = tr.voltage(out);
        for &w in &wave {
            prop_assert!(w <= v * (1.0 + 1e-6), "overshoot: {w} > {v}");
            prop_assert!(w >= -1e-9);
        }
        prop_assert!((tr.final_voltage(out) / v - 1.0).abs() < 0.01);
    }

    /// VCCS gain composes linearly: doubling gm doubles the output.
    #[test]
    fn vccs_linear_in_gm(gm_exp in -6.0f64..-3.0, vin in 0.1f64..2.0) {
        let gm = 10f64.powf(gm_exp);
        let build = |g: f64| {
            let mut nl = Netlist::new();
            let a = nl.node("a");
            let o = nl.node("o");
            nl.vsource("V1", a, Netlist::GROUND, vin);
            nl.vccs("G1", Netlist::GROUND, o, a, Netlist::GROUND, g);
            nl.resistor("RL", o, Netlist::GROUND, 1e3);
            DcOperatingPoint::solve(&nl, &Technology::default())
                .expect("linear")
                .voltage(o)
        };
        let v1 = build(gm);
        let v2 = build(2.0 * gm);
        prop_assert!((v2 / v1 - 2.0).abs() < 1e-6);
    }
}

/// Random-netlist generator for the ERC soundness property: builds a
/// circuit from an arbitrary recipe of element kinds, terminals and
/// values over a small node pool (node 0 = ground).
fn build_random(recipe: &[(u8, usize, usize, f64)]) -> Netlist {
    use ulp_device::load::PmosLoad;
    use ulp_device::{Mosfet, Polarity};
    let mut nl = Netlist::new();
    let node = |nl: &mut Netlist, i: usize| {
        if i == 0 {
            Netlist::GROUND
        } else {
            nl.node(&format!("n{i}"))
        }
    };
    for (k, &(kind, ai, bi, val)) in recipe.iter().enumerate() {
        let a = node(&mut nl, ai);
        let b = node(&mut nl, bi);
        match kind % 7 {
            0 => {
                nl.resistor(&format!("R{k}"), a, b, 10f64.powf(2.0 + 5.0 * val));
            }
            1 => {
                nl.capacitor(&format!("C{k}"), a, b, 10f64.powf(-13.0 + 3.0 * val));
            }
            2 => {
                nl.vsource(&format!("V{k}"), a, b, 2.0 * val - 1.0);
            }
            3 => {
                nl.isource(&format!("I{k}"), a, b, (2.0 * val - 1.0) * 1e-9);
            }
            4 => {
                nl.diode(&format!("D{k}"), a, b, 1e-15, 1.0);
            }
            5 => {
                nl.scl_load(&format!("L{k}"), a, b, PmosLoad::new(0.2), 1e-9);
            }
            _ => {
                // Gate at b, channel a → ground; bulk grounded.
                let dev = Mosfet::new(Polarity::Nmos, 1e-6, 1e-6);
                nl.mosfet(&format!("M{k}"), a, b, Netlist::GROUND, Netlist::GROUND, dev);
            }
        }
    }
    nl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Soundness of the electrical rule check as a pre-solve gate: any
    /// netlist the ERC declares clean must never hit a singular MNA
    /// matrix in the DC operating-point solver. (Non-convergence is a
    /// numerical matter and allowed; a zero pivot is a topological one
    /// and is exactly what the ERC exists to rule out.)
    #[test]
    fn erc_clean_netlists_never_go_singular(
        recipe in prop::collection::vec(
            (0u8..7, 0usize..5, 0usize..5, 0.0f64..1.0),
            2..12
        )
    ) {
        let nl = build_random(&recipe);
        let report = ulp_spice::erc::check(&nl);
        prop_assume!(report.is_clean());
        match DcOperatingPoint::solve(&nl, &Technology::default()) {
            Err(ulp_spice::SimError::Singular { step, unknown, .. }) => {
                prop_assert!(
                    false,
                    "ERC-clean netlist went singular at step {step} ({unknown})"
                );
            }
            Err(ulp_spice::SimError::LinearSolve(e)) => {
                prop_assert!(
                    !matches!(e, ulp_num::lu::SolveError::Singular { .. }),
                    "ERC-clean netlist went singular: {e}"
                );
            }
            // Converged, or a pure convergence failure: both fine here.
            Ok(_) | Err(_) => {}
        }
    }

    /// Completeness in the other direction for the headline rule: a
    /// netlist with a node reachable only through capacitors is always
    /// rejected by the gate, whatever the values involved.
    #[test]
    fn capacitor_isolated_node_always_rejected(
        c in 1e-15f64..1e-9, r in 1e2f64..1e6, v in 0.1f64..2.0
    ) {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let f = nl.node("float");
        nl.vsource("V1", a, Netlist::GROUND, v);
        nl.resistor("R1", a, Netlist::GROUND, r);
        nl.capacitor("C1", a, f, c);
        let err = DcOperatingPoint::solve(&nl, &Technology::default()).unwrap_err();
        match err {
            ulp_spice::SimError::Erc(report) => {
                let d = report
                    .find(ulp_spice::erc::rule::FLOATING_NODE)
                    .expect("floating-node diagnostic");
                prop_assert!(d.nodes.contains(&"float".to_string()));
            }
            other => prop_assert!(false, "expected ERC rejection, got {other}"),
        }
    }

    /// The sparse solver path agrees with the dense path to 1e-12 on
    /// arbitrary ERC-clean nonlinear ladders: a resistor chain with a
    /// grounding resistor at every node (DC path everywhere), plus
    /// diodes sprinkled from the randomness. Ranges keep the system
    /// moderately conditioned — resistances within three decades and a
    /// sub-500 mV rail so no diode clamps hard — because the achievable
    /// backend agreement is κ·ε·‖x‖ and the bound must stay above it.
    #[test]
    fn sparse_dcop_matches_dense_on_random_ladders(
        rs in prop::collection::vec(1e3f64..1e6, 4..9),
        gs in prop::collection::vec(1e4f64..1e6, 4..9),
        diode_mask in prop::collection::vec(any::<bool>(), 4..9),
        vdd in 0.2f64..0.5
    ) {
        use ulp_spice::dcop::NewtonOptions;
        use ulp_spice::mna::SolverKind;
        let n = rs.len().min(gs.len()).min(diode_mask.len());
        let mut nl = Netlist::new();
        let mut prev = nl.node("n0");
        nl.vsource("V1", prev, Netlist::GROUND, vdd);
        for k in 0..n {
            let next = nl.node(&format!("n{}", k + 1));
            nl.resistor(&format!("R{k}"), prev, next, rs[k]);
            nl.resistor(&format!("G{k}"), next, Netlist::GROUND, gs[k]);
            if diode_mask[k] {
                nl.diode(&format!("D{k}"), next, Netlist::GROUND, 1e-14, 1.0);
            }
            prev = next;
        }
        let solve = |solver| {
            // Tight vtol: at the default 1e-9 each backend stops within
            // its own convergence tail, which can differ by more than
            // the equivalence bound being asserted. Damped steps keep
            // the diode exponentials from limit-cycling on the way.
            let opts = NewtonOptions {
                solver,
                vtol: 1e-12,
                max_step: 0.05,
                max_iter: 2000,
                ..NewtonOptions::default()
            };
            DcOperatingPoint::solve_with(&nl, &Technology::default(), &opts)
                .expect("clean ladder solves")
        };
        let dense = solve(SolverKind::Dense);
        let sparse = solve(SolverKind::Sparse);
        for (d, s) in dense.solution().iter().zip(sparse.solution()) {
            prop_assert!((d - s).abs() <= 1e-12, "dense {d} vs sparse {s}");
        }
    }
}

/// One synthetic solver event, parameterized so shrunken cases stay
/// meaningful. Iteration counts are drawn from a narrow range to force
/// percentile ties, and wall times are dyadic rationals so f64 sums
/// are exact in any association order.
fn synth_event(kind: u8, iters: usize, converged: bool, rung: u8) -> ulp_spice::telemetry::Event {
    use ulp_spice::telemetry::Event;
    let seconds = iters as f64 * 0.25;
    match kind % 5 {
        0 => Event::NewtonAttempt {
            analysis: "dcop",
            gmin: 1e-12,
            rung: if rung == 0 { None } else { Some(rung as usize - 1) },
            iterations: iters,
            converged,
            residual: 1e-9,
            max_delta: 1e-6,
            clamps: iters / 2,
            lu_dim: 8,
            lu_swaps: iters,
            lu_symbolic: 1,
            lu_refactor: iters.saturating_sub(1),
            seconds,
        },
        1 => Event::TranStep {
            step: iters,
            time: seconds,
            newton_iterations: iters,
            method: "trapezoidal",
            devices_bypassed: iters / 3,
            seconds,
        },
        2 => Event::AcPoint {
            index: iters,
            freq: 1e3,
            lu_symbolic: usize::from(converged),
            lu_refactor: iters,
            seconds,
        },
        3 => Event::SweepPoint {
            index: iters,
            value: 0.5,
            newton_iterations: iters,
            seconds,
        },
        _ => Event::NoisePoint {
            index: iters,
            freq: 1e3,
            sources: iters,
            seconds,
        },
    }
}

/// The derived statistics the observability pipeline reports; the
/// fold-order contract is stated over these, not over the raw structs
/// (whose internal sample order legitimately differs).
fn derived_stats(m: &ulp_spice::telemetry::SimMetrics) -> (ulp_spice::telemetry::SolverCounters, usize, usize, usize, u64, String) {
    (
        m.counters(),
        m.p50_iterations(),
        m.p95_iterations(),
        m.max_iterations(),
        m.solve_seconds.to_bits(),
        m.summary(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `SimMetrics::merge` is fold-order invariant for every derived
    /// statistic: splitting an event stream into per-worker shards and
    /// folding the shards in *any* order — or not sharding at all —
    /// yields identical counters, percentiles, wall-time total and
    /// summary footer. This is the contract `fold_worker` relies on.
    /// Shards may be empty, streams may be a single event, and the
    /// narrow iteration range forces percentile ties.
    #[test]
    fn sim_metrics_merge_is_fold_order_invariant(
        events in prop::collection::vec((0u8..5, 1usize..5, any::<bool>(), 0u8..3), 0..48),
        shards in 1usize..5,
    ) {
        use ulp_spice::telemetry::SimMetrics;
        // One-pass reference: absorb everything into a single collector.
        let mut reference = SimMetrics::default();
        let evs: Vec<_> = events.iter().map(|&(k, i, c, r)| synth_event(k, i, c, r)).collect();
        for e in &evs {
            reference.absorb(e);
        }
        // Shard round-robin (some shards may stay empty), then fold
        // forward and reverse.
        let mut parts = vec![SimMetrics::default(); shards];
        for (k, e) in evs.iter().enumerate() {
            parts[k % shards].absorb(e);
        }
        let mut forward = SimMetrics::default();
        for p in &parts {
            forward.merge(p);
        }
        let mut reverse = SimMetrics::default();
        for p in parts.iter().rev() {
            reverse.merge(p);
        }
        // Associativity: ((a+b)+c)+... vs a+(b+(c+...)).
        let mut right = parts.last().cloned().unwrap_or_default();
        for p in parts.iter().rev().skip(1) {
            let mut acc = p.clone();
            acc.merge(&right);
            right = acc;
        }
        prop_assert_eq!(derived_stats(&forward), derived_stats(&reference));
        prop_assert_eq!(derived_stats(&reverse), derived_stats(&reference));
        prop_assert_eq!(derived_stats(&right), derived_stats(&reference));
    }
}
