//! Property-based tests of the circuit simulator: conservation laws and
//! linear-circuit theorems must hold for arbitrary element values.

use proptest::prelude::*;
use ulp_device::Technology;
use ulp_spice::dcop::DcOperatingPoint;
use ulp_spice::tran::{TranOptions, Transient};
use ulp_spice::{Netlist, Waveform};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any resistive ladder driven by a source satisfies KCL: the
    /// source branch current equals the sum of currents into the
    /// resistor tree (checked via the voltage drops).
    #[test]
    fn resistor_chain_kcl(
        rs in prop::collection::vec(10.0f64..1e6, 2..8),
        v in 0.1f64..10.0
    ) {
        let mut nl = Netlist::new();
        let mut prev = nl.node("n0");
        nl.vsource("V1", prev, Netlist::GROUND, v);
        for (k, &r) in rs.iter().enumerate() {
            let next = nl.node(&format!("n{}", k + 1));
            nl.resistor(&format!("R{k}"), prev, next, r);
            prev = next;
        }
        // Terminate to ground so current flows.
        nl.resistor("Rend", prev, Netlist::GROUND, 1e3);
        let op = DcOperatingPoint::solve(&nl, &Technology::default()).expect("linear solves");
        let total_r: f64 = rs.iter().sum::<f64>() + 1e3;
        let i_expected = v / total_r;
        let i_source = -op.branch_current(&nl, "V1").expect("branch exists");
        // gmin (1e-12 S per node) shunts a little current around
        // high-impedance chains; tolerate its ppm-level contribution.
        prop_assert!((i_source / i_expected - 1.0).abs() < 1e-4);
        // Voltages decrease monotonically down the chain.
        let mut last = v;
        for k in 1..=rs.len() {
            let node = nl.clone().node(&format!("n{k}"));
            let vn = op.voltage(node);
            prop_assert!(vn <= last + 1e-12);
            last = vn;
        }
    }

    /// Superposition: the response to two sources equals the sum of the
    /// responses to each alone (linear network).
    #[test]
    fn superposition_holds(
        v1 in -5.0f64..5.0, v2 in -5.0f64..5.0,
        r1 in 100.0f64..1e5, r2 in 100.0f64..1e5, r3 in 100.0f64..1e5
    ) {
        let build = |va: f64, vb: f64| {
            let mut nl = Netlist::new();
            let a = nl.node("a");
            let b = nl.node("b");
            let m = nl.node("m");
            nl.vsource("VA", a, Netlist::GROUND, va);
            nl.vsource("VB", b, Netlist::GROUND, vb);
            nl.resistor("R1", a, m, r1);
            nl.resistor("R2", b, m, r2);
            nl.resistor("R3", m, Netlist::GROUND, r3);
            let op = DcOperatingPoint::solve(&nl, &Technology::default()).expect("linear");
            op.voltage(m)
        };
        let both = build(v1, v2);
        let only1 = build(v1, 0.0);
        let only2 = build(0.0, v2);
        prop_assert!((both - (only1 + only2)).abs() < 1e-7);
    }

    /// The RC step response always lands on the source value and never
    /// overshoots (first-order system).
    #[test]
    fn rc_step_no_overshoot(
        r_exp in 2.0f64..6.0, c_exp in -9.0f64..-5.0, v in 0.1f64..5.0
    ) {
        let r = 10f64.powf(r_exp);
        let c = 10f64.powf(c_exp);
        let tau = r * c;
        let mut nl = Netlist::new();
        let inp = nl.node("in");
        let out = nl.node("out");
        nl.vsource_wave(
            "V1",
            inp,
            Netlist::GROUND,
            Waveform::Pwl(vec![(0.0, 0.0), (tau * 1e-3, v)]),
        );
        nl.resistor("R1", inp, out, r);
        nl.capacitor("C1", out, Netlist::GROUND, c);
        let opts = TranOptions::new(6.0 * tau, tau / 100.0);
        let tr = Transient::run(&nl, &Technology::default(), &opts).expect("transient");
        let wave = tr.voltage(out);
        for &w in &wave {
            prop_assert!(w <= v * (1.0 + 1e-6), "overshoot: {w} > {v}");
            prop_assert!(w >= -1e-9);
        }
        prop_assert!((tr.final_voltage(out) / v - 1.0).abs() < 0.01);
    }

    /// VCCS gain composes linearly: doubling gm doubles the output.
    #[test]
    fn vccs_linear_in_gm(gm_exp in -6.0f64..-3.0, vin in 0.1f64..2.0) {
        let gm = 10f64.powf(gm_exp);
        let build = |g: f64| {
            let mut nl = Netlist::new();
            let a = nl.node("a");
            let o = nl.node("o");
            nl.vsource("V1", a, Netlist::GROUND, vin);
            nl.vccs("G1", Netlist::GROUND, o, a, Netlist::GROUND, g);
            nl.resistor("RL", o, Netlist::GROUND, 1e3);
            DcOperatingPoint::solve(&nl, &Technology::default())
                .expect("linear")
                .voltage(o)
        };
        let v1 = build(gm);
        let v2 = build(2.0 * gm);
        prop_assert!((v2 / v1 - 2.0).abs() < 1e-6);
    }
}
