//! Small-signal noise analysis (the `.NOISE` of a classical SPICE).
//!
//! At a solved operating point, every dissipative element injects a
//! stationary noise current:
//!
//! * resistor: thermal, `S_i = 4kT/R` (A²/Hz);
//! * STSCL load: thermal at its small-signal conductance, `4kT·g`;
//! * diode: shot, `S_i = 2q·I_D`;
//! * MOS in weak inversion: shot-limited channel noise, `S_i = 2q·I_D`
//!   (the subthreshold limit of the channel thermal noise — correct for
//!   every device in this workspace's circuits).
//!
//! For each analysis frequency the complex MNA matrix is factored once
//! and back-substituted per source with a unit current injection, giving
//! each element's transfer to the designated output node; the summed
//! PSD is integrated (trapezoidal) over the sweep for the total RMS.
//! Independent sources are quiet (their AC magnitudes are ignored
//! here).

use crate::dcop::DcOperatingPoint;
use crate::error::SimError;
use crate::mna::voltage_of;
use crate::netlist::{Element, Netlist, Node};
use crate::telemetry::{self, Event, Tracer};
use std::time::Instant;
use ulp_device::Technology;
use ulp_num::lu::ComplexLuFactor;
use ulp_num::{Complex, ComplexMatrix};

/// Boltzmann constant, J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;
/// Elementary charge, C.
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;

/// One element's noise contribution.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseContribution {
    /// Element instance name.
    pub name: String,
    /// Integrated output-referred noise power over the sweep, V².
    pub output_power: f64,
}

/// Result of a noise analysis.
#[derive(Debug, Clone)]
pub struct NoiseReport {
    /// Analysis frequencies, Hz.
    pub freqs: Vec<f64>,
    /// Output noise voltage PSD per frequency, V²/Hz.
    pub output_psd: Vec<f64>,
    /// Per-element integrated contributions, netlist order.
    pub contributions: Vec<NoiseContribution>,
    /// Total output-referred RMS noise over the sweep band, V.
    pub output_rms: f64,
}

impl NoiseReport {
    /// The dominant noise contributor.
    pub fn worst_offender(&self) -> Option<&NoiseContribution> {
        self.contributions
            .iter()
            .max_by(|a, b| {
                a.output_power
                    .partial_cmp(&b.output_power)
                    .expect("finite powers")
            })
    }
}

/// A noise source description: injection nodes + current PSD.
struct Source {
    name: String,
    p: Node,
    n: Node,
    psd: f64, // A²/Hz
}

fn noise_sources(nl: &Netlist, tech: &Technology, op: &DcOperatingPoint) -> Vec<Source> {
    let x = op.solution();
    let kt4 = 4.0 * BOLTZMANN * tech.temperature;
    let mut out = Vec::new();
    for e in nl.elements() {
        match e {
            Element::Resistor { name, a, b, ohms } => out.push(Source {
                name: name.clone(),
                p: *a,
                n: *b,
                psd: kt4 / ohms,
            }),
            Element::SclLoad { name, a, b, load, iss } => {
                let v = voltage_of(x, *a) - voltage_of(x, *b);
                out.push(Source {
                    name: name.clone(),
                    p: *a,
                    n: *b,
                    psd: kt4 * load.conductance(v, *iss),
                });
            }
            Element::Diode { name, p, n, is_sat, n_id } => {
                let v = voltage_of(x, *p) - voltage_of(x, *n);
                let vt = n_id * tech.thermal_voltage();
                let i = (is_sat * ((v / vt).min(40.0).exp() - 1.0)).abs();
                out.push(Source {
                    name: name.clone(),
                    p: *p,
                    n: *n,
                    psd: 2.0 * ELEMENTARY_CHARGE * (i + is_sat),
                });
            }
            Element::Mos { name, d, g, s, b, dev } => {
                let vb = voltage_of(x, *b);
                let mos = dev.operating_point(
                    tech,
                    voltage_of(x, *g) - vb,
                    voltage_of(x, *s) - vb,
                    voltage_of(x, *d) - vb,
                );
                out.push(Source {
                    name: name.clone(),
                    p: *d,
                    n: *s,
                    psd: 2.0 * ELEMENTARY_CHARGE * mos.id.abs(),
                });
            }
            _ => {}
        }
    }
    out
}

/// Builds the small-signal MNA matrix at one frequency (identical to
/// the AC analysis stamps, sources quiet).
fn small_signal_matrix(
    nl: &Netlist,
    tech: &Technology,
    op: &DcOperatingPoint,
    freq: f64,
) -> ComplexMatrix {
    let nn = nl.node_count() - 1;
    let dim = nl.unknown_count();
    let omega = 2.0 * std::f64::consts::PI * freq;
    let x = op.solution();
    let mut m = ComplexMatrix::zeros(dim, dim);
    let idx = |node: Node| -> Option<usize> {
        if node.is_ground() {
            None
        } else {
            Some(node.index() - 1)
        }
    };
    let admittance = |mm: &mut ComplexMatrix, p: Node, n: Node, y: Complex| {
        if let Some(i) = idx(p) {
            mm[(i, i)] += y;
            if let Some(j) = idx(n) {
                mm[(i, j)] -= y;
            }
        }
        if let Some(j) = idx(n) {
            mm[(j, j)] += y;
            if let Some(i) = idx(p) {
                mm[(j, i)] -= y;
            }
        }
    };
    let transconductance = |mm: &mut ComplexMatrix, p: Node, n: Node, cp: Node, cn: Node, gm: f64| {
        for (out, sign) in [(p, 1.0), (n, -1.0)] {
            if let Some(r) = idx(out) {
                if let Some(c) = idx(cp) {
                    mm[(r, c)] += Complex::from_re(sign * gm);
                }
                if let Some(c) = idx(cn) {
                    mm[(r, c)] -= Complex::from_re(sign * gm);
                }
            }
        }
    };
    for i in 0..nn {
        m[(i, i)] += Complex::from_re(1e-15);
    }
    let mut branch = nn;
    for e in nl.elements() {
        match e {
            Element::Resistor { a, b, ohms, .. } => {
                admittance(&mut m, *a, *b, Complex::from_re(1.0 / ohms));
            }
            Element::Capacitor { a, b, farads, .. } => {
                admittance(&mut m, *a, *b, Complex::new(0.0, omega * farads));
            }
            Element::Vsource { p, n, .. } | Element::Vcvs { p, n, .. } => {
                let rb = branch;
                branch += 1;
                if let Some(i) = idx(*p) {
                    m[(i, rb)] += Complex::ONE;
                    m[(rb, i)] += Complex::ONE;
                }
                if let Some(j) = idx(*n) {
                    m[(j, rb)] -= Complex::ONE;
                    m[(rb, j)] -= Complex::ONE;
                }
                if let Element::Vcvs { cp, cn, gain, .. } = e {
                    if let Some(c) = idx(*cp) {
                        m[(rb, c)] -= Complex::from_re(*gain);
                    }
                    if let Some(c) = idx(*cn) {
                        m[(rb, c)] += Complex::from_re(*gain);
                    }
                }
            }
            Element::Isource { .. } => {}
            Element::Vccs { p, n, cp, cn, gm, .. } => {
                transconductance(&mut m, *p, *n, *cp, *cn, *gm);
            }
            Element::Diode { p, n, is_sat, n_id, .. } => {
                let v = voltage_of(op.solution(), *p) - voltage_of(op.solution(), *n);
                let vt = n_id * tech.thermal_voltage();
                let g = (is_sat / vt * (v / vt).min(40.0).exp()).max(1e-18);
                admittance(&mut m, *p, *n, Complex::from_re(g));
            }
            Element::Mos { d, g, s, b, dev, .. } => {
                let vb = voltage_of(x, *b);
                let mos = dev.operating_point(
                    tech,
                    voltage_of(x, *g) - vb,
                    voltage_of(x, *s) - vb,
                    voltage_of(x, *d) - vb,
                );
                transconductance(&mut m, *d, *s, *g, *b, mos.gm);
                transconductance(&mut m, *d, *s, *s, *b, mos.gms);
                transconductance(&mut m, *d, *s, *d, *b, mos.gds);
            }
            Element::SclLoad { a, b, load, iss, .. } => {
                let v = voltage_of(x, *a) - voltage_of(x, *b);
                admittance(&mut m, *a, *b, Complex::from_re(load.conductance(v, *iss).max(1e-18)));
            }
        }
    }
    m
}

/// Runs the noise analysis: output-referred noise at `output` over the
/// frequency sweep `freqs` (must be ascending for the integration).
///
/// # Errors
///
/// [`SimError::LinearSolve`] if the small-signal system is singular;
/// [`SimError::BadParameter`] for an unusable sweep.
pub fn noise_analysis(
    nl: &Netlist,
    tech: &Technology,
    op: &DcOperatingPoint,
    output: Node,
    freqs: &[f64],
) -> Result<NoiseReport, SimError> {
    telemetry::with_tracer(|tracer| noise_analysis_traced(nl, tech, op, output, freqs, tracer))
}

/// [`noise_analysis`] recording telemetry on the given tracer: one
/// [`Event::NoisePoint`] per analysis frequency (with the number of
/// noise sources back-substituted at that point).
///
/// # Errors
///
/// As for [`noise_analysis`].
pub fn noise_analysis_traced(
    nl: &Netlist,
    tech: &Technology,
    op: &DcOperatingPoint,
    output: Node,
    freqs: &[f64],
    tracer: &mut dyn Tracer,
) -> Result<NoiseReport, SimError> {
    if freqs.len() < 2 || freqs.windows(2).any(|w| w[1] <= w[0]) {
        return Err(SimError::BadParameter(
            "noise sweep needs at least two ascending frequencies".to_string(),
        ));
    }
    if output.is_ground() {
        return Err(SimError::BadParameter(
            "output node must not be ground".to_string(),
        ));
    }
    let sources = noise_sources(nl, tech, op);
    let dim = nl.unknown_count();
    let out_idx = output.index() - 1;
    let mut output_psd = Vec::with_capacity(freqs.len());
    // Per-source PSD at each frequency for the contribution integrals.
    let mut per_source: Vec<Vec<f64>> = vec![Vec::with_capacity(freqs.len()); sources.len()];
    let enabled = tracer.enabled();
    for (fi, &f) in freqs.iter().enumerate() {
        let t0 = enabled.then(Instant::now);
        let m = small_signal_matrix(nl, tech, op, f);
        let lu = ComplexLuFactor::new(&m)?;
        let mut total = 0.0;
        for (k, src) in sources.iter().enumerate() {
            let mut rhs = vec![Complex::ZERO; dim];
            // Unit noise current drawn from p, injected into n.
            if !src.p.is_ground() {
                rhs[src.p.index() - 1] -= Complex::ONE;
            }
            if !src.n.is_ground() {
                rhs[src.n.index() - 1] += Complex::ONE;
            }
            let x = lu.solve(&rhs)?;
            let transfer = x[out_idx].norm_sqr(); // |Z|² (V/A)²
            let psd = transfer * src.psd;
            per_source[k].push(psd);
            total += psd;
        }
        output_psd.push(total);
        if let Some(t0) = t0 {
            tracer.record(&Event::NoisePoint {
                index: fi,
                freq: f,
                sources: sources.len(),
                seconds: t0.elapsed().as_secs_f64(),
            });
        }
    }
    // Trapezoidal integration over the sweep.
    let integrate = |ys: &[f64]| -> f64 {
        freqs
            .windows(2)
            .zip(ys.windows(2))
            .map(|(fw, yw)| 0.5 * (yw[0] + yw[1]) * (fw[1] - fw[0]))
            .sum()
    };
    let contributions: Vec<NoiseContribution> = sources
        .iter()
        .zip(&per_source)
        .map(|(s, psd)| NoiseContribution {
            name: s.name.clone(),
            output_power: integrate(psd),
        })
        .collect();
    let total_power = integrate(&output_psd);
    Ok(NoiseReport {
        freqs: freqs.to_vec(),
        output_psd,
        contributions,
        output_rms: total_power.sqrt(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcop::DcOperatingPoint;
    use ulp_num::interp::decade_sweep;

    fn tech() -> Technology {
        Technology::default()
    }

    #[test]
    fn rc_integrated_noise_is_kt_over_c() {
        // The textbook exact result: total output noise of an RC
        // low-pass is kT/C, independent of R.
        let c = 1e-12;
        for r in [1e3, 1e6] {
            let mut nl = Netlist::new();
            let a = nl.node("a");
            nl.resistor("R1", a, Netlist::GROUND, r);
            nl.capacitor("C1", a, Netlist::GROUND, c);
            // Need one source for a well-posed OP (quiet in noise runs).
            nl.isource("I0", Netlist::GROUND, a, 0.0);
            let op = DcOperatingPoint::solve(&nl, &tech()).unwrap();
            // Sweep far past the pole so the integral converges.
            let f_pole = 1.0 / (2.0 * std::f64::consts::PI * r * c);
            let freqs = decade_sweep(f_pole * 1e-4, f_pole * 1e4, 60);
            let rep = noise_analysis(&nl, &tech(), &op, a, &freqs).unwrap();
            let expect = (BOLTZMANN * 300.0 / c).sqrt();
            assert!(
                (rep.output_rms / expect - 1.0).abs() < 0.02,
                "R={r}: rms {:.3e} vs kT/C {:.3e}",
                rep.output_rms,
                expect
            );
        }
    }

    #[test]
    fn resistor_psd_is_4ktr_at_low_frequency() {
        let r = 1e5;
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.resistor("R1", a, Netlist::GROUND, r);
        nl.capacitor("C1", a, Netlist::GROUND, 1e-15);
        nl.isource("I0", Netlist::GROUND, a, 0.0);
        let op = DcOperatingPoint::solve(&nl, &tech()).unwrap();
        let rep = noise_analysis(&nl, &tech(), &op, a, &[1.0, 2.0]).unwrap();
        // S_v = 4kTR well below the pole.
        let expect = 4.0 * BOLTZMANN * 300.0 * r;
        assert!((rep.output_psd[0] / expect - 1.0).abs() < 1e-3);
    }

    #[test]
    fn series_resistors_sum_like_one() {
        let build = |split: bool| {
            let mut nl = Netlist::new();
            let a = nl.node("a");
            if split {
                let m = nl.node("m");
                nl.resistor("R1", a, m, 5e4);
                nl.resistor("R2", m, Netlist::GROUND, 5e4);
            } else {
                nl.resistor("R1", a, Netlist::GROUND, 1e5);
            }
            nl.capacitor("C1", a, Netlist::GROUND, 1e-12);
            nl.isource("I0", Netlist::GROUND, a, 0.0);
            let op = DcOperatingPoint::solve(&nl, &tech()).unwrap();
            let freqs = decade_sweep(1.0, 1e10, 40);
            noise_analysis(&nl, &tech(), &op, a, &freqs)
                .unwrap()
                .output_rms
        };
        let one = build(false);
        let two = build(true);
        assert!((one / two - 1.0).abs() < 0.02, "{one:e} vs {two:e}");
    }

    #[test]
    fn mos_shot_noise_at_amplifier_output() {
        // Common-source stage: output PSD at low f ≈ 2qI·R_out² +
        // 4kT/R·R_out² with R_out = RD ∥ rds.
        let t = tech();
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let g = nl.node("g");
        let d = nl.node("d");
        nl.vsource("VDD", vdd, Netlist::GROUND, 1.2);
        nl.vsource("VG", g, Netlist::GROUND, 0.35);
        nl.resistor("RD", vdd, d, 10e6);
        let dev = ulp_device::Mosfet::new(ulp_device::Polarity::Nmos, 2e-6, 1e-6);
        nl.mosfet("M1", d, g, Netlist::GROUND, Netlist::GROUND, dev);
        nl.capacitor("CL", d, Netlist::GROUND, 1e-13);
        let op = DcOperatingPoint::solve(&nl, &t).unwrap();
        let mos = dev.operating_point(&t, 0.35, 0.0, op.voltage(d));
        let r_out = 1.0 / (1.0 / 10e6 + mos.gds);
        let expect = (2.0 * ELEMENTARY_CHARGE * mos.id + 4.0 * BOLTZMANN * 300.0 / 10e6)
            * r_out
            * r_out;
        let rep = noise_analysis(&nl, &t, &op, d, &[1.0, 2.0]).unwrap();
        assert!(
            (rep.output_psd[0] / expect - 1.0).abs() < 0.05,
            "psd {:.3e} vs {:.3e}",
            rep.output_psd[0],
            expect
        );
        // The named contributions identify the offender.
        let worst = rep.worst_offender().unwrap();
        assert!(worst.name == "M1" || worst.name == "RD");
    }

    #[test]
    fn traced_noise_records_sources_per_point() {
        use crate::telemetry::{Event, MetricsCollector, TraceMode};
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.resistor("R1", a, Netlist::GROUND, 1e5);
        nl.capacitor("C1", a, Netlist::GROUND, 1e-12);
        nl.isource("I0", Netlist::GROUND, a, 0.0);
        let op = DcOperatingPoint::solve(&nl, &tech()).unwrap();
        let mut mc = MetricsCollector::new(TraceMode::Events);
        let rep =
            noise_analysis_traced(&nl, &tech(), &op, a, &[1.0, 10.0, 100.0], &mut mc).unwrap();
        assert_eq!(rep.freqs.len(), 3);
        assert_eq!(mc.metrics().noise_points, 3);
        for e in mc.events() {
            if let Event::NoisePoint { sources, .. } = &e.event {
                assert_eq!(*sources, 1); // only R1 makes noise
            }
        }
    }

    #[test]
    fn bad_sweeps_rejected() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.resistor("R1", a, Netlist::GROUND, 1e3);
        nl.isource("I0", Netlist::GROUND, a, 0.0);
        let op = DcOperatingPoint::solve(&nl, &tech()).unwrap();
        assert!(matches!(
            noise_analysis(&nl, &tech(), &op, a, &[1.0]),
            Err(SimError::BadParameter(_))
        ));
        assert!(matches!(
            noise_analysis(&nl, &tech(), &op, a, &[2.0, 1.0]),
            Err(SimError::BadParameter(_))
        ));
        assert!(matches!(
            noise_analysis(&nl, &tech(), &op, Netlist::GROUND, &[1.0, 2.0]),
            Err(SimError::BadParameter(_))
        ));
    }
}
