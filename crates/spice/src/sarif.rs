//! SARIF 2.1.0 export for design lint reports.
//!
//! [Static Analysis Results Interchange Format][sarif] is the exchange
//! format code-review tooling (GitHub code scanning, VS Code SARIF
//! viewers) ingests, which makes the design lints of [`crate::lint`]
//! reviewable next to software lints. [`to_sarif`] renders an
//! [`ErcReport`] as one SARIF run: the rule catalogue comes from the
//! lint registry ([`crate::lint::REGISTRY`]), each [`Diagnostic`]
//! becomes a `result` whose location is the linted netlist (as an
//! artifact URI) plus logical locations for the named nodes and
//! elements.
//!
//! The emitter is hand-rendered (no serde in the workspace) and fully
//! deterministic: same report in, byte-identical JSON out, so exports
//! can be golden-tested and diffed in CI. A minimal recursive-descent
//! JSON reader ([`parse_json`]) rides along so the bench binary and the
//! tests can validate emitted files without external tooling.
//!
//! [sarif]: https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html

use crate::diag::{Diagnostic, ErcReport, Severity};
use crate::lint::{self, LintLevel};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The SARIF schema this module emits.
pub const SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";
/// The SARIF spec version.
pub const VERSION: &str = "2.1.0";
/// Tool name recorded in `runs[].tool.driver.name`.
pub const TOOL_NAME: &str = "ulp-lint";

/// SARIF `level` for a diagnostic severity: errors map to `error`,
/// warnings to `warning`, infos to `note`.
fn level_of(severity: Severity) -> &'static str {
    match severity {
        Severity::Error => "error",
        Severity::Warning => "warning",
        Severity::Info => "note",
    }
}

/// Escapes a string for embedding in a JSON string literal (RFC 8259:
/// quote, backslash and control characters; everything else passes
/// through as UTF-8).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn push_result(out: &mut String, d: &Diagnostic, artifact: &str, indent: &str) {
    let _ = write!(
        out,
        "{indent}{{\n\
         {indent}  \"ruleId\": \"{}\",\n\
         {indent}  \"level\": \"{}\",\n\
         {indent}  \"message\": {{ \"text\": \"{}\" }},\n",
        escape(d.rule),
        level_of(d.severity),
        escape(&d.message)
    );
    if !d.hint.is_empty() {
        let _ = writeln!(
            out,
            "{indent}  \"properties\": {{ \"hint\": \"{}\" }},",
            escape(&d.hint)
        );
    }
    // One physical location (the netlist artifact) carrying the logical
    // locations of the nodes and elements the diagnostic names.
    let _ = write!(
        out,
        "{indent}  \"locations\": [\n\
         {indent}    {{\n\
         {indent}      \"physicalLocation\": {{\n\
         {indent}        \"artifactLocation\": {{ \"uri\": \"{}\" }}\n\
         {indent}      }}",
        escape(artifact)
    );
    let logicals: Vec<(&str, &String)> = d
        .nodes
        .iter()
        .map(|n| ("node", n))
        .chain(d.elements.iter().map(|e| ("element", e)))
        .collect();
    if logicals.is_empty() {
        out.push('\n');
    } else {
        let _ = writeln!(out, ",\n{indent}      \"logicalLocations\": [");
        for (i, (kind, name)) in logicals.iter().enumerate() {
            let comma = if i + 1 < logicals.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "{indent}        {{ \"kind\": \"{kind}\", \"name\": \"{}\" }}{comma}",
                escape(name)
            );
        }
        let _ = writeln!(out, "{indent}      ]");
    }
    let _ = write!(out, "{indent}    }}\n{indent}  ]\n{indent}}}");
}

/// Renders `report` as a complete SARIF 2.1.0 log with one run.
///
/// `artifact` names the linted netlist and lands in every result's
/// `artifactLocation.uri` (e.g. `netlists/scl-buffer-1n`). The rule
/// catalogue in `tool.driver.rules` lists the full lint registry with
/// each rule's group and *default* level, so consumers can resolve
/// `ruleId`s even for rules that produced no findings.
///
/// Output is deterministic: report order is already content-sorted by
/// [`ErcReport::sort`] and the registry order is fixed, so identical
/// reports serialise byte-identically.
pub fn to_sarif(report: &ErcReport, artifact: &str) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"$schema\": \"{SCHEMA}\",\n  \"version\": \"{VERSION}\",\n  \
         \"runs\": [\n    {{\n      \"tool\": {{\n        \"driver\": {{\n          \
         \"name\": \"{TOOL_NAME}\",\n          \"informationUri\": \
         \"https://example.invalid/ulp-lint\",\n          \"rules\": [\n"
    );
    for (i, r) in lint::REGISTRY.iter().enumerate() {
        let comma = if i + 1 < lint::REGISTRY.len() { "," } else { "" };
        let configured = match r.default_level {
            LintLevel::Allow => "\"enabled\": false, \"level\": \"none\"",
            LintLevel::Warn => "\"enabled\": true, \"level\": \"warning\"",
            LintLevel::Deny => "\"enabled\": true, \"level\": \"error\"",
        };
        let _ = writeln!(
            out,
            "            {{ \"id\": \"{}\", \"shortDescription\": {{ \"text\": \
             \"{}\" }}, \"defaultConfiguration\": {{ {configured} }}, \
             \"properties\": {{ \"group\": \"{}\" }} }}{comma}",
            escape(r.code),
            escape(r.summary),
            r.group.name()
        );
    }
    let _ = write!(
        out,
        "          ]\n        }}\n      }},\n      \"artifacts\": [\n        \
         {{ \"location\": {{ \"uri\": \"{}\" }} }}\n      ],\n      \
         \"results\": [",
        escape(artifact)
    );
    let diags = report.diagnostics();
    if diags.is_empty() {
        out.push_str("]\n");
    } else {
        out.push('\n');
        for (i, d) in diags.iter().enumerate() {
            push_result(&mut out, d, artifact, "        ");
            out.push_str(if i + 1 < diags.len() { ",\n" } else { "\n" });
        }
        out.push_str("      ]\n");
    }
    out.push_str("    }\n  ]\n}\n");
    out
}

// ---------------------------------------------------------------------
// Minimal JSON reader, for validating emitted SARIF.
// ---------------------------------------------------------------------

/// A parsed JSON value.
///
/// Objects use a [`BTreeMap`] so re-serialisation and comparison are
/// order-independent; SARIF key order is not semantically meaningful.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as f64; SARIF uses none we would truncate).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup on an object, `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Index into an array, `None` otherwise.
    pub fn idx(&self, i: usize) -> Option<&JsonValue> {
        match self {
            JsonValue::Arr(v) => v.get(i),
            _ => None,
        }
    }

    /// The string payload, `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, `None` for non-arrays.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The numeric payload, `None` for non-numbers.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }
}

/// Parses one JSON document (rejecting trailing garbage).
///
/// # Errors
///
/// A human-readable description of the first syntax error, with its byte
/// offset.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => Err(format!("unexpected end or byte at {}", *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(JsonValue::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogate pairs are not emitted by this crate;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let s = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {}", *pos))?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ErcReport {
        let mut r = ErcReport::new();
        r.push(
            Diagnostic::new(
                Severity::Warning,
                crate::lint::rule::WEAK_INVERSION,
                "`M1` would run at inversion coefficient 7.1",
            )
            .with_elements(["M1".to_string()])
            .with_hint("widen W/L"),
        );
        r.push(
            Diagnostic::new(
                Severity::Error,
                crate::erc::rule::FLOATING_NODE,
                "node `x` has no DC path to ground",
            )
            .with_nodes(["x".to_string()]),
        );
        r.push(Diagnostic::new(
            Severity::Info,
            crate::erc::rule::ZERO_VALUE_SOURCE,
            "`I1` has zero value \"quoted\"\n",
        ));
        r.sort();
        r
    }

    /// The satellite acceptance test: the export parses as JSON and the
    /// severity/rule/location of every diagnostic round-trips.
    #[test]
    fn sarif_round_trips_severity_rule_and_location() {
        let report = sample_report();
        let sarif = to_sarif(&report, "netlists/unit-test");
        let doc = parse_json(&sarif).expect("emitted SARIF must parse");
        assert_eq!(
            doc.get("version").and_then(JsonValue::as_str),
            Some(VERSION)
        );
        let run = doc.get("runs").and_then(|r| r.idx(0)).expect("one run");
        assert_eq!(
            run.get("tool")
                .and_then(|t| t.get("driver"))
                .and_then(|d| d.get("name"))
                .and_then(JsonValue::as_str),
            Some(TOOL_NAME)
        );
        // Rule catalogue covers the whole registry.
        let rules = run
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(JsonValue::as_arr)
            .expect("rules");
        assert_eq!(rules.len(), crate::lint::REGISTRY.len());
        // Results mirror the report, in report order.
        let results = run
            .get("results")
            .and_then(JsonValue::as_arr)
            .expect("results");
        assert_eq!(results.len(), report.diagnostics().len());
        for (res, d) in results.iter().zip(report.diagnostics()) {
            assert_eq!(
                res.get("ruleId").and_then(JsonValue::as_str),
                Some(d.rule)
            );
            let level = match d.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
                Severity::Info => "note",
            };
            assert_eq!(res.get("level").and_then(JsonValue::as_str), Some(level));
            assert_eq!(
                res.get("message")
                    .and_then(|m| m.get("text"))
                    .and_then(JsonValue::as_str),
                Some(d.message.as_str())
            );
            let uri = res
                .get("locations")
                .and_then(|l| l.idx(0))
                .and_then(|l| l.get("physicalLocation"))
                .and_then(|p| p.get("artifactLocation"))
                .and_then(|a| a.get("uri"))
                .and_then(JsonValue::as_str);
            assert_eq!(uri, Some("netlists/unit-test"));
        }
        // The error result leads (report is severity-sorted) and carries
        // its node as a logical location.
        let first = &results[0];
        assert_eq!(
            first.get("ruleId").and_then(JsonValue::as_str),
            Some("floating-node")
        );
        let logical = first
            .get("locations")
            .and_then(|l| l.idx(0))
            .and_then(|l| l.get("logicalLocations"))
            .and_then(|a| a.idx(0))
            .expect("logical location");
        assert_eq!(
            logical.get("name").and_then(JsonValue::as_str),
            Some("x")
        );
        assert_eq!(
            logical.get("kind").and_then(JsonValue::as_str),
            Some("node")
        );
    }

    /// Golden structure: the export is byte-stable for a fixed report.
    #[test]
    fn sarif_export_is_byte_stable() {
        let a = to_sarif(&sample_report(), "netlists/unit-test");
        let b = to_sarif(&sample_report(), "netlists/unit-test");
        assert_eq!(a, b);
        // Golden prefix: the header never drifts silently.
        let expected_head = format!(
            "{{\n  \"$schema\": \"{SCHEMA}\",\n  \"version\": \"2.1.0\",\n  \"runs\": ["
        );
        assert!(a.starts_with(&expected_head), "header drifted:\n{a}");
        // And it stays parseable with escapes intact.
        let doc = parse_json(&a).unwrap();
        let msg = doc
            .get("runs")
            .and_then(|r| r.idx(0))
            .and_then(|r| r.get("results"))
            .and_then(|r| r.idx(2))
            .and_then(|r| r.get("message"))
            .and_then(|m| m.get("text"))
            .and_then(JsonValue::as_str)
            .unwrap();
        assert_eq!(msg, "`I1` has zero value \"quoted\"\n");
    }

    #[test]
    fn empty_report_is_valid_sarif_with_no_results() {
        let sarif = to_sarif(&ErcReport::new(), "netlists/clean");
        let doc = parse_json(&sarif).expect("must parse");
        let results = doc
            .get("runs")
            .and_then(|r| r.idx(0))
            .and_then(|r| r.get("results"))
            .and_then(JsonValue::as_arr)
            .expect("results array present");
        assert!(results.is_empty());
    }

    #[test]
    fn json_reader_handles_core_forms() {
        let v = parse_json(
            r#"{"a": [1, -2.5e3, true, false, null], "b": {"nested": "xA\n"}}"#,
        )
        .unwrap();
        assert_eq!(v.get("a").and_then(|a| a.idx(1)), Some(&JsonValue::Num(-2.5e3)));
        assert_eq!(
            v.get("b").and_then(|b| b.get("nested")).and_then(JsonValue::as_str),
            Some("xA\n")
        );
        assert!(parse_json("{\"unterminated\": ").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{} trailing").is_err());
    }
}
