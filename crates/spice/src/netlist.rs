//! Circuit description: nodes, elements, stimulus waveforms.
//!
//! A [`Netlist`] is a flat element list over named nodes, built with
//! ordinary method calls (no text parser — netlists in this workspace
//! are constructed programmatically by the analog block generators).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use ulp_device::load::PmosLoad;
use ulp_device::Mosfet;

/// A circuit node handle. `Netlist::GROUND` is the reference node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Node(pub(crate) usize);

impl Node {
    /// Index into the netlist's node table (0 = ground).
    pub fn index(self) -> usize {
        self.0
    }

    /// True for the reference node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Time-domain stimulus for independent sources.
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// Trapezoidal pulse train.
    Pulse {
        /// Initial value.
        v0: f64,
        /// Pulsed value.
        v1: f64,
        /// Delay before the first edge, s.
        delay: f64,
        /// Rise time, s (must be > 0).
        rise: f64,
        /// Fall time, s (must be > 0).
        fall: f64,
        /// Time at `v1` between edges, s.
        width: f64,
        /// Repetition period, s (0 = single pulse).
        period: f64,
    },
    /// Sinusoid `offset + amp·sin(2πf·(t − delay))` (0 before `delay`...
    /// the sine starts at its zero crossing).
    Sine {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        amp: f64,
        /// Frequency, Hz.
        freq: f64,
        /// Start delay, s.
        delay: f64,
    },
    /// Piecewise-linear in `(time, value)` points (must be sorted by
    /// time; clamps outside the range).
    Pwl(Vec<(f64, f64)>),
}

impl Waveform {
    /// Value at time `t` (seconds). For DC analyses call with `t = 0`.
    pub fn at(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse {
                v0,
                v1,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *v0;
                }
                let mut tau = t - delay;
                if *period > 0.0 {
                    tau %= period;
                }
                if tau < *rise {
                    v0 + (v1 - v0) * tau / rise
                } else if tau < rise + width {
                    *v1
                } else if tau < rise + width + fall {
                    v1 + (v0 - v1) * (tau - rise - width) / fall
                } else {
                    *v0
                }
            }
            Waveform::Sine {
                offset,
                amp,
                freq,
                delay,
            } => {
                if t < *delay {
                    *offset
                } else {
                    offset + amp * (2.0 * std::f64::consts::PI * freq * (t - delay)).sin()
                }
            }
            Waveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                if t >= points[points.len() - 1].0 {
                    return points[points.len() - 1].1;
                }
                let i = points.partition_point(|p| p.0 < t).max(1);
                let (t0, v0) = points[i - 1];
                let (t1, v1) = points[i];
                v0 + (v1 - v0) * (t - t0) / (t1 - t0)
            }
        }
    }

    /// The DC (t = 0) value.
    pub fn dc(&self) -> f64 {
        self.at(0.0)
    }
}

/// One circuit element. Constructed through the [`Netlist`] builder
/// methods, stored publicly so analyses can walk the list.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// Linear resistor between `a` and `b`.
    Resistor {
        /// Instance name.
        name: String,
        /// First terminal.
        a: Node,
        /// Second terminal.
        b: Node,
        /// Resistance, Ω (> 0).
        ohms: f64,
    },
    /// Linear capacitor between `a` and `b`.
    Capacitor {
        /// Instance name.
        name: String,
        /// First terminal.
        a: Node,
        /// Second terminal.
        b: Node,
        /// Capacitance, F (> 0).
        farads: f64,
    },
    /// Independent voltage source from `p` (+) to `n` (−); adds one MNA
    /// branch unknown.
    Vsource {
        /// Instance name.
        name: String,
        /// Positive terminal.
        p: Node,
        /// Negative terminal.
        n: Node,
        /// Large-signal stimulus.
        wave: Waveform,
        /// AC magnitude for small-signal analysis, V.
        ac: f64,
    },
    /// Independent current source pushing current from `p` through the
    /// external circuit into `n` (SPICE convention: positive current
    /// flows `p → n` *inside* the source, i.e. it is drawn out of `n`
    /// and into `p`... here we use the simpler convention: the source
    /// injects `i` into node `n` and removes `i` from node `p`).
    Isource {
        /// Instance name.
        name: String,
        /// Terminal the current is drawn from.
        p: Node,
        /// Terminal the current is injected into.
        n: Node,
        /// Large-signal stimulus, A.
        wave: Waveform,
        /// AC magnitude for small-signal analysis, A.
        ac: f64,
    },
    /// Voltage-controlled voltage source `V(p,n) = gain·V(cp,cn)`; adds
    /// one branch unknown.
    Vcvs {
        /// Instance name.
        name: String,
        /// Positive output terminal.
        p: Node,
        /// Negative output terminal.
        n: Node,
        /// Positive controlling terminal.
        cp: Node,
        /// Negative controlling terminal.
        cn: Node,
        /// Voltage gain.
        gain: f64,
    },
    /// Voltage-controlled current source: injects `gm·V(cp,cn)` into `n`
    /// and removes it from `p`.
    Vccs {
        /// Instance name.
        name: String,
        /// Terminal the current is drawn from.
        p: Node,
        /// Terminal the current is injected into.
        n: Node,
        /// Positive controlling terminal.
        cp: Node,
        /// Negative controlling terminal.
        cn: Node,
        /// Transconductance, S.
        gm: f64,
    },
    /// Junction diode from `p` (anode) to `n` (cathode):
    /// `I = Is·(e^{V/(n_id·UT)} − 1)`.
    Diode {
        /// Instance name.
        name: String,
        /// Anode.
        p: Node,
        /// Cathode.
        n: Node,
        /// Saturation current, A.
        is_sat: f64,
        /// Ideality factor.
        n_id: f64,
    },
    /// EKV MOS device with explicit bulk terminal.
    Mos {
        /// Instance name.
        name: String,
        /// Drain.
        d: Node,
        /// Gate.
        g: Node,
        /// Source.
        s: Node,
        /// Bulk/well.
        b: Node,
        /// Sized device instance.
        dev: Mosfet,
    },
    /// Replica-calibrated STSCL load: conducts
    /// [`PmosLoad::current`]`(V(a) − V(b), iss)` from `a` to `b`.
    SclLoad {
        /// Instance name.
        name: String,
        /// Supply-side terminal.
        a: Node,
        /// Output-side terminal.
        b: Node,
        /// Load model.
        load: PmosLoad,
        /// Calibration tail current, A.
        iss: f64,
    },
}

impl Element {
    /// Instance name of this element.
    pub fn name(&self) -> &str {
        match self {
            Element::Resistor { name, .. }
            | Element::Capacitor { name, .. }
            | Element::Vsource { name, .. }
            | Element::Isource { name, .. }
            | Element::Vcvs { name, .. }
            | Element::Vccs { name, .. }
            | Element::Diode { name, .. }
            | Element::Mos { name, .. }
            | Element::SclLoad { name, .. } => name,
        }
    }

    /// True when the element adds an MNA branch unknown (voltage-defined
    /// elements).
    pub fn has_branch(&self) -> bool {
        matches!(self, Element::Vsource { .. } | Element::Vcvs { .. })
    }
}

/// A programmatically built circuit.
#[derive(Debug, Default)]
pub struct Netlist {
    node_names: Vec<String>,
    elements: Vec<Element>,
    /// Monotone edit counter: bumped by every mutation that can change a
    /// static-analysis verdict (new node, new element, element edit).
    revision: u64,
    /// `revision + 1` at which the ERC gate last found this netlist
    /// clean (0 = no cached verdict), so repeated analyses of an
    /// unchanged netlist skip the re-check. Interior-mutable because the
    /// gate takes `&Netlist`; atomic (rather than `Cell`) so a built
    /// netlist is `Sync` and parallel ensemble workers (`ulp-exec`) can
    /// analyse one shared circuit from many threads. Clones carry the
    /// cached verdict (they are byte-identical circuits).
    erc_clean_at: AtomicU64,
}

impl Clone for Netlist {
    fn clone(&self) -> Self {
        Netlist {
            node_names: self.node_names.clone(),
            elements: self.elements.clone(),
            revision: self.revision,
            erc_clean_at: AtomicU64::new(self.erc_clean_at.load(Ordering::Relaxed)),
        }
    }
}

impl Netlist {
    /// The reference (ground) node.
    pub const GROUND: Node = Node(0);

    /// Creates an empty netlist (containing only the ground node).
    pub fn new() -> Self {
        Netlist {
            node_names: vec!["0".to_string()],
            elements: Vec::new(),
            revision: 0,
            erc_clean_at: AtomicU64::new(0),
        }
    }

    /// Creates (or re-uses, by name) a node.
    pub fn node(&mut self, name: &str) -> Node {
        if let Some(i) = self.node_names.iter().position(|n| n == name) {
            return Node(i);
        }
        self.invalidate();
        self.node_names.push(name.to_string());
        Node(self.node_names.len() - 1)
    }

    /// Current edit revision — bumped on every structural or parameter
    /// mutation. [`crate::mna::MnaWorkspace`] keys its prepared static
    /// stamps on this, so `set_source` in a sweep invalidates exactly the
    /// cached values and nothing else.
    pub(crate) fn revision(&self) -> u64 {
        self.revision
    }

    /// True when the ERC gate already passed this exact revision.
    pub(crate) fn erc_clean_cached(&self) -> bool {
        self.erc_clean_at.load(Ordering::Relaxed) == self.revision + 1
    }

    /// Records that the ERC gate passed at the current revision.
    pub(crate) fn mark_erc_clean(&self) {
        self.erc_clean_at.store(self.revision + 1, Ordering::Relaxed);
    }

    fn invalidate(&mut self) {
        self.revision += 1;
        self.erc_clean_at.store(0, Ordering::Relaxed);
    }

    /// Node count including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Name of a node.
    pub fn node_name(&self, node: Node) -> &str {
        &self.node_names[node.0]
    }

    /// Borrows the element list.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Finds the element with the given instance name.
    pub fn element(&self, name: &str) -> Option<&Element> {
        self.elements.iter().find(|e| e.name() == name)
    }

    /// Looks up a node by name without creating it.
    pub fn find_node(&self, name: &str) -> Option<Node> {
        self.node_names.iter().position(|n| n == name).map(Node)
    }

    pub(crate) fn elements_mut(&mut self) -> impl Iterator<Item = &mut Element> {
        // Callers can mutate any element (e.g. `set_source`), so any
        // cached static-analysis verdict is conservatively dropped.
        self.invalidate();
        self.elements.iter_mut()
    }

    /// Rewrites every MOS device through `f`, in element order.
    ///
    /// This is the mismatch-sampling primitive: drawing one die of a
    /// design is `clone()` plus a `map_mosfets` that adds per-instance
    /// `delta_vt`/`delta_beta` shifts, without rebuilding the topology.
    pub fn map_mosfets(&mut self, mut f: impl FnMut(&Mosfet) -> Mosfet) -> &mut Self {
        for e in self.elements_mut() {
            if let Element::Mos { dev, .. } = e {
                *dev = f(dev);
            }
        }
        self
    }

    /// Rewrites the single MOS device named `name` through `f`.
    ///
    /// Returns `false` (and leaves the netlist untouched, caches
    /// intact) when no MOS element has that name. This is the sweep
    /// primitive: realizing one point of a geometry grid is `clone()`
    /// plus one `update_mosfet` per swept device.
    pub fn update_mosfet(&mut self, name: &str, f: impl FnOnce(&Mosfet) -> Mosfet) -> bool {
        let Some(idx) = self
            .elements
            .iter()
            .position(|e| matches!(e, Element::Mos { .. }) && e.name() == name)
        else {
            return false;
        };
        self.invalidate();
        if let Element::Mos { dev, .. } = &mut self.elements[idx] {
            *dev = f(dev);
        }
        true
    }

    /// Number of MNA branch unknowns (one per voltage-defined element).
    pub fn branch_count(&self) -> usize {
        self.elements.iter().filter(|e| e.has_branch()).count()
    }

    /// Total MNA system dimension: non-ground nodes + branches.
    pub fn unknown_count(&self) -> usize {
        (self.node_count() - 1) + self.branch_count()
    }

    /// Adds a resistor.
    ///
    /// # Panics
    ///
    /// Panics unless `ohms > 0`.
    pub fn resistor(&mut self, name: &str, a: Node, b: Node, ohms: f64) -> &mut Self {
        assert!(ohms > 0.0, "resistance must be positive: {name}");
        self.push(Element::Resistor {
            name: name.into(),
            a,
            b,
            ohms,
        })
    }

    /// Adds a capacitor.
    ///
    /// # Panics
    ///
    /// Panics unless `farads > 0`.
    pub fn capacitor(&mut self, name: &str, a: Node, b: Node, farads: f64) -> &mut Self {
        assert!(farads > 0.0, "capacitance must be positive: {name}");
        self.push(Element::Capacitor {
            name: name.into(),
            a,
            b,
            farads,
        })
    }

    /// Adds a DC voltage source.
    pub fn vsource(&mut self, name: &str, p: Node, n: Node, volts: f64) -> &mut Self {
        self.vsource_wave(name, p, n, Waveform::Dc(volts))
    }

    /// Adds a voltage source with an arbitrary stimulus.
    pub fn vsource_wave(&mut self, name: &str, p: Node, n: Node, wave: Waveform) -> &mut Self {
        self.push(Element::Vsource {
            name: name.into(),
            p,
            n,
            wave,
            ac: 0.0,
        })
    }

    /// Adds a voltage source with an arbitrary stimulus and an AC
    /// magnitude.
    pub fn vsource_wave_ac(
        &mut self,
        name: &str,
        p: Node,
        n: Node,
        wave: Waveform,
        ac: f64,
    ) -> &mut Self {
        self.push(Element::Vsource {
            name: name.into(),
            p,
            n,
            wave,
            ac,
        })
    }

    /// Adds a voltage source with both a DC value and an AC magnitude.
    pub fn vsource_ac(&mut self, name: &str, p: Node, n: Node, dc: f64, ac: f64) -> &mut Self {
        self.push(Element::Vsource {
            name: name.into(),
            p,
            n,
            wave: Waveform::Dc(dc),
            ac,
        })
    }

    /// Adds a DC current source drawing `amps` from `p` and injecting it
    /// into `n`.
    pub fn isource(&mut self, name: &str, p: Node, n: Node, amps: f64) -> &mut Self {
        self.isource_wave(name, p, n, Waveform::Dc(amps))
    }

    /// Adds a current source with an arbitrary stimulus.
    pub fn isource_wave(&mut self, name: &str, p: Node, n: Node, wave: Waveform) -> &mut Self {
        self.push(Element::Isource {
            name: name.into(),
            p,
            n,
            wave,
            ac: 0.0,
        })
    }

    /// Adds a current source with an arbitrary stimulus and an AC
    /// magnitude.
    pub fn isource_wave_ac(
        &mut self,
        name: &str,
        p: Node,
        n: Node,
        wave: Waveform,
        ac: f64,
    ) -> &mut Self {
        self.push(Element::Isource {
            name: name.into(),
            p,
            n,
            wave,
            ac,
        })
    }

    /// Adds a current source with both a DC value and an AC magnitude.
    pub fn isource_ac(&mut self, name: &str, p: Node, n: Node, dc: f64, ac: f64) -> &mut Self {
        self.push(Element::Isource {
            name: name.into(),
            p,
            n,
            wave: Waveform::Dc(dc),
            ac,
        })
    }

    /// Adds a voltage-controlled voltage source.
    pub fn vcvs(&mut self, name: &str, p: Node, n: Node, cp: Node, cn: Node, gain: f64) -> &mut Self {
        self.push(Element::Vcvs {
            name: name.into(),
            p,
            n,
            cp,
            cn,
            gain,
        })
    }

    /// Adds a voltage-controlled current source.
    pub fn vccs(&mut self, name: &str, p: Node, n: Node, cp: Node, cn: Node, gm: f64) -> &mut Self {
        self.push(Element::Vccs {
            name: name.into(),
            p,
            n,
            cp,
            cn,
            gm,
        })
    }

    /// Adds a junction diode.
    ///
    /// # Panics
    ///
    /// Panics unless `is_sat > 0` and `n_id > 0`.
    pub fn diode(&mut self, name: &str, p: Node, n: Node, is_sat: f64, n_id: f64) -> &mut Self {
        assert!(is_sat > 0.0 && n_id > 0.0, "bad diode parameters: {name}");
        self.push(Element::Diode {
            name: name.into(),
            p,
            n,
            is_sat,
            n_id,
        })
    }

    /// Adds a four-terminal MOS device.
    pub fn mosfet(&mut self, name: &str, d: Node, g: Node, s: Node, b: Node, dev: Mosfet) -> &mut Self {
        self.push(Element::Mos {
            name: name.into(),
            d,
            g,
            s,
            b,
            dev,
        })
    }

    /// Adds a replica-calibrated STSCL load conducting from `a` to `b`.
    ///
    /// # Panics
    ///
    /// Panics unless `iss > 0`.
    pub fn scl_load(&mut self, name: &str, a: Node, b: Node, load: PmosLoad, iss: f64) -> &mut Self {
        assert!(iss > 0.0, "load calibration current must be positive: {name}");
        self.push(Element::SclLoad {
            name: name.into(),
            a,
            b,
            load,
            iss,
        })
    }

    fn push(&mut self, e: Element) -> &mut Self {
        debug_assert!(
            self.element(e.name()).is_none(),
            "duplicate element name {}",
            e.name()
        );
        self.invalidate();
        self.elements.push(e);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_are_interned_by_name() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        let a2 = nl.node("a");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(nl.node_count(), 3); // ground + a + b
        assert_eq!(nl.node_name(a), "a");
        assert!(Netlist::GROUND.is_ground());
        assert!(!a.is_ground());
    }

    #[test]
    fn unknown_count_includes_branches() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource("V1", a, Netlist::GROUND, 1.0);
        nl.resistor("R1", a, b, 1e3);
        nl.vcvs("E1", b, Netlist::GROUND, a, Netlist::GROUND, 2.0);
        assert_eq!(nl.branch_count(), 2);
        assert_eq!(nl.unknown_count(), 4); // 2 nodes + 2 branches
    }

    #[test]
    fn element_lookup_by_name() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.resistor("R1", a, Netlist::GROUND, 42.0);
        assert!(nl.element("R1").is_some());
        assert!(nl.element("R2").is_none());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn negative_resistance_rejected() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.resistor("R1", a, Netlist::GROUND, -5.0);
    }

    #[test]
    fn pulse_waveform_shape() {
        let w = Waveform::Pulse {
            v0: 0.0,
            v1: 1.0,
            delay: 1.0,
            rise: 0.1,
            fall: 0.1,
            width: 0.8,
            period: 2.0,
        };
        assert_eq!(w.at(0.0), 0.0);
        assert_eq!(w.at(0.99), 0.0);
        assert!((w.at(1.05) - 0.5).abs() < 1e-12); // mid-rise
        assert_eq!(w.at(1.5), 1.0); // flat top
        assert!((w.at(1.95) - 0.5).abs() < 1e-12); // mid-fall
        assert_eq!(w.at(2.5), 0.0); // low
        assert_eq!(w.at(3.5), 1.0); // second period flat top
    }

    #[test]
    fn sine_waveform() {
        let w = Waveform::Sine {
            offset: 0.5,
            amp: 0.2,
            freq: 1.0,
            delay: 0.0,
        };
        assert!((w.at(0.0) - 0.5).abs() < 1e-12);
        assert!((w.at(0.25) - 0.7).abs() < 1e-12);
        assert!((w.dc() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = Waveform::Pwl(vec![(0.0, 0.0), (1.0, 1.0), (2.0, -1.0)]);
        assert_eq!(w.at(-1.0), 0.0);
        assert_eq!(w.at(0.5), 0.5);
        assert_eq!(w.at(1.5), 0.0);
        assert_eq!(w.at(5.0), -1.0);
        assert_eq!(Waveform::Pwl(vec![]).at(1.0), 0.0);
    }

    #[test]
    fn pulse_before_delay_is_v0() {
        let w = Waveform::Pulse {
            v0: 0.3,
            v1: 1.0,
            delay: 10.0,
            rise: 1.0,
            fall: 1.0,
            width: 1.0,
            period: 0.0,
        };
        assert_eq!(w.at(5.0), 0.3);
        // Single pulse (period 0): stays at v0 after the pulse ends.
        assert_eq!(w.at(100.0), 0.3);
    }
}
