//! DC operating point: damped Newton–Raphson with gmin stepping.

use crate::error::SimError;
use crate::mna::{branch_index, voltage_of, AssembleMode, MnaWorkspace, SolverKind};
use crate::netlist::{Netlist, Node};
use crate::telemetry::{self, Event, NullTracer, Tracer};
use std::time::Instant;
use ulp_device::Technology;

/// Newton iteration controls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Maximum iterations per attempt.
    pub max_iter: usize,
    /// Absolute convergence tolerance on node voltages, V.
    pub vtol: f64,
    /// Maximum node-voltage change applied per iteration (damping), V.
    pub max_step: f64,
    /// Final gmin left in the system, S.
    pub gmin: f64,
    /// Linear-solver backend selection (see [`SolverKind`]).
    pub solver: SolverKind,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            max_iter: 300,
            vtol: 1e-9,
            max_step: 0.5,
            gmin: 1e-12,
            solver: SolverKind::Auto,
        }
    }
}

/// Outcome of a converged Newton solve.
#[derive(Debug, Clone, PartialEq)]
pub struct NewtonResult {
    /// The converged solution vector.
    pub x: Vec<f64>,
    /// Iterations used by the accepted attempt.
    pub iterations: usize,
    /// ∞-norm KCL residual at the last iterate, A (see
    /// [`crate::mna::MnaSystem::residual_inf`]).
    pub residual: f64,
    /// Last damped maximum voltage update, V.
    pub max_delta: f64,
}

/// Scalar outcome of an in-place Newton solve ([`NewtonResult`] minus
/// the solution vector, which stays in the caller's buffer).
#[derive(Debug, Clone, Copy)]
pub(crate) struct NewtonInfo {
    pub iterations: usize,
    pub residual: f64,
    pub max_delta: f64,
}

/// One damped-Newton attempt at a fixed gmin, with telemetry.
///
/// `x` carries the iterate in and (on success) the converged solution
/// out; `x_new` is caller-owned scratch. Both the workspace and the two
/// buffers are reused across attempts, ladder rungs, sweep points and
/// time steps, so the steady-state loop performs no heap allocation.
#[allow(clippy::too_many_arguments)]
fn attempt(
    nl: &Netlist,
    tech: &Technology,
    mode: AssembleMode<'_>,
    ws: &mut MnaWorkspace,
    x: &mut [f64],
    x_new: &mut Vec<f64>,
    gmin: f64,
    opts: &NewtonOptions,
    analysis: &'static str,
    rung: Option<usize>,
    tracer: &mut dyn Tracer,
) -> Result<NewtonInfo, SimError> {
    let enabled = tracer.enabled();
    let t0 = enabled.then(Instant::now);
    // The dense backend reproduces the legacy loop bit for bit, residual
    // included; the sparse backend only computes the residual when it
    // will actually be observed — per iteration under tracing, otherwise
    // once on whichever iteration the attempt exits from.
    let eager_residual = enabled || !ws.is_sparse();
    let nn = nl.node_count() - 1;
    let lu_dim = nl.unknown_count();
    let swaps0 = ws.pivot_swaps();
    let symbolic0 = ws.symbolic_factorizations();
    let refactor0 = ws.numeric_refactorizations();
    let mut iterations = 0usize;
    let mut residual = f64::INFINITY;
    let mut max_delta = f64::INFINITY;
    let mut clamps = 0usize;
    let mut converged = false;
    let mut failure: Option<SimError> = None;
    while iterations < opts.max_iter {
        iterations += 1;
        ws.assemble(nl, tech, x, mode, gmin);
        // Companion models are assembled *at* x, so `A·x − b` is the
        // true nonlinear KCL residual at the current iterate.
        if eager_residual {
            residual = ws.residual_inf(x);
        }
        if let Err(e) = ws.factor() {
            if !eager_residual {
                residual = ws.residual_inf(x);
            }
            failure = Some(SimError::from_solve(nl, e));
            break;
        }
        if let Err(e) = ws.solve_into(x_new) {
            if !eager_residual {
                residual = ws.residual_inf(x);
            }
            failure = Some(SimError::from_solve(nl, e));
            break;
        }
        // Damping: limit the voltage part of the update.
        let mut dv_max = 0.0f64;
        for i in 0..nn {
            dv_max = dv_max.max((x_new[i] - x[i]).abs());
        }
        let scale = if dv_max > opts.max_step {
            clamps += 1;
            opts.max_step / dv_max
        } else {
            1.0
        };
        // Exiting after this iteration either way: capture the residual
        // of the assembled system before x moves off the iterate it was
        // built at, so the reported value matches the eager path.
        if !eager_residual && (dv_max <= opts.vtol || iterations == opts.max_iter) {
            residual = ws.residual_inf(x);
        }
        for (xi, xn) in x.iter_mut().zip(x_new.iter()) {
            *xi += scale * (*xn - *xi);
        }
        max_delta = dv_max * scale;
        if dv_max <= opts.vtol {
            converged = true;
            break;
        }
    }
    if let Some(t0) = t0 {
        tracer.record(&Event::NewtonAttempt {
            analysis,
            gmin,
            rung,
            iterations,
            converged,
            residual,
            max_delta,
            clamps,
            lu_dim,
            lu_swaps: ws.pivot_swaps() - swaps0,
            lu_symbolic: ws.symbolic_factorizations() - symbolic0,
            lu_refactor: ws.numeric_refactorizations() - refactor0,
            seconds: t0.elapsed().as_secs_f64(),
        });
    }
    if converged {
        Ok(NewtonInfo {
            iterations,
            residual,
            max_delta,
        })
    } else if let Some(e) = failure {
        Err(e)
    } else {
        Err(SimError::NoConvergence {
            iterations,
            residual,
            max_delta,
            gmin,
        })
    }
}

/// Runs damped Newton iteration at a fixed gmin from initial guess
/// `x0`, reporting the iterations used and the final KCL residual.
///
/// Used by the operating-point, sweep and transient drivers. Runs no
/// electrical rule check — callers gate netlists themselves (see
/// [`crate::erc`]).
///
/// # Errors
///
/// [`SimError::Singular`] (naming the failed node or branch) if the
/// Jacobian is singular; [`SimError::NoConvergence`] (carrying the
/// iterations used, the gmin, and the residuals of the failing attempt)
/// if the iteration stalls.
pub fn newton_solve(
    nl: &Netlist,
    tech: &Technology,
    mode: AssembleMode<'_>,
    x0: &[f64],
    gmin: f64,
    opts: &NewtonOptions,
) -> Result<NewtonResult, SimError> {
    let mut ws = MnaWorkspace::new(nl, opts.solver);
    let mut x = x0.to_vec();
    let mut x_new = Vec::with_capacity(x.len());
    let info = attempt(
        nl,
        tech,
        mode,
        &mut ws,
        &mut x,
        &mut x_new,
        gmin,
        opts,
        "dcop",
        None,
        &mut NullTracer,
    )?;
    Ok(NewtonResult {
        x,
        iterations: info.iterations,
        residual: info.residual,
        max_delta: info.max_delta,
    })
}

/// [`newton_solve`] recording telemetry: emits one
/// [`Event::NewtonAttempt`] tagged with `analysis` on the given tracer.
///
/// # Errors
///
/// As for [`newton_solve`].
#[allow(clippy::too_many_arguments)]
pub fn newton_solve_traced(
    nl: &Netlist,
    tech: &Technology,
    mode: AssembleMode<'_>,
    x0: &[f64],
    gmin: f64,
    opts: &NewtonOptions,
    analysis: &'static str,
    tracer: &mut dyn Tracer,
) -> Result<NewtonResult, SimError> {
    let mut ws = MnaWorkspace::new(nl, opts.solver);
    let mut x = x0.to_vec();
    let mut x_new = Vec::with_capacity(x.len());
    let info = attempt(
        nl, tech, mode, &mut ws, &mut x, &mut x_new, gmin, opts, analysis, None, tracer,
    )?;
    Ok(NewtonResult {
        x,
        iterations: info.iterations,
        residual: info.residual,
        max_delta: info.max_delta,
    })
}

/// The gmin-stepping conductance ladder, heaviest rung first.
const GMIN_LADDER: [f64; 5] = [1e-3, 1e-5, 1e-7, 1e-9, 1e-11];

/// Newton solve with gmin stepping: attempt the target gmin first and,
/// on failure, walk a conductance ladder from heavy damping down,
/// re-using each stage's solution as the next stage's guess.
///
/// # Errors
///
/// As for [`newton_solve`]; a [`SimError::NoConvergence`] names the
/// ladder rung (`gmin` field) that gave up.
pub fn newton_solve_gmin_stepping(
    nl: &Netlist,
    tech: &Technology,
    mode: AssembleMode<'_>,
    x0: &[f64],
    opts: &NewtonOptions,
) -> Result<NewtonResult, SimError> {
    newton_solve_gmin_stepping_traced(nl, tech, mode, x0, opts, "dcop", &mut NullTracer)
}

/// [`newton_solve_gmin_stepping`] recording telemetry: emits one
/// [`Event::NewtonAttempt`] per attempt (rung `None` for the direct
/// attempt, then `Some(0..)` down the ladder), tagged with `analysis`.
///
/// # Errors
///
/// As for [`newton_solve_gmin_stepping`].
pub fn newton_solve_gmin_stepping_traced(
    nl: &Netlist,
    tech: &Technology,
    mode: AssembleMode<'_>,
    x0: &[f64],
    opts: &NewtonOptions,
    analysis: &'static str,
    tracer: &mut dyn Tracer,
) -> Result<NewtonResult, SimError> {
    let mut ws = MnaWorkspace::new(nl, opts.solver);
    let mut x = Vec::with_capacity(x0.len());
    let mut x_new = Vec::with_capacity(x0.len());
    let info = newton_solve_gmin_stepping_into(
        nl, tech, mode, x0, opts, analysis, tracer, &mut ws, &mut x, &mut x_new,
    )?;
    Ok(NewtonResult {
        x,
        iterations: info.iterations,
        residual: info.residual,
        max_delta: info.max_delta,
    })
}

/// [`newton_solve_gmin_stepping_traced`] against a caller-owned
/// workspace and solution/scratch buffers — the entry point the sweep
/// and transient drivers use so one workspace (pattern, symbolic
/// factorization, static stamps) and one pair of vectors survive across
/// every point/step. `x` receives the converged solution.
#[allow(clippy::too_many_arguments)]
pub(crate) fn newton_solve_gmin_stepping_into(
    nl: &Netlist,
    tech: &Technology,
    mode: AssembleMode<'_>,
    x0: &[f64],
    opts: &NewtonOptions,
    analysis: &'static str,
    tracer: &mut dyn Tracer,
    ws: &mut MnaWorkspace,
    x: &mut Vec<f64>,
    x_new: &mut Vec<f64>,
) -> Result<NewtonInfo, SimError> {
    x.clear();
    x.extend_from_slice(x0);
    if let Ok(info) = attempt(
        nl, tech, mode, ws, x, x_new, opts.gmin, opts, analysis, None, tracer,
    ) {
        return Ok(info);
    }
    // Ladder restarts from the caller's guess, not the failed iterate.
    x.clear();
    x.extend_from_slice(x0);
    for (i, g) in GMIN_LADDER.iter().enumerate() {
        attempt(nl, tech, mode, ws, x, x_new, *g, opts, analysis, Some(i), tracer)?;
    }
    attempt(
        nl,
        tech,
        mode,
        ws,
        x,
        x_new,
        opts.gmin,
        opts,
        analysis,
        Some(GMIN_LADDER.len()),
        tracer,
    )
}

/// A solved DC operating point.
///
/// # Example
///
/// A subthreshold NMOS diode-connected against a current source settles
/// at the gate voltage predicted by the EKV inverse:
///
/// ```
/// use ulp_spice::netlist::Netlist;
/// use ulp_spice::dcop::DcOperatingPoint;
/// use ulp_device::{Mosfet, Polarity, Technology};
///
/// # fn main() -> Result<(), ulp_spice::SimError> {
/// let tech = Technology::default();
/// let mut nl = Netlist::new();
/// let d = nl.node("d");
/// let dev = Mosfet::new(Polarity::Nmos, 4e-6, 1e-6);
/// nl.isource("IB", Netlist::GROUND, d, 1e-9); // 1 nA into the drain
/// nl.mosfet("M1", d, d, Netlist::GROUND, Netlist::GROUND, dev);
/// let op = DcOperatingPoint::solve(&nl, &tech)?;
/// let expect = dev.vgs_for_current(&tech, 1e-9);
/// assert!((op.voltage(d) - expect).abs() < 0.02);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DcOperatingPoint {
    x: Vec<f64>,
}

impl DcOperatingPoint {
    /// Solves the DC operating point with default Newton options.
    ///
    /// Runs the electrical rule check ([`crate::erc::gate`]) first and
    /// refuses to solve a netlist with deny-level diagnostics; use
    /// [`DcOperatingPoint::solve_unchecked`] to bypass. A clean verdict
    /// is memoised on the netlist, so repeated solves of an unchanged
    /// netlist (bias search loops, sweep drivers) check only once. For
    /// region violations *at* the solved point — strong inversion,
    /// unsaturated channels, near-singular systems — run the result
    /// through [`crate::lint::audit`].
    ///
    /// # Errors
    ///
    /// [`SimError::Erc`] when the netlist fails the rule check;
    /// otherwise propagates [`SimError`] from the Newton driver.
    pub fn solve(nl: &Netlist, tech: &Technology) -> Result<Self, SimError> {
        Self::solve_with(nl, tech, &NewtonOptions::default())
    }

    /// Solves with explicit Newton options, after the rule check.
    ///
    /// # Errors
    ///
    /// As for [`DcOperatingPoint::solve`].
    pub fn solve_with(
        nl: &Netlist,
        tech: &Technology,
        opts: &NewtonOptions,
    ) -> Result<Self, SimError> {
        crate::erc::gate(nl)?;
        Self::solve_with_unchecked(nl, tech, opts)
    }

    /// Solves starting from a previous solution (continuation), after
    /// the rule check.
    ///
    /// # Errors
    ///
    /// As for [`DcOperatingPoint::solve`].
    pub fn solve_from(
        nl: &Netlist,
        tech: &Technology,
        guess: &[f64],
        opts: &NewtonOptions,
    ) -> Result<Self, SimError> {
        crate::erc::gate(nl)?;
        Self::solve_from_unchecked(nl, tech, guess, opts)
    }

    /// [`DcOperatingPoint::solve`] without the electrical rule check —
    /// the escape hatch for deliberately degenerate netlists (gmin will
    /// pin floating nodes near 0 V instead of failing cleanly).
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the Newton driver.
    pub fn solve_unchecked(nl: &Netlist, tech: &Technology) -> Result<Self, SimError> {
        Self::solve_with_unchecked(nl, tech, &NewtonOptions::default())
    }

    /// [`DcOperatingPoint::solve_with`] recording telemetry on the
    /// given tracer: every Newton attempt (including gmin-ladder rungs)
    /// emits an [`Event::NewtonAttempt`] tagged `"dcop"`.
    ///
    /// # Errors
    ///
    /// As for [`DcOperatingPoint::solve_with`].
    pub fn solve_traced(
        nl: &Netlist,
        tech: &Technology,
        opts: &NewtonOptions,
        tracer: &mut dyn Tracer,
    ) -> Result<Self, SimError> {
        crate::erc::gate(nl)?;
        Self::solve_traced_unchecked(nl, tech, opts, tracer)
    }

    /// [`DcOperatingPoint::solve_traced`] without the rule check.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the Newton driver.
    pub fn solve_traced_unchecked(
        nl: &Netlist,
        tech: &Technology,
        opts: &NewtonOptions,
        tracer: &mut dyn Tracer,
    ) -> Result<Self, SimError> {
        let x0 = vec![0.0; nl.unknown_count()];
        let r = newton_solve_gmin_stepping_traced(nl, tech, AssembleMode::Dc, &x0, opts, "dcop", tracer)?;
        Ok(DcOperatingPoint { x: r.x })
    }

    /// [`DcOperatingPoint::solve_with`] without the rule check.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the Newton driver.
    pub fn solve_with_unchecked(
        nl: &Netlist,
        tech: &Technology,
        opts: &NewtonOptions,
    ) -> Result<Self, SimError> {
        telemetry::with_tracer(|tracer| Self::solve_traced_unchecked(nl, tech, opts, tracer))
    }

    /// [`DcOperatingPoint::solve_from`] without the rule check.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the Newton driver.
    pub fn solve_from_unchecked(
        nl: &Netlist,
        tech: &Technology,
        guess: &[f64],
        opts: &NewtonOptions,
    ) -> Result<Self, SimError> {
        let r = telemetry::with_tracer(|tracer| {
            newton_solve_gmin_stepping_traced(nl, tech, AssembleMode::Dc, guess, opts, "dcop", tracer)
        })?;
        Ok(DcOperatingPoint { x: r.x })
    }

    /// Node voltage, V.
    pub fn voltage(&self, node: Node) -> f64 {
        voltage_of(&self.x, node)
    }

    /// Branch current of a named voltage-defined element, A.
    ///
    /// The sign convention: positive current flows *into* the positive
    /// terminal from the external circuit (so a source delivering power
    /// reads negative).
    ///
    /// # Errors
    ///
    /// [`SimError::NotFound`] if no such voltage-defined element exists.
    pub fn branch_current(&self, nl: &Netlist, name: &str) -> Result<f64, SimError> {
        branch_index(nl, name)
            .map(|i| self.x[i])
            .ok_or_else(|| SimError::NotFound(name.to_string()))
    }

    /// Borrows the raw solution vector.
    pub fn solution(&self) -> &[f64] {
        &self.x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulp_device::load::PmosLoad;
    use ulp_device::{Mosfet, Polarity};

    fn tech() -> Technology {
        Technology::default()
    }

    #[test]
    fn linear_circuit_one_iteration() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V1", a, Netlist::GROUND, 1.5);
        nl.resistor("R1", a, Netlist::GROUND, 1e3);
        let op = DcOperatingPoint::solve(&nl, &tech()).unwrap();
        assert!((op.voltage(a) - 1.5).abs() < 1e-12);
        let i = op.branch_current(&nl, "V1").unwrap();
        assert!((i + 1.5e-3).abs() < 1e-9);
    }

    #[test]
    fn diode_forward_drop() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.isource("I1", Netlist::GROUND, a, 1e-6);
        nl.diode("D1", a, Netlist::GROUND, 1e-15, 1.0);
        let op = DcOperatingPoint::solve(&nl, &tech()).unwrap();
        // V = n·UT·ln(I/Is) ≈ 0.0259·ln(1e9) ≈ 0.536 V.
        let expect = tech().thermal_voltage() * (1e-6f64 / 1e-15).ln();
        assert!((op.voltage(a) - expect).abs() < 1e-3, "v = {}", op.voltage(a));
    }

    #[test]
    fn mos_diode_connected_tracks_ekv_inverse() {
        let t = tech();
        let mut nl = Netlist::new();
        let d = nl.node("d");
        let dev = Mosfet::new(Polarity::Nmos, 4e-6, 1e-6);
        nl.isource("IB", Netlist::GROUND, d, 10e-9);
        nl.mosfet("M1", d, d, Netlist::GROUND, Netlist::GROUND, dev);
        let op = DcOperatingPoint::solve(&nl, &t).unwrap();
        let expect = dev.vgs_for_current(&t, 10e-9);
        assert!(
            (op.voltage(d) - expect).abs() < 0.02,
            "v = {} expect {}",
            op.voltage(d),
            expect
        );
    }

    #[test]
    fn nmos_common_source_amplifier_biases() {
        let t = tech();
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let g = nl.node("g");
        let d = nl.node("d");
        nl.vsource("VDD", vdd, Netlist::GROUND, 1.0);
        nl.vsource("VG", g, Netlist::GROUND, 0.35);
        nl.resistor("RD", vdd, d, 5e6);
        nl.mosfet(
            "M1",
            d,
            g,
            Netlist::GROUND,
            Netlist::GROUND,
            Mosfet::new(Polarity::Nmos, 2e-6, 1e-6),
        );
        let op = DcOperatingPoint::solve(&nl, &t).unwrap();
        let vd = op.voltage(d);
        assert!(vd > 0.0 && vd < 1.0, "drain must bias inside the rails: {vd}");
    }

    #[test]
    fn pmos_current_mirror() {
        let t = tech();
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let ref_n = nl.node("ref");
        let out = nl.node("out");
        nl.vsource("VDD", vdd, Netlist::GROUND, 1.2);
        // 10 nA drawn out of the diode-connected PMOS reference leg.
        nl.isource("IREF", ref_n, Netlist::GROUND, 10e-9);
        let p = Mosfet::new(Polarity::Pmos, 4e-6, 2e-6);
        nl.mosfet("MP1", ref_n, ref_n, vdd, vdd, p);
        nl.mosfet("MP2", out, ref_n, vdd, vdd, p);
        nl.resistor("RL", out, Netlist::GROUND, 1e6);
        let op = DcOperatingPoint::solve(&nl, &t).unwrap();
        // Mirror output ≈ 10 nA through 1 MΩ = 10 mV.
        let vout = op.voltage(out);
        assert!((vout - 10e-3).abs() < 3e-3, "vout = {vout}");
    }

    #[test]
    fn scl_load_develops_swing() {
        let t = tech();
        let load = PmosLoad::new(0.2);
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let out = nl.node("out");
        nl.vsource("VDD", vdd, Netlist::GROUND, 1.0);
        nl.scl_load("RL", vdd, out, load, 1e-9);
        nl.isource("ITAIL", out, Netlist::GROUND, 1e-9);
        let op = DcOperatingPoint::solve(&nl, &t).unwrap();
        // Full tail current through the calibrated load → full swing.
        assert!((op.voltage(out) - 0.8).abs() < 1e-3, "vout = {}", op.voltage(out));
    }

    #[test]
    fn missing_branch_reports_not_found() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V1", a, Netlist::GROUND, 1.0);
        nl.resistor("R1", a, Netlist::GROUND, 1.0);
        let op = DcOperatingPoint::solve(&nl, &tech()).unwrap();
        assert!(matches!(
            op.branch_current(&nl, "VX"),
            Err(SimError::NotFound(_))
        ));
    }

    #[test]
    fn floating_node_is_singular_or_gmin_pinned() {
        // A node with no DC path to ground: the checked entry point
        // refuses it up front with a named diagnostic; the unchecked
        // escape hatch still solves, with gmin pinning the node near 0.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource("V1", a, Netlist::GROUND, 1.0);
        nl.capacitor("C1", a, b, 1e-12);
        nl.resistor("R1", b, b, 1.0); // degenerate self-loop, no path
        match DcOperatingPoint::solve(&nl, &tech()) {
            Err(SimError::Erc(report)) => {
                let d = report.find(crate::erc::rule::FLOATING_NODE).unwrap();
                assert!(d.nodes.contains(&"b".to_string()), "{d}");
            }
            other => panic!("expected ERC rejection, got {other:?}"),
        }
        let op = DcOperatingPoint::solve_unchecked(&nl, &tech()).unwrap();
        assert!(op.voltage(b).abs() < 1e-6);
    }

    #[test]
    fn default_options_sane() {
        let o = NewtonOptions::default();
        assert!(o.max_iter >= 100);
        assert!(o.gmin <= 1e-9);
    }

    #[test]
    fn newton_solve_reports_iterations_and_kcl_residual() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.isource("I1", Netlist::GROUND, a, 1e-6);
        nl.diode("D1", a, Netlist::GROUND, 1e-15, 1.0);
        let x0 = vec![0.0; nl.unknown_count()];
        let opts = NewtonOptions::default();
        let r = newton_solve(&nl, &tech(), AssembleMode::Dc, &x0, opts.gmin, &opts).unwrap();
        // The diode is nonlinear: more than one iteration, and the KCL
        // residual at the converged point is far below the 1 µA drive.
        assert!(r.iterations > 1, "iterations = {}", r.iterations);
        assert!(r.residual.is_finite() && r.residual < 1e-9, "residual = {}", r.residual);
        assert!(r.max_delta <= opts.vtol, "max_delta = {}", r.max_delta);
        assert!(r.x[0] > 0.4);
    }

    #[test]
    fn hard_netlist_trace_shows_gmin_ladder_engagement() {
        use crate::telemetry::{Event, MetricsCollector, TraceMode};
        // 1 µA pushed into a node whose only outlet is a reverse-biased
        // diode: at the target gmin (1e-12 S) the solution sits near
        // 1e6 V, unreachable under 0.5 V/iteration damping in 300
        // iterations. The ladder walks 1e-3 → 1e-5 → 1e-7 fine, then the
        // 1e-9 rung (≈1000 V) exhausts the budget.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.isource("I1", Netlist::GROUND, a, 1e-6);
        nl.diode("D1", Netlist::GROUND, a, 1e-15, 1.0);
        let x0 = vec![0.0; nl.unknown_count()];
        let opts = NewtonOptions::default();
        let mut mc = MetricsCollector::new(TraceMode::Events);
        let err = newton_solve_gmin_stepping_traced(
            &nl,
            &tech(),
            AssembleMode::Dc,
            &x0,
            &opts,
            "dcop",
            &mut mc,
        )
        .unwrap_err();
        match err {
            SimError::NoConvergence {
                iterations,
                residual,
                gmin,
                ..
            } => {
                assert_eq!(iterations, opts.max_iter);
                assert!((gmin - 1e-9).abs() < 1e-24, "gmin = {gmin}");
                assert!(residual.is_finite() && residual > 0.0, "residual = {residual}");
            }
            other => panic!("expected NoConvergence, got {other:?}"),
        }
        // Trace: failed direct attempt, three converged rungs, the
        // failing 1e-9 rung — and the ladder counted as one fallback.
        let rungs: Vec<(Option<usize>, bool)> = mc
            .events()
            .iter()
            .filter_map(|e| match &e.event {
                Event::NewtonAttempt { rung, converged, .. } => Some((*rung, *converged)),
                _ => None,
            })
            .collect();
        assert_eq!(
            rungs,
            vec![
                (None, false),
                (Some(0), true),
                (Some(1), true),
                (Some(2), true),
                (Some(3), false),
            ]
        );
        assert_eq!(mc.metrics().gmin_fallbacks, 1);
        assert!(mc.metrics().damping_clamps > 0);
    }

    #[test]
    fn solve_traced_records_nothing_extra_for_easy_circuits() {
        use crate::telemetry::{MetricsCollector, TraceMode};
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V1", a, Netlist::GROUND, 1.5);
        nl.resistor("R1", a, Netlist::GROUND, 1e3);
        let mut mc = MetricsCollector::new(TraceMode::Summary);
        let op =
            DcOperatingPoint::solve_traced(&nl, &tech(), &NewtonOptions::default(), &mut mc)
                .unwrap();
        assert!((op.voltage(a) - 1.5).abs() < 1e-12);
        let m = mc.metrics();
        assert_eq!((m.attempts, m.solves, m.gmin_fallbacks), (1, 1, 0));
        assert!(m.solve_seconds > 0.0);
        assert_eq!(m.max_dimension, nl.unknown_count());
    }
}
