//! Solver telemetry: convergence tracing, aggregate metrics and a
//! structured event log.
//!
//! Every analysis driver in this crate ([`crate::dcop`], [`crate::sweep`],
//! [`crate::tran`], [`crate::ac`], [`crate::noise`]) emits structured
//! [`Event`]s describing what the solver actually did — Newton attempts
//! with iteration counts and true KCL residuals, gmin-ladder rungs,
//! transient steps, per-frequency and per-sweep-point records, LU stats
//! and wall-clock timing. Two consumers exist:
//!
//! * a caller-supplied [`Tracer`] passed to the `*_traced` twin of each
//!   analysis entry point (mirroring the `solve`/`solve_unchecked` twin
//!   pattern) — typically a [`MetricsCollector`];
//! * a process-global collector installed from the `ULP_TRACE`
//!   environment variable (`summary` aggregates only, `events`
//!   additionally keeps the full event log for JSONL export), which the
//!   *default* entry points consult automatically so existing callers
//!   gain telemetry without code changes.
//!
//! Parallel ensemble campaigns (`ulp-exec`) interpose a third layer: a
//! thread-local *worker* collector ([`worker_capture`]) absorbs the
//! default-API events of one worker thread without touching the global
//! `Mutex`, and [`fold_worker`] merges ([`SimMetrics::merge`]) each
//! worker's aggregate into the global collector once, at campaign end,
//! in deterministic worker order.
//!
//! Tracing is zero-cost when disabled: the [`NullTracer`] reports
//! `enabled() == false` and the drivers skip event construction and
//! clock reads entirely.
//!
//! # Aggregates
//!
//! [`SimMetrics`] accumulates counters and an exact per-attempt
//! iteration sample set, so [`SimMetrics::p50_iterations`] /
//! [`SimMetrics::p95_iterations`] are true nearest-rank percentiles,
//! not estimates. [`SimMetrics::summary`] renders the stable
//! `-- solver metrics --` footer used by the bench binaries;
//! [`MetricsCollector::render_jsonl`] renders the event log one JSON
//! object per line.
//!
//! # Example
//!
//! ```
//! use ulp_spice::netlist::Netlist;
//! use ulp_spice::dcop::{DcOperatingPoint, NewtonOptions};
//! use ulp_spice::telemetry::{MetricsCollector, TraceMode};
//! use ulp_device::Technology;
//!
//! # fn main() -> Result<(), ulp_spice::SimError> {
//! let mut nl = Netlist::new();
//! let a = nl.node("a");
//! nl.isource("I1", Netlist::GROUND, a, 1e-6);
//! nl.diode("D1", a, Netlist::GROUND, 1e-15, 1.0);
//! let mut mc = MetricsCollector::new(TraceMode::Events);
//! let op = DcOperatingPoint::solve_traced(
//!     &nl,
//!     &Technology::default(),
//!     &NewtonOptions::default(),
//!     &mut mc,
//! )?;
//! assert!(op.voltage(a) > 0.4);
//! let m = mc.metrics();
//! assert_eq!(m.solves, 1);
//! assert!(m.newton_iterations > 1); // the diode is nonlinear
//! assert!(!mc.events().is_empty());
//! # Ok(())
//! # }
//! ```

use std::fmt::Write as _;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::registry::Registry;

/// How much the global collector keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Aggregate counters/histograms only.
    Summary,
    /// Aggregates plus the full structured event log.
    Events,
    /// Everything [`TraceMode::Events`] keeps, plus hierarchical wall-
    /// clock spans (campaign → trial → analysis phase → newton attempt)
    /// for Chrome trace-event export ([`render_chrome_trace`]).
    Spans,
}

impl TraceMode {
    /// Parses the `ULP_TRACE` environment variable: unset or empty →
    /// `None` (tracing off), `events` → [`TraceMode::Events`], `spans` →
    /// [`TraceMode::Spans`], any other non-empty value (canonically
    /// `summary`) → [`TraceMode::Summary`].
    pub fn from_env() -> Option<TraceMode> {
        match std::env::var("ULP_TRACE") {
            Ok(v) if v.is_empty() => None,
            Ok(v) if v.eq_ignore_ascii_case("events") => Some(TraceMode::Events),
            Ok(v) if v.eq_ignore_ascii_case("spans") => Some(TraceMode::Spans),
            Ok(_) => Some(TraceMode::Summary),
            Err(_) => None,
        }
    }

    /// Whether this mode retains the structured event log (Events and
    /// the strictly-richer Spans mode both do).
    pub fn keeps_events(self) -> bool {
        matches!(self, TraceMode::Events | TraceMode::Spans)
    }

    /// Whether this mode additionally records wall-clock spans.
    pub fn keeps_spans(self) -> bool {
        matches!(self, TraceMode::Spans)
    }
}

/// One structured solver event.
///
/// The set mirrors what the analysis drivers actually do; every variant
/// has a stable JSONL rendering via [`Event::to_json`].
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// One damped-Newton attempt at a fixed gmin (a direct solve or one
    /// gmin-ladder rung).
    NewtonAttempt {
        /// Which analysis ran the attempt (`dcop`, `sweep`, `tran`...).
        analysis: &'static str,
        /// The gmin the attempt ran at, S.
        gmin: f64,
        /// `None` for the direct attempt at the target gmin; `Some(i)`
        /// for the i-th gmin-ladder rung (0 = heaviest).
        rung: Option<usize>,
        /// Iterations used (≥ 1 unless the budget was zero).
        iterations: usize,
        /// Whether the attempt converged.
        converged: bool,
        /// ∞-norm KCL residual at the last iterate, A.
        residual: f64,
        /// Last damped maximum voltage update, V.
        max_delta: f64,
        /// Iterations on which the `max_step` damping clamp engaged.
        clamps: usize,
        /// Dimension of the factored MNA system.
        lu_dim: usize,
        /// Rows displaced by partial pivoting, summed over the
        /// attempt's factorisations.
        lu_swaps: usize,
        /// Full symbolic (re-pivoting) factorizations in this attempt.
        /// On the dense path every iteration is one; on the sparse path
        /// only the first solve of a pattern (or a pivot-collapse
        /// escalation) is.
        lu_symbolic: usize,
        /// Numeric refactorizations that reused a cached pivot order and
        /// fill-in pattern (sparse path only).
        lu_refactor: usize,
        /// Wall-clock time of the attempt, s (0 when timing is off).
        seconds: f64,
    },
    /// One accepted transient timestep.
    TranStep {
        /// Step index (1-based; step 0 is the DC initial condition).
        step: usize,
        /// End time of the step, s.
        time: f64,
        /// Newton iterations of the accepted attempt.
        newton_iterations: usize,
        /// Companion-model integrator (`backward-euler`/`trapezoidal`).
        method: &'static str,
        /// Nonlinear devices whose evaluation was bypassed (cached
        /// stamps re-applied) during this step's Newton iterations.
        /// Always 0 on the fixed-step path.
        devices_bypassed: usize,
        /// Wall-clock time of the step, s.
        seconds: f64,
    },
    /// One rejected adaptive transient step (the step was retried at a
    /// smaller size; rejected steps do not advance time).
    TranReject {
        /// Index the step would have had if accepted (1-based).
        step: usize,
        /// Start time of the attempted step, s.
        time: f64,
        /// The step size that was rejected, s.
        dt: f64,
        /// Weighted local-truncation-error norm of the attempt (> 1 for
        /// an LTE rejection; 0 when Newton failed before an estimate
        /// existed).
        error: f64,
        /// Whether the rejection was a Newton convergence failure
        /// rather than an LTE overrun.
        newton_failed: bool,
        /// Wall-clock time of the rejected attempt, s.
        seconds: f64,
    },
    /// One AC analysis frequency point.
    AcPoint {
        /// Index within the sweep.
        index: usize,
        /// Analysis frequency, Hz.
        freq: f64,
        /// Full symbolic factorizations at this point (1 for the first
        /// frequency of a sparse run and for every dense point).
        lu_symbolic: usize,
        /// Pattern-reusing numeric refactorizations at this point.
        lu_refactor: usize,
        /// Wall-clock time, s.
        seconds: f64,
    },
    /// One DC sweep point.
    SweepPoint {
        /// Index within the sweep.
        index: usize,
        /// Stimulus value at this point.
        value: f64,
        /// Newton iterations of the accepted attempt.
        newton_iterations: usize,
        /// Wall-clock time, s.
        seconds: f64,
    },
    /// One noise analysis frequency point.
    NoisePoint {
        /// Index within the sweep.
        index: usize,
        /// Analysis frequency, Hz.
        freq: f64,
        /// Number of noise sources back-substituted.
        sources: usize,
        /// Wall-clock time, s.
        seconds: f64,
    },
    /// A named higher-level phase (e.g. `stscl::vtc::sweep`) with its
    /// wall-clock duration.
    Phase {
        /// Phase label, `crate::scope` style.
        name: String,
        /// Wall-clock time, s.
        seconds: f64,
    },
}

/// Formats an `f64` as a JSON number (`null` for non-finite values,
/// which JSON cannot represent).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "null".to_string()
    }
}

impl Event {
    /// Stable machine-readable tag of the variant.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::NewtonAttempt { .. } => "newton_attempt",
            Event::TranStep { .. } => "tran_step",
            Event::TranReject { .. } => "tran_reject",
            Event::AcPoint { .. } => "ac_point",
            Event::SweepPoint { .. } => "sweep_point",
            Event::NoisePoint { .. } => "noise_point",
            Event::Phase { .. } => "phase",
        }
    }

    /// Renders the event as one JSON object (stable key order, no
    /// trailing newline) — the unit of the JSONL export.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(160);
        let _ = write!(s, "{{\"event\":\"{}\"", self.kind());
        match self {
            Event::NewtonAttempt {
                analysis,
                gmin,
                rung,
                iterations,
                converged,
                residual,
                max_delta,
                clamps,
                lu_dim,
                lu_swaps,
                lu_symbolic,
                lu_refactor,
                seconds,
            } => {
                let _ = write!(s, ",\"analysis\":\"{analysis}\"");
                let _ = write!(s, ",\"gmin\":{}", json_num(*gmin));
                match rung {
                    Some(r) => {
                        let _ = write!(s, ",\"rung\":{r}");
                    }
                    None => s.push_str(",\"rung\":null"),
                }
                let _ = write!(s, ",\"iterations\":{iterations}");
                let _ = write!(s, ",\"converged\":{converged}");
                let _ = write!(s, ",\"residual\":{}", json_num(*residual));
                let _ = write!(s, ",\"max_delta\":{}", json_num(*max_delta));
                let _ = write!(s, ",\"clamps\":{clamps}");
                let _ = write!(s, ",\"lu_dim\":{lu_dim}");
                let _ = write!(s, ",\"lu_swaps\":{lu_swaps}");
                let _ = write!(s, ",\"lu_symbolic\":{lu_symbolic}");
                let _ = write!(s, ",\"lu_refactor\":{lu_refactor}");
                let _ = write!(s, ",\"seconds\":{}", json_num(*seconds));
            }
            Event::TranStep {
                step,
                time,
                newton_iterations,
                method,
                devices_bypassed,
                seconds,
            } => {
                let _ = write!(
                    s,
                    ",\"step\":{step},\"time\":{},\"newton_iterations\":{newton_iterations},\"method\":\"{method}\",\"devices_bypassed\":{devices_bypassed},\"seconds\":{}",
                    json_num(*time),
                    json_num(*seconds)
                );
            }
            Event::TranReject {
                step,
                time,
                dt,
                error,
                newton_failed,
                seconds,
            } => {
                let _ = write!(
                    s,
                    ",\"step\":{step},\"time\":{},\"dt\":{},\"error\":{},\"newton_failed\":{newton_failed},\"seconds\":{}",
                    json_num(*time),
                    json_num(*dt),
                    json_num(*error),
                    json_num(*seconds)
                );
            }
            Event::AcPoint {
                index,
                freq,
                lu_symbolic,
                lu_refactor,
                seconds,
            } => {
                let _ = write!(
                    s,
                    ",\"index\":{index},\"freq\":{},\"lu_symbolic\":{lu_symbolic},\"lu_refactor\":{lu_refactor},\"seconds\":{}",
                    json_num(*freq),
                    json_num(*seconds)
                );
            }
            Event::SweepPoint {
                index,
                value,
                newton_iterations,
                seconds,
            } => {
                let _ = write!(
                    s,
                    ",\"index\":{index},\"value\":{},\"newton_iterations\":{newton_iterations},\"seconds\":{}",
                    json_num(*value),
                    json_num(*seconds)
                );
            }
            Event::NoisePoint {
                index,
                freq,
                sources,
                seconds,
            } => {
                let _ = write!(
                    s,
                    ",\"index\":{index},\"freq\":{},\"sources\":{sources},\"seconds\":{}",
                    json_num(*freq),
                    json_num(*seconds)
                );
            }
            Event::Phase { name, seconds } => {
                // Phase names come from in-tree callers and contain no
                // characters needing JSON escaping beyond the basics.
                let escaped: String = name
                    .chars()
                    .flat_map(|c| match c {
                        '"' => vec!['\\', '"'],
                        '\\' => vec!['\\', '\\'],
                        c if c.is_control() => vec![' '],
                        c => vec![c],
                    })
                    .collect();
                let _ = write!(s, ",\"name\":\"{escaped}\",\"seconds\":{}", json_num(*seconds));
            }
        }
        s.push('}');
        s
    }
}

/// An [`Event`] tagged with the campaign label and trial index that
/// produced it (when it was recorded inside
/// [`with_trial_context`] — i.e. inside an `ulp-exec` trial).
///
/// The JSONL rendering keeps the underlying event's stable key order
/// and appends `"campaign"`/`"trial"` keys before the closing brace, so
/// untagged consumers (and the `^{"event":"…"}` CI grep) keep working.
#[derive(Debug, Clone, PartialEq)]
pub struct TaggedEvent {
    /// The solver event itself.
    pub event: Event,
    /// Campaign label (`Ensemble::label`) active at record time.
    pub campaign: Option<Arc<str>>,
    /// Trial index within the campaign active at record time.
    pub trial: Option<usize>,
}

impl TaggedEvent {
    /// An untagged wrapper (no campaign context).
    pub fn untagged(event: Event) -> Self {
        TaggedEvent {
            event,
            campaign: None,
            trial: None,
        }
    }

    /// Renders the tagged event as one JSON object: the underlying
    /// event's rendering with `campaign`/`trial` keys spliced in when
    /// present.
    pub fn to_json(&self) -> String {
        let mut s = self.event.to_json();
        if self.campaign.is_none() && self.trial.is_none() {
            return s;
        }
        s.pop(); // strip the closing brace, re-append after the tags
        if let Some(c) = &self.campaign {
            let _ = write!(s, ",\"campaign\":\"{}\"", json_escape(c));
        }
        if let Some(t) = self.trial {
            let _ = write!(s, ",\"trial\":{t}");
        }
        s.push('}');
        s
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(raw: &str) -> String {
    raw.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => vec![' '],
            c => vec![c],
        })
        .collect()
}

/// One completed wall-clock span on the process-monotonic timeline:
/// the unit of the Chrome trace-event export.
///
/// Spans form the campaign → trial → analysis phase → newton attempt
/// hierarchy implicitly, by time-nesting on each worker's timeline —
/// Perfetto reconstructs the stack from containment, so no explicit
/// parent pointers are needed.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Span category (`campaign`, `trial`, `phase`, `newton`).
    pub cat: &'static str,
    /// Human-readable span name (campaign label, analysis name, …).
    pub name: String,
    /// Trial index, when the span ran inside a trial.
    pub trial: Option<usize>,
    /// Worker index whose timeline the span belongs to (rendered as the
    /// Chrome trace `tid`).
    pub worker: usize,
    /// Start offset from the process trace epoch, µs.
    pub start_us: f64,
    /// Duration, µs.
    pub dur_us: f64,
}

impl SpanEvent {
    /// Renders the span as one Chrome trace-event object (`"ph":"X"`
    /// complete event; `ts`/`dur` in microseconds).
    pub fn to_chrome_json(&self) -> String {
        let mut s = String::with_capacity(128);
        let _ = write!(
            s,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}",
            json_escape(&self.name),
            self.cat,
            json_num(self.start_us),
            json_num(self.dur_us),
            self.worker
        );
        if let Some(t) = self.trial {
            let _ = write!(s, ",\"args\":{{\"trial\":{t}}}");
        }
        s.push('}');
        s
    }
}

/// The process-wide monotonic epoch all span timestamps are measured
/// from (fixed on first touch — installing the global collector touches
/// it so campaign timelines start near zero).
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds from the trace epoch to `t` (0 for instants predating
/// the epoch, which cannot happen for spans recorded after any
/// telemetry call).
fn epoch_us(t: Instant) -> f64 {
    t.saturating_duration_since(epoch()).as_secs_f64() * 1e6
}

/// Renders spans as a Chrome trace-event JSON document (the
/// `{"traceEvents":[…]}` object form), loadable in Perfetto or
/// `chrome://tracing`.
pub fn render_chrome_trace(spans: &[SpanEvent]) -> String {
    let mut s = String::with_capacity(64 + spans.len() * 128);
    s.push_str("{\"traceEvents\":[");
    for (k, span) in spans.iter().enumerate() {
        if k > 0 {
            s.push(',');
        }
        s.push('\n');
        s.push_str(&span.to_chrome_json());
    }
    s.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    s
}

/// Validates a Chrome trace-event JSON document with the crate's own
/// JSON reader: the top level must hold a `traceEvents` array whose
/// every element is a complete (`"ph":"X"`) event with a name, a
/// category, numeric non-negative `ts`/`dur` and integer `pid`/`tid`.
/// Returns the number of trace events.
///
/// # Errors
///
/// A description of the first structural violation.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    use crate::sarif::JsonValue;
    let doc = crate::sarif::parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .ok_or("no traceEvents array at top level")?;
    for (k, ev) in events.iter().enumerate() {
        let ctx = format!("traceEvents[{k}]");
        for key in ["name", "cat", "ph"] {
            if ev.get(key).and_then(JsonValue::as_str).is_none() {
                return Err(format!("{ctx}: missing string {key:?}"));
            }
        }
        if ev.get("ph").and_then(JsonValue::as_str) != Some("X") {
            return Err(format!("{ctx}: only \"X\" complete events are emitted"));
        }
        for key in ["ts", "dur", "pid", "tid"] {
            let Some(v) = ev.get(key).and_then(JsonValue::as_num) else {
                return Err(format!("{ctx}: missing numeric {key:?}"));
            };
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{ctx}: {key} = {v} out of range"));
            }
        }
    }
    Ok(events.len())
}

thread_local! {
    /// The campaign label and trial index of the `ulp-exec` trial
    /// currently executing on this thread, if any — consulted when
    /// retaining events/spans so telemetry is attributable to the trial
    /// that produced it.
    static TRIAL_CTX: std::cell::RefCell<Option<(Arc<str>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// Runs `f` with this thread's trial context set to `(campaign, trial)`;
/// events and spans recorded inside are tagged with it. The previous
/// context is restored on exit (also on unwind).
pub fn with_trial_context<R>(campaign: Arc<str>, trial: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<(Arc<str>, usize)>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            TRIAL_CTX.with(|c| *c.borrow_mut() = prev);
        }
    }
    let prev = TRIAL_CTX.with(|c| c.borrow_mut().replace((campaign, trial)));
    let _restore = Restore(prev);
    f()
}

/// The active trial context, if any.
fn current_trial_context() -> (Option<Arc<str>>, Option<usize>) {
    TRIAL_CTX.with(|c| match &*c.borrow() {
        Some((label, trial)) => (Some(label.clone()), Some(*trial)),
        None => (None, None),
    })
}

/// A point-in-time snapshot of the deterministic solver counters — the
/// per-trial cost ledger diffs two of these around each trial.
///
/// Every field counts discrete solver work (no wall-clock), so a
/// ledger built from these is byte-identical at any `ULP_JOBS`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverCounters {
    /// Newton attempts (direct solves and ladder rungs).
    pub attempts: usize,
    /// Attempts that converged.
    pub solves: usize,
    /// Attempts that did not converge.
    pub failures: usize,
    /// Total Newton iterations.
    pub newton_iterations: usize,
    /// Solves that engaged the gmin ladder.
    pub gmin_fallbacks: usize,
    /// Full symbolic (pivot-choosing) factorizations.
    pub symbolic_factorizations: usize,
    /// Pattern-reusing numeric refactorizations.
    pub numeric_refactorizations: usize,
    /// Transient steps accepted.
    pub tran_steps: usize,
    /// Adaptive transient steps rejected (LTE overruns plus Newton
    /// failures; always 0 on the fixed-step path).
    pub tran_rejected: usize,
    /// Rejections caused by the LTE estimate exceeding tolerance (a
    /// subset of `tran_rejected`).
    pub lte_exceeded: usize,
    /// Nonlinear device evaluations bypassed via the latency cache.
    pub devices_bypassed: usize,
    /// AC frequency points solved.
    pub ac_points: usize,
    /// DC sweep points solved.
    pub sweep_points: usize,
    /// Noise frequency points solved.
    pub noise_points: usize,
}

impl SolverCounters {
    /// The counters accrued since `earlier` (a snapshot taken on the
    /// same collector before the work being measured).
    pub fn delta_since(self, earlier: SolverCounters) -> SolverCounters {
        SolverCounters {
            attempts: self.attempts.saturating_sub(earlier.attempts),
            solves: self.solves.saturating_sub(earlier.solves),
            failures: self.failures.saturating_sub(earlier.failures),
            newton_iterations: self
                .newton_iterations
                .saturating_sub(earlier.newton_iterations),
            gmin_fallbacks: self.gmin_fallbacks.saturating_sub(earlier.gmin_fallbacks),
            symbolic_factorizations: self
                .symbolic_factorizations
                .saturating_sub(earlier.symbolic_factorizations),
            numeric_refactorizations: self
                .numeric_refactorizations
                .saturating_sub(earlier.numeric_refactorizations),
            tran_steps: self.tran_steps.saturating_sub(earlier.tran_steps),
            tran_rejected: self.tran_rejected.saturating_sub(earlier.tran_rejected),
            lte_exceeded: self.lte_exceeded.saturating_sub(earlier.lte_exceeded),
            devices_bypassed: self.devices_bypassed.saturating_sub(earlier.devices_bypassed),
            ac_points: self.ac_points.saturating_sub(earlier.ac_points),
            sweep_points: self.sweep_points.saturating_sub(earlier.sweep_points),
            noise_points: self.noise_points.saturating_sub(earlier.noise_points),
        }
    }
}

/// A sink for solver events.
///
/// Implementations must be cheap to call; the drivers consult
/// [`Tracer::enabled`] before building events so a disabled tracer costs
/// nothing in the hot loops.
pub trait Tracer {
    /// Records one structured event.
    fn record(&mut self, event: &Event);

    /// Whether callers should bother constructing events (and reading
    /// the clock). Defaults to `true`; [`NullTracer`] returns `false`.
    fn enabled(&self) -> bool {
        true
    }
}

/// The no-op tracer: discards everything, reports itself disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn record(&mut self, _event: &Event) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Aggregate solver counters and exact iteration statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimMetrics {
    /// Newton attempts recorded (direct solves and ladder rungs).
    pub attempts: usize,
    /// Attempts that converged.
    pub solves: usize,
    /// Attempts that did not converge.
    pub failures: usize,
    /// Total Newton iterations across all attempts.
    pub newton_iterations: usize,
    /// Solves that fell back to the gmin ladder (first-rung events).
    pub gmin_fallbacks: usize,
    /// Iterations on which the voltage-damping clamp engaged.
    pub damping_clamps: usize,
    /// LU factorisations attempted (one per Newton iteration).
    pub lu_factorisations: usize,
    /// Rows displaced by partial pivoting, summed over factorisations.
    pub lu_swaps: usize,
    /// Full symbolic (pivot-choosing) factorizations; the dense fallback
    /// performs one per linear solve, the sparse path one per pattern.
    pub symbolic_factorizations: usize,
    /// Numeric refactorizations that reused a cached symbolic pattern.
    pub numeric_refactorizations: usize,
    /// Largest MNA system dimension factored.
    pub max_dimension: usize,
    /// Transient steps accepted.
    pub tran_steps: usize,
    /// Adaptive transient steps rejected (LTE overruns plus Newton
    /// failures; always 0 on the fixed-step path).
    pub tran_rejected: usize,
    /// Rejections caused by the LTE estimate exceeding tolerance (a
    /// subset of `tran_rejected`).
    pub lte_exceeded: usize,
    /// Nonlinear device evaluations bypassed via the latency cache.
    pub devices_bypassed: usize,
    /// AC frequency points solved.
    pub ac_points: usize,
    /// DC sweep points solved.
    pub sweep_points: usize,
    /// Noise frequency points solved.
    pub noise_points: usize,
    /// Wall-clock time summed over Newton attempts, s.
    pub solve_seconds: f64,
    /// Per-attempt iteration counts, recording order (for percentiles).
    iter_samples: Vec<usize>,
    /// Named phase durations, recording order.
    phases: Vec<(String, f64)>,
}

/// Nearest-rank percentile of an unsorted sample set: the smallest value
/// with at least `q`% of samples at or below it. Returns 0 when empty.
fn percentile(samples: &[usize], q: f64) -> usize {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl SimMetrics {
    /// Folds one event into the aggregates.
    pub fn absorb(&mut self, event: &Event) {
        match event {
            Event::NewtonAttempt {
                rung,
                iterations,
                converged,
                clamps,
                lu_dim,
                lu_swaps,
                lu_symbolic,
                lu_refactor,
                seconds,
                ..
            } => {
                self.attempts += 1;
                if *converged {
                    self.solves += 1;
                } else {
                    self.failures += 1;
                }
                self.newton_iterations += iterations;
                self.iter_samples.push(*iterations);
                if *rung == Some(0) {
                    self.gmin_fallbacks += 1;
                }
                self.damping_clamps += clamps;
                self.lu_factorisations += iterations;
                self.lu_swaps += lu_swaps;
                self.symbolic_factorizations += lu_symbolic;
                self.numeric_refactorizations += lu_refactor;
                self.max_dimension = self.max_dimension.max(*lu_dim);
                self.solve_seconds += seconds;
            }
            Event::TranStep {
                devices_bypassed, ..
            } => {
                self.tran_steps += 1;
                self.devices_bypassed += devices_bypassed;
            }
            Event::TranReject { newton_failed, .. } => {
                self.tran_rejected += 1;
                if !newton_failed {
                    self.lte_exceeded += 1;
                }
            }
            Event::AcPoint {
                lu_symbolic,
                lu_refactor,
                ..
            } => {
                self.ac_points += 1;
                self.symbolic_factorizations += lu_symbolic;
                self.numeric_refactorizations += lu_refactor;
            }
            Event::SweepPoint { .. } => self.sweep_points += 1,
            Event::NoisePoint { .. } => self.noise_points += 1,
            Event::Phase { name, seconds } => self.phases.push((name.clone(), *seconds)),
        }
    }

    /// Median per-attempt Newton iteration count (nearest-rank).
    pub fn p50_iterations(&self) -> usize {
        percentile(&self.iter_samples, 50.0)
    }

    /// 95th-percentile per-attempt Newton iteration count.
    pub fn p95_iterations(&self) -> usize {
        percentile(&self.iter_samples, 95.0)
    }

    /// Worst per-attempt Newton iteration count.
    pub fn max_iterations(&self) -> usize {
        self.iter_samples.iter().copied().max().unwrap_or(0)
    }

    /// Mean Newton iterations per attempt (0 with no attempts).
    pub fn iterations_per_solve(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.newton_iterations as f64 / self.attempts as f64
        }
    }

    /// Fraction of factorizations that reused a cached symbolic pattern
    /// instead of re-pivoting from scratch (0 when nothing was factored).
    /// The dense fallback path never reuses, so this is also a quick
    /// check of which backend a campaign actually ran on.
    pub fn pattern_reuse_rate(&self) -> f64 {
        let total = self.symbolic_factorizations + self.numeric_refactorizations;
        if total == 0 {
            0.0
        } else {
            self.numeric_refactorizations as f64 / total as f64
        }
    }

    /// Recorded phase durations, recording order.
    pub fn phases(&self) -> &[(String, f64)] {
        &self.phases
    }

    /// The deterministic counter subset as a cheap [`SolverCounters`]
    /// snapshot — what the per-trial cost ledger diffs around each
    /// trial.
    pub fn counters(&self) -> SolverCounters {
        SolverCounters {
            attempts: self.attempts,
            solves: self.solves,
            failures: self.failures,
            newton_iterations: self.newton_iterations,
            gmin_fallbacks: self.gmin_fallbacks,
            symbolic_factorizations: self.symbolic_factorizations,
            numeric_refactorizations: self.numeric_refactorizations,
            tran_steps: self.tran_steps,
            tran_rejected: self.tran_rejected,
            lte_exceeded: self.lte_exceeded,
            devices_bypassed: self.devices_bypassed,
            ac_points: self.ac_points,
            sweep_points: self.sweep_points,
            noise_points: self.noise_points,
        }
    }

    /// Folds another aggregate into this one: counters add, the maximum
    /// dimension takes the max, and the exact iteration sample set is
    /// concatenated — so percentiles of the merged aggregate equal the
    /// percentiles of one collector that saw every event. This is how a
    /// parallel campaign's per-worker collectors combine at campaign
    /// end without the workers ever sharing a lock mid-run.
    pub fn merge(&mut self, other: &SimMetrics) {
        self.attempts += other.attempts;
        self.solves += other.solves;
        self.failures += other.failures;
        self.newton_iterations += other.newton_iterations;
        self.gmin_fallbacks += other.gmin_fallbacks;
        self.damping_clamps += other.damping_clamps;
        self.lu_factorisations += other.lu_factorisations;
        self.lu_swaps += other.lu_swaps;
        self.symbolic_factorizations += other.symbolic_factorizations;
        self.numeric_refactorizations += other.numeric_refactorizations;
        self.max_dimension = self.max_dimension.max(other.max_dimension);
        self.tran_steps += other.tran_steps;
        self.tran_rejected += other.tran_rejected;
        self.lte_exceeded += other.lte_exceeded;
        self.devices_bypassed += other.devices_bypassed;
        self.ac_points += other.ac_points;
        self.sweep_points += other.sweep_points;
        self.noise_points += other.noise_points;
        self.solve_seconds += other.solve_seconds;
        self.iter_samples.extend_from_slice(&other.iter_samples);
        self.phases.extend(other.phases.iter().cloned());
    }

    /// The stable multi-line `-- solver metrics --` footer.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "-- solver metrics --");
        let _ = writeln!(
            s,
            "total solves      : {} ({} attempts, {} failed)",
            self.solves, self.attempts, self.failures
        );
        let _ = writeln!(
            s,
            "newton iterations : {} total, p50 {}, p95 {}, max {}",
            self.newton_iterations,
            self.p50_iterations(),
            self.p95_iterations(),
            self.max_iterations()
        );
        let _ = writeln!(s, "gmin fallbacks    : {}", self.gmin_fallbacks);
        let _ = writeln!(s, "damping clamps    : {}", self.damping_clamps);
        let _ = writeln!(
            s,
            "lu factorisations : {} (max dim {}, {} pivot swaps)",
            self.lu_factorisations, self.max_dimension, self.lu_swaps
        );
        let _ = writeln!(
            s,
            "lu pattern reuse  : {} symbolic, {} refactor ({:.1}% reuse)",
            self.symbolic_factorizations,
            self.numeric_refactorizations,
            100.0 * self.pattern_reuse_rate()
        );
        let _ = writeln!(
            s,
            "analysis points   : tran {}, ac {}, sweep {}, noise {}",
            self.tran_steps, self.ac_points, self.sweep_points, self.noise_points
        );
        let _ = writeln!(
            s,
            "adaptive stepping : {} rejected ({} lte), {} device bypasses",
            self.tran_rejected, self.lte_exceeded, self.devices_bypassed
        );
        let _ = write!(s, "solve wall time   : {:.3e} s", self.solve_seconds);
        for (name, secs) in &self.phases {
            let _ = write!(s, "\nphase             : {name} {secs:.3e} s");
        }
        s
    }
}

/// A [`Tracer`] that aggregates [`SimMetrics`], retains the full event
/// log in [`TraceMode::Events`] and additionally records wall-clock
/// spans and registry metrics in [`TraceMode::Spans`].
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    mode: TraceMode,
    metrics: SimMetrics,
    events: Vec<TaggedEvent>,
    spans: Vec<SpanEvent>,
    registry: Registry,
    /// Worker index this collector shards for (0 for the global
    /// collector and for serial campaigns); stamps recorded spans.
    worker: usize,
}

impl MetricsCollector {
    /// Creates a collector in the given mode (worker index 0).
    pub fn new(mode: TraceMode) -> Self {
        MetricsCollector::for_worker(mode, 0)
    }

    /// Creates a collector sharding for the given worker index; spans it
    /// records carry that index as their Chrome-trace `tid`.
    pub fn for_worker(mode: TraceMode, worker: usize) -> Self {
        MetricsCollector {
            mode,
            metrics: SimMetrics::default(),
            events: Vec::new(),
            spans: Vec::new(),
            registry: Registry::new(),
            worker,
        }
    }

    /// The aggregates so far.
    pub fn metrics(&self) -> &SimMetrics {
        &self.metrics
    }

    /// The collector's worker index.
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// The retained events (empty in [`TraceMode::Summary`]).
    pub fn events(&self) -> &[TaggedEvent] {
        &self.events
    }

    /// The recorded spans (empty outside [`TraceMode::Spans`]).
    pub fn spans(&self) -> &[SpanEvent] {
        &self.spans
    }

    /// This collector's metrics-registry shard.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Mutable access to the registry shard.
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// Takes the retained events, leaving the log empty.
    pub fn take_events(&mut self) -> Vec<TaggedEvent> {
        std::mem::take(&mut self.events)
    }

    /// Takes the recorded spans, leaving the span log empty.
    pub fn take_spans(&mut self) -> Vec<SpanEvent> {
        std::mem::take(&mut self.spans)
    }

    /// Records one completed span (no-op outside [`TraceMode::Spans`]).
    pub fn record_span(&mut self, cat: &'static str, name: &str, trial: Option<usize>, start_us: f64, dur_us: f64) {
        if self.mode.keeps_spans() {
            self.spans.push(SpanEvent {
                cat,
                name: name.to_string(),
                trial,
                worker: self.worker,
                start_us,
                dur_us,
            });
        }
    }

    /// Renders the retained events as JSONL (one object per line,
    /// trailing newline when non-empty).
    pub fn render_jsonl(&self) -> String {
        let mut s = String::new();
        for e in &self.events {
            s.push_str(&e.to_json());
            s.push('\n');
        }
        s
    }

    /// Clears aggregates, events, spans and the registry shard.
    pub fn reset(&mut self) {
        self.metrics = SimMetrics::default();
        self.events.clear();
        self.spans.clear();
        self.registry = Registry::new();
    }

    /// Folds another collector into this one: aggregates merge via
    /// [`SimMetrics::merge`], registry shards via [`Registry::merge`];
    /// retained events/spans are appended when *this* collector keeps
    /// them. Folding workers in worker-index order keeps the merged
    /// logs deterministic.
    pub fn merge(&mut self, other: &MetricsCollector) {
        self.metrics.merge(&other.metrics);
        self.registry.merge(&other.registry);
        if self.mode.keeps_events() {
            self.events.extend(other.events.iter().cloned());
        }
        if self.mode.keeps_spans() {
            self.spans.extend(other.spans.iter().cloned());
        }
    }

    /// Synthesises a span from an already-timed solver event (Newton
    /// attempts and phases carry their own duration, so the span's start
    /// is reconstructed as `now − duration` on this worker's timeline).
    fn synth_span(&mut self, event: &Event, trial: Option<usize>) {
        let (cat, name, seconds): (&'static str, String, f64) = match event {
            Event::NewtonAttempt {
                analysis, seconds, ..
            } => ("newton", (*analysis).to_string(), *seconds),
            Event::Phase { name, seconds } => ("phase", name.clone(), *seconds),
            _ => return,
        };
        let end_us = epoch_us(Instant::now());
        let dur_us = (seconds * 1e6).max(0.0);
        self.spans.push(SpanEvent {
            cat,
            name,
            trial,
            worker: self.worker,
            start_us: (end_us - dur_us).max(0.0),
            dur_us,
        });
    }
}

impl Default for MetricsCollector {
    fn default() -> Self {
        MetricsCollector::new(TraceMode::Summary)
    }
}

impl Tracer for MetricsCollector {
    fn record(&mut self, event: &Event) {
        self.metrics.absorb(event);
        // Transient stepping counters mirror into the Prometheus
        // registry shard so campaign exports carry them without a
        // second aggregation pass. All four are deterministic counts.
        match event {
            Event::TranStep {
                devices_bypassed, ..
            } => {
                self.registry.counter_add("ulp_tran_steps_accepted_total", 1);
                if *devices_bypassed > 0 {
                    self.registry
                        .counter_add("ulp_tran_devices_bypassed_total", *devices_bypassed as u64);
                }
            }
            Event::TranReject { newton_failed, .. } => {
                self.registry.counter_add("ulp_tran_steps_rejected_total", 1);
                if !newton_failed {
                    self.registry.counter_add("ulp_tran_lte_exceeded_total", 1);
                }
            }
            _ => {}
        }
        if self.mode.keeps_events() {
            let (campaign, trial) = current_trial_context();
            if self.mode.keeps_spans() {
                self.synth_span(event, trial);
            }
            self.events.push(TaggedEvent {
                event: event.clone(),
                campaign,
                trial,
            });
        }
    }
}

/// The decided global tracing state: the mode outside the `Mutex` so
/// hot-path mode checks never contend with a collector holding the
/// lock.
struct Global {
    mode: TraceMode,
    collector: Mutex<MetricsCollector>,
}

impl Global {
    fn new(mode: TraceMode) -> Global {
        let _ = epoch(); // pin the span timeline origin at install time
        Global {
            mode,
            collector: Mutex::new(MetricsCollector::new(mode)),
        }
    }
}

/// The process-global collector, decided once: either installed
/// programmatically via [`install_global`] or from `ULP_TRACE` on first
/// touch.
static GLOBAL: OnceLock<Option<Global>> = OnceLock::new();

fn global_cell() -> &'static Option<Global> {
    GLOBAL.get_or_init(|| TraceMode::from_env().map(Global::new))
}

fn lock(m: &Mutex<MetricsCollector>) -> std::sync::MutexGuard<'_, MetricsCollector> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Installs the global collector programmatically (instead of via the
/// environment). Returns `false` if the decision was already made —
/// by a prior call or by any earlier default-API analysis (which reads
/// `ULP_TRACE` on first touch).
pub fn install_global(mode: TraceMode) -> bool {
    GLOBAL.set(Some(Global::new(mode))).is_ok()
}

/// Whether a global collector is active.
pub fn global_enabled() -> bool {
    global_cell().is_some()
}

/// The global collector's mode, if one is active (lock-free after the
/// first touch).
pub fn global_mode() -> Option<TraceMode> {
    global_cell().as_ref().map(|g| g.mode)
}

thread_local! {
    /// Per-worker collector: when installed (inside [`worker_capture`]),
    /// this thread's default-API events land here instead of in the
    /// global `Mutex`, so parallel ensemble workers never contend on the
    /// global lock mid-campaign.
    static WORKER: std::cell::RefCell<Option<MetricsCollector>> =
        const { std::cell::RefCell::new(None) };
}

/// Clears the worker slot even if the captured closure unwinds, so a
/// panicking worker cannot leave a stale collector installed on a
/// pooled thread.
struct WorkerSlotGuard;

impl Drop for WorkerSlotGuard {
    fn drop(&mut self) {
        WORKER.with(|w| w.borrow_mut().take());
    }
}

/// Runs `f` with a fresh thread-local collector (mirroring the global
/// collector's mode) capturing every default-API event this thread
/// records, and returns it alongside `f`'s result. When tracing is off
/// this is a plain call returning `None` — zero cost.
///
/// The caller is responsible for folding the returned collector back
/// into the global one via [`fold_worker`]; doing so *after* joining
/// all workers, in a deterministic worker order, keeps the global event
/// log's ordering independent of thread scheduling.
pub fn worker_capture<R>(f: impl FnOnce() -> R) -> (R, Option<MetricsCollector>) {
    worker_capture_on(0, f)
}

/// [`worker_capture`] with an explicit worker index: the captured
/// collector shards for worker `worker`, stamping its index on recorded
/// spans so each pool worker renders as its own Chrome-trace timeline.
pub fn worker_capture_on<R>(
    worker: usize,
    f: impl FnOnce() -> R,
) -> (R, Option<MetricsCollector>) {
    let Some(mode) = global_mode() else {
        return (f(), None);
    };
    WORKER.with(|w| *w.borrow_mut() = Some(MetricsCollector::for_worker(mode, worker)));
    let guard = WorkerSlotGuard;
    let r = f();
    let mc = WORKER.with(|w| w.borrow_mut().take());
    drop(guard);
    (r, mc)
}

/// Folds a worker collector (from [`worker_capture`]) into the global
/// collector. A no-op when tracing is off.
pub fn fold_worker(mc: &MetricsCollector) {
    if let Some(g) = global_cell() {
        lock(&g.collector).merge(mc);
    }
}

/// Runs `f` against the active *collector*: this thread's worker
/// collector when installed, else the global one. Returns `None` (and
/// does not run `f`) when tracing is off.
fn with_collector<R>(f: impl FnOnce(&mut MetricsCollector) -> R) -> Option<R> {
    let worker_active = WORKER.with(|w| w.borrow().is_some());
    if worker_active {
        return Some(WORKER.with(|w| {
            f(w.borrow_mut().as_mut().expect("worker collector installed"))
        }));
    }
    global_cell().as_ref().map(|g| f(&mut lock(&g.collector)))
}

/// A snapshot of the deterministic solver counters accumulated *on this
/// thread's worker collector* (`None` when no worker collector is
/// installed — i.e. outside a traced campaign). The cost ledger diffs
/// two of these around each trial; reading only the thread-local shard
/// keeps it lock-free.
pub fn local_counters() -> Option<SolverCounters> {
    WORKER.with(|w| w.borrow().as_ref().map(|mc| mc.metrics.counters()))
}

/// Adds `delta` to the named registry counter on the active collector.
/// A no-op when tracing is off.
pub fn counter_add(name: &str, delta: u64) {
    with_collector(|mc| mc.registry.counter_add(name, delta));
}

/// Sets the named registry gauge on the active collector. A no-op when
/// tracing is off.
pub fn gauge_set(name: &str, value: f64) {
    with_collector(|mc| mc.registry.gauge_set(name, value));
}

/// Records one wall-clock observation into the named registry histogram
/// on the active collector. A no-op when tracing is off.
pub fn observe_seconds(name: &str, seconds: f64) {
    with_collector(|mc| mc.registry.observe_seconds(name, seconds));
}

/// Whether span recording is active (global mode is
/// [`TraceMode::Spans`]).
pub fn spans_enabled() -> bool {
    global_mode().is_some_and(TraceMode::keeps_spans)
}

/// Times `f` and records a completed span with the given category/name
/// on the active collector. A plain call when span recording is off.
pub fn span<R>(cat: &'static str, name: &str, trial: Option<usize>, f: impl FnOnce() -> R) -> R {
    if !spans_enabled() {
        return f();
    }
    let t0 = Instant::now();
    let r = f();
    let start_us = epoch_us(t0);
    let dur_us = t0.elapsed().as_secs_f64() * 1e6;
    with_collector(|mc| mc.record_span(cat, name, trial, start_us, dur_us));
    r
}

/// Runs `f` with the active tracer: this thread's worker collector when
/// one is installed ([`worker_capture`]), else the global collector
/// when one is active, else the [`NullTracer`]. This is what every
/// default analysis entry point routes through.
///
/// `f` must not recursively call a *default* analysis entry point while
/// holding the tracer (the drivers use only `*_traced` internals, so
/// this cannot happen through this crate's own APIs).
pub fn with_tracer<R>(f: impl FnOnce(&mut dyn Tracer) -> R) -> R {
    let worker_active = WORKER.with(|w| w.borrow().is_some());
    if worker_active {
        return WORKER.with(|w| {
            f(w.borrow_mut().as_mut().expect("worker collector installed"))
        });
    }
    match global_cell() {
        Some(g) => f(&mut *lock(&g.collector)),
        None => f(&mut NullTracer),
    }
}

/// A snapshot of the global aggregates (`None` when tracing is off).
pub fn snapshot() -> Option<SimMetrics> {
    global_cell()
        .as_ref()
        .map(|g| lock(&g.collector).metrics().clone())
}

/// A snapshot of the global metrics registry (`None` when tracing is
/// off; empty until worker shards fold in or global-path metrics are
/// recorded).
pub fn registry_snapshot() -> Option<Registry> {
    global_cell()
        .as_ref()
        .map(|g| lock(&g.collector).registry().clone())
}

/// Takes the globally retained events (empty unless the global
/// collector keeps events — [`TraceMode::Events`] or
/// [`TraceMode::Spans`]).
pub fn take_events() -> Vec<TaggedEvent> {
    global_cell()
        .as_ref()
        .map(|g| lock(&g.collector).take_events())
        .unwrap_or_default()
}

/// Clones the globally recorded spans without draining them (empty
/// outside [`TraceMode::Spans`]). Use this for mid-run validation;
/// the end-of-run exporter uses the draining [`take_spans`].
pub fn spans_snapshot() -> Vec<SpanEvent> {
    global_cell()
        .as_ref()
        .map(|g| lock(&g.collector).spans().to_vec())
        .unwrap_or_default()
}

/// Takes the globally recorded spans (empty outside
/// [`TraceMode::Spans`]).
pub fn take_spans() -> Vec<SpanEvent> {
    global_cell()
        .as_ref()
        .map(|g| lock(&g.collector).take_spans())
        .unwrap_or_default()
}

/// Times `f` and records a [`Event::Phase`] with the given name on the
/// global collector. A no-op wrapper when tracing is off. The global
/// lock is taken only *after* `f` returns, so `f` may freely run
/// (default or traced) analyses.
pub fn phase<R>(name: &str, f: impl FnOnce() -> R) -> R {
    if !global_enabled() {
        return f();
    }
    let t0 = Instant::now();
    let r = f();
    let seconds = t0.elapsed().as_secs_f64();
    with_tracer(|t| {
        t.record(&Event::Phase {
            name: name.to_string(),
            seconds,
        })
    });
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attempt(iterations: usize, converged: bool, rung: Option<usize>) -> Event {
        Event::NewtonAttempt {
            analysis: "dcop",
            gmin: 1e-12,
            rung,
            iterations,
            converged,
            residual: 1e-9,
            max_delta: 1e-10,
            clamps: 1,
            lu_dim: 7,
            lu_swaps: 2,
            lu_symbolic: 1,
            lu_refactor: iterations.saturating_sub(1),
            seconds: 0.5e-3,
        }
    }

    #[test]
    fn aggregates_are_exact_on_a_scripted_sequence() {
        let mut mc = MetricsCollector::new(TraceMode::Events);
        // 20 attempts with iteration counts 1..=20; the 10th (iters 10)
        // is a failed direct attempt followed by a ladder engagement.
        for i in 1..=20usize {
            let rung = if i == 11 { Some(0) } else { None };
            mc.record(&attempt(i, i != 10, rung));
        }
        let m = mc.metrics();
        assert_eq!(m.attempts, 20);
        assert_eq!(m.solves, 19);
        assert_eq!(m.failures, 1);
        assert_eq!(m.newton_iterations, (1..=20).sum::<usize>());
        assert_eq!(m.gmin_fallbacks, 1);
        assert_eq!(m.damping_clamps, 20);
        assert_eq!(m.lu_factorisations, (1..=20).sum::<usize>());
        assert_eq!(m.lu_swaps, 40);
        // One symbolic per attempt, iterations−1 pattern reuses each.
        assert_eq!(m.symbolic_factorizations, 20);
        assert_eq!(m.numeric_refactorizations, (1..=20).sum::<usize>() - 20);
        let rate = m.numeric_refactorizations as f64
            / (m.symbolic_factorizations + m.numeric_refactorizations) as f64;
        assert!((m.pattern_reuse_rate() - rate).abs() < 1e-12);
        assert_eq!(m.max_dimension, 7);
        // Nearest-rank percentiles on 1..=20: p50 = 10, p95 = 19.
        assert_eq!(m.p50_iterations(), 10);
        assert_eq!(m.p95_iterations(), 19);
        assert_eq!(m.max_iterations(), 20);
        assert!((m.iterations_per_solve() - 10.5).abs() < 1e-12);
        assert!((m.solve_seconds - 20.0 * 0.5e-3).abs() < 1e-12);
        assert_eq!(mc.events().len(), 20);
    }

    #[test]
    fn point_events_count_into_their_buckets() {
        let mut mc = MetricsCollector::default();
        mc.record(&Event::TranStep {
            step: 1,
            time: 1e-9,
            newton_iterations: 3,
            method: "backward-euler",
            devices_bypassed: 4,
            seconds: 0.0,
        });
        mc.record(&Event::TranReject {
            step: 2,
            time: 1e-9,
            dt: 5e-10,
            error: 2.5,
            newton_failed: false,
            seconds: 0.0,
        });
        mc.record(&Event::TranReject {
            step: 2,
            time: 1e-9,
            dt: 2.5e-10,
            error: 0.0,
            newton_failed: true,
            seconds: 0.0,
        });
        mc.record(&Event::AcPoint {
            index: 0,
            freq: 1e3,
            lu_symbolic: 1,
            lu_refactor: 0,
            seconds: 0.0,
        });
        mc.record(&Event::SweepPoint {
            index: 4,
            value: 0.5,
            newton_iterations: 2,
            seconds: 0.0,
        });
        mc.record(&Event::NoisePoint {
            index: 0,
            freq: 10.0,
            sources: 3,
            seconds: 0.0,
        });
        mc.record(&Event::Phase {
            name: "stscl::vtc".into(),
            seconds: 1e-3,
        });
        let m = mc.metrics();
        assert_eq!(
            (m.tran_steps, m.ac_points, m.sweep_points, m.noise_points),
            (1, 1, 1, 1)
        );
        // Rejections split into LTE overruns vs Newton failures; bypass
        // counts accumulate from accepted steps only.
        assert_eq!(
            (m.tran_rejected, m.lte_exceeded, m.devices_bypassed),
            (2, 1, 4)
        );
        // The registry shard mirrors the same counters.
        use crate::registry::Metric;
        assert_eq!(
            mc.registry().get("ulp_tran_steps_accepted_total"),
            Some(&Metric::Counter(1))
        );
        assert_eq!(
            mc.registry().get("ulp_tran_steps_rejected_total"),
            Some(&Metric::Counter(2))
        );
        assert_eq!(
            mc.registry().get("ulp_tran_lte_exceeded_total"),
            Some(&Metric::Counter(1))
        );
        assert_eq!(
            mc.registry().get("ulp_tran_devices_bypassed_total"),
            Some(&Metric::Counter(4))
        );
        assert_eq!(m.phases(), &[("stscl::vtc".to_string(), 1e-3)]);
        // Summary mode retains no events.
        assert!(mc.events().is_empty());
        assert_eq!(mc.render_jsonl(), "");
    }

    #[test]
    fn jsonl_rendering_is_wellformed() {
        let mut mc = MetricsCollector::new(TraceMode::Events);
        mc.record(&attempt(5, true, Some(2)));
        mc.record(&Event::Phase {
            name: "a\"b\\c".into(),
            seconds: f64::INFINITY,
        });
        let jsonl = mc.render_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert_eq!(
                line.matches('{').count(),
                line.matches('}').count(),
                "{line}"
            );
            assert!(line.contains("\"event\":\""), "{line}");
        }
        assert!(lines[0].contains("\"rung\":2"));
        assert!(lines[0].contains("\"converged\":true"));
        // Non-finite floats become null; quotes/backslashes are escaped.
        assert!(lines[1].contains("\"seconds\":null"));
        assert!(lines[1].contains("a\\\"b\\\\c"));
        // A direct attempt renders rung as JSON null.
        assert!(attempt(1, true, None).to_json().contains("\"rung\":null"));
        // Adaptive-step events keep their stable key order.
        let step = Event::TranStep {
            step: 3,
            time: 1e-8,
            newton_iterations: 2,
            method: "trapezoidal",
            devices_bypassed: 5,
            seconds: 0.0,
        }
        .to_json();
        assert!(step.contains("\"devices_bypassed\":5,\"seconds\":"), "{step}");
        let rej = Event::TranReject {
            step: 4,
            time: 2e-8,
            dt: 1e-9,
            error: 1.7,
            newton_failed: false,
            seconds: 0.0,
        }
        .to_json();
        assert!(rej.starts_with("{\"event\":\"tran_reject\""), "{rej}");
        assert!(rej.contains("\"dt\":1e-9"), "{rej}");
        assert!(rej.contains("\"newton_failed\":false"), "{rej}");
    }

    #[test]
    fn summary_footer_is_stable_and_parseable() {
        let mut mc = MetricsCollector::default();
        mc.record(&attempt(4, true, None));
        let s = mc.metrics().summary();
        assert!(s.starts_with("-- solver metrics --"));
        for key in [
            "total solves      :",
            "newton iterations :",
            "gmin fallbacks    :",
            "damping clamps    :",
            "lu factorisations :",
            "lu pattern reuse  :",
            "analysis points   :",
            "solve wall time   :",
        ] {
            assert!(s.contains(key), "missing `{key}` in:\n{s}");
        }
        assert!(s.contains("total solves      : 1 (1 attempts, 0 failed)"));
        assert!(s.contains("newton iterations : 4 total, p50 4, p95 4, max 4"));
    }

    #[test]
    fn percentile_nearest_rank_edge_cases() {
        assert_eq!(percentile(&[], 95.0), 0);
        assert_eq!(percentile(&[7], 50.0), 7);
        assert_eq!(percentile(&[7], 95.0), 7);
        assert_eq!(percentile(&[1, 2, 3, 4], 50.0), 2);
        assert_eq!(percentile(&[4, 3, 2, 1], 100.0), 4);
    }

    #[test]
    fn null_tracer_is_disabled() {
        let mut t = NullTracer;
        assert!(!t.enabled());
        t.record(&attempt(1, true, None));
        let mut mc = MetricsCollector::default();
        assert!(Tracer::enabled(&mc));
        mc.reset();
        assert_eq!(mc.metrics(), &SimMetrics::default());
    }

    #[test]
    fn merged_collectors_match_a_single_collector_exactly() {
        // Split the same scripted event sequence across three worker
        // collectors in an arbitrary interleaving; the merged aggregate
        // must equal (including exact percentiles) the aggregate of one
        // collector that saw everything.
        let events: Vec<Event> = (1..=20usize)
            .map(|i| attempt(i, i != 10, if i == 11 { Some(0) } else { None }))
            .chain(std::iter::once(Event::Phase {
                name: "stscl::vtc".into(),
                seconds: 1e-3,
            }))
            .chain(std::iter::once(Event::TranStep {
                step: 1,
                time: 1e-9,
                newton_iterations: 3,
                method: "backward-euler",
                devices_bypassed: 2,
                seconds: 0.0,
            }))
            .collect();
        let mut single = MetricsCollector::new(TraceMode::Events);
        for e in &events {
            single.record(e);
        }
        let mut workers = [
            MetricsCollector::new(TraceMode::Events),
            MetricsCollector::new(TraceMode::Events),
            MetricsCollector::new(TraceMode::Events),
        ];
        for (k, e) in events.iter().enumerate() {
            // An adversarial spread: bursts to one worker, dribbles to
            // the others.
            workers[(k * k + k / 3) % 3].record(e);
        }
        let mut merged = MetricsCollector::new(TraceMode::Events);
        for w in &workers {
            merged.merge(w);
        }
        let (m, s) = (merged.metrics(), single.metrics());
        assert_eq!(m.attempts, s.attempts);
        assert_eq!(m.solves, s.solves);
        assert_eq!(m.failures, s.failures);
        assert_eq!(m.newton_iterations, s.newton_iterations);
        assert_eq!(m.gmin_fallbacks, s.gmin_fallbacks);
        assert_eq!(m.damping_clamps, s.damping_clamps);
        assert_eq!(m.lu_factorisations, s.lu_factorisations);
        assert_eq!(m.lu_swaps, s.lu_swaps);
        assert_eq!(m.max_dimension, s.max_dimension);
        assert_eq!(m.tran_steps, s.tran_steps);
        assert_eq!(m.p50_iterations(), s.p50_iterations());
        assert_eq!(m.p95_iterations(), s.p95_iterations());
        assert_eq!(m.max_iterations(), s.max_iterations());
        assert!((m.solve_seconds - s.solve_seconds).abs() < 1e-12);
        assert_eq!(merged.events().len(), single.events().len());
        // The rendered footer agrees on every line except wall time
        // (floating-point sum order may differ at the last bit).
        for (a, b) in m.summary().lines().zip(s.summary().lines()) {
            if !a.starts_with("solve wall time") {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn merge_into_summary_collector_drops_events_keeps_counts() {
        let mut worker = MetricsCollector::new(TraceMode::Events);
        worker.record(&attempt(3, true, None));
        let mut global = MetricsCollector::new(TraceMode::Summary);
        global.merge(&worker);
        assert_eq!(global.metrics().attempts, 1);
        assert!(global.events().is_empty());
    }

    #[test]
    fn worker_capture_without_global_is_transparent() {
        // In this test process the global collector may or may not have
        // been decided yet; worker_capture must never install a local
        // collector when tracing is off, and must always run the
        // closure exactly once.
        let mut ran = 0;
        let (r, mc) = worker_capture(|| {
            ran += 1;
            7
        });
        assert_eq!((r, ran), (7, 1));
        if global_mode().is_none() {
            assert!(mc.is_none());
        }
        // Whatever happened, the slot is clear afterwards: default-API
        // recording falls through to the global/null path.
        WORKER.with(|w| assert!(w.borrow().is_none()));
    }

    #[test]
    fn collector_reset_and_take_events() {
        let mut mc = MetricsCollector::new(TraceMode::Events);
        mc.record(&attempt(2, true, None));
        let taken = mc.take_events();
        assert_eq!(taken.len(), 1);
        assert!(mc.events().is_empty());
        assert_eq!(mc.metrics().attempts, 1); // metrics survive the take
        mc.reset();
        assert_eq!(mc.metrics().attempts, 0);
    }

    #[test]
    fn trace_mode_lattice_and_env_spelling() {
        assert!(!TraceMode::Summary.keeps_events());
        assert!(TraceMode::Events.keeps_events());
        assert!(TraceMode::Spans.keeps_events());
        assert!(!TraceMode::Events.keeps_spans());
        assert!(TraceMode::Spans.keeps_spans());
    }

    #[test]
    fn events_are_tagged_with_the_active_trial_context() {
        let mut mc = MetricsCollector::new(TraceMode::Events);
        mc.record(&attempt(2, true, None));
        with_trial_context(Arc::from("yield"), 17, || {
            mc.record(&attempt(3, true, None));
        });
        mc.record(&attempt(4, true, None));
        let ev = mc.events();
        assert_eq!(ev.len(), 3);
        assert_eq!((ev[0].campaign.as_deref(), ev[0].trial), (None, None));
        assert_eq!((ev[1].campaign.as_deref(), ev[1].trial), (Some("yield"), Some(17)));
        assert_eq!((ev[2].campaign.as_deref(), ev[2].trial), (None, None));
        // Tagged JSONL keeps the leading "event" key (the CI grep
        // contract) and appends the tags before the closing brace.
        let line = ev[1].to_json();
        assert!(line.starts_with("{\"event\":\"newton_attempt\""), "{line}");
        assert!(line.ends_with(",\"campaign\":\"yield\",\"trial\":17}"), "{line}");
        // Untagged events render byte-identically to the bare event.
        assert_eq!(ev[0].to_json(), ev[0].event.to_json());
    }

    #[test]
    fn trial_context_restores_on_unwind() {
        let r = std::panic::catch_unwind(|| {
            with_trial_context(Arc::from("c"), 0, || panic!("boom"))
        });
        assert!(r.is_err());
        assert_eq!(current_trial_context(), (None, None));
    }

    #[test]
    fn spans_mode_synthesises_newton_and_phase_spans() {
        let mut mc = MetricsCollector::for_worker(TraceMode::Spans, 3);
        mc.record(&attempt(5, true, None));
        mc.record(&Event::Phase {
            name: "exec::yield".into(),
            seconds: 1e-3,
        });
        mc.record(&Event::TranStep {
            step: 1,
            time: 1e-9,
            newton_iterations: 2,
            method: "backward-euler",
            devices_bypassed: 0,
            seconds: 0.0,
        });
        mc.record(&Event::TranReject {
            step: 2,
            time: 2e-9,
            dt: 1e-10,
            error: 3.0,
            newton_failed: false,
            seconds: 0.0,
        });
        let spans = mc.spans();
        assert_eq!(spans.len(), 2, "tran steps/rejects synthesise no span");
        assert_eq!((spans[0].cat, spans[0].worker), ("newton", 3));
        assert_eq!((spans[1].cat, spans[1].name.as_str()), ("phase", "exec::yield"));
        assert!(spans[1].dur_us >= 999.0, "duration carried over: {}", spans[1].dur_us);
        assert!(spans.iter().all(|s| s.start_us >= 0.0 && s.dur_us >= 0.0));
        // Events are retained too: Spans is a superset of Events.
        assert_eq!(mc.events().len(), 4);
        // Summary/Events collectors record no spans.
        let mut plain = MetricsCollector::new(TraceMode::Events);
        plain.record(&attempt(2, true, None));
        plain.record_span("trial", "t", Some(0), 0.0, 1.0);
        assert!(plain.spans().is_empty());
    }

    #[test]
    fn chrome_trace_renders_and_validates() {
        let spans = vec![
            SpanEvent {
                cat: "campaign",
                name: "exec::yield".into(),
                trial: None,
                worker: 0,
                start_us: 0.0,
                dur_us: 1000.0,
            },
            SpanEvent {
                cat: "trial",
                name: "yield \"quoted\"".into(),
                trial: Some(4),
                worker: 1,
                start_us: 10.5,
                dur_us: 250.25,
            },
        ];
        let doc = render_chrome_trace(&spans);
        assert_eq!(validate_chrome_trace(&doc).unwrap(), 2);
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"args\":{\"trial\":4}"));
        assert_eq!(validate_chrome_trace("{\"traceEvents\":[]}").unwrap(), 0);
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
        assert!(
            validate_chrome_trace(
                "{\"traceEvents\":[{\"name\":\"a\",\"cat\":\"c\",\"ph\":\"B\",\"ts\":0,\"dur\":0,\"pid\":1,\"tid\":0}]}"
            )
            .is_err(),
            "only complete events"
        );
    }

    #[test]
    fn solver_counters_snapshot_and_delta() {
        let mut mc = MetricsCollector::new(TraceMode::Summary);
        mc.record(&attempt(4, true, None));
        let before = mc.metrics().counters();
        mc.record(&attempt(6, true, Some(0)));
        let after = mc.metrics().counters();
        let d = after.delta_since(before);
        assert_eq!(d.attempts, 1);
        assert_eq!(d.newton_iterations, 6);
        assert_eq!(d.gmin_fallbacks, 1);
        assert_eq!(d.solves, 1);
        assert_eq!(SolverCounters::default().delta_since(after), SolverCounters::default());
    }

    #[test]
    fn collector_merge_carries_spans_and_registry() {
        let mut w0 = MetricsCollector::for_worker(TraceMode::Spans, 0);
        w0.record_span("trial", "a", Some(0), 0.0, 5.0);
        w0.registry_mut().counter_add("ulp_trials_total", 2);
        let mut w1 = MetricsCollector::for_worker(TraceMode::Spans, 1);
        w1.record_span("trial", "b", Some(1), 1.0, 5.0);
        w1.registry_mut().counter_add("ulp_trials_total", 3);
        let mut global = MetricsCollector::new(TraceMode::Spans);
        global.merge(&w0);
        global.merge(&w1);
        assert_eq!(global.spans().len(), 2);
        assert_eq!(global.spans()[0].worker, 0);
        assert_eq!(global.spans()[1].worker, 1);
        assert_eq!(
            global.registry().get("ulp_trials_total"),
            Some(&crate::registry::Metric::Counter(5))
        );
        // A summary-mode sink still folds the registry (counters are
        // deterministic) but drops spans.
        let mut summary = MetricsCollector::new(TraceMode::Summary);
        summary.merge(&w0);
        assert!(summary.spans().is_empty());
        assert_eq!(
            summary.registry().get("ulp_trials_total"),
            Some(&crate::registry::Metric::Counter(2))
        );
    }
}
