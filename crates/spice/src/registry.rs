//! A small metrics registry: named counters, gauges and fixed-bucket
//! histograms with Prometheus text exposition and JSONL export.
//!
//! The registry is the machine-readable face of campaign observability:
//! each `ulp-exec` worker records into its own shard (the thread-local
//! collector installed by [`crate::telemetry::worker_capture_on`]), and
//! the shards merge into the process-global registry **in worker-index
//! order** at campaign end — counters add, gauges take the last value
//! in merge order, histogram buckets add. Rendering iterates a
//! `BTreeMap`, so the exposition is byte-stable for equal contents.
//!
//! Determinism contract: counter *values* are as deterministic as what
//! they count (trial totals, Newton iterations). Histogram bucket
//! occupancy of wall-clock observations is best-effort by nature and
//! lives only in observability outputs, never in gathered results.
//!
//! # Example
//!
//! ```
//! use ulp_spice::registry::{Registry, validate_prometheus};
//!
//! let mut r = Registry::new();
//! r.counter_add("ulp_trials_total", 64);
//! r.gauge_set("ulp_campaign_jobs", 4.0);
//! r.observe_seconds("ulp_trial_seconds", 3.2e-3);
//! let text = r.render_prometheus();
//! assert!(text.contains("ulp_trials_total 64"));
//! assert!(validate_prometheus(&text).unwrap() > 3);
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default histogram bucket upper bounds for wall-clock seconds:
/// exponential 1 µs … 100 s (an implicit `+Inf` overflow bucket is
/// always appended).
pub const SECONDS_BOUNDS: [f64; 9] =
    [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0];

/// A fixed-bucket cumulative-exposition histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Strictly increasing finite bucket upper bounds.
    bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; one extra overflow bucket.
    buckets: Vec<u64>,
    /// Sum of all observed values.
    sum: f64,
    /// Number of observations.
    count: u64,
}

impl Histogram {
    /// A histogram over the given finite upper bounds (must be strictly
    /// increasing and non-empty); an overflow bucket is implicit.
    pub fn with_bounds(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// The default wall-clock-seconds histogram ([`SECONDS_BOUNDS`]).
    pub fn seconds() -> Self {
        Histogram::with_bounds(&SECONDS_BOUNDS)
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[slot] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// The finite bucket bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket (non-cumulative) counts, overflow bucket last.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Folds another shard into this one. Both shards must use the same
    /// bounds (they do, coming from the same metric name in the same
    /// process); on a mismatch only `sum`/`count` are merged.
    pub fn merge(&mut self, other: &Histogram) {
        debug_assert_eq!(self.bounds, other.bounds, "histogram bounds diverged");
        if self.bounds == other.bounds {
            for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
                *a += b;
            }
        }
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Bucket-resolution quantile estimate: the upper bound of the first
    /// bucket at which the cumulative count reaches `q` (0–1) of the
    /// total. Returns 0 when empty; the overflow bucket reports the last
    /// finite bound.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return self.bounds.get(k).copied().unwrap_or_else(|| {
                    *self.bounds.last().expect("bounds non-empty")
                });
            }
        }
        *self.bounds.last().expect("bounds non-empty")
    }
}

/// One named metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// A monotone counter.
    Counter(u64),
    /// A point-in-time value.
    Gauge(f64),
    /// A fixed-bucket histogram.
    Histogram(Histogram),
}

impl Metric {
    /// The Prometheus type keyword.
    pub fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named metric set with deterministic (sorted) iteration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    metrics: BTreeMap<String, Metric>,
}

/// Whether `name` is a legal Prometheus metric name.
fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Number of named metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Looks up one metric.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.get(name)
    }

    /// Iterates metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(n, m)| (n.as_str(), m))
    }

    /// Adds `delta` to the named counter (creating it at 0).
    ///
    /// # Panics
    ///
    /// If the name is not a legal Prometheus metric name, or the name is
    /// already registered as a different metric type.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        assert!(valid_name(name), "bad metric name {name:?}");
        match self
            .metrics
            .entry(name.to_string())
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(v) => *v += delta,
            other => panic!("{name} is a {}, not a counter", other.kind()),
        }
    }

    /// Sets the named gauge.
    ///
    /// # Panics
    ///
    /// On a bad name or a type clash (see [`Registry::counter_add`]).
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        assert!(valid_name(name), "bad metric name {name:?}");
        match self
            .metrics
            .entry(name.to_string())
            .or_insert(Metric::Gauge(0.0))
        {
            Metric::Gauge(v) => *v = value,
            other => panic!("{name} is a {}, not a gauge", other.kind()),
        }
    }

    /// Records one observation into the named histogram, created with
    /// the given bounds on first touch.
    ///
    /// # Panics
    ///
    /// On a bad name or a type clash (see [`Registry::counter_add`]).
    pub fn observe_with(&mut self, name: &str, bounds: &[f64], value: f64) {
        assert!(valid_name(name), "bad metric name {name:?}");
        match self
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::with_bounds(bounds)))
        {
            Metric::Histogram(h) => h.observe(value),
            other => panic!("{name} is a {}, not a histogram", other.kind()),
        }
    }

    /// [`Registry::observe_with`] using the wall-clock-seconds bounds.
    pub fn observe_seconds(&mut self, name: &str, seconds: f64) {
        self.observe_with(name, &SECONDS_BOUNDS, seconds);
    }

    /// Folds another shard into this one: counters add, gauges take the
    /// other's value (so merging in worker order is deterministic),
    /// histograms merge bucket-wise. Metrics present only in `other`
    /// are copied over.
    pub fn merge(&mut self, other: &Registry) {
        for (name, m) in &other.metrics {
            match (self.metrics.get_mut(name), m) {
                (Some(Metric::Counter(a)), Metric::Counter(b)) => *a += b,
                (Some(Metric::Gauge(a)), Metric::Gauge(b)) => *a = *b,
                (Some(Metric::Histogram(a)), Metric::Histogram(b)) => a.merge(b),
                (Some(existing), incoming) => debug_assert!(
                    false,
                    "metric {name} changed type: {} vs {}",
                    existing.kind(),
                    incoming.kind()
                ),
                (None, m) => {
                    self.metrics.insert(name.clone(), m.clone());
                }
            }
        }
    }

    /// Renders the Prometheus text exposition format (`# TYPE` comment
    /// per metric, cumulative `_bucket{le="…"}` series plus `_sum` and
    /// `_count` for histograms). Byte-stable for equal contents.
    pub fn render_prometheus(&self) -> String {
        let mut s = String::new();
        for (name, m) in &self.metrics {
            let _ = writeln!(s, "# TYPE {name} {}", m.kind());
            match m {
                Metric::Counter(v) => {
                    let _ = writeln!(s, "{name} {v}");
                }
                Metric::Gauge(v) => {
                    let _ = writeln!(s, "{name} {}", prom_num(*v));
                }
                Metric::Histogram(h) => {
                    let mut cum = 0u64;
                    for (k, &c) in h.buckets.iter().enumerate() {
                        cum += c;
                        let le = match h.bounds.get(k) {
                            Some(b) => prom_num(*b),
                            None => "+Inf".to_string(),
                        };
                        let _ = writeln!(s, "{name}_bucket{{le=\"{le}\"}} {cum}");
                    }
                    let _ = writeln!(s, "{name}_sum {}", prom_num(h.sum));
                    let _ = writeln!(s, "{name}_count {}", h.count);
                }
            }
        }
        s
    }

    /// Renders the registry as JSONL: one metric object per line, name
    /// order, byte-stable for equal contents.
    pub fn render_jsonl(&self) -> String {
        let mut s = String::new();
        for (name, m) in &self.metrics {
            let _ = write!(s, "{{\"metric\":\"{name}\",\"type\":\"{}\"", m.kind());
            match m {
                Metric::Counter(v) => {
                    let _ = write!(s, ",\"value\":{v}");
                }
                Metric::Gauge(v) => {
                    let _ = write!(s, ",\"value\":{}", json_num(*v));
                }
                Metric::Histogram(h) => {
                    let _ = write!(s, ",\"count\":{},\"sum\":{}", h.count, json_num(h.sum));
                    s.push_str(",\"buckets\":[");
                    let mut cum = 0u64;
                    for (k, &c) in h.buckets.iter().enumerate() {
                        cum += c;
                        if k > 0 {
                            s.push(',');
                        }
                        match h.bounds.get(k) {
                            Some(b) => {
                                let _ = write!(s, "{{\"le\":{},\"count\":{cum}}}", json_num(*b));
                            }
                            None => {
                                let _ = write!(s, "{{\"le\":null,\"count\":{cum}}}");
                            }
                        }
                    }
                    s.push(']');
                }
            }
            s.push_str("}\n");
        }
        s
    }
}

/// Formats an `f64` for Prometheus exposition (scientific, lossless for
/// the magnitudes we record).
fn prom_num(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v:e}")
    }
}

/// Formats an `f64` as a JSON number (`null` for non-finite).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "null".to_string()
    }
}

/// Validates a Prometheus text exposition: every sample line must carry
/// a legal metric name and a parseable value, every sample's base name
/// must have a preceding `# TYPE`, histogram `_bucket` series must be
/// cumulative (non-decreasing) ending in a `+Inf` bucket that equals
/// the metric's `_count`. Returns the number of sample lines.
///
/// # Errors
///
/// A description of the first malformed line or inconsistent histogram.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut typed: BTreeMap<String, String> = BTreeMap::new();
    let mut last_bucket: BTreeMap<String, u64> = BTreeMap::new();
    let mut inf_bucket: BTreeMap<String, u64> = BTreeMap::new();
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut samples = 0usize;
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts.next().ok_or(format!("line {ln}: TYPE without name"))?;
                let kind = parts.next().ok_or(format!("line {ln}: TYPE without kind"))?;
                if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                    return Err(format!("line {ln}: unknown metric type {kind:?}"));
                }
                typed.insert(name.to_string(), kind.to_string());
            }
            continue; // other comments (e.g. # HELP) are fine
        }
        // Sample line: name[{labels}] value
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or(format!("line {ln}: no value on sample line"))?;
        let (name, labels) = match series.split_once('{') {
            Some((n, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or(format!("line {ln}: unterminated label set"))?;
                (n, Some(labels))
            }
            None => (series, None),
        };
        if !valid_name(name) {
            return Err(format!("line {ln}: bad metric name {name:?}"));
        }
        let v = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            other => other
                .parse::<f64>()
                .map_err(|_| format!("line {ln}: bad sample value {other:?}"))?,
        };
        // The base name (with _bucket/_sum/_count stripped for
        // histograms) must be declared.
        let base = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|sfx| {
                name.strip_suffix(sfx)
                    .filter(|b| typed.get(*b).map(String::as_str) == Some("histogram"))
            })
            .unwrap_or(name);
        if !typed.contains_key(base) {
            return Err(format!("line {ln}: sample {name} has no # TYPE declaration"));
        }
        if let Some(bucket_of) = name
            .strip_suffix("_bucket")
            .filter(|b| typed.get(*b).map(String::as_str) == Some("histogram"))
        {
            let le = labels
                .and_then(|l| l.strip_prefix("le=\""))
                .and_then(|l| l.strip_suffix('"'))
                .ok_or(format!("line {ln}: bucket without le label"))?;
            let cum = v as u64;
            if let Some(&prev) = last_bucket.get(bucket_of) {
                if cum < prev {
                    return Err(format!("line {ln}: bucket series for {bucket_of} decreases"));
                }
            }
            last_bucket.insert(bucket_of.to_string(), cum);
            if le == "+Inf" {
                inf_bucket.insert(bucket_of.to_string(), cum);
            }
        }
        if let Some(count_of) = name
            .strip_suffix("_count")
            .filter(|b| typed.get(*b).map(String::as_str) == Some("histogram"))
        {
            counts.insert(count_of.to_string(), v as u64);
        }
        samples += 1;
    }
    for (name, count) in &counts {
        match inf_bucket.get(name) {
            Some(inf) if inf == count => {}
            Some(inf) => {
                return Err(format!("{name}: +Inf bucket {inf} != _count {count}"));
            }
            None => return Err(format!("{name}: histogram without +Inf bucket")),
        }
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let mut r = Registry::new();
        r.counter_add("trials_total", 3);
        r.counter_add("trials_total", 2);
        r.gauge_set("jobs", 4.0);
        r.gauge_set("jobs", 2.0);
        r.observe_seconds("trial_seconds", 5e-4);
        r.observe_seconds("trial_seconds", 2e-2);
        r.observe_seconds("trial_seconds", 1e9); // overflow bucket
        assert_eq!(r.get("trials_total"), Some(&Metric::Counter(5)));
        assert_eq!(r.get("jobs"), Some(&Metric::Gauge(2.0)));
        let Some(Metric::Histogram(h)) = r.get("trial_seconds") else {
            panic!("histogram missing");
        };
        assert_eq!(h.count(), 3);
        assert_eq!(*h.buckets().last().unwrap(), 1);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE trials_total counter"));
        assert!(text.contains("trials_total 5"));
        assert!(text.contains("trial_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("trial_seconds_count 3"));
        assert_eq!(validate_prometheus(&text).unwrap(), 2 + 10 + 2);
    }

    #[test]
    fn merge_adds_counters_overwrites_gauges_sums_histograms() {
        let mut a = Registry::new();
        a.counter_add("n", 1);
        a.gauge_set("g", 1.0);
        a.observe_seconds("h", 1e-3);
        let mut b = Registry::new();
        b.counter_add("n", 2);
        b.gauge_set("g", 7.0);
        b.observe_seconds("h", 1e-3);
        b.counter_add("only_b", 9);
        a.merge(&b);
        assert_eq!(a.get("n"), Some(&Metric::Counter(3)));
        assert_eq!(a.get("g"), Some(&Metric::Gauge(7.0)));
        assert_eq!(a.get("only_b"), Some(&Metric::Counter(9)));
        let Some(Metric::Histogram(h)) = a.get("h") else {
            panic!()
        };
        assert_eq!(h.count(), 2);
        assert!((h.sum() - 2e-3).abs() < 1e-15);
    }

    #[test]
    fn merge_order_of_shards_is_deterministic_for_counters() {
        // Counters commute; gauges are last-merge-wins by contract.
        let mut shards = Vec::new();
        for k in 0..3u64 {
            let mut r = Registry::new();
            r.counter_add("n", k + 1);
            shards.push(r);
        }
        let mut fwd = Registry::new();
        let mut rev = Registry::new();
        for s in &shards {
            fwd.merge(s);
        }
        for s in shards.iter().rev() {
            rev.merge(s);
        }
        assert_eq!(fwd.get("n"), rev.get("n"));
    }

    #[test]
    fn histogram_quantile_is_bucket_resolution() {
        let mut h = Histogram::with_bounds(&[1.0, 2.0, 4.0]);
        for v in [0.5, 0.7, 1.5, 3.0] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.5), 1.0);
        assert_eq!(h.quantile(0.95), 4.0);
        assert_eq!(Histogram::seconds().quantile(0.5), 0.0, "empty -> 0");
    }

    #[test]
    fn bad_names_and_type_clashes_panic() {
        let mut r = Registry::new();
        r.counter_add("ok_name", 1);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.gauge_set("ok_name", 1.0)
        }))
        .is_err());
        let mut r2 = Registry::new();
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r2.counter_add("7bad", 1)
        }))
        .is_err());
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        assert!(validate_prometheus("ulp_x 1").is_err(), "no TYPE");
        assert!(
            validate_prometheus("# TYPE ulp_x counter\nulp_x notanumber").is_err(),
            "bad value"
        );
        assert!(
            validate_prometheus("# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 0\nh_count 3").is_err(),
            "decreasing buckets"
        );
        assert!(
            validate_prometheus("# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 0\nh_count 3")
                .is_err(),
            "+Inf != count"
        );
        assert_eq!(validate_prometheus("").unwrap(), 0);
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let mut r = Registry::new();
        r.counter_add("a_total", 1);
        r.observe_seconds("b_seconds", 0.5);
        let jsonl = r.render_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        for line in jsonl.lines() {
            assert!(line.starts_with("{\"metric\":\"") && line.ends_with('}'), "{line}");
        }
        assert!(jsonl.contains("\"le\":null"));
    }
}
