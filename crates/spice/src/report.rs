//! Human-readable netlist export and operating-point reports.
//!
//! `ulp-spice` netlists are built programmatically; when a circuit
//! misbehaves you want to *see* it. [`netlist_to_string`] renders a
//! SPICE-deck-style listing (for eyeballs and diffs — there is no
//! parser), and [`OpReport`] tabulates every element's branch current,
//! dissipation and — for MOS devices — region and small-signal
//! parameters at a solved operating point.

use crate::dcop::DcOperatingPoint;
use crate::mna::voltage_of;
use crate::netlist::{Element, Netlist};
use std::fmt::Write as _;

/// Renders the netlist as a SPICE-deck-style text listing.
pub fn netlist_to_string(nl: &Netlist) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "* {} nodes, {} elements", nl.node_count(), nl.elements().len());
    for e in nl.elements() {
        let line = match e {
            Element::Resistor { name, a, b, ohms } => {
                format!("R {name} {} {} {ohms:.6e}", nl.node_name(*a), nl.node_name(*b))
            }
            Element::Capacitor { name, a, b, farads } => {
                format!("C {name} {} {} {farads:.6e}", nl.node_name(*a), nl.node_name(*b))
            }
            Element::Vsource { name, p, n, wave, ac } => format!(
                "V {name} {} {} dc={:.6e} ac={ac:.3e}",
                nl.node_name(*p),
                nl.node_name(*n),
                wave.dc()
            ),
            Element::Isource { name, p, n, wave, ac } => format!(
                "I {name} {} {} dc={:.6e} ac={ac:.3e}",
                nl.node_name(*p),
                nl.node_name(*n),
                wave.dc()
            ),
            Element::Vcvs {
                name, p, n, cp, cn, gain,
            } => format!(
                "E {name} {} {} {} {} {gain:.6e}",
                nl.node_name(*p),
                nl.node_name(*n),
                nl.node_name(*cp),
                nl.node_name(*cn)
            ),
            Element::Vccs {
                name, p, n, cp, cn, gm,
            } => format!(
                "G {name} {} {} {} {} {gm:.6e}",
                nl.node_name(*p),
                nl.node_name(*n),
                nl.node_name(*cp),
                nl.node_name(*cn)
            ),
            Element::Diode {
                name, p, n, is_sat, n_id,
            } => format!(
                "D {name} {} {} is={is_sat:.3e} n={n_id}",
                nl.node_name(*p),
                nl.node_name(*n)
            ),
            Element::Mos { name, d, g, s: src, b, dev } => format!(
                "M {name} {} {} {} {} {} w={:.2e} l={:.2e}",
                nl.node_name(*d),
                nl.node_name(*g),
                nl.node_name(*src),
                nl.node_name(*b),
                dev.polarity,
                dev.w,
                dev.l
            ),
            Element::SclLoad { name, a, b, load, iss } => format!(
                "L {name} {} {} vsw={} iss={iss:.3e} (scl-load)",
                nl.node_name(*a),
                nl.node_name(*b),
                load.vsw
            ),
        };
        let _ = writeln!(s, "{line}");
    }
    s
}

/// One element's operating-point record.
#[derive(Debug, Clone, PartialEq)]
pub struct ElementOp {
    /// Instance name.
    pub name: String,
    /// Element kind tag (`R`, `C`, `V`, `I`, `E`, `G`, `D`, `M`, `L`).
    pub kind: char,
    /// Current through the element, A (for capacitors: 0 at DC; sign
    /// follows the element's own convention).
    pub current: f64,
    /// Power dissipated (positive) or delivered (negative), W.
    pub power: f64,
    /// MOS only: saturated?
    pub saturated: Option<bool>,
    /// MOS only: gm, S.
    pub gm: Option<f64>,
}

/// A tabulated DC operating point.
#[derive(Debug, Clone)]
pub struct OpReport {
    /// Per-element records, netlist order.
    pub elements: Vec<ElementOp>,
}

impl OpReport {
    /// Builds the report from a solved operating point.
    pub fn new(nl: &Netlist, tech: &ulp_device::Technology, op: &DcOperatingPoint) -> Self {
        let x = op.solution();
        let mut elements = Vec::with_capacity(nl.elements().len());
        for e in nl.elements() {
            let rec = match e {
                Element::Resistor { name, a, b, ohms } => {
                    let v = voltage_of(x, *a) - voltage_of(x, *b);
                    let i = v / ohms;
                    ElementOp {
                        name: name.clone(),
                        kind: 'R',
                        current: i,
                        power: v * i,
                        saturated: None,
                        gm: None,
                    }
                }
                Element::Capacitor { name, .. } => ElementOp {
                    name: name.clone(),
                    kind: 'C',
                    current: 0.0,
                    power: 0.0,
                    saturated: None,
                    gm: None,
                },
                Element::Vsource { name, p, n, wave, .. } => {
                    let i = op.branch_current(nl, name).unwrap_or(0.0);
                    let v = voltage_of(x, *p) - voltage_of(x, *n);
                    let _ = wave;
                    ElementOp {
                        name: name.clone(),
                        kind: 'V',
                        current: i,
                        power: v * i,
                        saturated: None,
                        gm: None,
                    }
                }
                Element::Isource { name, p, n, wave, .. } => {
                    let i = wave.dc();
                    let v = voltage_of(x, *p) - voltage_of(x, *n);
                    ElementOp {
                        name: name.clone(),
                        kind: 'I',
                        current: i,
                        power: v * i,
                        saturated: None,
                        gm: None,
                    }
                }
                Element::Vcvs { name, .. } => ElementOp {
                    name: name.clone(),
                    kind: 'E',
                    current: op.branch_current(nl, name).unwrap_or(0.0),
                    power: 0.0,
                    saturated: None,
                    gm: None,
                },
                Element::Vccs { name, p, n, cp, cn, gm } => {
                    let vc = voltage_of(x, *cp) - voltage_of(x, *cn);
                    let i = gm * vc;
                    let v = voltage_of(x, *p) - voltage_of(x, *n);
                    ElementOp {
                        name: name.clone(),
                        kind: 'G',
                        current: i,
                        power: v * i,
                        saturated: None,
                        gm: Some(*gm),
                    }
                }
                Element::Diode { name, p, n, is_sat, n_id } => {
                    let v = voltage_of(x, *p) - voltage_of(x, *n);
                    let vt = n_id * tech.thermal_voltage();
                    let i = is_sat * ((v / vt).min(40.0).exp() - 1.0);
                    ElementOp {
                        name: name.clone(),
                        kind: 'D',
                        current: i,
                        power: v * i,
                        saturated: None,
                        gm: None,
                    }
                }
                Element::Mos { name, d, g, s: src, b, dev } => {
                    let vb = voltage_of(x, *b);
                    let mos = dev.operating_point(
                        tech,
                        voltage_of(x, *g) - vb,
                        voltage_of(x, *src) - vb,
                        voltage_of(x, *d) - vb,
                    );
                    let vds = voltage_of(x, *d) - voltage_of(x, *src);
                    ElementOp {
                        name: name.clone(),
                        kind: 'M',
                        current: mos.id,
                        power: (mos.id * vds).abs(),
                        saturated: Some(mos.saturated),
                        gm: Some(mos.gm),
                    }
                }
                Element::SclLoad { name, a, b, load, iss } => {
                    let v = voltage_of(x, *a) - voltage_of(x, *b);
                    let i = load.current(v, *iss);
                    ElementOp {
                        name: name.clone(),
                        kind: 'L',
                        current: i,
                        power: v * i,
                        saturated: None,
                        gm: None,
                    }
                }
            };
            elements.push(rec);
        }
        OpReport { elements }
    }

    /// Total power delivered by sources (= dissipated by the rest), W.
    pub fn total_source_power(&self) -> f64 {
        -self
            .elements
            .iter()
            .filter(|e| e.kind == 'V' || e.kind == 'I')
            .map(|e| e.power)
            .sum::<f64>()
    }

    /// Renders a fixed-width table.
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{:<12} {:>4} {:>14} {:>14} {:>6} {:>12}", "name", "kind", "I_A", "P_W", "sat", "gm_S");
        for e in &self.elements {
            let sat = match e.saturated {
                Some(true) => "yes",
                Some(false) => "no",
                None => "-",
            };
            let gm = e.gm.map(|g| format!("{g:.3e}")).unwrap_or_else(|| "-".into());
            let _ = writeln!(
                s,
                "{:<12} {:>4} {:>14.4e} {:>14.4e} {:>6} {:>12}",
                e.name, e.kind, e.current, e.power, sat, gm
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcop::DcOperatingPoint;
    use ulp_device::{Mosfet, Polarity, Technology};

    fn divider() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let m = nl.node("mid");
        nl.vsource("V1", a, Netlist::GROUND, 2.0);
        nl.resistor("R1", a, m, 1e3);
        nl.resistor("R2", m, Netlist::GROUND, 1e3);
        nl
    }

    #[test]
    fn listing_contains_every_element() {
        let nl = divider();
        let s = netlist_to_string(&nl);
        assert!(s.contains("V V1 a 0 dc=2"));
        assert!(s.contains("R R1 a mid"));
        assert!(s.contains("R R2 mid 0"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn report_balances_power() {
        let nl = divider();
        let tech = Technology::default();
        let op = DcOperatingPoint::solve(&nl, &tech).unwrap();
        let report = OpReport::new(&nl, &tech, &op);
        // Source delivers 2 V × 1 mA = 2 mW; resistors dissipate it.
        let delivered = report.total_source_power();
        let dissipated: f64 = report
            .elements
            .iter()
            .filter(|e| e.kind == 'R')
            .map(|e| e.power)
            .sum();
        assert!((delivered - 2e-3).abs() < 1e-8, "delivered {delivered}");
        assert!((dissipated - delivered).abs() < 1e-8);
    }

    #[test]
    fn mos_record_has_region_and_gm() {
        let tech = Technology::default();
        let mut nl = Netlist::new();
        let d = nl.node("d");
        let g = nl.node("g");
        nl.vsource("VD", d, Netlist::GROUND, 0.8);
        nl.vsource("VG", g, Netlist::GROUND, 0.35);
        nl.mosfet(
            "M1",
            d,
            g,
            Netlist::GROUND,
            Netlist::GROUND,
            Mosfet::new(Polarity::Nmos, 1e-6, 1e-6),
        );
        let op = DcOperatingPoint::solve(&nl, &tech).unwrap();
        let report = OpReport::new(&nl, &tech, &op);
        let m = report.elements.iter().find(|e| e.name == "M1").unwrap();
        assert_eq!(m.kind, 'M');
        assert_eq!(m.saturated, Some(true));
        assert!(m.gm.unwrap() > 0.0);
        assert!(m.current > 0.0);
        let table = report.to_table();
        assert!(table.contains("M1"));
        assert!(table.contains("yes"));
    }

    #[test]
    fn table_renders_all_kinds() {
        let tech = Technology::default();
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.isource("I1", Netlist::GROUND, a, 1e-6);
        nl.resistor("R1", a, Netlist::GROUND, 1e5);
        nl.capacitor("C1", a, Netlist::GROUND, 1e-12);
        nl.vcvs("E1", b, Netlist::GROUND, a, Netlist::GROUND, 2.0);
        nl.resistor("RL", b, Netlist::GROUND, 1e6);
        nl.diode("D1", Netlist::GROUND, a, 1e-15, 1.0);
        let op = DcOperatingPoint::solve(&nl, &tech).unwrap();
        let report = OpReport::new(&nl, &tech, &op);
        assert_eq!(report.elements.len(), 6);
        let kinds: Vec<char> = report.elements.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!['I', 'R', 'C', 'E', 'R', 'D']);
        let s = report.to_table();
        for name in ["I1", "R1", "C1", "E1", "RL", "D1"] {
            assert!(s.contains(name), "missing {name}");
        }
    }
}
