//! Pluggable design lint framework: configurable electrical rules on
//! top of the structural ERC.
//!
//! The paper's premise is that STSCL only works inside a narrow
//! electrical envelope — every transistor in weak inversion, load swing
//! `RL·ISS ≈ 150–200 mV`, enough headroom down to `VDD = 1.0 V` — yet
//! the PR-1 electrical rule checker ([`crate::erc`]) only catches
//! *topological* faults. This module generalises it into a registry of
//! [`Lint`]s across three groups:
//!
//! * **topology** — the nine original ERC rules ([`crate::erc::rule`]),
//!   now registry entries like any other lint;
//! * **electrical** — EKV analytics from `ulp-device` applied *without a
//!   full solve*: weak-inversion bound per MOSFET at its inferred bias,
//!   STSCL swing compatibility between cascaded gates, VDD headroom at
//!   PVT corners, Pelgrom mismatch budget vs. swing — plus the
//!   post-solve operating-region audit ([`audit`]);
//! * **numerics** — RC time constant vs. requested transient step, and
//!   the post-solve near-singularity estimate from the LU pivots.
//!
//! Every rule has a default [`LintLevel`] that can be overridden per
//! rule, per group, or wholesale through a [`LintConfig`] — programmatic
//! or via the `ULP_LINT` environment variable
//! (`ULP_LINT="swing-compatibility=deny,electrical=allow,all=warn"`).
//! [`crate::erc::gate`] is exactly the deny-level subset of this linter
//! over the topology group: a finding whose configured level is `deny`
//! renders as an error and blocks checked analyses, `warn` caps it at a
//! warning, `allow` drops it.
//!
//! Findings are ordinary [`Diagnostic`]s in an [`ErcReport`] (stable
//! text rendering, machine-readable rule codes) and can be exported as
//! SARIF 2.1.0 through [`crate::sarif`].

use crate::dcop::{DcOperatingPoint, NewtonOptions};
use crate::diag::{Diagnostic, ErcReport, Severity};
use crate::mna::{self, AssembleMode};
use crate::netlist::{Element, Netlist, Node};
use ulp_device::mismatch::MismatchRng;
use ulp_device::pvt::Corner;
use ulp_device::{Polarity, Technology};
use ulp_num::lu::LuFactor;

/// Stable machine-readable codes of the electrical and numerics rules
/// (the topology codes live in [`crate::erc::rule`]).
pub mod rule {
    /// A MOSFET whose inferred bias puts it outside weak inversion.
    pub const WEAK_INVERSION: &str = "weak-inversion";
    /// An STSCL load whose swing is below the driven pair's switching
    /// requirement.
    pub const SWING_COMPATIBILITY: &str = "swing-compatibility";
    /// A supply too low for the STSCL stack at some PVT corner.
    pub const VDD_HEADROOM: &str = "vdd-headroom";
    /// A matched pair whose Pelgrom offset eats the signal swing.
    pub const MISMATCH_BUDGET: &str = "mismatch-budget";
    /// A transient step too coarse for the fastest RC in the netlist.
    pub const RC_TIME_STEP: &str = "rc-time-step";
    /// A device in strong inversion at the solved operating point.
    pub const STRONG_INVERSION: &str = "strong-inversion";
    /// A conducting channel out of saturation at the solved point.
    pub const UNSATURATED_CHANNEL: &str = "unsaturated-channel";
    /// An MNA system close to singular at the solved point.
    pub const NEAR_SINGULAR: &str = "near-singular";
    /// A shared access in the execution engine unordered by
    /// happens-before (vector-clock audit under `ulp-check`).
    pub const RACE: &str = "race";
    /// A telemetry/result fold whose bytes depend on the schedule
    /// (found by the bounded schedule explorer).
    pub const NON_DETERMINISTIC_FOLD: &str = "non-deterministic-fold";
    /// A cancellation acknowledged by a worker without the trial
    /// yielding either a complete result or a clean `Cancelled` mark.
    pub const LOST_CANCEL: &str = "lost-cancel";
    /// An explored schedule on which the engine can no longer make
    /// progress (cyclic lock wait or lost wakeup).
    pub const SCHEDULE_DEADLOCK: &str = "schedule-deadlock";
    /// Certificate: the interval MNA Jacobian is nonsingular over the
    /// whole PVT/mismatch box — no die in the box can hit
    /// `SimError::Singular` (emitted by [`crate::absint`]).
    pub const PROVED_NONSINGULAR: &str = "proved-nonsingular";
    /// Certificate: an electrical spec is violated over the *entire*
    /// PVT/mismatch box — design-space exploration may prune the point.
    pub const PROVED_INFEASIBLE: &str = "proved-infeasible";
    /// The certifier could not establish a proof either way (the box is
    /// too wide). Never an error: absence of proof is not a defect.
    pub const UNPROVEN: &str = "unproven";
    /// Sound interval variant of [`WEAK_INVERSION`]: the inversion
    /// coefficient may exceed the weak-inversion bound somewhere in the
    /// PVT/mismatch box.
    pub const WEAK_INVERSION_BOX: &str = "weak-inversion-box";
    /// Sound interval variant of [`SWING_COMPATIBILITY`]: the load swing
    /// may fall below the steering requirement somewhere in the box.
    pub const SWING_COMPATIBILITY_BOX: &str = "swing-compatibility-box";
    /// Sound interval variant of [`VDD_HEADROOM`]: the supply may be
    /// insufficient for the STSCL stack somewhere in the box.
    pub const VDD_HEADROOM_BOX: &str = "vdd-headroom-box";
    /// Sound interval variant of [`MISMATCH_BUDGET`]: the Pelgrom pair
    /// offset may eat the swing margin somewhere in the box.
    pub const MISMATCH_BUDGET_BOX: &str = "mismatch-budget-box";
    /// Sound interval variant of [`RC_TIME_STEP`]: the planned step may
    /// under-resolve the fastest RC somewhere in the box.
    pub const RC_TIME_STEP_BOX: &str = "rc-time-step-box";
}

/// Inversion coefficient above which a device no longer counts as
/// weakly inverted for the static [`rule::WEAK_INVERSION`] bound.
pub(crate) const IC_WEAK_MAX: f64 = 0.1;

/// Inversion coefficient above which the post-solve audit flags
/// [`rule::STRONG_INVERSION`].
const IC_STRONG: f64 = 1.0;

/// Required swing in multiples of `n·UT` for (near-)complete steering of
/// a source-coupled pair (`tanh(vid/(2nUT))`: 4 n·UT ≈ 96 % steered).
pub(crate) const STEERING_NUT: f64 = 4.0;

/// Minimum ratio of signal swing to the Pelgrom pair offset sigma.
pub(crate) const SIGMA_MARGIN: f64 = 10.0;

/// Minimum timepoints resolving the fastest RC time constant.
pub(crate) const MIN_POINTS_PER_TAU: f64 = 4.0;

/// Default LU pivot ratio above which the audit flags
/// [`rule::NEAR_SINGULAR`] (see [`LintConfig::near_singular_ratio`]).
/// Healthy subthreshold MNA systems span ~1 S (source rows) down to
/// nS-class device conductances — ratios around 1e9; a near-floating
/// node held up only by gmin pushes past 1e11.
pub const NEAR_SINGULAR_RATIO: f64 = 1e11;

/// How a configured rule's findings are treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintLevel {
    /// Findings are dropped entirely.
    Allow,
    /// Findings are reported but capped at warning severity (never block
    /// the analysis gate).
    Warn,
    /// Findings are forced to error severity and block checked analyses.
    Deny,
}

impl LintLevel {
    /// Lower-case name (`allow` / `warn` / `deny`), as accepted by
    /// `ULP_LINT`.
    pub fn name(self) -> &'static str {
        match self {
            LintLevel::Allow => "allow",
            LintLevel::Warn => "warn",
            LintLevel::Deny => "deny",
        }
    }

    /// Parses a level name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "allow" => Some(LintLevel::Allow),
            "warn" => Some(LintLevel::Warn),
            "deny" => Some(LintLevel::Deny),
            _ => None,
        }
    }

    /// Maps a natural-severity diagnostic through this level: `Deny`
    /// forces an error, `Warn` caps at warning (a naturally-info
    /// diagnostic stays info), `Allow` drops it.
    fn apply(self, natural: Severity) -> Option<Severity> {
        match self {
            LintLevel::Allow => None,
            LintLevel::Deny => Some(Severity::Error),
            LintLevel::Warn => Some(natural.min(Severity::Warning)),
        }
    }
}

/// Rule family, addressable as a unit in a [`LintConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintGroup {
    /// Structural netlist rules (the original ERC).
    Topology,
    /// Operating-region and signal-integrity rules from EKV analytics.
    Electrical,
    /// Solver-conditioning and discretisation rules.
    Numerics,
    /// Execution-engine schedule/race findings from the `ulp-check`
    /// model checker (reported through the same SARIF pipeline so
    /// concurrency audits land next to electrical lints).
    Concurrency,
    /// Sound certificates from the interval abstract interpreter
    /// ([`crate::absint`]): nonsingularity/feasibility proofs and the
    /// box variants of the electrical lints, quantified over the whole
    /// PVT/mismatch box rather than a point.
    Certify,
}

impl LintGroup {
    /// Lower-case name (`topology` / `electrical` / `numerics`), as
    /// accepted by `ULP_LINT`.
    pub fn name(self) -> &'static str {
        match self {
            LintGroup::Topology => "topology",
            LintGroup::Electrical => "electrical",
            LintGroup::Numerics => "numerics",
            LintGroup::Concurrency => "concurrency",
            LintGroup::Certify => "certify",
        }
    }

    /// Parses a group name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "topology" => Some(LintGroup::Topology),
            "electrical" => Some(LintGroup::Electrical),
            "numerics" => Some(LintGroup::Numerics),
            "concurrency" => Some(LintGroup::Concurrency),
            "certify" => Some(LintGroup::Certify),
            _ => None,
        }
    }
}

/// One registry entry: a rule's identity and default policy.
#[derive(Debug, Clone, Copy)]
pub struct LintRule {
    /// Stable machine-readable code.
    pub code: &'static str,
    /// Rule family.
    pub group: LintGroup,
    /// Level applied when no [`LintConfig`] override matches.
    pub default_level: LintLevel,
    /// One-line description (used in the SARIF rule catalogue).
    pub summary: &'static str,
}

/// The full rule registry. Default levels reproduce the historical ERC
/// behaviour exactly: error-severity topology rules are `deny`,
/// everything advisory is `warn`.
pub const REGISTRY: &[LintRule] = &[
    // -- topology: the PR-1 ERC rules --------------------------------
    LintRule {
        code: crate::erc::rule::FLOATING_NODE,
        group: LintGroup::Topology,
        default_level: LintLevel::Deny,
        summary: "node (or node group) with no DC path to ground",
    },
    LintRule {
        code: crate::erc::rule::VSOURCE_LOOP,
        group: LintGroup::Topology,
        default_level: LintLevel::Deny,
        summary: "loop of voltage-defined elements, or a shorted source",
    },
    LintRule {
        code: crate::erc::rule::CURRENT_SOURCE_CUTSET,
        group: LintGroup::Topology,
        default_level: LintLevel::Deny,
        summary: "current source driving a net with no DC return path",
    },
    LintRule {
        code: crate::erc::rule::UNDRIVEN_GATE,
        group: LintGroup::Topology,
        default_level: LintLevel::Deny,
        summary: "MOS gate net whose DC potential nothing fixes",
    },
    LintRule {
        code: crate::erc::rule::BAD_VALUE,
        group: LintGroup::Topology,
        default_level: LintLevel::Deny,
        summary: "non-finite or non-physical element value",
    },
    LintRule {
        code: crate::erc::rule::DUPLICATE_NAME,
        group: LintGroup::Topology,
        default_level: LintLevel::Deny,
        summary: "two elements sharing one instance name",
    },
    LintRule {
        code: crate::erc::rule::DANGLING_TERMINAL,
        group: LintGroup::Topology,
        default_level: LintLevel::Warn,
        summary: "MOS drain/source connected to nothing else",
    },
    LintRule {
        code: crate::erc::rule::SELF_LOOP,
        group: LintGroup::Topology,
        default_level: LintLevel::Warn,
        summary: "two-terminal element with both terminals on one node",
    },
    LintRule {
        code: crate::erc::rule::ZERO_VALUE_SOURCE,
        group: LintGroup::Topology,
        default_level: LintLevel::Warn,
        summary: "independent source contributing nothing",
    },
    // -- electrical ---------------------------------------------------
    LintRule {
        code: rule::WEAK_INVERSION,
        group: LintGroup::Electrical,
        default_level: LintLevel::Warn,
        summary: "MOSFET biased outside weak inversion (IC above bound)",
    },
    LintRule {
        code: rule::SWING_COMPATIBILITY,
        group: LintGroup::Electrical,
        default_level: LintLevel::Warn,
        summary: "STSCL load swing below the driven pair's steering need",
    },
    LintRule {
        code: rule::VDD_HEADROOM,
        group: LintGroup::Electrical,
        default_level: LintLevel::Warn,
        summary: "supply below the STSCL stack requirement at a corner",
    },
    LintRule {
        code: rule::MISMATCH_BUDGET,
        group: LintGroup::Electrical,
        default_level: LintLevel::Warn,
        summary: "matched-pair Pelgrom offset too large for the swing",
    },
    LintRule {
        code: rule::STRONG_INVERSION,
        group: LintGroup::Electrical,
        default_level: LintLevel::Warn,
        summary: "device in strong inversion at the solved DC point",
    },
    LintRule {
        code: rule::UNSATURATED_CHANNEL,
        group: LintGroup::Electrical,
        default_level: LintLevel::Warn,
        summary: "conducting channel out of saturation at the DC point",
    },
    // -- numerics -----------------------------------------------------
    LintRule {
        code: rule::RC_TIME_STEP,
        group: LintGroup::Numerics,
        default_level: LintLevel::Warn,
        summary: "transient step too coarse for the fastest RC",
    },
    LintRule {
        code: rule::NEAR_SINGULAR,
        group: LintGroup::Numerics,
        default_level: LintLevel::Warn,
        summary: "MNA system nearly singular (LU pivot-ratio estimate)",
    },
    // -- concurrency (findings produced by `ulp-check`) ---------------
    LintRule {
        code: rule::RACE,
        group: LintGroup::Concurrency,
        default_level: LintLevel::Deny,
        summary: "shared engine access unordered by happens-before",
    },
    LintRule {
        code: rule::NON_DETERMINISTIC_FOLD,
        group: LintGroup::Concurrency,
        default_level: LintLevel::Deny,
        summary: "gathered results or folded telemetry depend on the schedule",
    },
    LintRule {
        code: rule::LOST_CANCEL,
        group: LintGroup::Concurrency,
        default_level: LintLevel::Deny,
        summary: "cancellation left a trial neither merged nor marked Cancelled",
    },
    LintRule {
        code: rule::SCHEDULE_DEADLOCK,
        group: LintGroup::Concurrency,
        default_level: LintLevel::Deny,
        summary: "an explored schedule reaches a state with no runnable worker",
    },
    // -- certify (certificates produced by `crate::absint`) ------------
    LintRule {
        code: rule::PROVED_NONSINGULAR,
        group: LintGroup::Certify,
        default_level: LintLevel::Warn,
        summary: "interval MNA Jacobian proved nonsingular over the PVT box",
    },
    LintRule {
        code: rule::PROVED_INFEASIBLE,
        group: LintGroup::Certify,
        default_level: LintLevel::Warn,
        summary: "electrical spec violated over the entire PVT/mismatch box",
    },
    LintRule {
        code: rule::UNPROVEN,
        group: LintGroup::Certify,
        default_level: LintLevel::Warn,
        summary: "certifier could not prove the property (box too wide)",
    },
    LintRule {
        code: rule::WEAK_INVERSION_BOX,
        group: LintGroup::Certify,
        default_level: LintLevel::Warn,
        summary: "inversion coefficient may leave weak inversion in the box",
    },
    LintRule {
        code: rule::SWING_COMPATIBILITY_BOX,
        group: LintGroup::Certify,
        default_level: LintLevel::Warn,
        summary: "load swing may fall below the steering need in the box",
    },
    LintRule {
        code: rule::VDD_HEADROOM_BOX,
        group: LintGroup::Certify,
        default_level: LintLevel::Warn,
        summary: "supply may be below the stack requirement in the box",
    },
    LintRule {
        code: rule::MISMATCH_BUDGET_BOX,
        group: LintGroup::Certify,
        default_level: LintLevel::Warn,
        summary: "Pelgrom pair offset may eat the swing margin in the box",
    },
    LintRule {
        code: rule::RC_TIME_STEP_BOX,
        group: LintGroup::Certify,
        default_level: LintLevel::Warn,
        summary: "transient step may under-resolve the fastest RC in the box",
    },
];

/// Looks up a rule's registry entry by code.
pub fn rule_info(code: &str) -> Option<&'static LintRule> {
    REGISTRY.iter().find(|r| r.code == code)
}

/// Why a `ULP_LINT` override spec was rejected.
///
/// Mirrors the `ULP_JOBS` policy in `ulp-exec`: a set-but-broken
/// configuration variable is an operator bug that must surface with a
/// diagnostic naming the offending entry, never a silent fallback — a
/// typo like `tpology=deny` would otherwise leave a gate the user asked
/// for unarmed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintEnvError {
    /// A key that is neither `all`, a group name, nor a registered rule
    /// code.
    UnknownKey {
        /// The rejected key, verbatim.
        key: String,
    },
    /// A level that is not `allow`, `warn` or `deny`.
    BadLevel {
        /// The key whose level was rejected.
        key: String,
        /// The rejected level, verbatim.
        level: String,
    },
    /// An entry with no `=` separator at all.
    Malformed {
        /// The rejected entry, verbatim.
        entry: String,
    },
}

impl std::fmt::Display for LintEnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintEnvError::UnknownKey { key } => write!(
                f,
                "ULP_LINT names unknown rule or group `{key}`: valid keys \
                 are `all`, a group (topology/electrical/numerics/\
                 concurrency/certify), or a registered rule code"
            ),
            LintEnvError::BadLevel { key, level } => write!(
                f,
                "ULP_LINT sets `{key}` to unknown level `{level}`: valid \
                 levels are allow, warn, deny"
            ),
            LintEnvError::Malformed { entry } => write!(
                f,
                "ULP_LINT entry `{entry}` is malformed: expected \
                 `key=level` pairs separated by commas"
            ),
        }
    }
}

impl std::error::Error for LintEnvError {}

/// Per-run lint policy: rule-level overrides on top of the registry
/// defaults, with precedence `rule > group > all > default`.
///
/// # Example
///
/// ```
/// use ulp_spice::lint::{LintConfig, LintLevel, rule_info};
///
/// let cfg = LintConfig::new()
///     .set("electrical", LintLevel::Deny)          // whole group
///     .set("weak-inversion", LintLevel::Allow);    // rule beats group
/// let weak = rule_info("weak-inversion").unwrap();
/// let swing = rule_info("swing-compatibility").unwrap();
/// assert_eq!(cfg.level(weak), LintLevel::Allow);
/// assert_eq!(cfg.level(swing), LintLevel::Deny);
/// ```
#[derive(Debug, Clone)]
pub struct LintConfig {
    all: Option<LintLevel>,
    groups: Vec<(LintGroup, LintLevel)>,
    rules: Vec<(String, LintLevel)>,
    near_singular_ratio: f64,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            all: None,
            groups: Vec::new(),
            rules: Vec::new(),
            near_singular_ratio: NEAR_SINGULAR_RATIO,
        }
    }
}

impl LintConfig {
    /// The registry defaults with no overrides.
    pub fn new() -> Self {
        LintConfig::default()
    }

    /// Adds an override. `key` is a rule code, a group name
    /// (`topology` / `electrical` / `numerics`), or `all`. Later calls
    /// with the same key win. Unknown rule codes are accepted (and
    /// simply never match), so configs stay forward-compatible.
    pub fn set(mut self, key: &str, level: LintLevel) -> Self {
        if key == "all" {
            self.all = Some(level);
        } else if let Some(group) = LintGroup::parse(key) {
            self.groups.retain(|(g, _)| *g != group);
            self.groups.push((group, level));
        } else {
            self.rules.retain(|(c, _)| c != key);
            self.rules.push((key.to_string(), level));
        }
        self
    }

    /// Builds a config from the `ULP_LINT` environment variable:
    /// comma-separated `key=level` pairs, e.g.
    /// `ULP_LINT="swing-compatibility=deny,electrical=warn,all=allow"`.
    ///
    /// # Panics
    ///
    /// Panics with the [`LintEnvError`] diagnostic when the variable is
    /// set but invalid. A set-but-broken `ULP_LINT` is a configuration
    /// bug the operator must see — a silently ignored `tpology=deny`
    /// would leave a gate the user asked for unarmed (the same policy
    /// `ULP_JOBS` applies through its typed `JobsError`). Use
    /// [`LintConfig::try_from_env`] to surface the error without
    /// panicking.
    pub fn from_env() -> Self {
        match LintConfig::try_from_env() {
            Ok(cfg) => cfg,
            Err(err) => panic!("{err}"),
        }
    }

    /// Fallible form of [`LintConfig::from_env`]: `Err` names exactly
    /// which `ULP_LINT` entry was rejected and why. An unset variable
    /// yields the registry defaults.
    pub fn try_from_env() -> Result<Self, LintEnvError> {
        match std::env::var("ULP_LINT") {
            Ok(spec) => LintConfig::parse_spec(&spec),
            Err(_) => Ok(LintConfig::new()),
        }
    }

    /// Parses a `ULP_LINT`-syntax override spec: comma-separated
    /// `key=level` pairs where `key` is a registered rule code, a group
    /// name, or `all`, and `level` is `allow`/`warn`/`deny`. Empty
    /// entries (stray commas) are tolerated; everything else unknown or
    /// malformed is a typed error naming the offending text.
    pub fn parse_spec(spec: &str) -> Result<Self, LintEnvError> {
        let mut cfg = LintConfig::new();
        for pair in spec.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let Some((key, level)) = pair.split_once('=') else {
                return Err(LintEnvError::Malformed {
                    entry: pair.to_string(),
                });
            };
            let (key, level) = (key.trim(), level.trim());
            let known_rule = REGISTRY.iter().any(|r| r.code == key);
            if key != "all" && LintGroup::parse(key).is_none() && !known_rule {
                return Err(LintEnvError::UnknownKey {
                    key: key.to_string(),
                });
            }
            let Some(level) = LintLevel::parse(level) else {
                return Err(LintEnvError::BadLevel {
                    key: key.to_string(),
                    level: level.to_string(),
                });
            };
            cfg = cfg.set(key, level);
        }
        Ok(cfg)
    }

    /// Sets the LU pivot-ratio threshold above which the post-solve
    /// [`audit`] flags [`rule::NEAR_SINGULAR`]. Defaults to
    /// [`NEAR_SINGULAR_RATIO`].
    ///
    /// # Panics
    ///
    /// Panics unless `ratio` is finite and positive.
    pub fn with_near_singular_ratio(mut self, ratio: f64) -> Self {
        assert!(
            ratio.is_finite() && ratio > 0.0,
            "near-singular pivot-ratio threshold must be finite and \
             positive, got {ratio}"
        );
        self.near_singular_ratio = ratio;
        self
    }

    /// The configured [`rule::NEAR_SINGULAR`] pivot-ratio threshold.
    pub fn near_singular_ratio(&self) -> f64 {
        self.near_singular_ratio
    }

    /// Effective level for a registry rule under this config.
    pub fn level(&self, rule: &LintRule) -> LintLevel {
        if let Some((_, l)) = self.rules.iter().find(|(c, _)| c == rule.code) {
            return *l;
        }
        if let Some((_, l)) = self.groups.iter().find(|(g, _)| *g == rule.group) {
            return *l;
        }
        self.all.unwrap_or(rule.default_level)
    }

    /// Maps one natural-severity diagnostic through the configured
    /// level; `None` when the rule is allowed (dropped). Diagnostics
    /// with codes outside the registry pass through at `warn`.
    fn configure(&self, mut d: Diagnostic) -> Option<Diagnostic> {
        let level = rule_info(d.rule)
            .map(|r| self.level(r))
            .unwrap_or(LintLevel::Warn);
        let severity = level.apply(d.severity)?;
        d.severity = severity;
        Some(d)
    }
}

/// What a static lint pass gets to look at.
///
/// `tech` is optional so the topology-only entry points
/// ([`crate::erc::check`]) can run without device models — electrical
/// lints skip silently when it is absent. `dt` enables the
/// [`rule::RC_TIME_STEP`] check for a planned transient.
#[derive(Debug, Clone, Copy)]
pub struct LintContext<'a> {
    /// The netlist under analysis.
    pub nl: &'a Netlist,
    /// Device models, for electrical lints.
    pub tech: Option<&'a Technology>,
    /// Planned transient timestep, s, for numerics lints.
    pub dt: Option<f64>,
}

impl<'a> LintContext<'a> {
    /// Topology-only context (no device models).
    pub fn new(nl: &'a Netlist) -> Self {
        LintContext {
            nl,
            tech: None,
            dt: None,
        }
    }

    /// Full static context with device models.
    pub fn with_tech(nl: &'a Netlist, tech: &'a Technology) -> Self {
        LintContext {
            nl,
            tech: Some(tech),
            dt: None,
        }
    }

    /// Adds a planned transient step.
    pub fn with_dt(mut self, dt: f64) -> Self {
        self.dt = Some(dt);
        self
    }
}

/// One pluggable static check. Implementations push diagnostics at
/// their *natural* severity; level mapping (deny/warn/allow) is applied
/// centrally by [`run_ctx`] so a lint never needs to know its
/// configuration.
pub trait Lint: Sync {
    /// The rule codes this lint can emit (for documentation and SARIF
    /// catalogue grouping; one lint may own several codes).
    fn codes(&self) -> &'static [&'static str];
    /// Runs the check, pushing findings into `report`.
    fn check(&self, cx: &LintContext<'_>, report: &mut ErcReport);
}

/// The static lint registry, in execution order.
pub fn lints() -> &'static [&'static dyn Lint] {
    &[
        &NamesLint,
        &ValuesLint,
        &TopologyLint,
        &WeakInversionLint,
        &SwingCompatibilityLint,
        &VddHeadroomLint,
        &MismatchBudgetLint,
        &RcTimeStepLint,
    ]
}

/// Runs every registered static lint under `config`.
pub fn run_ctx(cx: &LintContext<'_>, config: &LintConfig) -> ErcReport {
    let mut raw = ErcReport::new();
    for lint in lints() {
        lint.check(cx, &mut raw);
    }
    finish(raw, config)
}

/// Runs every registered static lint with device models available.
pub fn run(nl: &Netlist, tech: &Technology, config: &LintConfig) -> ErcReport {
    run_ctx(&LintContext::with_tech(nl, tech), config)
}

/// Applies the configured levels and the deterministic ordering.
pub(crate) fn finish(raw: ErcReport, config: &LintConfig) -> ErcReport {
    let mut out = ErcReport::new();
    for d in raw.into_diagnostics() {
        if let Some(d) = config.configure(d) {
            out.push(d);
        }
    }
    out.sort();
    out
}

/// Debug-build assertion that a generated netlist has no deny-level
/// findings under the full static lint (environment-configured).
///
/// Circuit builders call this after construction so both topology *and*
/// electrical bugs in generator code fail at the build site, at zero
/// release cost.
///
/// # Panics
///
/// In debug builds, panics with the rendered report when the lint run
/// contains error-severity findings.
pub fn debug_assert_clean(nl: &Netlist, tech: &Technology) {
    if cfg!(debug_assertions) {
        let report = run(nl, tech, &LintConfig::from_env());
        assert!(
            report.is_clean(),
            "generated netlist fails design lint:\n{report}"
        );
    }
}

// ---------------------------------------------------------------------
// Topology-group lints: thin adapters over the ERC passes.
// ---------------------------------------------------------------------

struct NamesLint;

impl Lint for NamesLint {
    fn codes(&self) -> &'static [&'static str] {
        &[crate::erc::rule::DUPLICATE_NAME]
    }

    fn check(&self, cx: &LintContext<'_>, report: &mut ErcReport) {
        crate::erc::check_names(cx.nl, report);
    }
}

struct ValuesLint;

impl Lint for ValuesLint {
    fn codes(&self) -> &'static [&'static str] {
        &[
            crate::erc::rule::BAD_VALUE,
            crate::erc::rule::ZERO_VALUE_SOURCE,
        ]
    }

    fn check(&self, cx: &LintContext<'_>, report: &mut ErcReport) {
        crate::erc::check_values(cx.nl, report);
    }
}

struct TopologyLint;

impl Lint for TopologyLint {
    fn codes(&self) -> &'static [&'static str] {
        &[
            crate::erc::rule::FLOATING_NODE,
            crate::erc::rule::VSOURCE_LOOP,
            crate::erc::rule::CURRENT_SOURCE_CUTSET,
            crate::erc::rule::UNDRIVEN_GATE,
            crate::erc::rule::DANGLING_TERMINAL,
            crate::erc::rule::SELF_LOOP,
        ]
    }

    fn check(&self, cx: &LintContext<'_>, report: &mut ErcReport) {
        crate::erc::check_topology(cx.nl, report);
    }
}

// ---------------------------------------------------------------------
// Electrical lints: EKV analytics, no solve.
// ---------------------------------------------------------------------

/// Infers the intended branch bias current of a MOS device from the
/// surrounding netlist, pattern-based: an STSCL load on the drain
/// defines the steered branch current (its calibration `iss`); failing
/// that, an independent current source on the drain or source net (the
/// tail / reference idiom) defines it. `None` when nothing pins the
/// bias — such devices are audited post-solve instead.
pub(crate) fn inferred_bias(nl: &Netlist, d: Node, s: Node) -> Option<f64> {
    for e in nl.elements() {
        if let Element::SclLoad { b, iss, .. } = e {
            if *b == d {
                return Some(*iss);
            }
        }
    }
    for e in nl.elements() {
        if let Element::Isource { p, n, wave, .. } = e {
            if [*p, *n].contains(&d) || [*p, *n].contains(&s) {
                let i = wave.dc().abs();
                if i > 0.0 {
                    return Some(i);
                }
            }
        }
    }
    None
}

struct WeakInversionLint;

impl Lint for WeakInversionLint {
    fn codes(&self) -> &'static [&'static str] {
        &[rule::WEAK_INVERSION]
    }

    fn check(&self, cx: &LintContext<'_>, report: &mut ErcReport) {
        let Some(tech) = cx.tech else { return };
        for e in cx.nl.elements() {
            let Element::Mos { name, d, s, dev, .. } = e else {
                continue;
            };
            let Some(bias) = inferred_bias(cx.nl, *d, *s) else {
                continue;
            };
            let ic = dev.inversion_coefficient(tech, bias);
            if ic > IC_WEAK_MAX {
                report.push(
                    Diagnostic::new(
                        Severity::Warning,
                        rule::WEAK_INVERSION,
                        format!(
                            "`{name}` would run at inversion coefficient {ic:.3} \
                             at its inferred bias of {bias:.3e} A — outside weak \
                             inversion (bound {IC_WEAK_MAX})"
                        ),
                    )
                    .with_elements([name.clone()])
                    .with_hint(
                        "widen W/L or reduce the bias current; the STSCL delay and \
                         swing laws assume IC \u{226a} 1",
                    ),
                );
            }
        }
    }
}

struct SwingCompatibilityLint;

impl Lint for SwingCompatibilityLint {
    fn codes(&self) -> &'static [&'static str] {
        &[rule::SWING_COMPATIBILITY]
    }

    fn check(&self, cx: &LintContext<'_>, report: &mut ErcReport) {
        let Some(tech) = cx.tech else { return };
        let ut = tech.thermal_voltage();
        for e in cx.nl.elements() {
            let Element::SclLoad { name, b, load, .. } = e else {
                continue;
            };
            // Every MOS gate on the load's output node belongs to a
            // driven (cascaded) stage; it needs the full differential
            // swing to steer its pair.
            for drv in cx.nl.elements() {
                let Element::Mos {
                    name: dname,
                    g,
                    dev,
                    ..
                } = drv
                else {
                    continue;
                };
                if g != b {
                    continue;
                }
                let n_slope = match dev.polarity {
                    Polarity::Nmos => tech.nmos.n,
                    Polarity::Pmos => tech.pmos.n,
                };
                let required = STEERING_NUT * n_slope * ut;
                if load.vsw < required {
                    report.push(
                        Diagnostic::new(
                            Severity::Warning,
                            rule::SWING_COMPATIBILITY,
                            format!(
                                "load `{name}` swings {:.0} mV on node `{}` but the \
                                 driven pair device `{dname}` needs {:.0} mV \
                                 ({STEERING_NUT}\u{b7}n\u{b7}UT) to steer",
                                load.vsw * 1e3,
                                cx.nl.node_name(*b),
                                required * 1e3
                            ),
                        )
                        .with_nodes([cx.nl.node_name(*b).to_string()])
                        .with_elements([name.clone(), dname.clone()])
                        .with_hint(
                            "raise RL\u{b7}ISS (the paper designs for 150\u{2013}200 mV) \
                             or the next stage will never switch completely",
                        ),
                    );
                }
            }
        }
    }
}

struct VddHeadroomLint;

impl Lint for VddHeadroomLint {
    fn codes(&self) -> &'static [&'static str] {
        &[rule::VDD_HEADROOM]
    }

    fn check(&self, cx: &LintContext<'_>, report: &mut ErcReport) {
        let Some(tech) = cx.tech else { return };
        for e in cx.nl.elements() {
            let Element::SclLoad {
                name, a, b, load, iss,
            } = e
            else {
                continue;
            };
            // The supply rail: a DC voltage source fixing the load's
            // supply-side node against ground.
            let supply = cx.nl.elements().iter().find_map(|s| match s {
                Element::Vsource { name, p, n, wave, .. }
                    if p == a && n.is_ground() =>
                {
                    Some((name.clone(), wave.dc()))
                }
                _ => None,
            });
            // The switching-pair device under the load.
            let pair = cx.nl.elements().iter().find_map(|m| match m {
                Element::Mos { name, d, dev, .. } if d == b => {
                    Some((name.clone(), *dev))
                }
                _ => None,
            });
            let (Some((vname, vdd)), Some((mname, dev))) = (supply, pair) else {
                continue;
            };
            // Worst corner: VT shifts move the pair's gate drive.
            let mut worst: Option<(Corner, f64)> = None;
            for corner in Corner::all() {
                let tc = tech.at_corner(corner);
                let need = dev.min_supply(&tc, *iss, load.vsw);
                if worst.is_none_or(|(_, w)| need > w) {
                    worst = Some((corner, need));
                }
            }
            let (corner, need) = worst.expect("corners are non-empty");
            if vdd < need {
                report.push(
                    Diagnostic::new(
                        Severity::Warning,
                        rule::VDD_HEADROOM,
                        format!(
                            "supply `{vname}` = {vdd:.2} V is below the \
                             {need:.2} V the STSCL stack under `{name}` needs \
                             at the {corner} corner"
                        ),
                    )
                    .with_nodes([cx.nl.node_name(*a).to_string()])
                    .with_elements([name.clone(), mname, vname])
                    .with_hint(
                        "VDD must cover swing + pair VGS + tail saturation \
                         across corners; raise VDD or cut ISS/VSW",
                    ),
                );
            }
        }
    }
}

struct MismatchBudgetLint;

impl Lint for MismatchBudgetLint {
    fn codes(&self) -> &'static [&'static str] {
        &[rule::MISMATCH_BUDGET]
    }

    fn check(&self, cx: &LintContext<'_>, report: &mut ErcReport) {
        let Some(tech) = cx.tech else { return };
        let elems = cx.nl.elements();
        // The vsw of the STSCL load on a drain node, if any.
        let load_vsw = |node: Node| {
            elems.iter().find_map(|e| match e {
                Element::SclLoad { b, load, .. } if *b == node => Some(load.vsw),
                _ => None,
            })
        };
        for (i, ei) in elems.iter().enumerate() {
            let Element::Mos {
                name: n1,
                d: d1,
                s: s1,
                dev: m1,
                ..
            } = ei
            else {
                continue;
            };
            for ej in &elems[i + 1..] {
                let Element::Mos {
                    name: n2,
                    d: d2,
                    s: s2,
                    dev: m2,
                    ..
                } = ej
                else {
                    continue;
                };
                // A matched source-coupled pair: same polarity and
                // geometry, sharing the source node, each drain loaded
                // by an STSCL load.
                let matched = m1.polarity == m2.polarity
                    && m1.w == m2.w
                    && m1.l == m2.l
                    && s1 == s2
                    && d1 != d2;
                if !matched {
                    continue;
                }
                let (Some(v1), Some(v2)) = (load_vsw(*d1), load_vsw(*d2)) else {
                    continue;
                };
                let vsw = v1.min(v2);
                let model = match m1.polarity {
                    Polarity::Nmos => &tech.nmos,
                    Polarity::Pmos => &tech.pmos,
                };
                let sigma = MismatchRng::sigma_pair_offset(model, m1.w, m1.l);
                if vsw < SIGMA_MARGIN * sigma {
                    report.push(
                        Diagnostic::new(
                            Severity::Warning,
                            rule::MISMATCH_BUDGET,
                            format!(
                                "pair `{n1}`/`{n2}` has a Pelgrom offset sigma of \
                                 {:.1} mV against a {:.0} mV swing (margin below \
                                 {SIGMA_MARGIN}\u{b7}\u{3c3})",
                                sigma * 1e3,
                                vsw * 1e3
                            ),
                        )
                        .with_elements([n1.clone(), n2.clone()])
                        .with_hint(
                            "grow W\u{b7}L of the pair (\u{3c3} \u{221d} 1/\u{221a}(WL)) \
                             or raise the swing; offsets this large eat the noise \
                             margin the paper budgets",
                        ),
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Numerics lints.
// ---------------------------------------------------------------------

struct RcTimeStepLint;

impl Lint for RcTimeStepLint {
    fn codes(&self) -> &'static [&'static str] {
        &[rule::RC_TIME_STEP]
    }

    fn check(&self, cx: &LintContext<'_>, report: &mut ErcReport) {
        let Some(dt) = cx.dt else { return };
        // Fastest plausible time constant: smallest resistance (explicit
        // resistors plus the small-signal resistance of STSCL loads)
        // against the smallest capacitance, as `tran::suggest_dt` does.
        let mut r_min = f64::INFINITY;
        let mut c_min = f64::INFINITY;
        for e in cx.nl.elements() {
            match e {
                Element::Resistor { ohms, .. } => r_min = r_min.min(*ohms),
                Element::SclLoad { load, iss, .. } => {
                    r_min = r_min.min(load.resistance(*iss));
                }
                Element::Capacitor { farads, .. } => c_min = c_min.min(*farads),
                _ => {}
            }
        }
        if !(r_min.is_finite() && c_min.is_finite()) {
            return;
        }
        let tau = r_min * c_min;
        if dt > tau / MIN_POINTS_PER_TAU {
            report.push(
                Diagnostic::new(
                    Severity::Warning,
                    rule::RC_TIME_STEP,
                    format!(
                        "transient step {dt:.3e} s resolves the fastest RC time \
                         constant ({tau:.3e} s) with fewer than \
                         {MIN_POINTS_PER_TAU} points"
                    ),
                )
                .with_hint(
                    "shrink dt (see tran::suggest_dt) or the integrator will \
                     smear the edge; backward Euler overdamps, trapezoidal rings",
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------
// Post-solve operating-point audit.
// ---------------------------------------------------------------------

/// Audits a completed DC operating point: flags devices that left their
/// intended region ([`rule::STRONG_INVERSION`],
/// [`rule::UNSATURATED_CHANNEL`]) and near-singular MNA systems
/// ([`rule::NEAR_SINGULAR`], via the LU pivot-ratio estimate of the
/// Jacobian assembled at the solution).
///
/// This is the complement of the static lints: the static passes bound
/// what the bias *should* be from the netlist's sources; the audit
/// checks what the solver actually found, catching mis-biasing the
/// pattern matcher cannot see (e.g. a mirrored tail delivering the
/// wrong current).
pub fn audit(
    nl: &Netlist,
    tech: &Technology,
    op: &DcOperatingPoint,
    config: &LintConfig,
) -> ErcReport {
    let mut raw = ErcReport::new();
    let x = op.solution();
    for e in nl.elements() {
        let Element::Mos {
            name, d, g, s, b, dev,
        } = e
        else {
            continue;
        };
        // Bulk-referred terminal voltages, exactly as the MNA stamper
        // evaluates the device.
        let vb = mna::voltage_of(x, *b);
        let opp = dev.operating_point(
            tech,
            mna::voltage_of(x, *g) - vb,
            mna::voltage_of(x, *s) - vb,
            mna::voltage_of(x, *d) - vb,
        );
        if opp.inversion > IC_STRONG {
            raw.push(
                Diagnostic::new(
                    Severity::Warning,
                    rule::STRONG_INVERSION,
                    format!(
                        "`{name}` sits at inversion coefficient {:.2} at the \
                         solved operating point — strong inversion",
                        opp.inversion
                    ),
                )
                .with_elements([name.clone()])
                .with_hint(
                    "lower the tail/reference current or widen the device; the \
                     platform's delay, swing and gm laws assume weak inversion",
                ),
            );
        } else if !opp.saturated && opp.id > 1e-15 {
            raw.push(
                Diagnostic::new(
                    Severity::Warning,
                    rule::UNSATURATED_CHANNEL,
                    format!(
                        "channel of `{name}` is not saturated at the solved \
                         operating point (ID = {:.3e} A)",
                        opp.id
                    ),
                )
                .with_elements([name.clone()])
                .with_hint(
                    "give the device more VDS headroom (check VDD, swing and \
                     stacking); the gate model assumes saturated channels",
                ),
            );
        }
    }
    // Conditioning of the Jacobian at the solution.
    let gmin = NewtonOptions::default().gmin;
    let sys = mna::assemble(nl, tech, x, AssembleMode::Dc, gmin);
    match LuFactor::new(&sys.matrix) {
        Ok(lu) => {
            let ratio = lu.pivot_ratio();
            let bound = config.near_singular_ratio();
            if ratio > bound {
                raw.push(
                    Diagnostic::new(
                        Severity::Warning,
                        rule::NEAR_SINGULAR,
                        format!(
                            "MNA system is nearly singular at the solution: LU \
                             pivot ratio {ratio:.1e} exceeds {bound:.0e}"
                        ),
                    )
                    .with_hint(
                        "some unknown is barely constrained (gmin-held node or \
                         near-dependent source); results there are noise-level",
                    ),
                );
            }
        }
        Err(err) => {
            raw.push(
                Diagnostic::new(
                    Severity::Warning,
                    rule::NEAR_SINGULAR,
                    format!("MNA system is singular at the solution: {err}"),
                )
                .with_hint("the converged point sits on a fold; treat results as suspect"),
            );
        }
    }
    finish(raw, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulp_device::load::PmosLoad;
    use ulp_device::{Mosfet, Technology};

    fn tech() -> Technology {
        Technology::default()
    }

    /// An STSCL buffer cell at the paper's design point: VDD 1 V,
    /// 200 mV swing, nA tail — clean under every electrical lint.
    fn stscl_cell(iss: f64, vsw: f64, vdd: f64) -> Netlist {
        let mut nl = Netlist::new();
        let vddn = nl.node("vdd");
        let inp = nl.node("inp");
        let inn = nl.node("inn");
        let outp = nl.node("outp");
        let outn = nl.node("outn");
        let cs = nl.node("cs");
        nl.vsource("VDD", vddn, Netlist::GROUND, vdd);
        nl.vsource("VINP", inp, Netlist::GROUND, 0.6);
        nl.vsource("VINN", inn, Netlist::GROUND, 0.6);
        let pair = Mosfet::new(Polarity::Nmos, 1e-6, 0.5e-6);
        nl.mosfet("M1", outn, inp, cs, Netlist::GROUND, pair);
        nl.mosfet("M2", outp, inn, cs, Netlist::GROUND, pair);
        nl.scl_load("RLP", vddn, outp, PmosLoad::new(vsw), iss);
        nl.scl_load("RLN", vddn, outn, PmosLoad::new(vsw), iss);
        nl.isource("ITAIL", cs, Netlist::GROUND, iss);
        nl
    }

    #[test]
    fn compliant_stscl_cell_lints_clean() {
        let nl = stscl_cell(1e-9, 0.2, 1.0);
        let report = run(&nl, &tech(), &LintConfig::new());
        assert!(report.is_empty(), "expected no findings:\n{report}");
    }

    // -- weak-inversion -----------------------------------------------

    #[test]
    fn weak_inversion_fires_on_over_biased_pair() {
        // 10 µA through a 1µ/0.5µ pair is IC ≈ 7: far out of the
        // subthreshold regime the delay law assumes.
        let nl = stscl_cell(10e-6, 0.2, 1.0);
        let report = run(&nl, &tech(), &LintConfig::new());
        let d = report.find(rule::WEAK_INVERSION).expect("weak-inversion");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.elements.contains(&"M1".to_string()), "{d}");
    }

    #[test]
    fn weak_inversion_clean_at_nanoamp_bias() {
        let nl = stscl_cell(1e-9, 0.2, 1.0);
        let report = run(&nl, &tech(), &LintConfig::new());
        assert!(report.find(rule::WEAK_INVERSION).is_none(), "{report}");
    }

    #[test]
    fn weak_inversion_infers_bias_from_current_source() {
        // A diode-connected reference leg: the bias comes from the
        // isource, not a load.
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let vbn = nl.node("vbn");
        nl.vsource("VDD", vdd, Netlist::GROUND, 1.0);
        nl.isource("IREF", vdd, vbn, 50e-6); // way too much for 2µ/2µ
        let mirror = Mosfet::new(Polarity::Nmos, 2e-6, 2e-6);
        nl.mosfet("MREF", vbn, vbn, Netlist::GROUND, Netlist::GROUND, mirror);
        let report = run(&nl, &tech(), &LintConfig::new());
        let d = report.find(rule::WEAK_INVERSION).expect("weak-inversion");
        assert_eq!(d.elements, ["MREF"]);
    }

    // -- swing-compatibility ------------------------------------------

    /// Adds a second stage whose gates hang on the first stage's output.
    fn cascade(nl: &mut Netlist, vsw2: f64, iss: f64) {
        let vdd = nl.node("vdd");
        let outp = nl.node("outp");
        let outn = nl.node("outn");
        let o2p = nl.node("o2p");
        let o2n = nl.node("o2n");
        let cs2 = nl.node("cs2");
        let pair = Mosfet::new(Polarity::Nmos, 1e-6, 0.5e-6);
        nl.mosfet("M3", o2n, outp, cs2, Netlist::GROUND, pair);
        nl.mosfet("M4", o2p, outn, cs2, Netlist::GROUND, pair);
        nl.scl_load("RL2P", vdd, o2p, PmosLoad::new(vsw2), iss);
        nl.scl_load("RL2N", vdd, o2n, PmosLoad::new(vsw2), iss);
        nl.isource("ITAIL2", cs2, Netlist::GROUND, iss);
    }

    #[test]
    fn swing_compatibility_fires_on_starved_first_stage() {
        // First stage swings only 100 mV; the cascaded pair needs
        // 4·n·UT ≈ 140 mV to steer.
        let mut nl = stscl_cell(1e-9, 0.1, 1.0);
        cascade(&mut nl, 0.2, 1e-9);
        let report = run(&nl, &tech(), &LintConfig::new());
        let d = report
            .find(rule::SWING_COMPATIBILITY)
            .expect("swing-compatibility");
        assert_eq!(d.severity, Severity::Warning);
        assert!(
            d.elements.iter().any(|e| e == "RLP" || e == "RLN"),
            "{d}"
        );
        assert!(
            d.elements.iter().any(|e| e == "M3" || e == "M4"),
            "{d}"
        );
    }

    #[test]
    fn swing_compatibility_clean_at_paper_swing() {
        let mut nl = stscl_cell(1e-9, 0.2, 1.0);
        cascade(&mut nl, 0.2, 1e-9);
        let report = run(&nl, &tech(), &LintConfig::new());
        assert!(report.find(rule::SWING_COMPATIBILITY).is_none(), "{report}");
    }

    // -- vdd-headroom -------------------------------------------------

    #[test]
    fn vdd_headroom_fires_on_half_volt_supply() {
        // 0.5 V cannot cover swing (0.2) + pair VGS (~0.22 nominal,
        // more at the SS corner) + tail saturation (~0.1).
        let nl = stscl_cell(1e-9, 0.2, 0.5);
        let report = run(&nl, &tech(), &LintConfig::new());
        let d = report.find(rule::VDD_HEADROOM).expect("vdd-headroom");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.elements.contains(&"VDD".to_string()), "{d}");
        assert!(d.message.contains("corner"), "{d}");
    }

    #[test]
    fn vdd_headroom_clean_at_one_volt() {
        let nl = stscl_cell(1e-9, 0.2, 1.0);
        let report = run(&nl, &tech(), &LintConfig::new());
        assert!(report.find(rule::VDD_HEADROOM).is_none(), "{report}");
    }

    // -- mismatch-budget ----------------------------------------------

    #[test]
    fn mismatch_budget_fires_on_minimum_size_pair() {
        // A 0.1µ×0.1µ pair: σ(ΔVT) = 5 nV·m / 0.1 µm = 50 mV against a
        // 200 mV swing — the offset eats the noise margin.
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let inp = nl.node("inp");
        let inn = nl.node("inn");
        let outp = nl.node("outp");
        let outn = nl.node("outn");
        let cs = nl.node("cs");
        nl.vsource("VDD", vdd, Netlist::GROUND, 1.0);
        nl.vsource("VINP", inp, Netlist::GROUND, 0.6);
        nl.vsource("VINN", inn, Netlist::GROUND, 0.6);
        let tiny = Mosfet::new(Polarity::Nmos, 0.1e-6, 0.1e-6);
        nl.mosfet("M1", outn, inp, cs, Netlist::GROUND, tiny);
        nl.mosfet("M2", outp, inn, cs, Netlist::GROUND, tiny);
        nl.scl_load("RLP", vdd, outp, PmosLoad::new(0.2), 1e-9);
        nl.scl_load("RLN", vdd, outn, PmosLoad::new(0.2), 1e-9);
        nl.isource("ITAIL", cs, Netlist::GROUND, 1e-9);
        let report = run(&nl, &tech(), &LintConfig::new());
        let d = report.find(rule::MISMATCH_BUDGET).expect("mismatch-budget");
        assert_eq!(d.elements, ["M1", "M2"]);
    }

    #[test]
    fn mismatch_budget_clean_for_sized_pair() {
        // The 1µ/0.5µ pair: σ ≈ 7 mV, an order below the 200 mV swing.
        let nl = stscl_cell(1e-9, 0.2, 1.0);
        let report = run(&nl, &tech(), &LintConfig::new());
        assert!(report.find(rule::MISMATCH_BUDGET).is_none(), "{report}");
    }

    // -- rc-time-step -------------------------------------------------

    #[test]
    fn rc_time_step_fires_on_coarse_step() {
        let nl = stscl_cell(1e-9, 0.2, 1.0);
        // Add a load capacitance so there is an RC to resolve.
        let mut nl = nl;
        let outp = nl.node("outp");
        nl.capacitor("CL", outp, Netlist::GROUND, 10e-15);
        // τ ≈ 0.694·0.2/1e-9 · 10 fF ≈ 1.4 µs; a 10 µs step is absurd.
        let t = tech();
        let cx = LintContext::with_tech(&nl, &t).with_dt(10e-6);
        let report = run_ctx(&cx, &LintConfig::new());
        let d = report.find(rule::RC_TIME_STEP).expect("rc-time-step");
        assert_eq!(d.severity, Severity::Warning);
    }

    #[test]
    fn rc_time_step_clean_with_resolved_step() {
        let mut nl = stscl_cell(1e-9, 0.2, 1.0);
        let outp = nl.node("outp");
        nl.capacitor("CL", outp, Netlist::GROUND, 10e-15);
        let t = tech();
        let cx = LintContext::with_tech(&nl, &t).with_dt(50e-9);
        let report = run_ctx(&cx, &LintConfig::new());
        assert!(report.find(rule::RC_TIME_STEP).is_none(), "{report}");
    }

    #[test]
    fn rc_time_step_silent_without_planned_step() {
        let mut nl = stscl_cell(1e-9, 0.2, 1.0);
        let outp = nl.node("outp");
        nl.capacitor("CL", outp, Netlist::GROUND, 10e-15);
        let report = run(&nl, &tech(), &LintConfig::new());
        assert!(report.find(rule::RC_TIME_STEP).is_none());
    }

    // -- config / levels ----------------------------------------------

    #[test]
    fn config_precedence_rule_over_group_over_all() {
        let weak = rule_info(rule::WEAK_INVERSION).unwrap();
        let swing = rule_info(rule::SWING_COMPATIBILITY).unwrap();
        let floating = rule_info(crate::erc::rule::FLOATING_NODE).unwrap();
        let cfg = LintConfig::new()
            .set("all", LintLevel::Allow)
            .set("electrical", LintLevel::Deny)
            .set(rule::WEAK_INVERSION, LintLevel::Warn);
        assert_eq!(cfg.level(weak), LintLevel::Warn);
        assert_eq!(cfg.level(swing), LintLevel::Deny);
        assert_eq!(cfg.level(floating), LintLevel::Allow);
        // Defaults when nothing matches.
        let dflt = LintConfig::new();
        assert_eq!(dflt.level(floating), LintLevel::Deny);
        assert_eq!(dflt.level(weak), LintLevel::Warn);
    }

    #[test]
    fn deny_promotes_and_allow_drops_findings() {
        let nl = stscl_cell(10e-6, 0.2, 1.0); // fires weak-inversion
        let deny = run(
            &nl,
            &tech(),
            &LintConfig::new().set(rule::WEAK_INVERSION, LintLevel::Deny),
        );
        let d = deny.find(rule::WEAK_INVERSION).unwrap();
        assert_eq!(d.severity, Severity::Error);
        assert!(!deny.is_clean());
        let allow = run(
            &nl,
            &tech(),
            &LintConfig::new().set(rule::WEAK_INVERSION, LintLevel::Allow),
        );
        assert!(allow.find(rule::WEAK_INVERSION).is_none());
    }

    #[test]
    fn env_spec_parses_valid_overrides() {
        // Pure parser test (no env mutation — tests run in parallel).
        let cfg =
            LintConfig::parse_spec("weak-inversion=deny, electrical = allow, ,certify=warn")
                .expect("valid spec");
        let weak = rule_info(rule::WEAK_INVERSION).unwrap();
        let swing = rule_info(rule::SWING_COMPATIBILITY).unwrap();
        assert_eq!(cfg.level(weak), LintLevel::Deny);
        assert_eq!(cfg.level(swing), LintLevel::Allow);
    }

    #[test]
    fn env_spec_rejects_unknown_key_by_name() {
        // The `tpology=deny` typo must surface, not silently disarm a
        // gate the operator asked for.
        let err = LintConfig::parse_spec("all=warn,tpology=deny").unwrap_err();
        assert_eq!(
            err,
            LintEnvError::UnknownKey {
                key: "tpology".into()
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("ULP_LINT"), "{msg}");
        assert!(msg.contains("`tpology`"), "{msg}");
    }

    #[test]
    fn env_spec_rejects_unknown_level_by_name() {
        let err = LintConfig::parse_spec("weak-inversion=fatal").unwrap_err();
        assert_eq!(
            err,
            LintEnvError::BadLevel {
                key: "weak-inversion".into(),
                level: "fatal".into()
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("`fatal`") && msg.contains("weak-inversion"), "{msg}");
    }

    #[test]
    fn env_spec_rejects_malformed_entry() {
        let err = LintConfig::parse_spec("junk").unwrap_err();
        assert_eq!(err, LintEnvError::Malformed { entry: "junk".into() });
        assert!(err.to_string().contains("`junk`"), "{}", err);
        // `=x` has an empty key — unknown, not malformed.
        let err = LintConfig::parse_spec("=x").unwrap_err();
        assert_eq!(err, LintEnvError::UnknownKey { key: String::new() });
    }

    #[test]
    fn level_and_group_names_round_trip() {
        for l in [LintLevel::Allow, LintLevel::Warn, LintLevel::Deny] {
            assert_eq!(LintLevel::parse(l.name()), Some(l));
        }
        for g in [
            LintGroup::Topology,
            LintGroup::Electrical,
            LintGroup::Numerics,
            LintGroup::Concurrency,
            LintGroup::Certify,
        ] {
            assert_eq!(LintGroup::parse(g.name()), Some(g));
        }
        assert!(LintLevel::parse("fatal").is_none());
        assert!(LintGroup::parse("style").is_none());
    }

    #[test]
    fn registry_is_complete_and_unique() {
        // Every code the static lints claim is in the registry…
        for lint in lints() {
            for code in lint.codes() {
                assert!(rule_info(code).is_some(), "unregistered code {code}");
            }
        }
        // …and codes are unique.
        for (i, r) in REGISTRY.iter().enumerate() {
            assert!(
                REGISTRY[i + 1..].iter().all(|o| o.code != r.code),
                "duplicate registry code {}",
                r.code
            );
        }
    }

    // -- post-solve audit ---------------------------------------------

    #[test]
    fn audit_flags_strong_inversion_on_mis_biased_gate() {
        // The satellite scenario: an STSCL gate whose tail current is
        // cranked three decades past the design point. The DC solution
        // converges fine — only the audit sees the region violation.
        let t = tech();
        let nl = stscl_cell(10e-6, 0.2, 1.0);
        let op = DcOperatingPoint::solve_unchecked(&nl, &t).unwrap();
        let report = audit(&nl, &t, &op, &LintConfig::new());
        let d = report
            .find(rule::STRONG_INVERSION)
            .expect("strong-inversion must fire");
        assert_eq!(d.rule, "strong-inversion");
        assert_eq!(d.severity, Severity::Warning);
        assert!(
            d.elements.contains(&"M1".to_string())
                || d.elements.contains(&"M2".to_string()),
            "{d}"
        );
    }

    #[test]
    fn audit_clean_on_the_design_point() {
        let t = tech();
        let nl = stscl_cell(1e-9, 0.2, 1.0);
        let op = DcOperatingPoint::solve(&nl, &t).unwrap();
        let report = audit(&nl, &t, &op, &LintConfig::new());
        assert!(report.is_empty(), "expected clean audit:\n{report}");
    }

    #[test]
    fn audit_flags_near_singular_system() {
        // A teraohm-class leakage path keeps the node ERC-clean but the
        // matrix pivot collapses to the gmin floor.
        let t = tech();
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let x = nl.node("x");
        nl.vsource("V1", a, Netlist::GROUND, 1.0);
        nl.resistor("R1", a, Netlist::GROUND, 1e3);
        nl.resistor("RLEAK", a, x, 1e18);
        let op = DcOperatingPoint::solve(&nl, &t).unwrap();
        let report = audit(&nl, &t, &op, &LintConfig::new());
        let d = report.find(rule::NEAR_SINGULAR).expect("near-singular");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("pivot ratio"), "{d}");
    }

    #[test]
    fn near_singular_threshold_is_configurable() {
        // A healthy STSCL cell spans ~1 S source rows down to nS device
        // conductances — pivot ratio around 1e9: clean at the default
        // 1e11 bound, flagged once the operator tightens the bound
        // below the measured ratio.
        let t = tech();
        let nl = stscl_cell(1e-9, 0.2, 1.0);
        let op = DcOperatingPoint::solve(&nl, &t).unwrap();
        let clean = audit(&nl, &t, &op, &LintConfig::new());
        assert!(clean.find(rule::NEAR_SINGULAR).is_none(), "{clean}");

        let strict = LintConfig::new().with_near_singular_ratio(1e6);
        let report = audit(&nl, &t, &op, &strict);
        let d = report.find(rule::NEAR_SINGULAR).expect("near-singular");
        // The finding reports both the measured ratio and the bound.
        assert!(d.message.contains("exceeds 1e6"), "{d}");
        assert!(d.message.contains("pivot ratio"), "{d}");
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn near_singular_threshold_rejects_nonsense() {
        let _ = LintConfig::new().with_near_singular_ratio(f64::NAN);
    }
}
