//! A small SPICE-class analog circuit simulator for the ULP-SCL
//! platform.
//!
//! The paper's circuits (STSCL gates, current-mode folders, the
//! decoupled-load pre-amplifier of Fig. 6) were designed and verified
//! with commercial SPICE and foundry models. No analog simulation
//! tooling exists in the Rust ecosystem, so this crate implements the
//! required subset from scratch:
//!
//! * [`netlist`] — circuit description: named nodes, two-terminal and
//!   controlled elements, EKV MOS devices ([`ulp_device::Mosfet`]) with
//!   explicit bulk terminals (required for the bulk-drain-shorted STSCL
//!   load), and the replica-calibrated [`ulp_device::load::PmosLoad`];
//! * [`dcop`] — DC operating point via damped Newton–Raphson over the
//!   modified nodal analysis (MNA) equations, with gmin stepping for
//!   robustness;
//! * [`sweep`] — DC transfer sweeps with solution continuation;
//! * [`tran`] — fixed-step transient analysis (backward Euler or
//!   trapezoidal companion models) with a full Newton solve per step;
//! * [`ac`] — complex-valued small-signal analysis around the DC
//!   operating point.
//!
//! Deliberate scope limits, documented here so users are not surprised:
//! no inductors (none appear in the paper's circuits), no implicit MOS
//! capacitances (attach explicit [`netlist::Netlist::capacitor`]s — the
//! Fig. 6 experiment models the well diode capacitance explicitly), and
//! dense linear algebra (circuit sizes here are tens of nodes).
//!
//! # Example
//!
//! A resistive divider:
//!
//! ```
//! use ulp_spice::netlist::Netlist;
//! use ulp_spice::dcop::DcOperatingPoint;
//! use ulp_device::Technology;
//!
//! # fn main() -> Result<(), ulp_spice::SimError> {
//! let mut nl = Netlist::new();
//! let vin = nl.node("in");
//! let mid = nl.node("mid");
//! nl.vsource("V1", vin, Netlist::GROUND, 1.0);
//! nl.resistor("R1", vin, mid, 10_000.0);
//! nl.resistor("R2", mid, Netlist::GROUND, 10_000.0);
//! let op = DcOperatingPoint::solve(&nl, &Technology::default())?;
//! assert!((op.voltage(mid) - 0.5).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

pub mod ac;
pub mod dcop;
pub mod error;
pub mod mna;
pub mod netlist;
pub mod noise;
pub mod report;
pub mod sweep;
pub mod tran;

pub use error::SimError;
pub use netlist::{Netlist, Node, Waveform};
