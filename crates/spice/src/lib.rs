//! A small SPICE-class analog circuit simulator for the ULP-SCL
//! platform.
//!
//! The paper's circuits (STSCL gates, current-mode folders, the
//! decoupled-load pre-amplifier of Fig. 6) were designed and verified
//! with commercial SPICE and foundry models. No analog simulation
//! tooling exists in the Rust ecosystem, so this crate implements the
//! required subset from scratch:
//!
//! * [`netlist`] — circuit description: named nodes, two-terminal and
//!   controlled elements, EKV MOS devices ([`ulp_device::Mosfet`]) with
//!   explicit bulk terminals (required for the bulk-drain-shorted STSCL
//!   load), and the replica-calibrated [`ulp_device::load::PmosLoad`];
//! * [`dcop`] — DC operating point via damped Newton–Raphson over the
//!   modified nodal analysis (MNA) equations, with gmin stepping for
//!   robustness;
//! * [`sweep`] — DC transfer sweeps with solution continuation;
//! * [`tran`] — fixed-step transient analysis (backward Euler or
//!   trapezoidal companion models) with a full Newton solve per step;
//! * [`ac`] — complex-valued small-signal analysis around the DC
//!   operating point.
//!
//! Deliberate scope limits, documented here so users are not surprised:
//! no inductors (none appear in the paper's circuits) and no implicit
//! MOS capacitances (attach explicit [`netlist::Netlist::capacitor`]s —
//! the Fig. 6 experiment models the well diode capacitance explicitly).
//!
//! # Linear algebra backends
//!
//! Every analysis solves its MNA systems through a reusable
//! [`mna::MnaWorkspace`] with two interchangeable backends:
//!
//! * **sparse** (default for systems of a handful of unknowns and up) —
//!   compressed row storage, one symbolic analysis per (netlist,
//!   analysis-mode) pair, then allocation-free in-place restamping and
//!   numeric-only refactorization ([`ulp_num::sparse::SparseLu`]) on
//!   every Newton iteration, sweep point and time step;
//! * **dense** — the original [`ulp_num::lu::LuFactor`] path, kept
//!   verbatim as the bitwise-stable oracle the sparse path is tested
//!   against (to 1e-12 in the ∞-norm; see `tests/sparse_equivalence`).
//!
//! Selection: [`dcop::NewtonOptions::solver`] if set to something other
//! than [`mna::SolverKind::Auto`], else the `ULP_SOLVER` environment
//! variable (`dense`/`sparse`/`auto`), else dimension-based auto.
//!
//! # Example
//!
//! A resistive divider:
//!
//! ```
//! use ulp_spice::netlist::Netlist;
//! use ulp_spice::dcop::DcOperatingPoint;
//! use ulp_device::Technology;
//!
//! # fn main() -> Result<(), ulp_spice::SimError> {
//! let mut nl = Netlist::new();
//! let vin = nl.node("in");
//! let mid = nl.node("mid");
//! nl.vsource("V1", vin, Netlist::GROUND, 1.0);
//! nl.resistor("R1", vin, mid, 10_000.0);
//! nl.resistor("R2", mid, Netlist::GROUND, 10_000.0);
//! let op = DcOperatingPoint::solve(&nl, &Technology::default())?;
//! assert!((op.voltage(mid) - 0.5).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```
//!
//! # Static analysis / ERC
//!
//! Every analysis entry point ([`dcop::DcOperatingPoint::solve`],
//! [`sweep::dc_sweep`], [`tran::Transient::run`], [`ac::AcResult::run`])
//! first runs the electrical rule checker ([`erc::check`]) and refuses
//! netlists whose MNA system would be singular or meaningless: floating
//! nodes, loops of voltage sources, current sources with no return
//! path, undriven MOS gates, duplicate instance names and non-finite
//! values. The failure is a [`SimError::Erc`] carrying severity-tiered
//! [`diag::Diagnostic`]s that name the offending nodes and elements —
//! instead of a zero-pivot index from inside the LU factorisation.
//!
//! ```
//! use ulp_spice::netlist::Netlist;
//! use ulp_spice::dcop::DcOperatingPoint;
//! use ulp_spice::{erc, SimError};
//! use ulp_device::Technology;
//!
//! let mut nl = Netlist::new();
//! let a = nl.node("a");
//! let fl = nl.node("float");
//! nl.vsource("V1", a, Netlist::GROUND, 1.0);
//! nl.resistor("R1", a, Netlist::GROUND, 1e3);
//! nl.capacitor("C1", a, fl, 1e-12); // capacitors are open at DC
//! match DcOperatingPoint::solve(&nl, &Technology::default()) {
//!     Err(SimError::Erc(report)) => {
//!         let d = report.find(erc::rule::FLOATING_NODE).unwrap();
//!         assert!(d.nodes.contains(&"float".to_string()));
//!     }
//!     other => panic!("expected ERC rejection, got {other:?}"),
//! }
//! // Deliberately degenerate netlists can bypass the gate:
//! let op = DcOperatingPoint::solve_unchecked(&nl, &Technology::default()).unwrap();
//! assert!(op.voltage(fl).abs() < 1e-6); // gmin pins the floating node
//! ```
//!
//! Each checked entry point has an `*_unchecked` twin that skips the
//! gate, and [`erc::check`] can be called directly for lint-style use.
//! When a singular matrix does slip through (e.g. via the unchecked
//! path), the solver maps the zero-pivot elimination step back through
//! the MNA variable ordering to a named node or branch
//! ([`SimError::Singular`], via [`mna::unknown_name`]).
//!
//! # Design lints
//!
//! The ERC rules are one group of the wider design lint framework
//! ([`lint`]): a registry of topology, electrical and numerics rules,
//! each with a configurable level (`allow`/`warn`/`deny` via
//! [`lint::LintConfig`] or the `ULP_LINT` environment variable). The
//! electrical rules apply EKV analytics *without a solve* — weak
//! inversion at the inferred bias, STSCL swing compatibility between
//! cascaded gates, VDD headroom across PVT corners, Pelgrom mismatch
//! budget — and [`lint::audit`] inspects a *solved* operating point for
//! region violations and near-singular MNA systems. Reports export as
//! SARIF 2.1.0 ([`sarif::to_sarif`]) for code-scanning tooling:
//!
//! ```
//! use ulp_spice::netlist::Netlist;
//! use ulp_spice::lint::{self, LintConfig, LintLevel};
//! use ulp_spice::sarif;
//! use ulp_device::{Mosfet, Polarity, Technology};
//! use ulp_device::load::PmosLoad;
//!
//! // An STSCL buffer biased 10 000x past the paper's nA design point.
//! let mut nl = Netlist::new();
//! let vdd = nl.node("vdd");
//! let inp = nl.node("inp");
//! let inn = nl.node("inn");
//! let outp = nl.node("outp");
//! let outn = nl.node("outn");
//! let cs = nl.node("cs");
//! nl.vsource("VDD", vdd, Netlist::GROUND, 1.0);
//! nl.vsource("VINP", inp, Netlist::GROUND, 0.6);
//! nl.vsource("VINN", inn, Netlist::GROUND, 0.6);
//! let pair = Mosfet::new(Polarity::Nmos, 1e-6, 0.5e-6);
//! nl.mosfet("M1", outn, inp, cs, Netlist::GROUND, pair);
//! nl.mosfet("M2", outp, inn, cs, Netlist::GROUND, pair);
//! nl.scl_load("RLP", vdd, outp, PmosLoad::new(0.2), 10e-6);
//! nl.scl_load("RLN", vdd, outn, PmosLoad::new(0.2), 10e-6);
//! nl.isource("ITAIL", cs, Netlist::GROUND, 10e-6);
//!
//! let tech = Technology::default();
//! // Default config: the over-bias is a warning...
//! let report = lint::run(&nl, &tech, &LintConfig::new());
//! let d = report.find(lint::rule::WEAK_INVERSION).unwrap();
//! assert!(report.is_clean());
//! assert!(d.message.contains("inversion coefficient"));
//! // ...but a config (or `ULP_LINT=weak-inversion=deny`) can deny it.
//! let strict = LintConfig::new().set("electrical", LintLevel::Deny);
//! assert!(!lint::run(&nl, &tech, &strict).is_clean());
//! // Findings export as deterministic SARIF 2.1.0 for review tooling.
//! let json = sarif::to_sarif(&report, "netlists/doc-example");
//! assert!(sarif::parse_json(&json).is_ok());
//! ```
//!
//! # Sound certification
//!
//! Point analyses — and even Monte-Carlo sweeps — can only sample the
//! PVT/mismatch space. The interval abstract interpreter ([`absint`])
//! *certifies* it: every device becomes a directed-rounding envelope
//! over a [`ulp_device::envelope::PvtBox`] (all five process corners,
//! 233.15–358.15 K, ±6σ Pelgrom mismatch), and [`absint::certify`]
//! returns a solution enclosure plus proofs — `proved-nonsingular`
//! (no die in the box can hit [`SimError::Singular`], shown either
//! structurally or by an interval-Jacobian argument),
//! `proved-infeasible` (a spec fails on *every* die), or `unproven`
//! (box too wide; never an error). The certificates and the sound
//! box variants of the electrical lints join the lint registry under
//! the `certify` group and render through the same SARIF pipeline:
//!
//! ```
//! use ulp_spice::absint::{certify, CertifyOptions};
//! use ulp_spice::dcop::DcOperatingPoint;
//! use ulp_spice::netlist::Netlist;
//! use ulp_device::load::PmosLoad;
//! use ulp_device::{Mosfet, Polarity, Technology};
//!
//! # fn main() -> Result<(), ulp_spice::SimError> {
//! // The paper's STSCL buffer at its 1 nA / 200 mV design point.
//! let mut nl = Netlist::new();
//! let vdd = nl.node("vdd");
//! let inp = nl.node("inp");
//! let inn = nl.node("inn");
//! let outp = nl.node("outp");
//! let outn = nl.node("outn");
//! let cs = nl.node("cs");
//! nl.vsource("VDD", vdd, Netlist::GROUND, 1.0);
//! nl.vsource("VINP", inp, Netlist::GROUND, 0.6);
//! nl.vsource("VINN", inn, Netlist::GROUND, 0.6);
//! let pair = Mosfet::new(Polarity::Nmos, 1e-6, 0.5e-6);
//! nl.mosfet("M1", outn, inp, cs, Netlist::GROUND, pair);
//! nl.mosfet("M2", outp, inn, cs, Netlist::GROUND, pair);
//! nl.scl_load("RLP", vdd, outp, PmosLoad::new(0.2), 1e-9);
//! nl.scl_load("RLN", vdd, outn, PmosLoad::new(0.2), 1e-9);
//! nl.isource("ITAIL", cs, Netlist::GROUND, 1e-9);
//!
//! let tech = Technology::default();
//! let cert = certify(&nl, &tech, &CertifyOptions::default())?;
//! assert!(cert.proved_nonsingular()); // for every die in the box
//! assert!(!cert.proved_infeasible());
//! // Soundness: the concrete solution lies inside the certified box.
//! let op = DcOperatingPoint::solve(&nl, &tech)?;
//! assert!(cert.voltage_box(outp).contains(op.voltage(outp)));
//! # Ok(())
//! # }
//! ```
//!
//! # Telemetry
//!
//! Every analysis also has a `*_traced` twin taking a
//! [`telemetry::Tracer`], which receives structured [`telemetry::Event`]s
//! describing what the solver did: per-Newton-attempt records (iterations,
//! true ∞-norm KCL residual, damping clamps, gmin-ladder rungs, LU
//! pivoting stats, wall-clock), per-transient-step, per-AC-frequency,
//! per-sweep-point and per-noise-point records. The stock tracer is
//! [`telemetry::MetricsCollector`], which aggregates exact
//! [`telemetry::SimMetrics`] (counts, p50/p95/max iterations,
//! gmin-fallback rate, solve time) and, in
//! [`telemetry::TraceMode::Events`], retains the full event log for
//! JSONL export:
//!
//! ```
//! use ulp_spice::netlist::Netlist;
//! use ulp_spice::dcop::{DcOperatingPoint, NewtonOptions};
//! use ulp_spice::telemetry::{MetricsCollector, TraceMode};
//! use ulp_device::Technology;
//!
//! # fn main() -> Result<(), ulp_spice::SimError> {
//! let mut nl = Netlist::new();
//! let a = nl.node("a");
//! nl.isource("I1", Netlist::GROUND, a, 1e-6);
//! nl.diode("D1", a, Netlist::GROUND, 1e-15, 1.0);
//! let mut mc = MetricsCollector::new(TraceMode::Summary);
//! let op = DcOperatingPoint::solve_traced(
//!     &nl,
//!     &Technology::default(),
//!     &NewtonOptions::default(),
//!     &mut mc,
//! )?;
//! assert!(op.voltage(a) > 0.4);
//! let m = mc.metrics();
//! assert_eq!(m.solves, 1);
//! assert!(m.newton_iterations > 1); // the diode is nonlinear
//! println!("{}", m.summary()); // the stable `-- solver metrics --` footer
//! # Ok(())
//! # }
//! ```
//!
//! The *default* entry points route through a process-global collector
//! activated by the `ULP_TRACE` environment variable (`summary` |
//! `events` | `spans`), so existing callers gain telemetry without code
//! changes; with the variable unset the drivers consult a
//! [`telemetry::NullTracer`] and skip event construction and clock
//! reads entirely. See [`telemetry`] for the JSONL schema and the
//! global-collector API ([`telemetry::snapshot`],
//! [`telemetry::take_events`], [`telemetry::phase`]).
//!
//! # Campaign observability
//!
//! `ULP_TRACE=spans` additionally records hierarchical wall-clock spans
//! (campaign → trial → analysis phase → newton attempt, one timeline
//! per ensemble worker) exportable as Chrome trace-event JSON
//! ([`telemetry::render_chrome_trace`], loadable in Perfetto), and the
//! [`registry`] module provides named counters/gauges/histograms with
//! Prometheus text exposition — both fed per-worker and merged in
//! deterministic worker order through the same
//! [`telemetry::worker_capture_on`]/[`telemetry::fold_worker`] seam the
//! aggregates use.

pub mod absint;
pub mod ac;
pub mod dcop;
pub mod diag;
pub mod erc;
pub mod error;
pub mod lint;
pub mod mna;
pub mod netlist;
pub mod noise;
pub mod registry;
pub mod report;
pub mod sarif;
pub mod sweep;
pub mod telemetry;
pub mod tran;

pub use diag::{Diagnostic, ErcReport, Severity};
pub use error::SimError;
pub use lint::{LintConfig, LintGroup, LintLevel};
pub use netlist::{Netlist, Node, Waveform};
pub use telemetry::{Event, MetricsCollector, SimMetrics, TraceMode, Tracer};
