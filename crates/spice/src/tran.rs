//! Fixed-step transient analysis.
//!
//! Each timestep replaces capacitors by their companion models
//! ([`Integrator`]) and runs a full Newton solve seeded with the previous
//! timepoint. Step size is caller-chosen (the STSCL experiments know
//! their time constants — `Vsw·CL/ISS` — so a fixed grid of ~50 points
//! per time constant is both simple and accurate); a helper suggests a
//! step from the fastest RC in the netlist.

use crate::dcop::{newton_solve_gmin_stepping_into, NewtonOptions};
use crate::error::SimError;
use crate::mna::{capacitor_currents_into, voltage_of, AssembleMode, Integrator, MnaWorkspace};
use crate::netlist::{Netlist, Node};
use crate::telemetry::{self, Event, Tracer};
use std::time::Instant;
use ulp_device::Technology;

/// Stable label for a companion-model integrator, used in telemetry.
fn method_name(method: Integrator) -> &'static str {
    match method {
        Integrator::BackwardEuler => "backward-euler",
        Integrator::Trapezoidal => "trapezoidal",
    }
}

/// Transient analysis controls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TranOptions {
    /// Simulation end time, s.
    pub t_stop: f64,
    /// Fixed step size, s.
    pub dt: f64,
    /// Companion-model integrator.
    pub method: Integrator,
    /// Newton controls for each step.
    pub newton: NewtonOptions,
}

impl TranOptions {
    /// Creates options for a `t_stop` run at step `dt`, backward Euler.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < dt <= t_stop`.
    pub fn new(t_stop: f64, dt: f64) -> Self {
        assert!(dt > 0.0 && dt <= t_stop, "invalid transient step/stop");
        TranOptions {
            t_stop,
            dt,
            method: Integrator::BackwardEuler,
            newton: NewtonOptions::default(),
        }
    }

    /// Switches to trapezoidal integration.
    pub fn trapezoidal(mut self) -> Self {
        self.method = Integrator::Trapezoidal;
        self
    }
}

/// A recorded transient waveform set.
///
/// Solutions are stored as one flat row-major buffer (`dim` unknowns
/// per timepoint) so the step loop appends without a per-step heap
/// allocation and waveform extraction walks contiguous memory.
#[derive(Debug, Clone)]
pub struct Transient {
    time: Vec<f64>,
    dim: usize,
    solutions: Vec<f64>,
}

impl Transient {
    /// Runs a transient analysis. The initial condition is the DC
    /// operating point with all sources at their `t = 0` values.
    ///
    /// Runs the electrical rule check ([`crate::erc::gate`]) once up
    /// front (memoised across repeated runs of an unchanged netlist);
    /// use [`Transient::run_unchecked`] to bypass. To vet the chosen
    /// `dt` against the fastest RC in the netlist before committing to
    /// a long run, see [`crate::lint::rule::RC_TIME_STEP`] and
    /// [`suggest_dt`].
    ///
    /// # Errors
    ///
    /// [`SimError::Erc`] when the netlist fails the rule check;
    /// otherwise propagates Newton/solver failures from any timestep
    /// (the error is tagged with the iteration budget, not the time —
    /// inspect [`Transient::run`] inputs when this happens).
    pub fn run(nl: &Netlist, tech: &Technology, opts: &TranOptions) -> Result<Self, SimError> {
        crate::erc::gate(nl)?;
        Self::run_unchecked(nl, tech, opts)
    }

    /// [`Transient::run`] without the electrical rule check — the
    /// escape hatch for deliberately degenerate netlists.
    ///
    /// # Errors
    ///
    /// As for [`Transient::run`], minus the ERC gate.
    pub fn run_unchecked(
        nl: &Netlist,
        tech: &Technology,
        opts: &TranOptions,
    ) -> Result<Self, SimError> {
        telemetry::with_tracer(|tracer| Self::run_traced_unchecked(nl, tech, opts, tracer))
    }

    /// [`Transient::run`] recording telemetry on the given tracer: one
    /// [`Event::NewtonAttempt`] per solve (tagged `"tran"`) and one
    /// [`Event::TranStep`] per accepted timestep.
    ///
    /// # Errors
    ///
    /// As for [`Transient::run`].
    pub fn run_traced(
        nl: &Netlist,
        tech: &Technology,
        opts: &TranOptions,
        tracer: &mut dyn Tracer,
    ) -> Result<Self, SimError> {
        crate::erc::gate(nl)?;
        Self::run_traced_unchecked(nl, tech, opts, tracer)
    }

    /// [`Transient::run_traced`] without the rule check.
    ///
    /// # Errors
    ///
    /// As for [`Transient::run`], minus the ERC gate.
    pub fn run_traced_unchecked(
        nl: &Netlist,
        tech: &Technology,
        opts: &TranOptions,
        tracer: &mut dyn Tracer,
    ) -> Result<Self, SimError> {
        if opts.dt <= 0.0 || opts.t_stop < opts.dt {
            return Err(SimError::BadParameter(format!(
                "dt {} / t_stop {}",
                opts.dt, opts.t_stop
            )));
        }
        // One workspace serves the whole run: the initial operating
        // point and every timestep share the matrix pattern, so the
        // symbolic factorization is paid once, not per step — and the
        // solution/scratch vectors are reused so the sparse-path step
        // loop performs no steady-state heap allocation at all.
        let mut ws = MnaWorkspace::new(nl, opts.newton.solver);
        let mut x = Vec::with_capacity(nl.unknown_count());
        let mut x_new = Vec::with_capacity(nl.unknown_count());
        let x0 = vec![0.0; nl.unknown_count()];
        newton_solve_gmin_stepping_into(
            nl,
            tech,
            AssembleMode::Dc,
            &x0,
            &opts.newton,
            "tran",
            tracer,
            &mut ws,
            &mut x,
            &mut x_new,
        )?;
        let n_caps = nl
            .elements()
            .iter()
            .filter(|e| matches!(e, crate::netlist::Element::Capacitor { .. }))
            .count();
        // Buffers hoisted out of the step loop: the previous solution,
        // and double-buffered capacitor currents. Recorded waveforms
        // append into one preallocated flat buffer.
        let mut cap_i = vec![0.0; n_caps];
        let mut cap_i_next = Vec::with_capacity(n_caps);
        let mut prev = vec![0.0; x.len()];
        let steps = (opts.t_stop / opts.dt).round() as usize;
        let dim = x.len();
        let mut time = Vec::with_capacity(steps + 1);
        let mut solutions = Vec::with_capacity((steps + 1) * dim);
        time.push(0.0);
        solutions.extend_from_slice(&x);
        let enabled = tracer.enabled();
        let method = method_name(opts.method);
        for k in 1..=steps {
            let t0 = enabled.then(Instant::now);
            let t = k as f64 * opts.dt;
            prev.copy_from_slice(&x);
            let mode = AssembleMode::Transient {
                time: t,
                dt: opts.dt,
                prev: &prev,
                cap_currents: &cap_i,
                method: opts.method,
            };
            let r = newton_solve_gmin_stepping_into(
                nl,
                tech,
                mode,
                &prev,
                &opts.newton,
                "tran",
                tracer,
                &mut ws,
                &mut x,
                &mut x_new,
            )?;
            capacitor_currents_into(nl, &x, &prev, &cap_i, opts.dt, opts.method, &mut cap_i_next);
            std::mem::swap(&mut cap_i, &mut cap_i_next);
            if let Some(t0) = t0 {
                tracer.record(&Event::TranStep {
                    step: k,
                    time: t,
                    newton_iterations: r.iterations,
                    method,
                    seconds: t0.elapsed().as_secs_f64(),
                });
            }
            time.push(t);
            solutions.extend_from_slice(&x);
        }
        Ok(Transient {
            time,
            dim,
            solutions,
        })
    }

    /// The timepoints, s.
    pub fn time(&self) -> &[f64] {
        &self.time
    }

    /// Number of recorded timepoints (including `t = 0`).
    pub fn len(&self) -> usize {
        self.time.len()
    }

    /// True when nothing was recorded (never the case for a completed
    /// run, which always records the initial condition).
    pub fn is_empty(&self) -> bool {
        self.time.is_empty()
    }

    /// Full solution vector at timepoint `i` — node voltages then
    /// branch currents, in MNA unknown order.
    pub fn solution(&self, i: usize) -> &[f64] {
        &self.solutions[i * self.dim..(i + 1) * self.dim]
    }

    /// Waveform of one node, V.
    pub fn voltage(&self, node: Node) -> Vec<f64> {
        self.solutions
            .chunks_exact(self.dim)
            .map(|x| voltage_of(x, node))
            .collect()
    }

    /// Node voltage at the final timepoint, V.
    pub fn final_voltage(&self, node: Node) -> f64 {
        let last = self.solutions.len() - self.dim;
        voltage_of(&self.solutions[last..], node)
    }

    /// First time at which `node` crosses `level` in the given direction
    /// (linear interpolation between timepoints), ignoring everything
    /// before `after`.
    pub fn crossing_time(&self, node: Node, level: f64, rising: bool, after: f64) -> Option<f64> {
        let v = self.voltage(node);
        for i in 1..v.len() {
            if self.time[i] <= after {
                continue;
            }
            let (v0, v1) = (v[i - 1], v[i]);
            let crossed = if rising {
                v0 < level && v1 >= level
            } else {
                v0 > level && v1 <= level
            };
            if crossed {
                let frac = (level - v0) / (v1 - v0);
                return Some(self.time[i - 1] + frac * (self.time[i] - self.time[i - 1]));
            }
        }
        None
    }
}

/// Suggests a timestep resolving the fastest explicit RC in the netlist
/// by `points_per_tau` samples; falls back to `t_stop/1000` if the
/// netlist has no R–C pairs.
pub fn suggest_dt(nl: &Netlist, t_stop: f64, points_per_tau: usize) -> f64 {
    use crate::netlist::Element;
    let mut r_min = f64::INFINITY;
    let mut c_min = f64::INFINITY;
    for e in nl.elements() {
        match e {
            Element::Resistor { ohms, .. } => r_min = r_min.min(*ohms),
            Element::Capacitor { farads, .. } => c_min = c_min.min(*farads),
            _ => {}
        }
    }
    if r_min.is_finite() && c_min.is_finite() {
        (r_min * c_min / points_per_tau as f64).min(t_stop / 10.0)
    } else {
        t_stop / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Waveform;

    fn tech() -> Technology {
        Technology::default()
    }

    #[test]
    fn rc_step_response_backward_euler() {
        // 1 kΩ · 1 µF = 1 ms time constant driven by a step.
        let mut nl = Netlist::new();
        let inp = nl.node("in");
        let out = nl.node("out");
        nl.vsource_wave(
            "V1",
            inp,
            Netlist::GROUND,
            Waveform::Pulse {
                v0: 0.0,
                v1: 1.0,
                delay: 0.0,
                rise: 1e-6,
                fall: 1e-6,
                width: 1.0,
                period: 0.0,
            },
        );
        nl.resistor("R1", inp, out, 1e3);
        nl.capacitor("C1", out, Netlist::GROUND, 1e-6);
        let tr = Transient::run(&nl, &tech(), &TranOptions::new(5e-3, 5e-6)).unwrap();
        // After 1 τ: 63.2 %; after 5 τ: ~99.3 %.
        let v_tau = tr.voltage(out)[(1e-3 / 5e-6) as usize];
        assert!((v_tau - 0.632).abs() < 0.01, "v(τ) = {v_tau}");
        assert!((tr.final_voltage(out) - 1.0).abs() < 0.01);
    }

    #[test]
    fn rc_trapezoidal_is_more_accurate() {
        let build = || {
            let mut nl = Netlist::new();
            let inp = nl.node("in");
            let out = nl.node("out");
            nl.vsource_wave(
                "V1",
                inp,
                Netlist::GROUND,
                Waveform::Pwl(vec![(0.0, 0.0), (1e-9, 1.0)]),
            );
            nl.resistor("R1", inp, out, 1e3);
            nl.capacitor("C1", out, Netlist::GROUND, 1e-6);
            (nl, out)
        };
        // Deliberately coarse step: τ/10.
        let (nl, out) = build();
        let be = Transient::run(&nl, &tech(), &TranOptions::new(2e-3, 1e-4)).unwrap();
        let tr = Transient::run(&nl, &tech(), &TranOptions::new(2e-3, 1e-4).trapezoidal()).unwrap();
        let exact = 1.0 - (-2.0f64).exp();
        let err_be = (be.final_voltage(out) - exact).abs();
        let err_tr = (tr.final_voltage(out) - exact).abs();
        assert!(err_tr < err_be, "trap {err_tr} vs BE {err_be}");
    }

    #[test]
    fn crossing_time_interpolates() {
        let mut nl = Netlist::new();
        let inp = nl.node("in");
        let out = nl.node("out");
        nl.vsource_wave(
            "V1",
            inp,
            Netlist::GROUND,
            Waveform::Pwl(vec![(0.0, 0.0), (1e-9, 1.0)]),
        );
        nl.resistor("R1", inp, out, 1e3);
        nl.capacitor("C1", out, Netlist::GROUND, 1e-6);
        let tr = Transient::run(&nl, &tech(), &TranOptions::new(5e-3, 1e-5)).unwrap();
        // v(t) = 1 − e^{−t/τ} crosses 0.5 at τ·ln2 ≈ 0.693 ms.
        let t50 = tr.crossing_time(out, 0.5, true, 0.0).unwrap();
        assert!((t50 - 0.693e-3).abs() < 0.02e-3, "t50 = {t50}");
        assert!(tr.crossing_time(out, 0.5, false, 0.0).is_none());
        assert!(tr.crossing_time(out, 2.0, true, 0.0).is_none());
    }

    #[test]
    fn sine_source_propagates() {
        let mut nl = Netlist::new();
        let inp = nl.node("in");
        nl.vsource_wave(
            "V1",
            inp,
            Netlist::GROUND,
            Waveform::Sine {
                offset: 0.0,
                amp: 1.0,
                freq: 1e3,
                delay: 0.0,
            },
        );
        nl.resistor("R1", inp, Netlist::GROUND, 1e3);
        let tr = Transient::run(&nl, &tech(), &TranOptions::new(1e-3, 1e-6)).unwrap();
        let v = tr.voltage(inp);
        // Quarter period = 0.25 ms → peak.
        assert!((v[250] - 1.0).abs() < 1e-3);
        // Full period → back near zero.
        assert!(v[1000].abs() < 1e-2);
    }

    #[test]
    fn invalid_options_rejected() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V1", a, Netlist::GROUND, 1.0);
        nl.resistor("R1", a, Netlist::GROUND, 1.0);
        let bad = TranOptions {
            t_stop: 1.0,
            dt: -1.0,
            method: Integrator::BackwardEuler,
            newton: NewtonOptions::default(),
        };
        assert!(matches!(
            Transient::run(&nl, &tech(), &bad),
            Err(SimError::BadParameter(_))
        ));
    }

    #[test]
    #[should_panic(expected = "invalid transient")]
    fn options_constructor_validates() {
        let _ = TranOptions::new(1.0, 2.0);
    }

    #[test]
    fn delayed_sine_holds_offset_then_oscillates() {
        let mut nl = Netlist::new();
        let inp = nl.node("in");
        nl.vsource_wave(
            "V1",
            inp,
            Netlist::GROUND,
            Waveform::Sine {
                offset: 0.5,
                amp: 0.3,
                freq: 1e3,
                delay: 2e-3,
            },
        );
        nl.resistor("R1", inp, Netlist::GROUND, 1e3);
        let tr = Transient::run(&nl, &tech(), &TranOptions::new(3e-3, 1e-6)).unwrap();
        let v = tr.voltage(inp);
        // Before the delay: pinned at the offset.
        assert!((v[1000] - 0.5).abs() < 1e-9);
        // Quarter period after the delay: at the positive peak.
        assert!((v[2250] - 0.8).abs() < 1e-3);
    }

    #[test]
    fn stscl_gate_transient_through_real_devices() {
        // An STSCL load + tail current step: the output settles with the
        // VSW·CL/ISS time constant — the gate-model time base observed
        // in a raw spice netlist (not through the vtc helper).
        use ulp_device::load::PmosLoad;
        let t = tech();
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let out = nl.node("out");
        nl.vsource("VDD", vdd, Netlist::GROUND, 1.0);
        nl.scl_load("RL", vdd, out, PmosLoad::new(0.2), 1e-9);
        nl.capacitor("CL", out, Netlist::GROUND, 10e-15);
        // Tail current switches on after 1 µs.
        nl.isource_wave(
            "IT",
            out,
            Netlist::GROUND,
            Waveform::Pulse {
                v0: 0.0,
                v1: 1e-9,
                delay: 1e-6,
                rise: 1e-8,
                fall: 1e-8,
                width: 1.0,
                period: 0.0,
            },
        );
        let tr = Transient::run(&nl, &t, &TranOptions::new(2e-5, 2e-8)).unwrap();
        // Starts at VDD (no drop), ends near VDD − VSW.
        let v = tr.voltage(out);
        assert!((v[0] - 1.0).abs() < 1e-3);
        assert!((tr.final_voltage(out) - 0.8).abs() < 0.01);
        // 50 % crossing ≈ delay + ln2·(VSW/ISS)·CL — the STSCL gate
        // delay law. The tanh load's compression toward full swing
        // stretches the tail a little beyond the linearised value.
        let t50 = tr.crossing_time(out, 0.9, false, 0.0).unwrap();
        let expect = 1e-6 + std::f64::consts::LN_2 * (0.2 / 1e-9) * 10e-15;
        assert!(
            (t50 - expect).abs() / expect < 0.25,
            "t50 {t50:e} vs {expect:e}"
        );
    }

    #[test]
    fn traced_run_records_one_event_per_step() {
        use crate::telemetry::{Event, MetricsCollector, TraceMode};
        let mut nl = Netlist::new();
        let inp = nl.node("in");
        let out = nl.node("out");
        nl.vsource("V1", inp, Netlist::GROUND, 1.0);
        nl.resistor("R1", inp, out, 1e3);
        nl.capacitor("C1", out, Netlist::GROUND, 1e-6);
        let mut mc = MetricsCollector::new(TraceMode::Events);
        let tr =
            Transient::run_traced(&nl, &tech(), &TranOptions::new(1e-3, 1e-4), &mut mc).unwrap();
        assert_eq!(tr.time().len(), 11);
        let m = mc.metrics();
        assert_eq!(m.tran_steps, 10);
        // One Newton attempt for the initial OP plus one per step (the
        // linear RC never needs the gmin ladder).
        assert_eq!(m.attempts, 11);
        let steps: Vec<usize> = mc
            .events()
            .iter()
            .filter_map(|e| match &e.event {
                Event::TranStep { step, method, .. } => {
                    assert_eq!(*method, "backward-euler");
                    Some(*step)
                }
                _ => None,
            })
            .collect();
        assert_eq!(steps, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn suggest_dt_resolves_fastest_rc() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.resistor("R1", a, b, 1e3);
        nl.capacitor("C1", b, Netlist::GROUND, 1e-9);
        let dt = suggest_dt(&nl, 1.0, 50);
        assert!((dt - 1e-6 / 50.0).abs() < 1e-12);
        let mut empty = Netlist::new();
        let c = empty.node("c");
        empty.resistor("R1", c, Netlist::GROUND, 1.0);
        assert!((suggest_dt(&empty, 1.0, 50) - 1e-3).abs() < 1e-12);
    }
}
