//! Transient analysis: a fixed-step oracle and an adaptive engine.
//!
//! Each timestep replaces capacitors by their companion models
//! ([`Integrator`]) and runs a full Newton solve seeded from the
//! previous timepoint. Two step-size policies exist:
//!
//! * **Fixed** ([`Transient::run`]): the caller chooses `dt` and the
//!   engine marches it uniformly. Simple, predictable, and the accuracy
//!   *oracle* for the adaptive engine — a tight-tolerance fixed run is
//!   what the adaptive equivalence suite pins against.
//! * **Adaptive** ([`Transient::run_adaptive`]): the local truncation
//!   error of every candidate step is estimated from a
//!   predictor/corrector pair (explicit linear extrapolation vs the
//!   BE/TRAP corrector), steps are accepted or rejected against
//!   `reltol`/`abstol`, and a PI controller
//!   ([`ulp_num::control::StepController`]) sizes the next step within
//!   `[dt_min, dt_max]`. Source breakpoints (pulse corners, PWL knots,
//!   sine onsets) are honored exactly — the engine lands a step on each
//!   discontinuity and restarts with backward Euler. Newton is
//!   warm-started from the extrapolated predictor, and latent nonlinear
//!   devices whose terminal voltages moved less than `bypass_tol` since
//!   the last accepted step are not re-evaluated (their cached stamps
//!   are re-applied — see [`MnaWorkspace::set_bypass_tol`]).
//!
//! [`suggest_dt`] proposes the adaptive engine's `dt_max` hint from the
//! fastest explicit RC in the netlist.

use crate::dcop::{newton_solve_gmin_stepping_into, NewtonOptions};
use crate::error::SimError;
use crate::mna::{capacitor_currents_into, voltage_of, AssembleMode, Integrator, MnaWorkspace};
use crate::netlist::{Element, Netlist, Node, Waveform};
use crate::telemetry::{self, Event, Tracer};
use std::time::Instant;
use ulp_device::Technology;
use ulp_num::control::{weighted_error_norm, StepController};

/// Stable label for a companion-model integrator, used in telemetry.
fn method_name(method: Integrator) -> &'static str {
    match method {
        Integrator::BackwardEuler => "backward-euler",
        Integrator::Trapezoidal => "trapezoidal",
    }
}

/// Transient analysis controls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TranOptions {
    /// Simulation end time, s.
    pub t_stop: f64,
    /// Fixed step size, s.
    pub dt: f64,
    /// Companion-model integrator.
    pub method: Integrator,
    /// Newton controls for each step.
    pub newton: NewtonOptions,
}

impl TranOptions {
    /// Creates options for a `t_stop` run at step `dt`, backward Euler.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < dt <= t_stop`.
    pub fn new(t_stop: f64, dt: f64) -> Self {
        assert!(dt > 0.0 && dt <= t_stop, "invalid transient step/stop");
        TranOptions {
            t_stop,
            dt,
            method: Integrator::BackwardEuler,
            newton: NewtonOptions::default(),
        }
    }

    /// Switches to trapezoidal integration.
    pub fn trapezoidal(mut self) -> Self {
        self.method = Integrator::Trapezoidal;
        self
    }
}

/// Adaptive transient controls.
///
/// Explicit options never consult the environment; callers that want
/// the `ULP_TRAN` knob to participate go through
/// [`AdaptiveOptions::from_env`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveOptions {
    /// Simulation end time, s.
    pub t_stop: f64,
    /// Relative tolerance of the weighted LTE norm.
    pub reltol: f64,
    /// Absolute tolerance floor of the weighted LTE norm, V.
    pub abstol: f64,
    /// Hard lower bound on the step size, s. A step at `dt_min` is
    /// accepted even when its LTE estimate exceeds tolerance (there is
    /// nothing smaller to retry with).
    pub dt_min: f64,
    /// Hard upper bound on the step size, s.
    pub dt_max: f64,
    /// First step size at `t = 0` and after every source breakpoint, s.
    pub dt_init: f64,
    /// Device-latency bypass window, V: nonlinear devices whose
    /// terminal voltages all moved less than this since the last
    /// accepted step are not re-evaluated (cached stamps re-applied).
    /// 0 disables bypass entirely.
    pub bypass_tol: f64,
    /// Newton controls for each step.
    pub newton: NewtonOptions,
}

impl AdaptiveOptions {
    /// Default-tolerance options for a `t_stop` run with steps bounded
    /// by `dt_max`: `reltol` 1e-3, `abstol` 1 µV, `dt_min` 10⁻⁶·dt_max,
    /// `dt_init` 10⁻³·dt_max, bypass window 1 µV.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < dt_max <= t_stop`.
    pub fn new(t_stop: f64, dt_max: f64) -> Self {
        assert!(
            dt_max > 0.0 && dt_max <= t_stop,
            "invalid adaptive step bound/stop"
        );
        AdaptiveOptions {
            t_stop,
            reltol: 1e-3,
            abstol: 1e-6,
            dt_min: dt_max * 1e-6,
            dt_max,
            dt_init: dt_max * 1e-3,
            bypass_tol: 1e-6,
            newton: NewtonOptions::default(),
        }
    }

    /// Overrides both tolerances.
    ///
    /// # Panics
    ///
    /// Panics unless both are strictly positive and finite.
    pub fn tolerances(mut self, reltol: f64, abstol: f64) -> Self {
        assert!(
            reltol > 0.0 && reltol.is_finite() && abstol > 0.0 && abstol.is_finite(),
            "tolerances must be positive"
        );
        self.reltol = reltol;
        self.abstol = abstol;
        self
    }

    /// [`AdaptiveOptions::new`] with the `ULP_TRAN` environment knob
    /// applied on top of the defaults: `reltol=`/`abstol=` clauses
    /// override the tolerances, and the returned [`TranMode`] reports
    /// whether the knob asked for the adaptive or the fixed engine
    /// (defaulting to adaptive when unset).
    ///
    /// # Errors
    ///
    /// [`TranEnvError`] when `ULP_TRAN` is set but malformed.
    pub fn from_env(t_stop: f64, dt_max: f64) -> Result<(Self, TranMode), TranEnvError> {
        let env = tran_from_env()?;
        let mut opts = AdaptiveOptions::new(t_stop, dt_max);
        env.apply(&mut opts);
        Ok((opts, env.mode.unwrap_or(TranMode::Adaptive)))
    }
}

/// Which transient engine the `ULP_TRAN` knob selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TranMode {
    /// LTE-controlled adaptive stepping ([`Transient::run_adaptive`]).
    #[default]
    Adaptive,
    /// The fixed-step march ([`Transient::run`]).
    Fixed,
}

/// Parsed contents of the `ULP_TRAN` environment knob.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TranEnv {
    /// Engine selection (`adaptive`/`fixed`), when given.
    pub mode: Option<TranMode>,
    /// `reltol=` override, when given.
    pub reltol: Option<f64>,
    /// `abstol=` override, when given.
    pub abstol: Option<f64>,
}

impl TranEnv {
    /// Applies the tolerance overrides to adaptive options in place.
    pub fn apply(&self, opts: &mut AdaptiveOptions) {
        if let Some(r) = self.reltol {
            opts.reltol = r;
        }
        if let Some(a) = self.abstol {
            opts.abstol = a;
        }
    }
}

/// A malformed `ULP_TRAN` value, naming the variable and the offending
/// clause — same contract as the `ULP_SOLVER`/`ULP_JOBS`/`ULP_LINT`
/// knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranEnvError {
    /// A clause that is neither a mode keyword nor a known `key=value`.
    UnknownClause {
        /// The clause as written.
        clause: String,
    },
    /// A `reltol=`/`abstol=` clause whose value is not a positive
    /// finite float.
    BadNumber {
        /// The clause as written.
        clause: String,
    },
}

impl std::fmt::Display for TranEnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranEnvError::UnknownClause { clause } => write!(
                f,
                "ULP_TRAN: unknown clause `{clause}` (expected `adaptive`, `fixed`, \
                 `reltol=<v>` or `abstol=<v>`, comma-separated)"
            ),
            TranEnvError::BadNumber { clause } => write!(
                f,
                "ULP_TRAN: bad number in `{clause}` (expected a positive finite float)"
            ),
        }
    }
}

impl std::error::Error for TranEnvError {}

/// Parses an `ULP_TRAN` value: comma-separated clauses drawn from
/// `adaptive`, `fixed`, `reltol=<v>`, `abstol=<v>` (case-insensitive
/// keywords; empty clauses ignored; later clauses win).
///
/// # Errors
///
/// [`TranEnvError`] naming the first offending clause.
pub fn tran_from_str(raw: &str) -> Result<TranEnv, TranEnvError> {
    let mut env = TranEnv::default();
    for clause in raw.split(',').map(str::trim).filter(|c| !c.is_empty()) {
        if clause.eq_ignore_ascii_case("adaptive") {
            env.mode = Some(TranMode::Adaptive);
        } else if clause.eq_ignore_ascii_case("fixed") {
            env.mode = Some(TranMode::Fixed);
        } else if let Some(v) = clause.strip_prefix("reltol=") {
            env.reltol = Some(parse_tol(v, clause)?);
        } else if let Some(v) = clause.strip_prefix("abstol=") {
            env.abstol = Some(parse_tol(v, clause)?);
        } else {
            return Err(TranEnvError::UnknownClause {
                clause: clause.to_string(),
            });
        }
    }
    Ok(env)
}

fn parse_tol(v: &str, clause: &str) -> Result<f64, TranEnvError> {
    match v.trim().parse::<f64>() {
        Ok(x) if x > 0.0 && x.is_finite() => Ok(x),
        _ => Err(TranEnvError::BadNumber {
            clause: clause.to_string(),
        }),
    }
}

/// Reads and parses the `ULP_TRAN` environment knob (unset or empty →
/// all-default [`TranEnv`]).
///
/// # Errors
///
/// [`TranEnvError`] when the variable is set but malformed.
pub fn tran_from_env() -> Result<TranEnv, TranEnvError> {
    match std::env::var("ULP_TRAN") {
        Ok(v) if !v.is_empty() => tran_from_str(&v),
        _ => Ok(TranEnv::default()),
    }
}

/// Times at which a source waveform is non-smooth: the adaptive engine
/// lands a step on each of them exactly and restarts its error history
/// there. The returned list is sorted, deduplicated, restricted to
/// `(0, t_stop)`, and always ends with `t_stop` itself.
fn source_breakpoints(nl: &Netlist, t_stop: f64) -> Vec<f64> {
    let mut bp: Vec<f64> = Vec::new();
    for e in nl.elements() {
        let wave = match e {
            Element::Vsource { wave, .. } | Element::Isource { wave, .. } => wave,
            _ => continue,
        };
        match wave {
            Waveform::Dc(_) => {}
            Waveform::Pulse {
                delay,
                rise,
                fall,
                width,
                period,
                ..
            } => {
                let corners = [0.0, *rise, rise + width, rise + width + fall];
                if *period > 0.0 {
                    // Bounded period count so a degenerate tiny period
                    // cannot explode the list; beyond the cap the grid
                    // is denser than any sane step anyway.
                    let kmax = (((t_stop - delay) / period).ceil().max(0.0) as usize).min(100_000);
                    for k in 0..=kmax {
                        let base = delay + k as f64 * period;
                        for c in corners {
                            bp.push(base + c);
                        }
                    }
                } else {
                    for c in corners {
                        bp.push(delay + c);
                    }
                }
            }
            Waveform::Sine { delay, .. } => bp.push(*delay),
            Waveform::Pwl(points) => bp.extend(points.iter().map(|(t, _)| *t)),
        }
    }
    bp.retain(|t| *t > 0.0 && *t < t_stop);
    bp.push(t_stop);
    bp.sort_by(f64::total_cmp);
    // Merge breakpoints closer than a relative epsilon — stepping onto
    // two distinct but adjacent corners would force a denormal step.
    let eps = t_stop * 1e-12;
    let mut merged: Vec<f64> = Vec::with_capacity(bp.len());
    for t in bp {
        match merged.last() {
            Some(&last) if t - last <= eps => {}
            _ => merged.push(t),
        }
    }
    // The final landing target is t_stop exactly, even if a breakpoint
    // within eps of it was kept instead.
    *merged.last_mut().expect("t_stop always present") = t_stop;
    merged
}

/// The fastest continuous source timescale: a quarter period of the
/// fastest `Sine` source, or infinity when no sine drives the netlist.
///
/// The LTE estimate comes from a two-point linear predictor, so a step
/// spanning a large fraction of a sine period samples the wave at
/// near-aliasing phases and the estimate collapses — the controller
/// would then happily grow `dt` straight through entire periods.
/// Capping the step at a quarter period keeps the predictor inside the
/// regime where its error actually tracks the truncation error. Pulse
/// and Pwl corners need no such cap: they are breakpoints, and the
/// waveforms are linear between them.
fn source_rate_cap(nl: &Netlist) -> f64 {
    let mut cap = f64::INFINITY;
    for e in nl.elements() {
        let wave = match e {
            Element::Vsource { wave, .. } | Element::Isource { wave, .. } => wave,
            _ => continue,
        };
        if let Waveform::Sine { freq, .. } = wave {
            if *freq > 0.0 {
                cap = cap.min(0.25 / freq);
            }
        }
    }
    cap
}

/// A recorded transient waveform set.
///
/// Solutions are stored as one flat row-major buffer (`dim` unknowns
/// per timepoint) so the step loop appends without a per-step heap
/// allocation and waveform extraction walks contiguous memory.
#[derive(Debug, Clone)]
pub struct Transient {
    time: Vec<f64>,
    dim: usize,
    solutions: Vec<f64>,
}

impl Transient {
    /// Runs a transient analysis. The initial condition is the DC
    /// operating point with all sources at their `t = 0` values.
    ///
    /// Runs the electrical rule check ([`crate::erc::gate`]) once up
    /// front (memoised across repeated runs of an unchanged netlist);
    /// use [`Transient::run_unchecked`] to bypass. To vet the chosen
    /// `dt` against the fastest RC in the netlist before committing to
    /// a long run, see [`crate::lint::rule::RC_TIME_STEP`] and
    /// [`suggest_dt`].
    ///
    /// # Errors
    ///
    /// [`SimError::Erc`] when the netlist fails the rule check;
    /// otherwise propagates Newton/solver failures from any timestep
    /// (the error is tagged with the iteration budget, not the time —
    /// inspect [`Transient::run`] inputs when this happens).
    pub fn run(nl: &Netlist, tech: &Technology, opts: &TranOptions) -> Result<Self, SimError> {
        crate::erc::gate(nl)?;
        Self::run_unchecked(nl, tech, opts)
    }

    /// [`Transient::run`] without the electrical rule check — the
    /// escape hatch for deliberately degenerate netlists.
    ///
    /// # Errors
    ///
    /// As for [`Transient::run`], minus the ERC gate.
    pub fn run_unchecked(
        nl: &Netlist,
        tech: &Technology,
        opts: &TranOptions,
    ) -> Result<Self, SimError> {
        telemetry::with_tracer(|tracer| Self::run_traced_unchecked(nl, tech, opts, tracer))
    }

    /// [`Transient::run`] recording telemetry on the given tracer: one
    /// [`Event::NewtonAttempt`] per solve (tagged `"tran"`) and one
    /// [`Event::TranStep`] per accepted timestep.
    ///
    /// # Errors
    ///
    /// As for [`Transient::run`].
    pub fn run_traced(
        nl: &Netlist,
        tech: &Technology,
        opts: &TranOptions,
        tracer: &mut dyn Tracer,
    ) -> Result<Self, SimError> {
        crate::erc::gate(nl)?;
        Self::run_traced_unchecked(nl, tech, opts, tracer)
    }

    /// [`Transient::run_traced`] without the rule check.
    ///
    /// # Errors
    ///
    /// As for [`Transient::run`], minus the ERC gate.
    pub fn run_traced_unchecked(
        nl: &Netlist,
        tech: &Technology,
        opts: &TranOptions,
        tracer: &mut dyn Tracer,
    ) -> Result<Self, SimError> {
        if opts.dt <= 0.0 || opts.t_stop < opts.dt {
            return Err(SimError::BadParameter(format!(
                "dt {} / t_stop {}",
                opts.dt, opts.t_stop
            )));
        }
        // One workspace serves the whole run: the initial operating
        // point and every timestep share the matrix pattern, so the
        // symbolic factorization is paid once, not per step — and the
        // solution/scratch vectors are reused so the sparse-path step
        // loop performs no steady-state heap allocation at all.
        let mut ws = MnaWorkspace::new(nl, opts.newton.solver);
        let mut x = Vec::with_capacity(nl.unknown_count());
        let mut x_new = Vec::with_capacity(nl.unknown_count());
        let x0 = vec![0.0; nl.unknown_count()];
        newton_solve_gmin_stepping_into(
            nl,
            tech,
            AssembleMode::Dc,
            &x0,
            &opts.newton,
            "tran",
            tracer,
            &mut ws,
            &mut x,
            &mut x_new,
        )?;
        let n_caps = nl
            .elements()
            .iter()
            .filter(|e| matches!(e, crate::netlist::Element::Capacitor { .. }))
            .count();
        // Buffers hoisted out of the step loop: the previous solution,
        // and double-buffered capacitor currents. Recorded waveforms
        // append into one preallocated flat buffer.
        let mut cap_i = vec![0.0; n_caps];
        let mut cap_i_next = Vec::with_capacity(n_caps);
        let mut prev = vec![0.0; x.len()];
        let steps = (opts.t_stop / opts.dt).round() as usize;
        let dim = x.len();
        let mut time = Vec::with_capacity(steps + 1);
        let mut solutions = Vec::with_capacity((steps + 1) * dim);
        time.push(0.0);
        solutions.extend_from_slice(&x);
        let enabled = tracer.enabled();
        let method = method_name(opts.method);
        for k in 1..=steps {
            let t0 = enabled.then(Instant::now);
            let t = k as f64 * opts.dt;
            prev.copy_from_slice(&x);
            let mode = AssembleMode::Transient {
                time: t,
                dt: opts.dt,
                prev: &prev,
                cap_currents: &cap_i,
                method: opts.method,
            };
            let r = newton_solve_gmin_stepping_into(
                nl,
                tech,
                mode,
                &prev,
                &opts.newton,
                "tran",
                tracer,
                &mut ws,
                &mut x,
                &mut x_new,
            )?;
            capacitor_currents_into(nl, &x, &prev, &cap_i, opts.dt, opts.method, &mut cap_i_next);
            std::mem::swap(&mut cap_i, &mut cap_i_next);
            if let Some(t0) = t0 {
                tracer.record(&Event::TranStep {
                    step: k,
                    time: t,
                    newton_iterations: r.iterations,
                    method,
                    devices_bypassed: 0,
                    seconds: t0.elapsed().as_secs_f64(),
                });
            }
            time.push(t);
            solutions.extend_from_slice(&x);
        }
        Ok(Transient {
            time,
            dim,
            solutions,
        })
    }

    /// Runs an adaptive transient analysis: LTE-controlled time
    /// stepping with predictor warm-starts, exact source-breakpoint
    /// landing and device-latency bypass (see the module docs).
    ///
    /// The recorded time grid is non-uniform; every accessor
    /// ([`Transient::voltage`], [`Transient::crossing_time`], …) works
    /// unchanged.
    ///
    /// # Errors
    ///
    /// [`SimError::Erc`] when the netlist fails the rule check;
    /// [`SimError::BadParameter`] for inconsistent options; otherwise a
    /// Newton/solver failure that persisted at `dt_min`.
    pub fn run_adaptive(
        nl: &Netlist,
        tech: &Technology,
        opts: &AdaptiveOptions,
    ) -> Result<Self, SimError> {
        crate::erc::gate(nl)?;
        Self::run_adaptive_unchecked(nl, tech, opts)
    }

    /// [`Transient::run_adaptive`] without the electrical rule check.
    ///
    /// # Errors
    ///
    /// As for [`Transient::run_adaptive`], minus the ERC gate.
    pub fn run_adaptive_unchecked(
        nl: &Netlist,
        tech: &Technology,
        opts: &AdaptiveOptions,
    ) -> Result<Self, SimError> {
        telemetry::with_tracer(|tracer| Self::run_adaptive_traced_unchecked(nl, tech, opts, tracer))
    }

    /// [`Transient::run_adaptive`] recording telemetry on the given
    /// tracer: one [`Event::NewtonAttempt`] per solve (tagged
    /// `"tran"`), one [`Event::TranStep`] per *accepted* step (carrying
    /// the step's device-bypass count), one [`Event::TranReject`] per
    /// rejected step, and a closing [`Event::Phase`] named
    /// `tran::adaptive`.
    ///
    /// # Errors
    ///
    /// As for [`Transient::run_adaptive`].
    pub fn run_adaptive_traced(
        nl: &Netlist,
        tech: &Technology,
        opts: &AdaptiveOptions,
        tracer: &mut dyn Tracer,
    ) -> Result<Self, SimError> {
        crate::erc::gate(nl)?;
        Self::run_adaptive_traced_unchecked(nl, tech, opts, tracer)
    }

    /// [`Transient::run_adaptive_traced`] without the rule check.
    ///
    /// # Errors
    ///
    /// As for [`Transient::run_adaptive`], minus the ERC gate.
    pub fn run_adaptive_traced_unchecked(
        nl: &Netlist,
        tech: &Technology,
        opts: &AdaptiveOptions,
        tracer: &mut dyn Tracer,
    ) -> Result<Self, SimError> {
        let sane = opts.dt_min > 0.0
            && opts.dt_min <= opts.dt_max
            && opts.dt_max <= opts.t_stop
            && opts.dt_init > 0.0
            && opts.reltol > 0.0
            && opts.reltol.is_finite()
            && opts.abstol > 0.0
            && opts.abstol.is_finite()
            && opts.bypass_tol >= 0.0
            && opts.bypass_tol.is_finite();
        if !sane {
            return Err(SimError::BadParameter(format!(
                "adaptive transient: dt_min {} / dt_max {} / dt_init {} / t_stop {} / reltol {} / abstol {} / bypass_tol {}",
                opts.dt_min, opts.dt_max, opts.dt_init, opts.t_stop, opts.reltol, opts.abstol, opts.bypass_tol
            )));
        }
        let run_t0 = Instant::now();
        let mut ws = MnaWorkspace::new(nl, opts.newton.solver);
        ws.set_bypass_tol(opts.bypass_tol);
        let mut x = Vec::with_capacity(nl.unknown_count());
        let mut x_new = Vec::with_capacity(nl.unknown_count());
        let x0 = vec![0.0; nl.unknown_count()];
        newton_solve_gmin_stepping_into(
            nl,
            tech,
            AssembleMode::Dc,
            &x0,
            &opts.newton,
            "tran",
            tracer,
            &mut ws,
            &mut x,
            &mut x_new,
        )?;
        // The DC point is the accepted state at t = 0: commit it as the
        // bypass reference so latent devices can skip from step 1.
        ws.commit_bypass();
        let n_caps = nl
            .elements()
            .iter()
            .filter(|e| matches!(e, Element::Capacitor { .. }))
            .count();
        let mut cap_i = vec![0.0; n_caps];
        let mut cap_i_next = Vec::with_capacity(n_caps);
        let dim = x.len();
        let mut time = vec![0.0];
        let mut solutions = Vec::with_capacity(dim * 64);
        solutions.extend_from_slice(&x);
        let breakpoints = source_breakpoints(nl, opts.t_stop);
        let mut bpi = 0usize;
        // Bound the step by the fastest sine period so the predictor
        // cannot alias a continuous source (see `source_rate_cap`).
        let dt_cap = source_rate_cap(nl).clamp(opts.dt_min, opts.dt_max);
        let mut controller = StepController::new(opts.dt_min, dt_cap);
        let mut dt = controller.clamp(opts.dt_init);
        let mut t = 0.0f64;
        // Predictor history: the previous accepted solution and the
        // step that produced the current one. `None` right after t = 0
        // and after every breakpoint (the trajectory restarts there).
        let mut x_prev: Option<(Vec<f64>, f64)> = None;
        let mut steps_since_reset = 0usize;
        let mut accepted = 0usize;
        let mut bypassed_mark = ws.devices_bypassed();
        // Scratch buffers reused across the whole run.
        let mut prev = vec![0.0; dim];
        let mut x_pred = vec![0.0; dim];
        let mut x_sol = Vec::with_capacity(dim);
        let enabled = tracer.enabled();
        while bpi < breakpoints.len() {
            let target = breakpoints[bpi];
            let remaining = target - t;
            // A history-less restart step has no predictor to estimate
            // LTE against and is accepted unconditionally, so it must
            // not span a scale the controller never vetted: take it at
            // a tenth of the proposal (the 2.5x growth on accept wins
            // the tenth back within two steps).
            let dt_prop = if x_prev.is_none() {
                controller.clamp(dt / 10.0)
            } else {
                dt
            };
            // Land exactly on the breakpoint when the proposed step
            // reaches it (or would leave an un-steppable sliver).
            let (dt_step, landing) = if dt_prop >= remaining - opts.dt_min {
                (remaining, true)
            } else {
                (dt_prop, false)
            };
            // BE until two accepted steps seed the error history, then
            // TRAP away from discontinuities (A-stable order 2).
            let method = if steps_since_reset < 2 {
                Integrator::BackwardEuler
            } else {
                Integrator::Trapezoidal
            };
            let order = match method {
                Integrator::BackwardEuler => 1,
                Integrator::Trapezoidal => 2,
            };
            // Explicit predictor: linear extrapolation through the two
            // most recent accepted points (constant when history is
            // empty). Doubles as the Newton warm start.
            match &x_prev {
                Some((xp, h_prev)) => {
                    let a = dt_step / h_prev;
                    for i in 0..dim {
                        x_pred[i] = x[i] + (x[i] - xp[i]) * a;
                    }
                }
                None => x_pred.copy_from_slice(&x),
            }
            prev.copy_from_slice(&x);
            let t_end = t + dt_step;
            let mode = AssembleMode::Transient {
                time: t_end,
                dt: dt_step,
                prev: &prev,
                cap_currents: &cap_i,
                method,
            };
            let t0 = enabled.then(Instant::now);
            // At the floor there is nothing smaller to retry with: a
            // landing step keeps `dt_step = remaining` however far the
            // controller shrinks, so the controller's own proposal is
            // what decides the floor there.
            let floor = opts.dt_min * (1.0 + 1e-9);
            let at_floor = dt_step <= floor || dt <= floor;
            let r = newton_solve_gmin_stepping_into(
                nl,
                tech,
                mode,
                &x_pred,
                &opts.newton,
                "tran",
                tracer,
                &mut ws,
                &mut x_sol,
                &mut x_new,
            );
            let info = match r {
                Ok(info) => info,
                Err(e) => {
                    // Newton refused the step: retry smaller, unless
                    // the floor has been reached.
                    if at_floor {
                        return Err(e);
                    }
                    if let Some(t0) = t0 {
                        tracer.record(&Event::TranReject {
                            step: accepted + 1,
                            time: t,
                            dt: dt_step,
                            error: 0.0,
                            newton_failed: true,
                            seconds: t0.elapsed().as_secs_f64(),
                        });
                    }
                    dt = controller.reject(0.0, order, dt_step);
                    continue;
                }
            };
            // Weighted LTE estimate from the predictor/corrector pair.
            // The first step after a reset has no predictor history; it
            // is accepted unconditionally (dt_init bounds its size).
            let err = match &x_prev {
                Some(_) => weighted_error_norm(&x_sol, &x_pred, &x, opts.reltol, opts.abstol),
                None => 0.0,
            };
            let forced = x_prev.is_none();
            if !forced && err > 1.0 && !at_floor {
                if let Some(t0) = t0 {
                    tracer.record(&Event::TranReject {
                        step: accepted + 1,
                        time: t,
                        dt: dt_step,
                        error: err,
                        newton_failed: false,
                        seconds: t0.elapsed().as_secs_f64(),
                    });
                }
                dt = controller.reject(err, order, dt_step);
                continue;
            }
            // Accepted: advance state, commit the bypass reference,
            // refresh capacitor currents for the next companion model.
            capacitor_currents_into(nl, &x_sol, &prev, &cap_i, dt_step, method, &mut cap_i_next);
            std::mem::swap(&mut cap_i, &mut cap_i_next);
            ws.commit_bypass();
            accepted += 1;
            t = if landing { target } else { t_end };
            // Recycle the old previous-solution buffer to store the
            // outgoing current solution without reallocating.
            let recycled = match x_prev.take() {
                Some((mut buf, _)) => {
                    buf.copy_from_slice(&x);
                    buf
                }
                None => x.clone(),
            };
            x_prev = Some((recycled, dt_step));
            std::mem::swap(&mut x, &mut x_sol);
            time.push(t);
            solutions.extend_from_slice(&x);
            if let Some(t0) = t0 {
                let total = ws.devices_bypassed();
                tracer.record(&Event::TranStep {
                    step: accepted,
                    time: t,
                    newton_iterations: info.iterations,
                    method: method_name(method),
                    devices_bypassed: (total - bypassed_mark) as usize,
                    seconds: t0.elapsed().as_secs_f64(),
                });
                bypassed_mark = total;
            }
            steps_since_reset += 1;
            if !forced {
                dt = controller.accept(err, order, dt_step);
            }
            if landing {
                bpi += 1;
                // The trajectory restarts at a discontinuity: drop the
                // error history, fall back to BE and the initial step.
                x_prev = None;
                steps_since_reset = 0;
                controller.reset();
                dt = controller.clamp(opts.dt_init);
            }
        }
        if enabled {
            tracer.record(&Event::Phase {
                name: "tran::adaptive".to_string(),
                seconds: run_t0.elapsed().as_secs_f64(),
            });
        }
        Ok(Transient {
            time,
            dim,
            solutions,
        })
    }

    /// The timepoints, s.
    pub fn time(&self) -> &[f64] {
        &self.time
    }

    /// Number of recorded timepoints (including `t = 0`).
    pub fn len(&self) -> usize {
        self.time.len()
    }

    /// True when nothing was recorded (never the case for a completed
    /// run, which always records the initial condition).
    pub fn is_empty(&self) -> bool {
        self.time.is_empty()
    }

    /// Full solution vector at timepoint `i` — node voltages then
    /// branch currents, in MNA unknown order.
    pub fn solution(&self, i: usize) -> &[f64] {
        &self.solutions[i * self.dim..(i + 1) * self.dim]
    }

    /// Waveform of one node, V.
    pub fn voltage(&self, node: Node) -> Vec<f64> {
        self.solutions
            .chunks_exact(self.dim)
            .map(|x| voltage_of(x, node))
            .collect()
    }

    /// Node voltage at the final timepoint, V.
    pub fn final_voltage(&self, node: Node) -> f64 {
        let last = self.solutions.len() - self.dim;
        voltage_of(&self.solutions[last..], node)
    }

    /// First time at which `node` crosses `level` in the given direction
    /// (linear interpolation between timepoints), ignoring everything
    /// before `after`.
    pub fn crossing_time(&self, node: Node, level: f64, rising: bool, after: f64) -> Option<f64> {
        let v = self.voltage(node);
        for i in 1..v.len() {
            if self.time[i] <= after {
                continue;
            }
            let (v0, v1) = (v[i - 1], v[i]);
            let crossed = if rising {
                v0 < level && v1 >= level
            } else {
                v0 > level && v1 <= level
            };
            if crossed {
                let frac = (level - v0) / (v1 - v0);
                return Some(self.time[i - 1] + frac * (self.time[i] - self.time[i - 1]));
            }
        }
        None
    }
}

/// Suggests the adaptive engine's `dt_max` / initial-step hint: the
/// fastest explicit R·C time constant in the netlist (capped at
/// `t_stop/10`), the natural upper bound on a step that still resolves
/// the circuit's dynamics. Falls back to `t_stop/50` when the netlist
/// has no R–C pair. Pass the result as [`AdaptiveOptions::new`]'s
/// `dt_max`; the LTE controller takes care of the rest.
///
/// The `points_per_tau` parameter is **deprecated and ignored**: the
/// fixed `τ/points_per_tau` march it used to size is obsolete now that
/// [`Transient::run_adaptive`] controls local truncation error
/// directly. Fixed-step oracle runs that still want a uniform grid
/// should divide the returned hint themselves.
pub fn suggest_dt(nl: &Netlist, t_stop: f64, _points_per_tau: usize) -> f64 {
    let mut r_min = f64::INFINITY;
    let mut c_min = f64::INFINITY;
    for e in nl.elements() {
        match e {
            Element::Resistor { ohms, .. } => r_min = r_min.min(*ohms),
            Element::Capacitor { farads, .. } => c_min = c_min.min(*farads),
            _ => {}
        }
    }
    if r_min.is_finite() && c_min.is_finite() {
        (r_min * c_min).min(t_stop / 10.0)
    } else {
        t_stop / 50.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Waveform;

    fn tech() -> Technology {
        Technology::default()
    }

    #[test]
    fn rc_step_response_backward_euler() {
        // 1 kΩ · 1 µF = 1 ms time constant driven by a step.
        let mut nl = Netlist::new();
        let inp = nl.node("in");
        let out = nl.node("out");
        nl.vsource_wave(
            "V1",
            inp,
            Netlist::GROUND,
            Waveform::Pulse {
                v0: 0.0,
                v1: 1.0,
                delay: 0.0,
                rise: 1e-6,
                fall: 1e-6,
                width: 1.0,
                period: 0.0,
            },
        );
        nl.resistor("R1", inp, out, 1e3);
        nl.capacitor("C1", out, Netlist::GROUND, 1e-6);
        let tr = Transient::run(&nl, &tech(), &TranOptions::new(5e-3, 5e-6)).unwrap();
        // After 1 τ: 63.2 %; after 5 τ: ~99.3 %.
        let v_tau = tr.voltage(out)[(1e-3 / 5e-6) as usize];
        assert!((v_tau - 0.632).abs() < 0.01, "v(τ) = {v_tau}");
        assert!((tr.final_voltage(out) - 1.0).abs() < 0.01);
    }

    #[test]
    fn rc_trapezoidal_is_more_accurate() {
        let build = || {
            let mut nl = Netlist::new();
            let inp = nl.node("in");
            let out = nl.node("out");
            nl.vsource_wave(
                "V1",
                inp,
                Netlist::GROUND,
                Waveform::Pwl(vec![(0.0, 0.0), (1e-9, 1.0)]),
            );
            nl.resistor("R1", inp, out, 1e3);
            nl.capacitor("C1", out, Netlist::GROUND, 1e-6);
            (nl, out)
        };
        // Deliberately coarse step: τ/10.
        let (nl, out) = build();
        let be = Transient::run(&nl, &tech(), &TranOptions::new(2e-3, 1e-4)).unwrap();
        let tr = Transient::run(&nl, &tech(), &TranOptions::new(2e-3, 1e-4).trapezoidal()).unwrap();
        let exact = 1.0 - (-2.0f64).exp();
        let err_be = (be.final_voltage(out) - exact).abs();
        let err_tr = (tr.final_voltage(out) - exact).abs();
        assert!(err_tr < err_be, "trap {err_tr} vs BE {err_be}");
    }

    #[test]
    fn crossing_time_interpolates() {
        let mut nl = Netlist::new();
        let inp = nl.node("in");
        let out = nl.node("out");
        nl.vsource_wave(
            "V1",
            inp,
            Netlist::GROUND,
            Waveform::Pwl(vec![(0.0, 0.0), (1e-9, 1.0)]),
        );
        nl.resistor("R1", inp, out, 1e3);
        nl.capacitor("C1", out, Netlist::GROUND, 1e-6);
        let tr = Transient::run(&nl, &tech(), &TranOptions::new(5e-3, 1e-5)).unwrap();
        // v(t) = 1 − e^{−t/τ} crosses 0.5 at τ·ln2 ≈ 0.693 ms.
        let t50 = tr.crossing_time(out, 0.5, true, 0.0).unwrap();
        assert!((t50 - 0.693e-3).abs() < 0.02e-3, "t50 = {t50}");
        assert!(tr.crossing_time(out, 0.5, false, 0.0).is_none());
        assert!(tr.crossing_time(out, 2.0, true, 0.0).is_none());
    }

    #[test]
    fn sine_source_propagates() {
        let mut nl = Netlist::new();
        let inp = nl.node("in");
        nl.vsource_wave(
            "V1",
            inp,
            Netlist::GROUND,
            Waveform::Sine {
                offset: 0.0,
                amp: 1.0,
                freq: 1e3,
                delay: 0.0,
            },
        );
        nl.resistor("R1", inp, Netlist::GROUND, 1e3);
        let tr = Transient::run(&nl, &tech(), &TranOptions::new(1e-3, 1e-6)).unwrap();
        let v = tr.voltage(inp);
        // Quarter period = 0.25 ms → peak.
        assert!((v[250] - 1.0).abs() < 1e-3);
        // Full period → back near zero.
        assert!(v[1000].abs() < 1e-2);
    }

    #[test]
    fn invalid_options_rejected() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V1", a, Netlist::GROUND, 1.0);
        nl.resistor("R1", a, Netlist::GROUND, 1.0);
        let bad = TranOptions {
            t_stop: 1.0,
            dt: -1.0,
            method: Integrator::BackwardEuler,
            newton: NewtonOptions::default(),
        };
        assert!(matches!(
            Transient::run(&nl, &tech(), &bad),
            Err(SimError::BadParameter(_))
        ));
    }

    #[test]
    #[should_panic(expected = "invalid transient")]
    fn options_constructor_validates() {
        let _ = TranOptions::new(1.0, 2.0);
    }

    #[test]
    fn delayed_sine_holds_offset_then_oscillates() {
        let mut nl = Netlist::new();
        let inp = nl.node("in");
        nl.vsource_wave(
            "V1",
            inp,
            Netlist::GROUND,
            Waveform::Sine {
                offset: 0.5,
                amp: 0.3,
                freq: 1e3,
                delay: 2e-3,
            },
        );
        nl.resistor("R1", inp, Netlist::GROUND, 1e3);
        let tr = Transient::run(&nl, &tech(), &TranOptions::new(3e-3, 1e-6)).unwrap();
        let v = tr.voltage(inp);
        // Before the delay: pinned at the offset.
        assert!((v[1000] - 0.5).abs() < 1e-9);
        // Quarter period after the delay: at the positive peak.
        assert!((v[2250] - 0.8).abs() < 1e-3);
    }

    #[test]
    fn stscl_gate_transient_through_real_devices() {
        // An STSCL load + tail current step: the output settles with the
        // VSW·CL/ISS time constant — the gate-model time base observed
        // in a raw spice netlist (not through the vtc helper).
        use ulp_device::load::PmosLoad;
        let t = tech();
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let out = nl.node("out");
        nl.vsource("VDD", vdd, Netlist::GROUND, 1.0);
        nl.scl_load("RL", vdd, out, PmosLoad::new(0.2), 1e-9);
        nl.capacitor("CL", out, Netlist::GROUND, 10e-15);
        // Tail current switches on after 1 µs.
        nl.isource_wave(
            "IT",
            out,
            Netlist::GROUND,
            Waveform::Pulse {
                v0: 0.0,
                v1: 1e-9,
                delay: 1e-6,
                rise: 1e-8,
                fall: 1e-8,
                width: 1.0,
                period: 0.0,
            },
        );
        let tr = Transient::run(&nl, &t, &TranOptions::new(2e-5, 2e-8)).unwrap();
        // Starts at VDD (no drop), ends near VDD − VSW.
        let v = tr.voltage(out);
        assert!((v[0] - 1.0).abs() < 1e-3);
        assert!((tr.final_voltage(out) - 0.8).abs() < 0.01);
        // 50 % crossing ≈ delay + ln2·(VSW/ISS)·CL — the STSCL gate
        // delay law. The tanh load's compression toward full swing
        // stretches the tail a little beyond the linearised value.
        let t50 = tr.crossing_time(out, 0.9, false, 0.0).unwrap();
        let expect = 1e-6 + std::f64::consts::LN_2 * (0.2 / 1e-9) * 10e-15;
        assert!(
            (t50 - expect).abs() / expect < 0.25,
            "t50 {t50:e} vs {expect:e}"
        );
    }

    #[test]
    fn traced_run_records_one_event_per_step() {
        use crate::telemetry::{Event, MetricsCollector, TraceMode};
        let mut nl = Netlist::new();
        let inp = nl.node("in");
        let out = nl.node("out");
        nl.vsource("V1", inp, Netlist::GROUND, 1.0);
        nl.resistor("R1", inp, out, 1e3);
        nl.capacitor("C1", out, Netlist::GROUND, 1e-6);
        let mut mc = MetricsCollector::new(TraceMode::Events);
        let tr =
            Transient::run_traced(&nl, &tech(), &TranOptions::new(1e-3, 1e-4), &mut mc).unwrap();
        assert_eq!(tr.time().len(), 11);
        let m = mc.metrics();
        assert_eq!(m.tran_steps, 10);
        // One Newton attempt for the initial OP plus one per step (the
        // linear RC never needs the gmin ladder).
        assert_eq!(m.attempts, 11);
        let steps: Vec<usize> = mc
            .events()
            .iter()
            .filter_map(|e| match &e.event {
                Event::TranStep { step, method, .. } => {
                    assert_eq!(*method, "backward-euler");
                    Some(*step)
                }
                _ => None,
            })
            .collect();
        assert_eq!(steps, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn suggest_dt_returns_the_adaptive_step_hint() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.resistor("R1", a, b, 1e3);
        nl.capacitor("C1", b, Netlist::GROUND, 1e-9);
        // The hint is the fastest time constant itself, not a march
        // through it — and the deprecated points-per-tau is ignored.
        let dt = suggest_dt(&nl, 1.0, 50);
        assert!((dt - 1e-6).abs() < 1e-18, "{dt}");
        assert_eq!(dt, suggest_dt(&nl, 1.0, 7));
        // Slow circuits are capped by the run length.
        let mut slow = Netlist::new();
        let s = slow.node("s");
        slow.resistor("R1", s, Netlist::GROUND, 1e9);
        slow.capacitor("C1", s, Netlist::GROUND, 1.0);
        assert!((suggest_dt(&slow, 1.0, 50) - 0.1).abs() < 1e-12);
        // No R–C pair: a conservative fraction of the run.
        let mut empty = Netlist::new();
        let c = empty.node("c");
        empty.resistor("R1", c, Netlist::GROUND, 1.0);
        assert!((suggest_dt(&empty, 1.0, 50) - 0.02).abs() < 1e-12);
    }

    /// The RC step netlist used by the adaptive tests: 1 kΩ · 1 µF
    /// driven by a pulse with a 1 µs rise starting at t = 0.
    fn rc_pulse() -> (Netlist, Node) {
        let mut nl = Netlist::new();
        let inp = nl.node("in");
        let out = nl.node("out");
        nl.vsource_wave(
            "V1",
            inp,
            Netlist::GROUND,
            Waveform::Pulse {
                v0: 0.0,
                v1: 1.0,
                delay: 0.0,
                rise: 1e-6,
                fall: 1e-6,
                width: 1.0,
                period: 0.0,
            },
        );
        nl.resistor("R1", inp, out, 1e3);
        nl.capacitor("C1", out, Netlist::GROUND, 1e-6);
        (nl, out)
    }

    /// Linear interpolation of `tr`'s voltage at `node` onto time `t`.
    fn sample(tr: &Transient, node: Node, t: f64) -> f64 {
        let times = tr.time();
        let v = tr.voltage(node);
        let i = times.partition_point(|&x| x < t).clamp(1, times.len() - 1);
        let (t0, t1) = (times[i - 1], times[i]);
        let frac = if t1 > t0 { (t - t0) / (t1 - t0) } else { 0.0 };
        v[i - 1] + (v[i] - v[i - 1]) * frac.clamp(0.0, 1.0)
    }

    #[test]
    fn adaptive_rc_matches_the_fixed_oracle_with_fewer_steps() {
        let (nl, out) = rc_pulse();
        let t = tech();
        // Tight-tolerance fixed-step TRAP reference.
        let oracle =
            Transient::run(&nl, &t, &TranOptions::new(5e-3, 5e-3 / 2000.0).trapezoidal()).unwrap();
        let opts = AdaptiveOptions::new(5e-3, suggest_dt(&nl, 5e-3, 0));
        let adaptive = Transient::run_adaptive(&nl, &t, &opts).unwrap();
        let mut worst = 0.0f64;
        for (i, &ti) in oracle.time().iter().enumerate() {
            let vo = oracle.voltage(out)[i];
            let va = sample(&adaptive, out, ti);
            worst = worst.max((va - vo).abs());
        }
        assert!(worst < 2e-3, "adaptive vs oracle worst error {worst}");
        assert!(
            adaptive.len() < oracle.len() / 4,
            "adaptive took {} points vs oracle {}",
            adaptive.len(),
            oracle.len()
        );
    }

    #[test]
    fn adaptive_lands_exactly_on_source_breakpoints() {
        let (nl, _) = rc_pulse();
        let opts = AdaptiveOptions::new(5e-3, 5e-4);
        let adaptive = Transient::run_adaptive(&nl, &tech(), &opts).unwrap();
        // Pulse corners at rise (1 µs) and the end time must appear as
        // exact timepoints, not merely be straddled.
        for bp in [1e-6, 5e-3] {
            assert!(
                adaptive.time().contains(&bp),
                "missing exact breakpoint {bp:e} in {:?}",
                &adaptive.time()[..8.min(adaptive.len())]
            );
        }
        assert_eq!(*adaptive.time().last().unwrap(), 5e-3);
    }

    #[test]
    fn adaptive_records_rejections_and_bypasses() {
        use crate::telemetry::{MetricsCollector, TraceMode};
        // A sine-driven RC with a deliberately huge initial/maximum
        // step: the controller must reject its way down to something
        // the tolerance allows.
        let mut nl = Netlist::new();
        let inp = nl.node("in");
        let out = nl.node("out");
        nl.vsource_wave(
            "V1",
            inp,
            Netlist::GROUND,
            Waveform::Sine {
                offset: 0.5,
                amp: 0.4,
                freq: 2.3e3,
                delay: 0.0,
            },
        );
        nl.resistor("R1", inp, out, 1e3);
        nl.capacitor("C1", out, Netlist::GROUND, 1e-7);
        let mut opts = AdaptiveOptions::new(2e-3, 1e-3);
        opts.dt_init = 1e-3;
        let mut mc = MetricsCollector::new(TraceMode::Events);
        Transient::run_adaptive_traced(&nl, &tech(), &opts, &mut mc).unwrap();
        let m = mc.metrics();
        assert!(m.tran_rejected > 0, "no rejections recorded");
        assert!(m.lte_exceeded > 0, "no LTE overruns recorded");
        assert!(m.tran_steps > 0);
        // The closing phase event names the adaptive engine.
        assert!(m
            .phases()
            .iter()
            .any(|(name, _)| name == "tran::adaptive"));
    }

    #[test]
    fn adaptive_bypasses_latent_devices() {
        use crate::telemetry::{MetricsCollector, TraceMode};
        use ulp_device::load::PmosLoad;
        // The STSCL load sits latent while the tail current is off:
        // its terminal voltages freeze and the bypass cache engages.
        let t = tech();
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let out = nl.node("out");
        nl.vsource("VDD", vdd, Netlist::GROUND, 1.0);
        nl.scl_load("RL", vdd, out, PmosLoad::new(0.2), 1e-9);
        nl.capacitor("CL", out, Netlist::GROUND, 10e-15);
        nl.isource_wave(
            "IT",
            out,
            Netlist::GROUND,
            Waveform::Pulse {
                v0: 0.0,
                v1: 1e-9,
                delay: 1e-6,
                rise: 1e-8,
                fall: 1e-8,
                width: 1.0,
                period: 0.0,
            },
        );
        // The bypass cache lives in the sparse workspace; Auto would
        // pick the dense backend for a netlist this small.
        let mut opts = AdaptiveOptions::new(2e-5, 2e-6);
        opts.newton.solver = crate::mna::SolverKind::Sparse;
        let mut mc = MetricsCollector::new(TraceMode::Events);
        let tr = Transient::run_adaptive_traced(&nl, &t, &opts, &mut mc).unwrap();
        assert!(
            mc.metrics().devices_bypassed > 0,
            "latent STSCL load never bypassed"
        );
        // And the waveform still settles where the fixed path puts it.
        assert!((tr.final_voltage(out) - 0.8).abs() < 0.01);
    }

    #[test]
    fn adaptive_with_the_suggested_hint_meets_the_bound_on_an_rc_ladder() {
        // Three-section RC ladder: distinct time constants per node.
        let t = tech();
        let mut nl = Netlist::new();
        let inp = nl.node("in");
        let n1 = nl.node("n1");
        let n2 = nl.node("n2");
        let n3 = nl.node("n3");
        nl.vsource_wave(
            "V1",
            inp,
            Netlist::GROUND,
            Waveform::Pwl(vec![(0.0, 0.0), (1e-6, 1.0)]),
        );
        nl.resistor("R1", inp, n1, 1e3);
        nl.capacitor("C1", n1, Netlist::GROUND, 1e-7);
        nl.resistor("R2", n1, n2, 2e3);
        nl.capacitor("C2", n2, Netlist::GROUND, 2e-7);
        nl.resistor("R3", n2, n3, 5e3);
        nl.capacitor("C3", n3, Netlist::GROUND, 1e-7);
        let t_stop = 5e-3;
        let hint = suggest_dt(&nl, t_stop, 0);
        let opts = AdaptiveOptions::new(t_stop, hint).tolerances(1e-4, 1e-7);
        let adaptive = Transient::run_adaptive(&nl, &t, &opts).unwrap();
        // The oracle grid must resolve the Pwl knot at 1e-6 (t_stop/5000
        // makes it the first grid point) — a fixed march that straddles
        // the corner carries an O(dt) error of its own there, larger than
        // the bound this test pins on the adaptive run.
        let oracle =
            Transient::run(&nl, &t, &TranOptions::new(t_stop, t_stop / 5000.0).trapezoidal())
                .unwrap();
        for node in [n1, n2, n3] {
            let mut worst = 0.0f64;
            let mut worst_t = 0.0f64;
            for (i, &ti) in oracle.time().iter().enumerate() {
                let e = (sample(&adaptive, node, ti) - oracle.voltage(node)[i]).abs();
                if e > worst {
                    worst = e;
                    worst_t = ti;
                }
            }
            assert!(worst < 2e-3, "node {node} worst error {worst} at t {worst_t:e}");
        }
    }

    #[test]
    fn adaptive_rejects_inconsistent_options() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V1", a, Netlist::GROUND, 1.0);
        nl.resistor("R1", a, Netlist::GROUND, 1.0);
        let mut bad = AdaptiveOptions::new(1.0, 0.1);
        bad.dt_min = 0.2; // dt_min > dt_max
        assert!(matches!(
            Transient::run_adaptive(&nl, &tech(), &bad),
            Err(SimError::BadParameter(_))
        ));
        let mut neg = AdaptiveOptions::new(1.0, 0.1);
        neg.bypass_tol = -1.0;
        assert!(matches!(
            Transient::run_adaptive(&nl, &tech(), &neg),
            Err(SimError::BadParameter(_))
        ));
    }

    #[test]
    #[should_panic(expected = "invalid adaptive step bound/stop")]
    fn adaptive_options_constructor_validates() {
        let _ = AdaptiveOptions::new(1.0, 2.0);
    }

    #[test]
    fn ulp_tran_parses_the_documented_clauses() {
        assert_eq!(tran_from_str("").unwrap(), TranEnv::default());
        let e = tran_from_str("adaptive,reltol=1e-4,abstol=1e-8").unwrap();
        assert_eq!(e.mode, Some(TranMode::Adaptive));
        assert_eq!(e.reltol, Some(1e-4));
        assert_eq!(e.abstol, Some(1e-8));
        assert_eq!(
            tran_from_str(" FIXED ").unwrap().mode,
            Some(TranMode::Fixed)
        );
        // Later clauses win.
        assert_eq!(
            tran_from_str("fixed,adaptive").unwrap().mode,
            Some(TranMode::Adaptive)
        );
        // Overrides apply on top of explicit defaults.
        let mut opts = AdaptiveOptions::new(1.0, 0.1);
        e.apply(&mut opts);
        assert_eq!((opts.reltol, opts.abstol), (1e-4, 1e-8));
    }

    #[test]
    fn ulp_tran_errors_name_the_variable_and_clause() {
        let err = tran_from_str("adaptive,verbose").unwrap_err();
        assert_eq!(
            err.to_string(),
            "ULP_TRAN: unknown clause `verbose` (expected `adaptive`, `fixed`, \
             `reltol=<v>` or `abstol=<v>`, comma-separated)"
        );
        let err = tran_from_str("reltol=-3").unwrap_err();
        assert_eq!(
            err.to_string(),
            "ULP_TRAN: bad number in `reltol=-3` (expected a positive finite float)"
        );
        assert!(matches!(
            tran_from_str("abstol=ten"),
            Err(TranEnvError::BadNumber { .. })
        ));
    }
}
