//! Modified nodal analysis: system assembly and element stamping.
//!
//! The unknown vector is `x = [v₁ … v_N, i_b1 … i_bM]`: the voltages of
//! all non-ground nodes followed by one branch current per
//! voltage-defined element (independent voltage sources and VCVS), in
//! element order.
//!
//! Nonlinear elements (diode, MOS, STSCL load) are stamped as their
//! Newton companion models linearised about the current iterate, so the
//! assembled system reads `A(x_k)·x_{k+1} = b(x_k)` and a fixed point is
//! an exact solution of the nonlinear KCL equations.

use crate::netlist::{Element, Netlist, Node};
use ulp_num::Matrix;
use ulp_device::Technology;

/// Integration method for transient companion models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrator {
    /// Backward Euler: robust, first order, slightly lossy.
    #[default]
    BackwardEuler,
    /// Trapezoidal: second order, energy-preserving.
    Trapezoidal,
}

/// What the assembler is being asked to build.
#[derive(Debug, Clone, Copy)]
pub enum AssembleMode<'a> {
    /// DC: capacitors open, sources at their `t = 0` values.
    Dc,
    /// One transient step ending at `time`, of length `dt`, integrating
    /// from the previous solution `prev` (and, for trapezoidal, the
    /// previous per-capacitor currents `cap_currents`).
    Transient {
        /// End time of the step, s.
        time: f64,
        /// Step length, s.
        dt: f64,
        /// Solution vector at the previous timepoint.
        prev: &'a [f64],
        /// Capacitor currents at the previous timepoint (same order as
        /// capacitors appear in the netlist); required for
        /// [`Integrator::Trapezoidal`].
        cap_currents: &'a [f64],
        /// Companion-model integrator.
        method: Integrator,
    },
}

/// Assembled real MNA system `A·x = b`.
#[derive(Debug, Clone)]
pub struct MnaSystem {
    /// System matrix.
    pub matrix: Matrix,
    /// Right-hand side.
    pub rhs: Vec<f64>,
}

impl MnaSystem {
    /// ∞-norm of `A·x − b`.
    ///
    /// Because nonlinear elements are stamped as companion models
    /// linearised about `x`, evaluating the assembled system at the
    /// *same* `x` recovers the true nonlinear residual of the MNA
    /// equations: the net KCL current error at every node (and the
    /// voltage-law error of every branch equation), in amps.
    pub fn residual_inf(&self, x: &[f64]) -> f64 {
        self.matrix
            .mul_vec(x)
            .iter()
            .zip(&self.rhs)
            .map(|(ax, b)| (ax - b).abs())
            .fold(0.0, f64::max)
    }
}

/// Voltage of `node` in solution vector `x` (ground = 0).
pub fn voltage_of(x: &[f64], node: Node) -> f64 {
    if node.is_ground() {
        0.0
    } else {
        x[node.index() - 1]
    }
}

/// Row/column index of a node in the MNA system (`None` for ground).
fn idx(node: Node) -> Option<usize> {
    if node.is_ground() {
        None
    } else {
        Some(node.index() - 1)
    }
}

struct Stamper<'m> {
    a: &'m mut Matrix,
    b: &'m mut Vec<f64>,
}

impl Stamper<'_> {
    fn conductance(&mut self, p: Node, n: Node, g: f64) {
        if let Some(i) = idx(p) {
            self.a[(i, i)] += g;
            if let Some(j) = idx(n) {
                self.a[(i, j)] -= g;
            }
        }
        if let Some(j) = idx(n) {
            self.a[(j, j)] += g;
            if let Some(i) = idx(p) {
                self.a[(j, i)] -= g;
            }
        }
    }

    /// Transconductance: current `gm·(V(cp) − V(cn))` leaves `p`, enters
    /// `n`.
    fn transconductance(&mut self, p: Node, n: Node, cp: Node, cn: Node, gm: f64) {
        for (out, sign) in [(p, 1.0), (n, -1.0)] {
            if let Some(r) = idx(out) {
                if let Some(c) = idx(cp) {
                    self.a[(r, c)] += sign * gm;
                }
                if let Some(c) = idx(cn) {
                    self.a[(r, c)] -= sign * gm;
                }
            }
        }
    }

    /// Constant current `i` leaving node `p` and entering node `n`.
    fn current(&mut self, p: Node, n: Node, i: f64) {
        if let Some(r) = idx(p) {
            self.b[r] -= i;
        }
        if let Some(r) = idx(n) {
            self.b[r] += i;
        }
    }
}

/// Assembles the real MNA system for the given candidate solution `x`.
///
/// `gmin` siemens are added from every non-ground node to ground
/// (convergence aid, SPICE-standard).
///
/// # Panics
///
/// Panics if `x.len()` differs from [`Netlist::unknown_count`], or if a
/// transient mode is supplied with mismatched state-vector lengths.
pub fn assemble(
    nl: &Netlist,
    tech: &Technology,
    x: &[f64],
    mode: AssembleMode<'_>,
    gmin: f64,
) -> MnaSystem {
    let nn = nl.node_count() - 1;
    let dim = nl.unknown_count();
    assert_eq!(x.len(), dim, "candidate solution has wrong dimension");
    let mut matrix = Matrix::zeros(dim, dim);
    let mut rhs = vec![0.0; dim];
    let mut st = Stamper {
        a: &mut matrix,
        b: &mut rhs,
    };

    // gmin from every node to ground.
    for i in 0..nn {
        st.a[(i, i)] += gmin;
    }

    let mut branch = nn; // next branch row
    let mut cap_index = 0usize;
    let time = match mode {
        AssembleMode::Dc => 0.0,
        AssembleMode::Transient { time, .. } => time,
    };

    for e in nl.elements() {
        match e {
            Element::Resistor { a, b, ohms, .. } => st.conductance(*a, *b, 1.0 / ohms),
            Element::Capacitor { a, b, farads, .. } => {
                if let AssembleMode::Transient {
                    dt,
                    prev,
                    cap_currents,
                    method,
                    ..
                } = mode
                {
                    let v_prev = voltage_of(prev, *a) - voltage_of(prev, *b);
                    match method {
                        Integrator::BackwardEuler => {
                            let geq = farads / dt;
                            st.conductance(*a, *b, geq);
                            // i = geq·v − geq·v_prev ⇒ constant part −geq·v_prev
                            st.current(*a, *b, -geq * v_prev);
                        }
                        Integrator::Trapezoidal => {
                            let geq = 2.0 * farads / dt;
                            let i_prev = cap_currents[cap_index];
                            st.conductance(*a, *b, geq);
                            st.current(*a, *b, -(geq * v_prev + i_prev));
                        }
                    }
                }
                cap_index += 1;
            }
            Element::Vsource { p, n, wave, .. } => {
                let rb = branch;
                branch += 1;
                if let Some(i) = idx(*p) {
                    st.a[(i, rb)] += 1.0;
                    st.a[(rb, i)] += 1.0;
                }
                if let Some(j) = idx(*n) {
                    st.a[(j, rb)] -= 1.0;
                    st.a[(rb, j)] -= 1.0;
                }
                st.b[rb] = wave.at(time);
            }
            Element::Isource { p, n, wave, .. } => {
                st.current(*p, *n, wave.at(time));
            }
            Element::Vcvs {
                p, n, cp, cn, gain, ..
            } => {
                let rb = branch;
                branch += 1;
                if let Some(i) = idx(*p) {
                    st.a[(i, rb)] += 1.0;
                    st.a[(rb, i)] += 1.0;
                }
                if let Some(j) = idx(*n) {
                    st.a[(j, rb)] -= 1.0;
                    st.a[(rb, j)] -= 1.0;
                }
                if let Some(c) = idx(*cp) {
                    st.a[(rb, c)] -= gain;
                }
                if let Some(c) = idx(*cn) {
                    st.a[(rb, c)] += gain;
                }
            }
            Element::Vccs {
                p, n, cp, cn, gm, ..
            } => st.transconductance(*p, *n, *cp, *cn, *gm),
            Element::Diode {
                p, n, is_sat, n_id, ..
            } => {
                let v = voltage_of(x, *p) - voltage_of(x, *n);
                let vt = n_id * tech.thermal_voltage();
                // Clamp the exponent to keep the companion model finite;
                // Newton's voltage limiting does the rest.
                let arg = (v / vt).min(40.0);
                let ex = arg.exp();
                let i = is_sat * (ex - 1.0);
                let g = (is_sat / vt * ex).max(1e-18);
                st.conductance(*p, *n, g);
                st.current(*p, *n, i - g * v);
            }
            Element::Mos { d, g, s, b, dev, .. } => {
                let vb = voltage_of(x, *b);
                let vg = voltage_of(x, *g) - vb;
                let vs = voltage_of(x, *s) - vb;
                let vd = voltage_of(x, *d) - vb;
                let op = dev.operating_point(tech, vg, vs, vd);
                // Signed drain-terminal current (leaving node d through
                // the channel): +id for NMOS, −id for PMOS. In both
                // cases its derivatives w.r.t. the *physical*
                // bulk-referred voltages equal the reflected-model
                // values (two sign flips cancel).
                let i_dt = match dev.polarity {
                    ulp_device::Polarity::Nmos => op.id,
                    ulp_device::Polarity::Pmos => -op.id,
                };
                let (gm, gms, gds) = (op.gm, op.gms, op.gds);
                // Stamp ∂I/∂V terms: row d positive, row s negative.
                st.transconductance(*d, *s, *g, *b, gm);
                st.transconductance(*d, *s, *s, *b, gms);
                st.transconductance(*d, *s, *d, *b, gds);
                let i_eq = i_dt - gm * vg - gms * vs - gds * vd;
                st.current(*d, *s, i_eq);
            }
            Element::SclLoad { a, b, load, iss, .. } => {
                let v = voltage_of(x, *a) - voltage_of(x, *b);
                let i = load.current(v, *iss);
                let g = load.conductance(v, *iss).max(1e-18);
                st.conductance(*a, *b, g);
                st.current(*a, *b, i - g * v);
            }
        }
    }

    MnaSystem { matrix, rhs }
}

/// Recovers the capacitor currents implied by a solved transient step —
/// needed to carry trapezoidal state forward.
///
/// Returns one entry per capacitor in netlist order.
pub fn capacitor_currents(
    nl: &Netlist,
    x: &[f64],
    prev: &[f64],
    prev_currents: &[f64],
    dt: f64,
    method: Integrator,
) -> Vec<f64> {
    let mut out = Vec::new();
    capacitor_currents_into(nl, x, prev, prev_currents, dt, method, &mut out);
    out
}

/// [`capacitor_currents`] writing into a caller-owned buffer (cleared
/// first) — lets the transient loop reuse its per-step allocation.
pub fn capacitor_currents_into(
    nl: &Netlist,
    x: &[f64],
    prev: &[f64],
    prev_currents: &[f64],
    dt: f64,
    method: Integrator,
    out: &mut Vec<f64>,
) {
    out.clear();
    let mut k = 0usize;
    for e in nl.elements() {
        if let Element::Capacitor { a, b, farads, .. } = e {
            let v_new = voltage_of(x, *a) - voltage_of(x, *b);
            let v_old = voltage_of(prev, *a) - voltage_of(prev, *b);
            let i = match method {
                Integrator::BackwardEuler => farads / dt * (v_new - v_old),
                Integrator::Trapezoidal => {
                    2.0 * farads / dt * (v_new - v_old) - prev_currents[k]
                }
            };
            out.push(i);
            k += 1;
        }
    }
}

/// What one MNA unknown physically is: the voltage of a named node or
/// the branch current of a named voltage-defined element.
///
/// Because LU elimination pivots rows only, the `step` of a
/// [`ulp_num::lu::SolveError::Singular`] is a column — i.e. unknown —
/// index, and this function translates it straight back to circuit
/// terms: index `i < node_count − 1` is the voltage of node `i + 1`;
/// the remainder are branch currents in element order.
///
/// Returns `(description, is_branch)`, or `None` when `index` is out of
/// range for this netlist.
pub fn unknown_name(nl: &Netlist, index: usize) -> Option<(String, bool)> {
    let nn = nl.node_count() - 1;
    if index < nn {
        return Some((
            format!("voltage of node `{}`", nl.node_name(Node(index + 1))),
            false,
        ));
    }
    let branch = index - nn;
    nl.elements()
        .iter()
        .filter(|e| e.has_branch())
        .nth(branch)
        .map(|e| (format!("branch current of `{}`", e.name()), true))
}

/// The branch-current index (within the solution vector) of the named
/// voltage-defined element, if present.
pub fn branch_index(nl: &Netlist, name: &str) -> Option<usize> {
    let nn = nl.node_count() - 1;
    let mut b = 0usize;
    for e in nl.elements() {
        if e.has_branch() {
            if e.name() == name {
                return Some(nn + b);
            }
            b += 1;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulp_num::lu;

    fn solve_linear(nl: &Netlist, tech: &Technology) -> Vec<f64> {
        let x0 = vec![0.0; nl.unknown_count()];
        let sys = assemble(nl, tech, &x0, AssembleMode::Dc, 1e-12);
        lu::solve(&sys.matrix, &sys.rhs).expect("linear solve")
    }

    #[test]
    fn divider_solves() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let m = nl.node("m");
        nl.vsource("V1", a, Netlist::GROUND, 2.0);
        nl.resistor("R1", a, m, 1e3);
        nl.resistor("R2", m, Netlist::GROUND, 1e3);
        let x = solve_linear(&nl, &Technology::default());
        assert!((voltage_of(&x, m) - 1.0).abs() < 1e-9);
        assert!((voltage_of(&x, a) - 2.0).abs() < 1e-12);
        // Branch current of V1: 2V across 2kΩ = 1 mA drawn from the + node.
        let ib = x[branch_index(&nl, "V1").unwrap()];
        assert!((ib - (-1e-3)).abs() < 1e-9, "ib = {ib}");
    }

    #[test]
    fn isource_into_resistor() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        // 1 µA injected into node a (drawn from ground).
        nl.isource("I1", Netlist::GROUND, a, 1e-6);
        nl.resistor("R1", a, Netlist::GROUND, 1e6);
        let x = solve_linear(&nl, &Technology::default());
        assert!((voltage_of(&x, a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn vcvs_amplifies() {
        let mut nl = Netlist::new();
        let inp = nl.node("in");
        let out = nl.node("out");
        nl.vsource("V1", inp, Netlist::GROUND, 0.1);
        nl.vcvs("E1", out, Netlist::GROUND, inp, Netlist::GROUND, 10.0);
        nl.resistor("RL", out, Netlist::GROUND, 1e3);
        let x = solve_linear(&nl, &Technology::default());
        assert!((voltage_of(&x, out) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn vccs_injects() {
        let mut nl = Netlist::new();
        let inp = nl.node("in");
        let out = nl.node("out");
        nl.vsource("V1", inp, Netlist::GROUND, 1.0);
        // gm = 1 mS drawn from ground, injected into out → current into
        // out = 1 mA.
        nl.vccs("G1", Netlist::GROUND, out, inp, Netlist::GROUND, 1e-3);
        nl.resistor("RL", out, Netlist::GROUND, 1e3);
        let x = solve_linear(&nl, &Technology::default());
        assert!((voltage_of(&x, out) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ground_stamps_are_dropped() {
        // An element entirely to ground must not corrupt the system.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.resistor("Rg", Netlist::GROUND, Netlist::GROUND, 1e3);
        nl.vsource("V1", a, Netlist::GROUND, 1.0);
        nl.resistor("R1", a, Netlist::GROUND, 1e3);
        let x = solve_linear(&nl, &Technology::default());
        assert!((voltage_of(&x, a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn branch_index_ordering() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource("V1", a, Netlist::GROUND, 1.0);
        nl.resistor("R1", a, b, 1.0);
        nl.vsource("V2", b, Netlist::GROUND, 0.5);
        assert_eq!(branch_index(&nl, "V1"), Some(2));
        assert_eq!(branch_index(&nl, "V2"), Some(3));
        assert_eq!(branch_index(&nl, "R1"), None);
        assert_eq!(branch_index(&nl, "nope"), None);
    }

    #[test]
    fn capacitor_open_in_dc() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource("V1", a, Netlist::GROUND, 1.0);
        nl.resistor("R1", a, b, 1e3);
        nl.capacitor("C1", b, Netlist::GROUND, 1e-9);
        let x = solve_linear(&nl, &Technology::default());
        // No DC path through C: node b floats to the source value via R.
        assert!((voltage_of(&x, b) - 1.0).abs() < 1e-6);
    }
}
